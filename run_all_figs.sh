#!/bin/bash
set -u
cd "$(dirname "$0")"
# Every run also writes results/<name>.json (machine-readable report).
export SIPT_JSON=1
for f in tab01 fig01 tab02 tab03 fig05 fig02 fig03 fig06 fig09 fig12 fig13 fig16 fig15 fig18 ablation_bypass ablation_idb ablation_perceptron_size ablation_replay ablation_coloring future_icache; do
  echo "=== running $f ==="
  start=$SECONDS
  cargo run --release -q -p sipt-bench --bin $f > results/$f.txt 2>&1 || echo "FAILED $f"
  echo "$((SECONDS-start)) s" > results/$f.time
done
echo ALL_DONE
