#!/bin/bash
set -u
cd "$(dirname "$0")"
# Every run also writes results/<name>.json (machine-readable report,
# schema v2 with a `parallelism` block).
export SIPT_JSON=1
# Sweep parallelism: --jobs N (or "-j N") on the command line, else
# SIPT_JOBS from the environment, else all host cores.
JOBS="${SIPT_JOBS:-$(nproc 2>/dev/null || echo 1)}"
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs|-j) JOBS="$2"; shift 2 ;;
    --jobs=*) JOBS="${1#--jobs=}"; shift ;;
    *) echo "usage: $0 [--jobs N]" >&2; exit 2 ;;
  esac
done
echo "sweep parallelism: $JOBS jobs"
for f in tab01 fig01 tab02 tab03 fig05 fig02 fig03 fig06 fig09 fig12 fig13 fig16 fig15 fig18 ablation_bypass ablation_idb ablation_perceptron_size ablation_replay ablation_coloring future_icache; do
  echo "=== running $f ==="
  start=$SECONDS
  cargo run --release -q -p sipt-bench --bin $f -- --jobs "$JOBS" > results/$f.txt 2>&1 || echo "FAILED $f"
  echo "$((SECONDS-start)) s" > results/$f.time
done
echo ALL_DONE
