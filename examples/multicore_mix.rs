//! Quad-core multiprogrammed run (Table III mixes, Fig 15 methodology).
//!
//! ```text
//! cargo run --release -p sipt-sim --example multicore_mix
//! ```
//!
//! All four processes allocate from one shared buddy allocator (their
//! footprints interleave, as on a real machine) and each core runs on a
//! private 32 KiB 2-way SIPT L1. Throughput is reported as sum-of-IPC.

use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};
use sipt_sim::{run_mix, Condition};

fn main() {
    let cond = Condition {
        memory_bytes: 4 << 30,
        instructions: 100_000,
        warmup: 25_000,
        ..Condition::default()
    };
    println!("quad-core mixes: 32KiB 2-way SIPT vs 32KiB 8-way VIPT baseline\n");
    println!(
        "{:<7} {:<46} {:>9} {:>9} {:>9}",
        "mix", "applications", "base ΣIPC", "SIPT ΣIPC", "speedup"
    );
    for mix in ["mix0", "mix3", "mix8"] {
        let base = run_mix(mix, baseline_32k_8w_vipt(), &cond);
        let sipt = run_mix(mix, sipt_32k_2w(), &cond);
        let apps: Vec<&str> = base.cores.iter().map(|c| c.name.as_str()).collect();
        println!(
            "{mix:<7} {:<46} {:>9.3} {:>9.3} {:>8.1}%",
            apps.join(","),
            base.sum_ipc(),
            sipt.sum_ipc(),
            (sipt.speedup_vs(&base) - 1.0) * 100.0,
        );
    }
    println!("\npaper: +8.1% average sum-of-IPC on the quad-core (Fig 15)");
}
