//! Fragmentation stress: how SIPT prediction holds up when physical memory
//! is shattered (the paper's §VII.B sensitivity study).
//!
//! ```text
//! cargo run --release -p sipt-sim --example fragmentation_stress
//! ```
//!
//! Runs the same workload under four operating conditions — normal,
//! `Fu(9) > 0.95` fragmented, THP disabled, and fully scattered pages —
//! and reports prediction accuracy, IPC and energy against the baseline
//! measured under the *same* condition.

use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};
use sipt_mem::{fragment_memory, BuddyAllocator, HUGE_PAGE_ORDER};
use sipt_sim::{run_benchmark, Condition, SystemKind};

fn main() {
    // First show what the fragmentation injector actually does.
    let mut phys = BuddyAllocator::with_bytes(1 << 30);
    let mut rng = <sipt_rng::StdRng as sipt_rng::SeedableRng>::seed_from_u64(1);
    println!(
        "fresh memory:      Fu(9) = {:.3}, free = {} MiB",
        phys.unusable_free_space_index(HUGE_PAGE_ORDER),
        (phys.free_frames() * 4096) >> 20
    );
    let hold = fragment_memory(&mut phys, 0.5, &mut rng).expect("fragment");
    println!(
        "after injector:    Fu(9) = {:.3}, free = {} MiB (plenty free, zero contiguity)\n",
        phys.unusable_free_space_index(HUGE_PAGE_ORDER),
        (phys.free_frames() * 4096) >> 20
    );
    hold.release(&mut phys);

    println!(
        "{:<12} {:<14} {:>10} {:>10} {:>10} {:>10}",
        "condition", "benchmark", "accuracy", "hugepages", "speedup", "energy"
    );
    for (label, cond) in Condition::sensitivity_sweep() {
        for bench in ["bwaves", "calculix"] {
            let base =
                run_benchmark(bench, baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
            let sipt = run_benchmark(bench, sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
            println!(
                "{label:<12} {bench:<14} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
                sipt.sipt.fast_fraction() * 100.0,
                sipt.huge_fraction * 100.0,
                (sipt.ipc_vs(&base) - 1.0) * 100.0,
                sipt.energy_vs(&base) * 100.0,
            );
        }
    }
    println!("\npaper: degradation is real but modest — SIPT keeps working even at Fu(9)>0.95");
}
