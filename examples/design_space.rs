//! Design-space exploration: what L1 geometries does SIPT unlock?
//!
//! ```text
//! cargo run --release -p sipt-sim --example design_space
//! ```
//!
//! Walks the paper's Table I space with the CACTI-like model, marks which
//! configurations are buildable as VIPT with 4 KiB pages, and shows how
//! many index bits SIPT would need to speculate for the rest — then runs
//! one workload on the most attractive infeasible point to show the win.

use sipt_cache::CacheGeometry;
use sipt_core::{baseline_32k_8w_vipt, sipt_64k_4w};
use sipt_energy::{estimate, ArrayConfig};
use sipt_sim::{run_benchmark, Condition, SystemKind};

fn main() {
    println!("L1 design space (normalized to 32KiB 8-way 4-cycle baseline)\n");
    println!(
        "{:<8} {:>6} {:>8} {:>10} {:>10} {:>12}",
        "capacity", "ways", "latency", "energy/acc", "VIPT?", "SIPT bits"
    );
    let baseline = estimate(ArrayConfig::simple(32 << 10, 8));
    for kib in [16u64, 32, 64, 128] {
        for ways in [2u32, 4, 8] {
            let geometry = CacheGeometry::new(kib << 10, ways);
            let e = estimate(ArrayConfig::simple(kib << 10, ways));
            println!(
                "{:<8} {:>6} {:>6}cy {:>9.2}x {:>10} {:>12}",
                format!("{kib}KiB"),
                ways,
                e.latency_cycles,
                e.dynamic_nj / baseline.dynamic_nj,
                if geometry.vipt_feasible() { "yes" } else { "NO" },
                geometry.speculative_bits(),
            );
        }
    }

    println!("\nThe 64KiB 4-way 3-cycle point needs 2 speculative bits. Running it:");
    let cond = Condition::default();
    let base = run_benchmark("hmmer", baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
    let sipt = run_benchmark("hmmer", sipt_64k_4w(), SystemKind::OooThreeLevel, &cond);
    println!(
        "hmmer: IPC {:.3} -> {:.3} ({:+.1}%), L1 hit rate {:.1}% -> {:.1}%",
        base.ipc(),
        sipt.ipc(),
        (sipt.ipc_vs(&base) - 1.0) * 100.0,
        base.sipt.hit_rate() * 100.0,
        sipt.sipt.hit_rate() * 100.0,
    );
}
