//! Quickstart: build a SIPT machine, run a workload, compare against the
//! VIPT baseline.
//!
//! ```text
//! cargo run --release -p sipt-sim --example quickstart
//! ```
//!
//! The baseline is the paper's Haswell-like 32 KiB 8-way 4-cycle VIPT L1;
//! the SIPT cache is the impossible-under-VIPT 32 KiB 2-way 2-cycle
//! configuration with the combined bypass-perceptron + IDB predictor.

use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};
use sipt_sim::{run_benchmark, Condition, SystemKind};

fn main() {
    let cond = Condition::default();
    println!("SIPT quickstart: 32KiB 2-way 2-cycle SIPT vs 32KiB 8-way 4-cycle VIPT\n");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "benchmark", "base IPC", "SIPT IPC", "speedup", "fast frac", "energy"
    );
    for bench in ["libquantum", "h264ref", "mcf", "calculix", "graph500"] {
        let base = run_benchmark(bench, baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
        let sipt = run_benchmark(bench, sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        println!(
            "{bench:<14} {:>9.3} {:>9.3} {:>8.1}% {:>10.1}% {:>10.1}%",
            base.ipc(),
            sipt.ipc(),
            (sipt.ipc_vs(&base) - 1.0) * 100.0,
            sipt.sipt.fast_fraction() * 100.0,
            sipt.energy_vs(&base) * 100.0,
        );
    }
    println!(
        "\nfast frac = accesses completed at array latency (speculation or IDB correct)\n\
         energy    = cache-hierarchy energy relative to the baseline (lower is better)"
    );
}
