//! Synonyms: two virtual addresses mapping one physical line — the case
//! that makes VIVT caches complicated (paper §II.B) and that SIPT handles
//! for free because lines live at their *physical* index and every lookup
//! checks the full physical tag.
//!
//! ```text
//! cargo run --release -p sipt-sim --example synonym_sharing
//! ```

use sipt_core::sipt_32k_2w;
use sipt_cpu::{MemOp, MemRef, MemoryPath};
use sipt_mem::{AddressSpace, BuddyAllocator, PlacementPolicy, PAGE_SIZE};
use sipt_sim::{Machine, SystemKind};

fn main() {
    let mut phys = BuddyAllocator::with_bytes(64 << 20);
    let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);

    // One 64 KiB buffer, then a synonym mapping of the same frames.
    let original = asp.mmap(16 * PAGE_SIZE, &mut phys).expect("mmap");
    let alias = asp.mmap_shared(&asp.clone(), original).expect("alias");
    let pa_a = asp.translate(original.start).unwrap().pa;
    let pa_b = asp.translate(alias.start).unwrap().pa;
    println!("original VA {}  alias VA {}  -> same PA {}", original.start, alias.start, pa_a);
    assert_eq!(pa_a, pa_b, "synonym must translate to the same physical line");

    let mut machine = Machine::new(asp, sipt_32k_2w(), SystemKind::OooThreeLevel);

    // Write through the original mapping...
    let w = machine.access(0x100, MemRef { op: MemOp::Store, va: original.start }, 0);
    println!("store via original: {} cycles (cold miss + fill)", w.latency);

    // ...then read through the alias: it must hit the SAME cache line,
    // because the line was filled at its physical index and the alias's
    // different virtual index bits are corrected by the SIPT machinery.
    // (The first alias access still pays a TLB walk for the new virtual
    // page — translation is per-name, caching is per-physical-line.)
    let r1 = machine.access(0x104, MemRef { op: MemOp::Load, va: alias.start }, 100);
    println!("load via alias:     {} cycles (L1 hit behind a cold TLB walk)", r1.latency);
    let r2 = machine.access(0x104, MemRef { op: MemOp::Load, va: alias.start }, 200);
    println!("load via alias #2:  {} cycles (warm TLB, warm cache)", r2.latency);
    assert!(r2.latency <= 4, "alias read must be an L1 hit, not a second copy");

    let stats = machine.l1().stats();
    println!(
        "\nL1: {} accesses, {} hits, {} misses — one physical line, two names, zero \
         synonym hardware",
        stats.accesses, stats.hits, stats.misses
    );
    assert_eq!(stats.misses, 1, "only the first touch may miss");
    assert_eq!(stats.hits, 2);
}
