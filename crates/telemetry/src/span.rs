//! Hierarchical wall-clock spans with a Chrome trace-event exporter.
//!
//! Everything the sweep engine does on the host — running a task,
//! allocating a workload, warming up, measuring, hitting the prep cache,
//! appending a checkpoint — can be wrapped in a [`Span`]. Spans nest
//! per thread (enter/exit pairs form a stack), carry a category and
//! optional key/value args, and are recorded into one process-wide sink.
//! The sink exports the Chrome trace-event JSON array format (`{"traceEvents":
//! [...]}`) that `ui.perfetto.dev` and `chrome://tracing` load directly,
//! so a whole figure sweep renders as a per-worker timeline.
//!
//! Tracing is **off by default** and costs exactly one relaxed atomic
//! load per [`Span::enter`] while disabled — cheap enough to leave the
//! instrumentation in hot orchestration paths unconditionally. Enabling
//! is process-wide ([`set_enabled`]); producers arm it from
//! `--trace-spans` / `SIPT_TRACE_SPANS=1`.
//!
//! Host timestamps are wall-clock and therefore nondeterministic, but
//! the *structure* of the trace — the sequence of begin/end/instant
//! events, their names, categories and thread ids — is deterministic
//! for a serial (`--jobs 1`) sweep, which is what the golden span-tree
//! test pins.
//!
//! ## Thread identity
//!
//! Chrome traces group events into tracks by `(pid, tid)`. Real OS
//! thread ids are nondeterministic and meaningless across runs, so the
//! sink uses *virtual* tids: tid 0 is the orchestrator ("main"), and
//! pool workers call [`set_virtual_tid`] to claim `worker+1` with a
//! stable display name. Threads that never claim a tid record on tid 0;
//! this is safe for begin/end nesting as long as only one such thread
//! emits paired events at a time (instants never break nesting).

use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Hard bound on retained span events; past it, events are counted in
/// [`dropped`] and discarded. 1Mi events ≈ a few hundred MB of JSON —
/// far beyond any sweep this repo runs, but a runaway loop must not
/// OOM the host.
pub const MAX_SPAN_EVENTS: usize = 1 << 20;

/// The trace-event phase of one recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Duration begin (`"ph":"B"`).
    Begin,
    /// Duration end (`"ph":"E"`).
    End,
    /// Instant event (`"ph":"i"`), thread-scoped.
    Instant,
}

impl SpanPhase {
    /// Chrome trace-event `ph` string.
    pub fn ph(self) -> &'static str {
        match self {
            SpanPhase::Begin => "B",
            SpanPhase::End => "E",
            SpanPhase::Instant => "i",
        }
    }
}

/// One recorded event, in process-global record order.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Trace-event phase.
    pub phase: SpanPhase,
    /// Event name (span or instant label).
    pub name: String,
    /// Category (`"sweep"`, `"run"`, `"prep_cache"`, `"checkpoint"`, ...).
    pub cat: &'static str,
    /// Microseconds since the process trace anchor (monotonic clock).
    pub ts_us: u64,
    /// Virtual thread id (track) the event belongs to.
    pub tid: u32,
    /// Optional key/value args rendered into the event's `args` object.
    pub args: Vec<(&'static str, Json)>,
}

struct Sink {
    events: Vec<SpanEvent>,
    dropped: u64,
    thread_names: BTreeMap<u32, String>,
    /// Retention bound; [`MAX_SPAN_EVENTS`] except in saturation tests.
    cap: usize,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

thread_local! {
    static VIRTUAL_TID: Cell<u32> = const { Cell::new(0) };
    /// Per-thread stack of open span names, so `End` events can carry the
    /// matching name (Perfetto tolerates anonymous `E`s, but named pairs
    /// make the trace greppable).
    static OPEN_SPANS: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn anchor() -> &'static Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    u64::try_from(anchor().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Globally enable or disable span recording. Disabled is the default;
/// while disabled, [`Span::enter`] is a single relaxed atomic load.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the time anchor before the first span so ts 0 ≈ arm time.
        let _ = anchor();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Claim a virtual thread id (trace track) for the calling thread and
/// register its display name (shown as the track label in Perfetto).
/// Sweep workers claim `worker + 1`; tid 0 is the orchestrator.
pub fn set_virtual_tid(tid: u32, name: &str) {
    VIRTUAL_TID.with(|t| t.set(tid));
    if enabled() {
        with_sink(|s| {
            s.thread_names.entry(tid).or_insert_with(|| name.to_string());
        });
    }
}

/// Reset the calling thread's virtual tid to 0 (orchestrator).
pub fn clear_virtual_tid() {
    VIRTUAL_TID.with(|t| t.set(0));
}

fn with_sink<R>(f: impl FnOnce(&mut Sink) -> R) -> R {
    let mut guard = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    let sink = guard.get_or_insert_with(|| Sink {
        events: Vec::new(),
        dropped: 0,
        thread_names: BTreeMap::new(),
        cap: MAX_SPAN_EVENTS,
    });
    f(sink)
}

fn record(phase: SpanPhase, name: String, cat: &'static str, args: Vec<(&'static str, Json)>) {
    let ts_us = now_us();
    let tid = VIRTUAL_TID.with(Cell::get);
    with_sink(|s| {
        if s.events.len() >= s.cap {
            s.dropped += 1;
            return;
        }
        s.events.push(SpanEvent { phase, name, cat, ts_us, tid, args });
    });
}

/// An RAII guard for one hierarchical span: records a `B` event on
/// [`Span::enter`] and the matching `E` on drop. Spans opened on the
/// same thread nest (LIFO drop order yields a well-formed trace).
///
/// When tracing is disabled the guard is inert and costs one atomic
/// load — no allocation, no lock.
#[must_use = "a span ends when the guard drops; binding to _ ends it immediately"]
pub struct Span {
    armed: bool,
    exit_args: Vec<(&'static str, Json)>,
}

impl Span {
    /// Open a span named `name` under category `cat`.
    #[inline]
    pub fn enter(name: impl Into<String>, cat: &'static str) -> Span {
        Span::enter_with(name, cat, Vec::new())
    }

    /// Open a span with key/value args attached to the begin event.
    pub fn enter_with(
        name: impl Into<String>,
        cat: &'static str,
        args: Vec<(&'static str, Json)>,
    ) -> Span {
        if !enabled() {
            return Span { armed: false, exit_args: Vec::new() };
        }
        let name = name.into();
        OPEN_SPANS.with(|s| s.borrow_mut().push(name.clone()));
        record(SpanPhase::Begin, name, cat, args);
        Span { armed: true, exit_args: Vec::new() }
    }

    /// Attach an arg to the span's *end* event — for outcomes only known
    /// at exit (e.g. a prep-cache lookup resolving to hit or miss).
    pub fn arg(&mut self, key: &'static str, value: Json) {
        if self.armed {
            self.exit_args.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let name = OPEN_SPANS.with(|s| s.borrow_mut().pop()).unwrap_or_default();
        record(SpanPhase::End, name, "", std::mem::take(&mut self.exit_args));
    }
}

/// Record a thread-scoped instant event (a point-in-time mark: a retry,
/// a watchdog flag, a fault injection). Instants never unbalance the
/// begin/end nesting of their track.
pub fn instant(name: impl Into<String>, cat: &'static str) {
    instant_with(name, cat, Vec::new());
}

/// [`instant`] with key/value args.
pub fn instant_with(name: impl Into<String>, cat: &'static str, args: Vec<(&'static str, Json)>) {
    if !enabled() {
        return;
    }
    record(SpanPhase::Instant, name.into(), cat, args);
}

/// Events lost to the [`MAX_SPAN_EVENTS`] bound so far.
pub fn dropped() -> u64 {
    with_sink(|s| s.dropped)
}

/// Number of events currently retained.
pub fn recorded() -> usize {
    with_sink(|s| s.events.len())
}

/// Snapshot the retained events in record order (for tests and custom
/// exporters). Does not drain.
pub fn snapshot_events() -> Vec<SpanEvent> {
    with_sink(|s| s.events.clone())
}

/// Clear all retained events, thread names, and the dropped counter, and
/// restore the retention bound to [`MAX_SPAN_EVENTS`]. Virtual tids and
/// the enabled flag are left untouched.
pub fn reset() {
    with_sink(|s| {
        s.events.clear();
        s.dropped = 0;
        s.thread_names.clear();
        s.cap = MAX_SPAN_EVENTS;
    });
}

/// Shrink the retention bound (testing only: lets saturation tests hit
/// the cap without pushing [`MAX_SPAN_EVENTS`] real events). [`reset`]
/// restores the default bound.
#[cfg(test)]
fn set_cap_for_tests(cap: usize) {
    with_sink(|s| s.cap = cap);
}

/// Render the retained events as a Chrome trace-event JSON object:
/// `{"traceEvents": [...], "spanDropped": N}`. Loadable directly in
/// `ui.perfetto.dev` or `chrome://tracing`.
///
/// Every `(pid, tid)` pair seen gets `process_name` / `thread_name`
/// metadata events so Perfetto labels the tracks; unnamed tids fall
/// back to `"main"` (tid 0) or `"tid <n>"`.
///
/// When the sink saturated mid-span, `E` events were dropped after their
/// `B` was already retained, which would render as never-ending spans.
/// The exporter synthesizes the missing closers (per-tid LIFO order, at
/// the trace's final timestamp) so the emitted trace is always
/// begin/end-balanced; `spanSynthesizedEnds` counts them (0 for a
/// balanced trace, where this pass is a no-op).
pub fn export_chrome_trace() -> Json {
    with_sink(|s| {
        let mut events: Vec<Json> = Vec::with_capacity(s.events.len() + s.thread_names.len() + 2);
        events.push(meta_event("process_name", 0, Json::obj([("name", Json::str("sipt"))])));
        let mut tids: Vec<u32> = s.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let name = s.thread_names.get(&tid).cloned().unwrap_or_else(|| {
                if tid == 0 {
                    "main".into()
                } else {
                    format!("tid {tid}")
                }
            });
            events.push(meta_event("thread_name", tid, Json::obj([("name", Json::str(name))])));
        }
        let mut open: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        let mut last_ts = 0u64;
        for e in &s.events {
            last_ts = last_ts.max(e.ts_us);
            match e.phase {
                SpanPhase::Begin => open.entry(e.tid).or_default().push(&e.name),
                SpanPhase::End => {
                    open.entry(e.tid).or_default().pop();
                }
                SpanPhase::Instant => {}
            }
            let mut obj = Json::obj([
                ("name", Json::str(&e.name)),
                ("cat", Json::str(if e.cat.is_empty() { "span" } else { e.cat })),
                ("ph", Json::str(e.phase.ph())),
                ("ts", Json::u64(e.ts_us)),
                ("pid", Json::u64(1)),
                ("tid", Json::u64(u64::from(e.tid))),
            ]);
            if e.phase == SpanPhase::Instant {
                // "s" scope: thread-scoped instant (a small arrow marker).
                obj.insert("s", Json::str("t"));
            }
            if !e.args.is_empty() {
                obj.insert(
                    "args",
                    Json::obj(e.args.iter().map(|(k, v)| (*k, v.clone())).collect::<Vec<_>>()),
                );
            }
            events.push(obj);
        }
        // Close any span whose `E` was lost to the retention bound.
        // Retained events are a record-order prefix, so only unmatched
        // `B`s are possible — never an `E` without its `B`.
        let mut synthesized = 0u64;
        for (tid, stack) in &open {
            for name in stack.iter().rev() {
                synthesized += 1;
                events.push(Json::obj([
                    ("name", Json::str(*name)),
                    ("cat", Json::str("span")),
                    ("ph", Json::str("E")),
                    ("ts", Json::u64(last_ts)),
                    ("pid", Json::u64(1)),
                    ("tid", Json::u64(u64::from(*tid))),
                ]));
            }
        }
        Json::obj([
            ("traceEvents", Json::arr(events)),
            ("spanDropped", Json::u64(s.dropped)),
            ("spanSynthesizedEnds", Json::u64(synthesized)),
        ])
    })
}

fn meta_event(name: &'static str, tid: u32, args: Json) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("ph", Json::str("M")),
        ("pid", Json::u64(1)),
        ("tid", Json::u64(u64::from(tid))),
        ("args", args),
    ])
}

/// Write the Chrome trace to `<dir>/<name>.trace.json` (creating `dir`)
/// and return the written path.
pub fn write_trace(dir: &Path, name: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.trace.json"));
    std::fs::write(&path, export_chrome_trace().render_pretty())?;
    Ok(path)
}

/// A compact JSON summary of the span sink (for the report's
/// `observability` block): retained/dropped event counts and whether
/// recording is armed.
pub fn summary_json() -> Json {
    with_sink(|s| {
        Json::obj([
            ("enabled", Json::u64(u64::from(enabled()))),
            ("events", Json::u64(s.events.len() as u64)),
            ("dropped", Json::u64(s.dropped)),
        ])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::sync::Mutex as StdMutex;

    /// Span tests mutate process-global state; serialize them.
    static GATE: StdMutex<()> = StdMutex::new(());

    fn with_clean_sink<R>(f: impl FnOnce() -> R) -> R {
        let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        reset();
        clear_virtual_tid();
        out
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        set_enabled(false);
        {
            let _s = Span::enter("noop", "test");
            instant("mark", "test");
        }
        assert_eq!(recorded(), 0);
        assert_eq!(dropped(), 0);
    }

    #[test]
    fn spans_nest_and_pair_begin_end() {
        with_clean_sink(|| {
            {
                let _outer = Span::enter("outer", "test");
                {
                    let _inner = Span::enter("inner", "test");
                }
            }
            let evs = snapshot_events();
            let shape: Vec<(&str, SpanPhase)> =
                evs.iter().map(|e| (e.name.as_str(), e.phase)).collect();
            assert_eq!(
                shape,
                vec![
                    ("outer", SpanPhase::Begin),
                    ("inner", SpanPhase::Begin),
                    ("inner", SpanPhase::End),
                    ("outer", SpanPhase::End),
                ]
            );
        });
    }

    #[test]
    fn exit_args_ride_the_end_event() {
        with_clean_sink(|| {
            {
                let mut s = Span::enter("lookup", "prep_cache");
                s.arg("outcome", Json::str("hit"));
            }
            let evs = snapshot_events();
            assert_eq!(evs.len(), 2);
            assert!(evs[0].args.is_empty());
            assert_eq!(evs[1].args.len(), 1);
            assert_eq!(evs[1].args[0].0, "outcome");
        });
    }

    #[test]
    fn chrome_export_is_valid_json_with_metadata() {
        with_clean_sink(|| {
            set_virtual_tid(3, "worker 2");
            {
                let _s = Span::enter("task", "sweep");
                instant("retry", "resilience");
            }
            clear_virtual_tid();
            let trace = export_chrome_trace();
            let parsed = parse(&trace.render()).unwrap();
            let events = parsed.path("traceEvents").and_then(Json::as_arr).unwrap();
            // process_name + thread_name(tid 3) + B + i + E.
            assert_eq!(events.len(), 5);
            let phs: Vec<&str> =
                events.iter().filter_map(|e| e.path("ph").and_then(Json::as_str)).collect();
            assert_eq!(phs, vec!["M", "M", "B", "i", "E"]);
            let thread_meta = &events[1];
            assert_eq!(thread_meta.path("tid").and_then(Json::as_f64), Some(3.0));
            assert_eq!(thread_meta.path("args.name").and_then(Json::as_str), Some("worker 2"));
            assert_eq!(parsed.path("spanDropped").and_then(Json::as_f64), Some(0.0));
        });
    }

    /// Per-tid begin/end balance of a rendered trace: +1 per `B`, -1 per
    /// `E`; every prefix must stay non-negative and every track ends at 0.
    fn assert_balanced(trace: &Json) {
        let parsed = parse(&trace.render()).unwrap();
        let events = parsed.path("traceEvents").and_then(Json::as_arr).unwrap();
        let mut depth: std::collections::BTreeMap<u64, i64> = std::collections::BTreeMap::new();
        for e in events {
            let tid = e.path("tid").and_then(Json::as_f64).unwrap() as u64;
            match e.path("ph").and_then(Json::as_str).unwrap() {
                "B" => *depth.entry(tid).or_default() += 1,
                "E" => {
                    let d = depth.entry(tid).or_default();
                    *d -= 1;
                    assert!(*d >= 0, "tid {tid}: E without a matching B");
                }
                _ => {}
            }
        }
        for (tid, d) in depth {
            assert_eq!(d, 0, "tid {tid}: {d} unmatched B events in exported trace");
        }
    }

    #[test]
    fn saturated_sink_exports_balanced_trace() {
        with_clean_sink(|| {
            set_cap_for_tests(4);
            {
                let _outer = Span::enter("outer", "test");
                let _mid = Span::enter("mid", "test");
                {
                    let _inner = Span::enter("inner", "test");
                    instant("mark", "test"); // 4th event: fills the sink
                }
                // The three `E`s all land past the cap and are dropped.
            }
            assert_eq!(recorded(), 4);
            assert_eq!(dropped(), 3, "the three E events must be dropped");
            let trace = export_chrome_trace();
            assert_balanced(&trace);
            let parsed = parse(&trace.render()).unwrap();
            assert_eq!(parsed.path("spanSynthesizedEnds").and_then(Json::as_f64), Some(3.0));
            assert_eq!(parsed.path("spanDropped").and_then(Json::as_f64), Some(3.0));
            // Synthesized closers unwind LIFO: inner before mid before outer.
            let events = parsed.path("traceEvents").and_then(Json::as_arr).unwrap();
            let tail: Vec<&str> = events[events.len() - 3..]
                .iter()
                .map(|e| e.path("name").and_then(Json::as_str).unwrap())
                .collect();
            assert_eq!(tail, vec!["inner", "mid", "outer"]);
        });
    }

    #[test]
    fn balanced_trace_synthesizes_nothing() {
        with_clean_sink(|| {
            {
                let _s = Span::enter("task", "sweep");
                instant("retry", "resilience");
            }
            let trace = export_chrome_trace();
            assert_balanced(&trace);
            let parsed = parse(&trace.render()).unwrap();
            assert_eq!(parsed.path("spanSynthesizedEnds").and_then(Json::as_f64), Some(0.0));
        });
    }

    #[test]
    fn sink_bound_counts_dropped() {
        with_clean_sink(|| {
            // Fill to the bound cheaply via instants; MAX is large, so
            // exercise the bound logic through the summary instead of
            // actually pushing 1Mi events: push a handful and verify the
            // accounting fields exist and are consistent.
            instant("a", "test");
            instant("b", "test");
            let summary = summary_json();
            assert_eq!(summary.path("events").and_then(Json::as_f64), Some(2.0));
            assert_eq!(summary.path("dropped").and_then(Json::as_f64), Some(0.0));
            assert_eq!(summary.path("enabled").and_then(Json::as_f64), Some(1.0));
        });
    }
}
