//! A hand-rolled JSON value type: builder, renderer, and a small parser.
//!
//! The build must stay dependency-free/offline, so there is no serde here.
//! [`Json`] covers the full JSON data model; [`Json::render`] emits
//! compact spec-compliant text and [`parse`] reads it back (used by the
//! round-trip tests and by consumers that diff two run reports).
//!
//! Numbers are kept as `f64` (JSON's own model). `u64` counters above
//! 2⁵³ would lose precision, but every counter in a simulation run fits
//! comfortably; [`Json::u64`] debug-asserts that.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (JSON numbers are IEEE doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key order deterministic, so reports
    /// diff cleanly across runs.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// A numeric value. Non-finite values render as `null` (JSON has no
    /// NaN/inf).
    pub fn num(v: f64) -> Self {
        Json::Num(v)
    }

    /// A numeric value from a u64 counter.
    pub fn u64(v: u64) -> Self {
        debug_assert!(v <= (1 << 53), "u64 {v} exceeds f64 exact-integer range");
        Json::Num(v as f64)
    }

    /// An array from an iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Self {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key of an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Walk a `.`-separated path of object keys.
    pub fn path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |node, key| node.get(key))
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an ordered key→value map, if an object. Iteration
    /// order is the `BTreeMap`'s (sorted), so walks are deterministic.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Insert into an object in place (panics on non-objects — builder
    /// convenience).
    pub fn insert(&mut self, key: impl Into<String>, value: Json) -> &mut Self {
        match self {
            Json::Obj(map) => {
                map.insert(key.into(), value);
            }
            other => panic!("Json::insert on non-object {other:?}"),
        }
        self
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Render with two-space indentation (human-diffable reports).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_num(*v, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    render_str(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Render exact integers without a fraction.
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse errors, with the byte offset where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document. Rejects trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_owned(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII in \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our renderer;
                            // map unpaired ones to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slices
                    // at char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(&format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_sorted() {
        let v = Json::obj([
            ("b", Json::u64(2)),
            ("a", Json::arr([Json::Bool(true), Json::Null, Json::num(1.5)])),
        ]);
        assert_eq!(v.render(), r#"{"a":[true,null,1.5],"b":2}"#);
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::u64(123456789).render(), "123456789");
        assert_eq!(Json::num(0.25).render(), "0.25");
        assert_eq!(Json::num(f64::NAN).render(), "null");
        assert_eq!(Json::num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_round_trips_nested_structures() {
        let v = Json::obj([
            ("name", Json::str("fig01")),
            ("ipc", Json::num(1.875)),
            ("neg", Json::num(-3.5e-2)),
            (
                "hist",
                Json::obj([
                    ("buckets", Json::arr((0..8).map(Json::u64))),
                    ("count", Json::u64(28)),
                ]),
            ),
            ("tags", Json::arr([Json::str("a"), Json::str("ü✓")])),
            ("none", Json::Null),
            ("ok", Json::Bool(false)),
        ]);
        let compact = parse(&v.render()).unwrap();
        let pretty = parse(&v.render_pretty()).unwrap();
        assert_eq!(compact, v);
        assert_eq!(pretty, v);
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        assert_eq!(
            parse(" { \"k\" : [ 1 , 2 ] } ").unwrap(),
            Json::obj([("k", Json::arr([Json::u64(1), Json::u64(2)]))])
        );
        assert!(parse("{} trailing").is_err());
        assert!(parse("{\"k\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn path_and_accessors() {
        let v =
            Json::obj([("runs", Json::obj([("ipc", Json::num(1.5)), ("name", Json::str("mcf"))]))]);
        assert_eq!(v.path("runs.ipc").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.path("runs.name").and_then(Json::as_str), Some("mcf"));
        assert!(v.path("runs.missing").is_none());
        assert!(v.path("nope.ipc").is_none());
    }

    #[test]
    fn insert_builds_objects_incrementally() {
        let mut v = Json::obj::<&str>([]);
        v.insert("a", Json::u64(1)).insert("b", Json::str("x"));
        assert_eq!(v.render(), r#"{"a":1,"b":"x"}"#);
    }
}
