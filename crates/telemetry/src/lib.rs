#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-telemetry — observability for the SIPT simulator
//!
//! SIPT's value proposition lives in *distributions* — how often the
//! speculated index bits survive translation, what the VA→PA index-delta
//! distribution looks like, how the perceptron's confidence margin
//! correlates with replays, what the replay penalty costs per benchmark.
//! This crate provides the three layers every other crate instruments
//! against, with zero external dependencies (the build stays offline):
//!
//! 1. [`MetricsRegistry`] — named monotonic counters, gauges, and
//!    log2-bucketed [`Log2Histogram`]s, with
//!    [`MetricsSnapshot`] snapshot / diff / merge;
//! 2. [`EventTracer`] — a bounded ring buffer of per-access speculation
//!    [`SpecEvent`]s (fast hits, replays, bypass waits, IDB corrections,
//!    …) with cycle timestamps, PCs and speculated-vs-actual index bits,
//!    dumpable as JSONL;
//! 3. [`json`] + [`report`] — a hand-rolled (no serde) JSON value type
//!    with renderer *and* parser, and the `results/<name>.json` report
//!    envelope used by every `fig*`/`tab*`/`ablation_*` binary behind
//!    the `--json` / `SIPT_JSON=1` switch;
//! 4. [`span`] — hierarchical host wall-clock spans ([`Span::enter`],
//!    thread-local nesting, virtual per-worker tids) exported as Chrome
//!    trace-event / Perfetto JSON (`results/<name>.trace.json`) behind
//!    `--trace-spans` / `SIPT_TRACE_SPANS=1`.
//!
//! ## Example
//!
//! ```
//! use sipt_telemetry::{EventTracer, MetricsRegistry, SpecEvent, SpecEventKind};
//!
//! let mut metrics = MetricsRegistry::new();
//! let mut tracer = EventTracer::new(1024);
//! // ... per access ...
//! metrics.incr("l1.replays");
//! metrics.observe("l1.replay_latency", 14);
//! tracer.push(SpecEvent {
//!     cycle: 1000, pc: 0x400abc, kind: SpecEventKind::Replay,
//!     speculated_bits: 0b01, actual_bits: 0b10, latency: 14, margin: 3,
//! });
//! // ... at the end of the run ...
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counters["l1.replays"], 1);
//! let jsonl = tracer.to_jsonl();
//! assert!(jsonl.contains("\"kind\":\"replay\""));
//! let report = sipt_telemetry::report::envelope("demo", snap.to_json());
//! let back = sipt_telemetry::json::parse(&report.render()).unwrap();
//! assert_eq!(back, report);
//! ```

pub mod hist;
pub mod json;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

pub use hist::{Log2Histogram, BUCKETS};
pub use json::Json;
pub use registry::{MetricsRegistry, MetricsSnapshot};
pub use span::{Span, SpanEvent, SpanPhase};
pub use trace::{EventTracer, SpecEvent, SpecEventKind};
