//! Bounded ring-buffer tracing of per-access speculation events.
//!
//! The tracer keeps the most recent `capacity` events; older events are
//! overwritten and counted in [`EventTracer::dropped`]. Events dump as
//! JSONL (one JSON object per line), the format consumed by the repo's
//! analysis scripts and documented in EXPERIMENTS.md.

use crate::json::Json;
use std::collections::VecDeque;

/// The speculation-relevant event classes of one L1 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecEventKind {
    /// Speculated with the VA index bits and they survived translation.
    FastHit,
    /// Speculated with the wrong bits: the access replayed with the
    /// physical index (wasted array read + replay penalty).
    Replay,
    /// The bypass predictor said "wait for translation" and the bits had
    /// indeed changed — a correct (necessary) serialization.
    BypassWait,
    /// The bypass predictor said "wait" although the bits were unchanged —
    /// a squandered fast access.
    OpportunityLoss,
    /// The IDB (or 1-bit inverted prediction) corrected the index delta:
    /// a would-be-slow access converted to fast.
    IdbCorrected,
    /// The IDB supplied a wrong delta: replayed like a misspeculation.
    IdbMispredict,
    /// The policy did not speculate on this access (VIPT/PIPT/ideal).
    NotSpeculative,
}

impl SpecEventKind {
    /// Stable wire name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            SpecEventKind::FastHit => "fast_hit",
            SpecEventKind::Replay => "replay",
            SpecEventKind::BypassWait => "bypass_wait",
            SpecEventKind::OpportunityLoss => "opportunity_loss",
            SpecEventKind::IdbCorrected => "idb_corrected",
            SpecEventKind::IdbMispredict => "idb_mispredict",
            SpecEventKind::NotSpeculative => "not_speculative",
        }
    }

    /// All kinds, in wire order (for per-kind counting).
    pub const ALL: [SpecEventKind; 7] = [
        SpecEventKind::FastHit,
        SpecEventKind::Replay,
        SpecEventKind::BypassWait,
        SpecEventKind::OpportunityLoss,
        SpecEventKind::IdbCorrected,
        SpecEventKind::IdbMispredict,
        SpecEventKind::NotSpeculative,
    ];
}

/// One traced speculation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecEvent {
    /// Cycle (or access ordinal when the caller has no cycle clock) at
    /// which the access issued.
    pub cycle: u64,
    /// Program counter of the memory operation.
    pub pc: u64,
    /// Event class.
    pub kind: SpecEventKind,
    /// The index bits the cache speculated with (beyond the page offset).
    pub speculated_bits: u64,
    /// The post-translation (actual) index bits.
    pub actual_bits: u64,
    /// Observed L1 latency of the access, in cycles.
    pub latency: u64,
    /// Predictor confidence margin for the access (|y| of the perceptron;
    /// 0 when not applicable).
    pub margin: u64,
}

impl SpecEvent {
    /// One JSONL line (no trailing newline).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cycle", Json::u64(self.cycle)),
            ("pc", Json::str(format!("0x{:x}", self.pc))),
            ("kind", Json::str(self.kind.name())),
            ("spec_bits", Json::u64(self.speculated_bits)),
            ("actual_bits", Json::u64(self.actual_bits)),
            ("latency", Json::u64(self.latency)),
            ("margin", Json::u64(self.margin)),
        ])
    }
}

/// A bounded ring buffer of [`SpecEvent`]s.
#[derive(Debug, Clone)]
pub struct EventTracer {
    buf: VecDeque<SpecEvent>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl EventTracer {
    /// A tracer retaining at most `capacity` events. Capacity 0 disables
    /// recording entirely (every push is counted as dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, event: SpecEvent) {
        self.recorded += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Account for `n` events that were observed but never materialized —
    /// the bulk flush of a zero-capacity tracer, where per-block telemetry
    /// accumulates plain counters and defers tracer bookkeeping. Each of
    /// the `n` events counts as recorded *and* dropped, exactly as `n`
    /// individual [`EventTracer::push`] calls at capacity 0 would.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the tracer has retention capacity — retained
    /// events cannot be bulk-accounted, they must be pushed.
    #[inline]
    pub fn account_unretained(&mut self, n: u64) {
        debug_assert_eq!(self.capacity, 0, "bulk accounting requires a zero-capacity tracer");
        self.recorded += n;
        self.dropped += n;
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpecEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to wraparound (or to a zero-capacity tracer).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-kind counts over the *retained* window.
    pub fn kind_counts(&self) -> Vec<(SpecEventKind, u64)> {
        SpecEventKind::ALL
            .iter()
            .map(|&k| (k, self.buf.iter().filter(|e| e.kind == k).count() as u64))
            .collect()
    }

    /// Clear retained events (counters keep accumulating).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Summarize the tracer as JSON: retention capacity, total events
    /// ever pushed, the retained-window size, and — crucially — the
    /// number of events lost to wraparound, so a bounded trace is never
    /// silently lossy. Per-kind counts cover the retained window.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("capacity", Json::u64(self.capacity as u64)),
            ("recorded", Json::u64(self.recorded)),
            ("retained", Json::u64(self.buf.len() as u64)),
            ("dropped", Json::u64(self.dropped)),
            (
                "kind_counts",
                Json::obj(
                    self.kind_counts()
                        .into_iter()
                        .filter(|&(_, n)| n > 0)
                        .map(|(k, n)| (k.name(), Json::u64(n)))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }

    /// Dump the retained window as JSONL, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.buf {
            out.push_str(&e.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Write the retained window as JSONL to `w`.
    pub fn dump_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(self.to_jsonl().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn ev(cycle: u64, kind: SpecEventKind) -> SpecEvent {
        SpecEvent {
            cycle,
            pc: 0x400000 + cycle,
            kind,
            speculated_bits: cycle % 4,
            actual_bits: (cycle + 1) % 4,
            latency: 2 + cycle % 3,
            margin: cycle % 40,
        }
    }

    #[test]
    fn retains_most_recent_events_on_wraparound() {
        let mut t = EventTracer::new(4);
        for i in 0..10 {
            t.push(ev(i, SpecEventKind::FastHit));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped(), 6);
        let cycles: Vec<u64> = t.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest first, newest retained");
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let mut t = EventTracer::new(0);
        t.push(ev(1, SpecEventKind::Replay));
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 1);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let mut t = EventTracer::new(8);
        t.push(ev(5, SpecEventKind::Replay));
        t.push(ev(6, SpecEventKind::IdbCorrected));
        let dump = t.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = parse(lines[0]).unwrap();
        assert_eq!(first.path("kind").and_then(|j| j.as_str()), Some("replay"));
        assert_eq!(first.path("cycle").and_then(|j| j.as_f64()), Some(5.0));
        assert_eq!(first.path("pc").and_then(|j| j.as_str()), Some("0x400005"));
        let second = parse(lines[1]).unwrap();
        assert_eq!(second.path("kind").and_then(|j| j.as_str()), Some("idb_corrected"));
    }

    #[test]
    fn kind_counts_cover_retained_window() {
        let mut t = EventTracer::new(16);
        for i in 0..6 {
            t.push(ev(
                i,
                if i % 2 == 0 { SpecEventKind::FastHit } else { SpecEventKind::BypassWait },
            ));
        }
        let counts = t.kind_counts();
        let get = |k: SpecEventKind| counts.iter().find(|(kk, _)| *kk == k).unwrap().1;
        assert_eq!(get(SpecEventKind::FastHit), 3);
        assert_eq!(get(SpecEventKind::BypassWait), 3);
        assert_eq!(get(SpecEventKind::Replay), 0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 6, "counters survive clear");
    }

    #[test]
    fn summary_json_accounts_for_drops() {
        let mut t = EventTracer::new(2);
        for i in 0..5 {
            t.push(ev(i, if i == 4 { SpecEventKind::Replay } else { SpecEventKind::FastHit }));
        }
        let j = t.to_json();
        assert_eq!(j.path("capacity").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.path("recorded").and_then(Json::as_f64), Some(5.0));
        assert_eq!(j.path("retained").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.path("dropped").and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.path("kind_counts.fast_hit").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.path("kind_counts.replay").and_then(Json::as_f64), Some(1.0));
        assert!(j.path("kind_counts.bypass_wait").is_none(), "zero counts omitted");
    }

    #[test]
    fn dump_jsonl_writes_to_io() {
        let mut t = EventTracer::new(2);
        t.push(ev(1, SpecEventKind::NotSpeculative));
        let mut buf = Vec::new();
        t.dump_jsonl(&mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("not_speculative"));
    }
}
