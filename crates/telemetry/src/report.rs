//! Machine-readable run reports: the `--json` / `SIPT_JSON=1` switch and
//! the `results/<name>.json` writer shared by every figure/table binary.

use crate::json::Json;
use std::path::{Path, PathBuf};

/// Whether JSON emission was requested, from the process environment:
/// a literal `--json` argument or `SIPT_JSON=1` (any non-empty value
/// other than `0`).
pub fn json_requested() -> bool {
    if std::env::args().any(|a| a == "--json") {
        return true;
    }
    matches!(std::env::var("SIPT_JSON"), Ok(v) if !v.is_empty() && v != "0")
}

/// Schema version stamped into every report, bumped on breaking changes.
///
/// History:
/// - **1** — `{schema_version, artifact, payload}`.
/// - **2** — adds an optional top-level `parallelism` object (sweep job
///   count, per-worker busy time, wall-clock speedup) and a `worker`
///   field inside per-run `phases` objects.
/// - **3** — adds an optional top-level `resilience` object (captured
///   task `failures[]`, `watchdog_flags[]`, retry/checkpoint counters,
///   fault-injection accounting). Present only when something
///   resilience-related actually happened, so fault-free payloads are
///   byte-identical to v2 payloads modulo the version number.
/// - **4** — additive: the `parallelism` block gains a `prep_cache`
///   object (`{enabled, hits, misses, entries}`) accounting for the
///   workload-preparation cache. Wall-clock bookkeeping only; the
///   scientific `payload` is byte-identical to v3 payloads.
/// - **5** — adds an optional top-level `observability` object: span
///   sink accounting (`spans`), the sampled speculation flight recorder
///   (`flight_recorder` per-run entries with `EventTracer` capacity/
///   recorded/dropped counts and a misprediction breakdown by cause —
///   delta change, superpage, cold TLB). Present only when tracing or
///   the flight recorder is armed, so plain runs stay byte-identical to
///   v4 modulo the version number.
/// - **6** — additive: the `resilience` block gains a
///   `corrupt_checkpoint_lines` counter (checkpoint lines skipped on
///   `--resume` because they failed to parse) and a `supervisor` object
///   (process-isolation sweep accounting: shards, spawns, respawns,
///   worker deaths, quarantines, watchdog kills, drain state; `null`
///   when sweeps ran in the default thread isolation). Fault-free
///   thread-mode payloads are byte-identical to v5 modulo the version
///   number.
pub const REPORT_SCHEMA_VERSION: u32 = 6;

/// Wrap an artifact's payload in the standard report envelope:
/// `{"schema_version", "artifact", "payload"}`.
pub fn envelope(artifact: &str, payload: Json) -> Json {
    Json::obj([
        ("schema_version", Json::u64(u64::from(REPORT_SCHEMA_VERSION))),
        ("artifact", Json::str(artifact)),
        ("payload", payload),
    ])
}

/// Like [`envelope`], with the v2 `parallelism` block when the producer
/// ran sweeps in parallel (pass `None` to omit the key, e.g. for purely
/// analytic artifacts).
pub fn envelope_with_parallelism(artifact: &str, payload: Json, parallelism: Option<Json>) -> Json {
    envelope_full(artifact, payload, parallelism, None, None)
}

/// The full v5 envelope: optional `parallelism` (v2), `resilience`
/// (v3), and `observability` (v5) blocks. `None` omits the key, so
/// clean runs carry no extra weight.
pub fn envelope_full(
    artifact: &str,
    payload: Json,
    parallelism: Option<Json>,
    resilience: Option<Json>,
    observability: Option<Json>,
) -> Json {
    let mut e = envelope(artifact, payload);
    if let Some(p) = parallelism {
        e.insert("parallelism", p);
    }
    if let Some(r) = resilience {
        e.insert("resilience", r);
    }
    if let Some(o) = observability {
        e.insert("observability", o);
    }
    e
}

/// Write `report` to `<dir>/<name>.json` (pretty-rendered), creating
/// `dir` if needed. Returns the written path.
pub fn write_report(dir: &Path, name: &str, report: &Json) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, report.render_pretty())?;
    Ok(path)
}

/// The conventional output directory (`results/` under the current
/// working directory, overridable with `SIPT_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("SIPT_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn envelope_has_stable_keys() {
        let e = envelope("fig01", Json::obj([("rows", Json::arr([]))]));
        let parsed = parse(&e.render()).unwrap();
        assert_eq!(parsed.path("schema_version").and_then(Json::as_f64), Some(6.0));
        assert_eq!(parsed.path("artifact").and_then(Json::as_str), Some("fig01"));
        assert!(parsed.path("payload.rows").is_some());
    }

    #[test]
    fn parallelism_block_is_optional() {
        let without = envelope_with_parallelism("fig02", Json::u64(1), None);
        assert!(parse(&without.render()).unwrap().path("parallelism").is_none());
        let with = envelope_with_parallelism(
            "fig02",
            Json::u64(1),
            Some(Json::obj([("jobs", Json::u64(4))])),
        );
        let parsed = parse(&with.render()).unwrap();
        assert_eq!(parsed.path("parallelism.jobs").and_then(Json::as_f64), Some(4.0));
        assert_eq!(parsed.path("schema_version").and_then(Json::as_f64), Some(6.0));
    }

    #[test]
    fn resilience_block_is_optional_and_v3() {
        let clean = envelope_full("fig02", Json::u64(1), None, None, None);
        assert!(parse(&clean.render()).unwrap().path("resilience").is_none());
        let faulty = envelope_full(
            "fig02",
            Json::u64(1),
            None,
            Some(Json::obj([("failures", Json::arr([Json::obj([("task", Json::u64(3))])]))])),
            None,
        );
        let parsed = parse(&faulty.render()).unwrap();
        assert_eq!(parsed.path("schema_version").and_then(Json::as_f64), Some(6.0));
        assert!(parsed.path("resilience.failures").is_some());
    }

    #[test]
    fn observability_block_is_optional_and_v5() {
        let clean = envelope_full("fig02", Json::u64(1), None, None, None);
        assert!(parse(&clean.render()).unwrap().path("observability").is_none());
        let traced = envelope_full(
            "fig02",
            Json::u64(1),
            None,
            None,
            Some(Json::obj([("spans", Json::obj([("events", Json::u64(12))]))])),
        );
        let parsed = parse(&traced.render()).unwrap();
        assert_eq!(parsed.path("schema_version").and_then(Json::as_f64), Some(6.0));
        assert_eq!(parsed.path("observability.spans.events").and_then(Json::as_f64), Some(12.0));
    }

    #[test]
    fn write_report_creates_dir_and_file() {
        let dir = std::env::temp_dir().join(format!("sipt-telemetry-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = envelope("smoke", Json::u64(7));
        let path = write_report(&dir.join("nested"), "smoke", &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse(&text).unwrap(), report);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
