//! A lightweight named-metrics registry: monotonic counters, gauges, and
//! log2 histograms, with snapshot / diff / merge.
//!
//! Names are `&'static str` dot-paths by convention (`l1.replays`,
//! `runner.phase.measure_ms`). The registry is deliberately simple and
//! single-threaded — the simulator is single-threaded per core, and
//! per-core registries [`MetricsSnapshot::merge`] into machine-level
//! ones, mirroring how production metric pipelines aggregate shards.

use crate::hist::Log2Histogram;
use crate::json::Json;
use std::collections::BTreeMap;

/// The registry of live metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Log2Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named monotonic counter (creating it at 0).
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Increment the named counter by one.
    pub fn incr(&mut self, name: &'static str) {
        self.count(name, 1);
    }

    /// Set the named gauge to `value` (creating it).
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Record `value` into the named histogram (creating it).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Record a signed value's magnitude into the named histogram.
    pub fn observe_magnitude(&mut self, name: &'static str, value: i64) {
        self.histograms.entry(name).or_default().record_magnitude(value);
    }

    /// Install a pre-accumulated histogram under `name`, replacing any
    /// existing one. Producers that accumulate into a plain
    /// [`Log2Histogram`] on their hot path (avoiding the per-record map
    /// lookup) use this to materialize the registry lazily; the snapshot
    /// is indistinguishable from one built with per-record
    /// [`MetricsRegistry::observe`] calls.
    pub fn set_histogram(&mut self, name: &'static str, hist: Log2Histogram) {
        self.histograms.insert(name, hist);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Borrow a histogram, if any values were observed.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// An immutable snapshot of everything currently registered.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(&k, &v)| (k.to_owned(), v)).collect(),
            gauges: self.gauges.iter().map(|(&k, &v)| (k.to_owned(), v)).collect(),
            histograms: self.histograms.iter().map(|(&k, v)| (k.to_owned(), v.clone())).collect(),
        }
    }

    /// Reset all metrics (e.g. after warmup), keeping nothing.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

/// A point-in-time copy of a registry's contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Log2Histogram>,
}

impl MetricsSnapshot {
    /// Counters/histograms accumulated since `earlier` (gauges keep the
    /// later value). Counters absent from `self` are treated as 0 — the
    /// diff saturates rather than underflowing.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                (k.clone(), v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let d = match earlier.histograms.get(k) {
                    Some(e) => v.diff(e),
                    None => v.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        MetricsSnapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// Merge another snapshot into this one: counters add, histograms
    /// merge, gauges take the other's value on collision (last writer
    /// wins, as when aggregating per-core shards in order).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// JSON form: `{"counters": {...}, "gauges": {...}, "histograms":
    /// {...}}` with histogram bodies from
    /// [`Log2Histogram::to_json`].
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("counters", Json::obj(self.counters.iter().map(|(k, &v)| (k.clone(), Json::u64(v))))),
            ("gauges", Json::obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::num(v))))),
            (
                "histograms",
                Json::obj(self.histograms.iter().map(|(k, h)| (k.clone(), h.to_json()))),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_register_lazily() {
        let mut r = MetricsRegistry::new();
        r.incr("l1.accesses");
        r.count("l1.accesses", 4);
        r.gauge("l1.fast_fraction", 0.9);
        r.observe("l1.replay_latency", 6);
        r.observe_magnitude("idb.delta", -3);
        assert_eq!(r.counter("l1.accesses"), 5);
        assert_eq!(r.counter("untouched"), 0);
        assert_eq!(r.gauge_value("l1.fast_fraction"), Some(0.9));
        assert_eq!(r.histogram("l1.replay_latency").unwrap().count(), 1);
        assert_eq!(r.histogram("idb.delta").unwrap().max(), Some(3));
        r.reset();
        assert_eq!(r.counter("l1.accesses"), 0);
        assert!(r.histogram("l1.replay_latency").is_none());
    }

    #[test]
    fn snapshot_diff_isolates_an_interval() {
        let mut r = MetricsRegistry::new();
        r.count("x", 10);
        r.observe("h", 4);
        let warm = r.snapshot();
        r.count("x", 7);
        r.count("y", 2);
        r.observe("h", 8);
        let end = r.snapshot();
        let d = end.diff(&warm);
        assert_eq!(d.counters["x"], 7);
        assert_eq!(d.counters["y"], 2);
        assert_eq!(d.histograms["h"].count(), 1);
        assert_eq!(d.histograms["h"].sum(), 8);
    }

    #[test]
    fn merge_aggregates_shards() {
        let mut a = MetricsRegistry::new();
        a.count("c", 1);
        a.observe("h", 2);
        a.gauge("g", 0.25);
        let mut b = MetricsRegistry::new();
        b.count("c", 2);
        b.count("only_b", 5);
        b.observe("h", 1024);
        b.gauge("g", 0.75);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["c"], 3);
        assert_eq!(merged.counters["only_b"], 5);
        assert_eq!(merged.histograms["h"].count(), 2);
        assert_eq!(merged.gauges["g"], 0.75);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut r = MetricsRegistry::new();
        r.count("a.b", 3);
        r.gauge("g", 1.5);
        r.observe("h", 100);
        let j = r.snapshot().to_json();
        let parsed = crate::json::parse(&j.render()).unwrap();
        assert_eq!(parsed.path("counters.a.b"), None, "dots are not nesting");
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("a.b")).and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(parsed.path("gauges.g").and_then(Json::as_f64), Some(1.5));
        assert_eq!(
            parsed
                .get("histograms")
                .and_then(|h| h.get("h"))
                .and_then(|h| h.path("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }
}
