//! Log2-bucketed histograms for latency/magnitude distributions.
//!
//! Bucket `b` (for `b ≥ 1`) counts values `v` with `floor(log2(v)) + 1 ==
//! b`, i.e. `2^(b-1) ≤ v < 2^b`; bucket 0 counts zeros. With 65 buckets
//! the full `u64` domain is covered, so recording can never overflow a
//! bucket index. The histogram also tracks exact count/sum/min/max, so
//! means are exact even though bucket boundaries are coarse.

use crate::json::Json;

/// Number of buckets: zeros + one per possible `floor(log2(v))`.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The inclusive `(lo, hi)` value range of bucket `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= BUCKETS`.
    pub fn bucket_range(b: usize) -> (u64, u64) {
        assert!(b < BUCKETS, "bucket {b} out of range");
        if b == 0 {
            (0, 0)
        } else {
            (1u64 << (b - 1), (1u64 << (b - 1)).wrapping_mul(2).wrapping_sub(1))
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a signed sample's magnitude (used for predictor margins and
    /// index deltas, whose sign is tracked separately).
    #[inline]
    pub fn record_magnitude(&mut self, value: i64) {
        self.record(value.unsigned_abs());
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The raw internal state `(buckets, count, sum, min, max)`, exactly
    /// as stored — including the `min = u64::MAX` empty sentinel. Used by
    /// bit-exact persistence (sweep checkpoints).
    pub fn raw_parts(&self) -> (&[u64; BUCKETS], u64, u128, u64, u64) {
        (&self.buckets, self.count, self.sum, self.min, self.max)
    }

    /// Rebuild a histogram from [`Log2Histogram::raw_parts`] output. The
    /// caller is trusted to pass state produced by `raw_parts` (the
    /// checkpoint codec); mismatched fields would corrupt derived stats
    /// but cannot cause unsafety.
    pub fn from_raw_parts(
        buckets: [u64; BUCKETS],
        count: u64,
        sum: u128,
        min: u64,
        max: u64,
    ) -> Self {
        Self { buckets, count, sum, min, max }
    }

    /// Approximate quantile (0 ≤ q ≤ 1): the upper bound of the bucket
    /// holding the q-th sample. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_range(b).1.min(self.max).max(self.min));
            }
        }
        unreachable!("rank {rank} must be reached with count {}", self.count)
    }

    /// Merge another histogram into this one (e.g. per-core → machine).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Subtract a *previous* snapshot of the same histogram (interval
    /// extraction).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `earlier` is not a prefix of `self`'s history.
    pub fn diff(&self, earlier: &Log2Histogram) -> Log2Histogram {
        debug_assert!(self.count >= earlier.count, "diff against a later snapshot");
        let mut out = Log2Histogram::new();
        for (i, (a, b)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            out.buckets[i] = a.saturating_sub(*b);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        // min/max cannot be un-merged exactly; keep the later window's
        // bounds (they bound the interval's true extrema).
        out.min = self.min;
        out.max = self.max;
        out
    }

    /// JSON form: exact summary stats plus the non-empty buckets as
    /// `[bucket_lo, count]` pairs (sparse, so 65 mostly-empty buckets do
    /// not bloat reports).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::u64(self.count)),
            ("sum", Json::num(self.sum as f64)),
            ("mean", Json::num(self.mean())),
            ("min", self.min().map_or(Json::Null, Json::u64)),
            ("max", self.max().map_or(Json::Null, Json::u64)),
            ("p50", self.quantile(0.5).map_or(Json::Null, Json::u64)),
            ("p99", self.quantile(0.99).map_or(Json::Null, Json::u64)),
            (
                "buckets",
                Json::arr(
                    self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(b, &n)| {
                        Json::arr([Json::u64(Self::bucket_range(b).0), Json::u64(n)])
                    }),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(7), 3);
        assert_eq!(Log2Histogram::bucket_of(8), 4);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        for b in 1..BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_range(b);
            assert_eq!(Log2Histogram::bucket_of(lo), b, "lo of bucket {b}");
            assert_eq!(Log2Histogram::bucket_of(hi), b, "hi of bucket {b}");
            if lo > 1 {
                assert_eq!(Log2Histogram::bucket_of(lo - 1), b - 1);
            }
        }
    }

    #[test]
    fn records_exact_summary_stats() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 110);
        assert!((h.mean() - 110.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.buckets()[0], 1); // the zero
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 1); // 4
        assert_eq!(h.buckets()[7], 1); // 100 ∈ [64, 127]
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        let j = h.to_json();
        assert_eq!(j.path("count").and_then(Json::as_f64), Some(0.0));
        assert_eq!(j.path("min"), Some(&Json::Null));
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Bucket-upper-bound estimates: p50 ∈ [500, 1023] capped at max.
        assert!((500..=1000).contains(&p50), "p50 = {p50}");
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn merge_adds_and_diff_subtracts() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [2u64, 1000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.sum(), 15 + 1002);
        assert_eq!(merged.min(), Some(1));
        assert_eq!(merged.max(), Some(1000));
        let back = merged.diff(&a);
        assert_eq!(back.count(), b.count());
        assert_eq!(back.sum(), b.sum());
        assert_eq!(back.buckets()[2], 1); // the 2
        assert_eq!(back.buckets()[10], 1); // the 1000
    }

    #[test]
    fn magnitude_recording_folds_sign() {
        let mut h = Log2Histogram::new();
        h.record_magnitude(-37);
        h.record_magnitude(37);
        h.record_magnitude(i64::MIN);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets()[6], 2); // |±37| ∈ [32, 63]
        assert_eq!(h.max(), Some(1u64 << 63));
    }

    #[test]
    fn json_buckets_are_sparse_lo_count_pairs() {
        let mut h = Log2Histogram::new();
        h.record(6);
        h.record(6);
        let j = h.to_json();
        let buckets = j.path("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].as_arr().unwrap()[0].as_f64(), Some(4.0));
        assert_eq!(buckets[0].as_arr().unwrap()[1].as_f64(), Some(2.0));
        // Round-trip through the in-crate parser.
        let parsed = crate::json::parse(&j.render()).unwrap();
        assert_eq!(parsed, j);
    }
}
