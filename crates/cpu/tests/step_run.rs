//! Differential tests for the engines' run fast-forward
//! (`step_run`): stepping a stream one instruction at a time must be
//! bit-identical to feeding its non-memory runs through `step_run`,
//! under every observable — final counts *and* the cycle at which every
//! memory access is issued (which exposes the register/port/retire state
//! the fast path advances in closed form).

use proptest::prelude::*;
use sipt_cpu::*;

/// One synthetic instruction: packed meta plus the latency its memory
/// access (if any) will report.
#[derive(Debug, Clone, Copy)]
struct SynthInst {
    meta: u32,
    mem_latency: u64,
    port_slots: u32,
}

/// One instruction biased toward the shapes that matter: long ALU runs
/// with disjoint registers (fast-forwardable), tight dependence chains
/// (RAW fallback), and occasional long-latency loads that push
/// retirement far ahead of fetch — the state in which the fast path
/// actually fires.
fn inst_strategy() -> impl Strategy<Value = SynthInst> {
    (
        (0u8..8, 0u8..4, 1u32..=2), // shape selector, latency selector, port slots
        (
            proptest::option::of(0u8..64),       // dst
            proptest::option::of(0u8..64),       // src0
            proptest::option::of(0u8..64),       // src1
            proptest::option::of(any::<bool>()), // mem: None | Some(is_store)
            1u64..=8,                            // exec latency
        ),
    )
        .prop_map(|((shape, lsel, port_slots), (dst, s0, s1, mem, lat))| {
            let inst = match shape {
                // Arbitrary mix, memory included.
                0..=3 => Inst {
                    pc: 0x1000,
                    dst,
                    srcs: [s0, s1],
                    mem: mem.map(|is_store| MemRef {
                        op: if is_store { MemOp::Store } else { MemOp::Load },
                        va: sipt_mem::VirtAddr::new(0x10_0000),
                    }),
                    exec_latency: lat,
                },
                // Dense ALU filler with disjoint registers: RAW-free runs.
                4..=6 => {
                    let r = s0.unwrap_or(0) % 8;
                    let mut i = Inst::alu(0x2000, 32 + r, [Some(r), None]);
                    i.exec_latency = 1 + lat % 3;
                    i
                }
                // Tight dependence chain: reads a just-written register.
                _ => Inst::alu(0x3000, 5, [Some(5), None]),
            };
            let mem_latency = [2u64, 4, 40, 300][lsel as usize];
            SynthInst { meta: pack_inst_meta(&inst), mem_latency, port_slots }
        })
}

fn stream_strategy() -> impl Strategy<Value = Vec<SynthInst>> {
    proptest::collection::vec(inst_strategy(), 0..400)
}

/// Replay `stream` on both engine variants. `runs = false` steps every
/// instruction; `runs = true` batches maximal non-memory runs through
/// `step_run`. Returns the final counts and every memory issue cycle.
fn replay_ooo(stream: &[SynthInst], runs: bool) -> (CoreResult, Vec<u64>) {
    let mut engine = OooEngine::new(OooConfig::default());
    let mut issued = Vec::new();
    let mut i = 0;
    while i < stream.len() {
        if runs && !meta_has_mem(stream[i].meta) {
            let start = i;
            while i < stream.len() && !meta_has_mem(stream[i].meta) {
                i += 1;
            }
            let metas: Vec<u32> = stream[start..i].iter().map(|s| s.meta).collect();
            engine.step_run(&metas);
            continue;
        }
        let s = stream[i];
        let (dst, srcs, mem_store, lat) = unpack_meta_fields(s.meta);
        engine.step(dst, srcs, mem_store, lat, |now| {
            issued.push(now);
            MemResponse { latency: s.mem_latency, port_slots: s.port_slots }
        });
        i += 1;
    }
    (engine.finish(), issued)
}

fn replay_inorder(stream: &[SynthInst], runs: bool) -> (CoreResult, Vec<u64>) {
    let mut engine = InOrderEngine::new(InOrderConfig::default());
    let mut issued = Vec::new();
    let mut i = 0;
    while i < stream.len() {
        if runs && !meta_has_mem(stream[i].meta) {
            let start = i;
            while i < stream.len() && !meta_has_mem(stream[i].meta) {
                i += 1;
            }
            let metas: Vec<u32> = stream[start..i].iter().map(|s| s.meta).collect();
            engine.step_run(&metas);
            continue;
        }
        let s = stream[i];
        let (dst, srcs, mem_store, lat) = unpack_meta_fields(s.meta);
        engine.step(dst, srcs, mem_store, lat, |now| {
            issued.push(now);
            MemResponse { latency: s.mem_latency, port_slots: s.port_slots }
        });
        i += 1;
    }
    (engine.finish(), issued)
}

proptest! {
    #[test]
    fn ooo_step_run_matches_per_inst(stream in stream_strategy()) {
        let (a, ia) = replay_ooo(&stream, false);
        let (b, ib) = replay_ooo(&stream, true);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ia, ib);
    }

    #[test]
    fn inorder_step_run_matches_per_inst(stream in stream_strategy()) {
        let (a, ia) = replay_inorder(&stream, false);
        let (b, ib) = replay_inorder(&stream, true);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ia, ib);
    }
}

/// The canonical fast-path scenario — a DRAM-class miss pushing
/// retirement hundreds of cycles ahead of an ALU stream beneath it —
/// must stay bit-identical (and the post-run load exposes any drift in
/// register/retire/fetch state).
#[test]
fn post_miss_alu_run_is_exact() {
    let mut stream = vec![SynthInst {
        meta: pack_inst_meta(&Inst::load(0x10, 1, None, sipt_mem::VirtAddr::new(0x1000))),
        mem_latency: 400,
        port_slots: 1,
    }];
    for i in 0..300u64 {
        let mut inst = Inst::alu(0x100 + i, (8 + (i % 16)) as u8, [Some((i % 8) as u8), None]);
        inst.exec_latency = 1 + i % 3;
        stream.push(SynthInst { meta: pack_inst_meta(&inst), mem_latency: 2, port_slots: 1 });
    }
    stream.push(SynthInst {
        meta: pack_inst_meta(&Inst::load(0x20, 2, Some(17), sipt_mem::VirtAddr::new(0x2000))),
        mem_latency: 2,
        port_slots: 1,
    });
    let (a, ia) = replay_ooo(&stream, false);
    let (b, ib) = replay_ooo(&stream, true);
    assert_eq!(a, b);
    assert_eq!(ia, ib);
    let (a, ia) = replay_inorder(&stream, false);
    let (b, ib) = replay_inorder(&stream, true);
    assert_eq!(a, b);
    assert_eq!(ia, ib);
}

/// Chunking boundary: runs longer than the ROB must still be exact.
#[test]
fn run_longer_than_rob_is_exact() {
    let mut stream = Vec::new();
    for i in 0..1000u64 {
        stream.push(SynthInst {
            meta: pack_inst_meta(&Inst::alu(0x100 + i, (i % 64) as u8, [None, None])),
            mem_latency: 2,
            port_slots: 1,
        });
    }
    let (a, ia) = replay_ooo(&stream, false);
    let (b, ib) = replay_ooo(&stream, true);
    assert_eq!(a, b);
    assert_eq!(ia, ib);
}
