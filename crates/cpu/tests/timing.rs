//! Cross-model timing tests: the OOO and in-order models must order
//! correctly against each other and respond sanely to memory behaviour.

use proptest::prelude::*;
use sipt_cpu::*;
use sipt_mem::VirtAddr;

fn mixed_trace(n: usize, mem_every: usize) -> Vec<Inst> {
    (0..n)
        .map(|i| {
            if i % mem_every == 0 {
                Inst::load(
                    0x1000 + (i % 32) as u64 * 4,
                    (i % 8) as u8,
                    None,
                    VirtAddr::new(0x10_0000 + (i as u64 * 64) % (1 << 20)),
                )
            } else {
                Inst::alu(
                    0x2000 + (i % 16) as u64 * 4,
                    (8 + i % 8) as u8,
                    [Some(((i + 1) % 8) as u8), None],
                )
            }
        })
        .collect()
}

#[test]
fn ooo_is_never_slower_than_in_order() {
    for mem_every in [2usize, 4, 8] {
        for lat in [2u64, 4, 20, 100] {
            let trace = mixed_trace(4000, mem_every);
            let mut m1 = FixedMemory { latency: lat };
            let mut m2 = FixedMemory { latency: lat };
            let ooo = simulate_ooo(OooConfig::default(), trace.clone(), &mut m1);
            let io = simulate_inorder(InOrderConfig::default(), trace, &mut m2);
            assert!(
                ooo.cycles <= io.cycles,
                "mem_every={mem_every} lat={lat}: OOO {} vs in-order {}",
                ooo.cycles,
                io.cycles
            );
        }
    }
}

#[test]
fn both_models_scale_with_memory_latency() {
    let trace = mixed_trace(4000, 3);
    for sim in [true, false] {
        let run = |lat| {
            let mut m = FixedMemory { latency: lat };
            if sim {
                simulate_ooo(OooConfig::default(), trace.clone(), &mut m).cycles
            } else {
                simulate_inorder(InOrderConfig::default(), trace.clone(), &mut m).cycles
            }
        };
        let fast = run(2);
        let slow = run(50);
        assert!(slow > fast, "latency must cost cycles ({fast} vs {slow})");
    }
}

#[test]
fn exec_latency_is_respected() {
    // A chain of 100 dependent 3-cycle ops takes >= 300 cycles anywhere.
    let trace: Vec<Inst> = (0..100)
        .map(|i| {
            let mut inst = Inst::alu(i, 1, [Some(1), None]);
            inst.exec_latency = 3;
            inst
        })
        .collect();
    let mut m = FixedMemory { latency: 1 };
    let ooo = simulate_ooo(OooConfig::default(), trace.clone(), &mut m);
    assert!(ooo.cycles >= 300, "{}", ooo.cycles);
    let io = simulate_inorder(InOrderConfig::default(), trace, &mut m);
    assert!(io.cycles >= 300, "{}", io.cycles);
}

proptest! {
    /// Cycles are positive, IPC bounded by width, and instruction counts
    /// exact, for arbitrary traces.
    #[test]
    fn core_results_are_sane(n in 1usize..2000, mem_every in 1usize..16, lat in 1u64..200) {
        let trace = mixed_trace(n, mem_every);
        let mut m = FixedMemory { latency: lat };
        let r = simulate_ooo(OooConfig::default(), trace.clone(), &mut m);
        prop_assert_eq!(r.instructions, n as u64);
        prop_assert!(r.cycles >= 1);
        prop_assert!(r.ipc() <= 6.01);
        let mut m2 = FixedMemory { latency: lat };
        let r2 = simulate_inorder(InOrderConfig::default(), trace, &mut m2);
        prop_assert_eq!(r2.instructions, n as u64);
        prop_assert!(r2.ipc() <= 2.01);
    }

    /// The ROB cap never *helps*: smaller windows are never faster.
    #[test]
    fn rob_monotonicity(n in 64usize..512, lat in 10u64..100) {
        let trace = mixed_trace(n, 2);
        let cycles = |rob| {
            let mut m = FixedMemory { latency: lat };
            simulate_ooo(OooConfig { rob, ..OooConfig::default() }, trace.clone(), &mut m).cycles
        };
        prop_assert!(cycles(8) >= cycles(64));
        prop_assert!(cycles(64) >= cycles(192));
    }
}
