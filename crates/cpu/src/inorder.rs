//! In-order core timing model (paper Table II: 2-wide, 3 GHz, two-level
//! cache hierarchy).
//!
//! A scoreboarded in-order pipeline: instructions issue strictly in
//! program order, up to `width` per cycle, stalling at use when a source
//! register is not yet ready. Loads expose their full memory latency to
//! dependents; there is no ROB to hide misses behind, which is why the
//! paper finds in-order cores prefer larger L1s (capacity) over the OOO
//! cores' preference for lower latency.

use crate::ooo::RUN_FAST_MIN;
use crate::trace::{
    meta_exec_latency, meta_reg_slot, CoreResult, Inst, MemOp, MemResponse, MemoryPath,
    META_HAS_MEM, NUM_REGS,
};

/// In-order core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InOrderConfig {
    /// Issue width.
    pub width: u32,
    /// L1 data ports.
    pub mem_ports: u32,
}

impl Default for InOrderConfig {
    fn default() -> Self {
        Self { width: 2, mem_ports: 1 }
    }
}

/// Simulate an instruction stream on the in-order model.
pub fn simulate_inorder<I, M>(config: InOrderConfig, insts: I, mem: &mut M) -> CoreResult
where
    I: IntoIterator<Item = Inst>,
    M: MemoryPath + ?Sized,
{
    let mut engine = InOrderEngine::new(config);
    for inst in insts {
        let mem_store = inst.mem.map(|m| m.op == MemOp::Store);
        engine.step(inst.dst, inst.srcs, mem_store, inst.exec_latency, |now| {
            mem.access(inst.pc, inst.mem.expect("closure only runs for memory insts"), now)
        });
    }
    engine.finish()
}

/// The incremental form of [`simulate_inorder`], mirroring
/// [`crate::OooEngine`]: identical scoreboard algebra with the loop state
/// in a struct so block-replay kernels can step decoded SoA instructions.
/// [`simulate_inorder`] is a thin wrapper over this type.
#[derive(Debug)]
pub struct InOrderEngine {
    width: u64,
    ports: u64,
    // Index `NUM_REGS` is an always-zero sentinel slot so absent
    // operands/destinations index the array unconditionally instead of
    // branching on presence (see [`crate::OooEngine`]).
    reg_ready: [u64; NUM_REGS + 1],
    // `issue_slot` (1/width-cycle units, strictly in order) tracked as
    // quotient/remainder against `width` (`issue_slot = q*width + r`,
    // `r < width`), so the per-step `slot / width` needs no divide: the
    // slot either jumps to an exact multiple of `width` or advances by
    // one with carry.
    issue_q: u64,
    issue_r: u64,
    // `port_slot` (1/ports-cycle units) in the same (q, r) form.
    port_q: u64,
    port_r: u64,
    last_issue: u64,
    finish: u64,
    n: u64,
    mem_ops: u64,
    fast_fwd_insts: u64,
}

impl InOrderEngine {
    /// Fresh engine state for one instruction stream.
    pub fn new(config: InOrderConfig) -> Self {
        assert!(config.width > 0 && config.mem_ports > 0);
        Self {
            width: config.width as u64,
            ports: config.mem_ports as u64,
            reg_ready: [0u64; NUM_REGS + 1],
            issue_q: 0,
            issue_r: 0,
            port_q: 0,
            port_r: 0,
            last_issue: 0,
            finish: 0,
            n: 0,
            mem_ops: 0,
            fast_fwd_insts: 0,
        }
    }

    /// Instructions advanced through the closed-form run fast-forward
    /// (diagnostic: how much of the stream the precondition captured).
    pub fn fast_fwd_insts(&self) -> u64 {
        self.fast_fwd_insts
    }

    /// Advance the model by one decoded instruction; same contract as
    /// [`crate::OooEngine::step`].
    #[inline(always)]
    pub fn step<F>(
        &mut self,
        dst: Option<u8>,
        srcs: [Option<u8>; 2],
        mem_store: Option<bool>,
        exec_latency: u64,
        mut mem: F,
    ) where
        F: FnMut(u64) -> MemResponse,
    {
        // Sources must be ready at issue (stall-at-use), and issue is in
        // program order. Absent operands read the always-zero sentinel
        // slot — no presence branches.
        let s0 = srcs[0].map_or(NUM_REGS, usize::from);
        let s1 = srcs[1].map_or(NUM_REGS, usize::from);
        let ready = self.last_issue.max(self.reg_ready[s0]).max(self.reg_ready[s1]);
        // `slot = (ready*width).max(issue_slot + 1)`, `issue = slot/width`
        // in (q, r) form: the max takes the left arm iff `ready > q` (the
        // slot lands on an exact multiple of `width`, remainder 0 — so the
        // carry is vacuously false and `issue = q` in both arms); otherwise
        // the slot advances by one with carry into the quotient. Selects,
        // not branches: the jump/advance pattern is workload data.
        let jump = ready > self.issue_q;
        let r = if jump { 0 } else { self.issue_r + 1 };
        let carry = r == self.width;
        let q = (if jump { ready } else { self.issue_q }) + u64::from(carry);
        self.issue_q = q;
        self.issue_r = if carry { 0 } else { r };
        let mut issue = q;

        let complete = match mem_store {
            None => issue + exec_latency,
            Some(is_store) => {
                self.mem_ops += 1;
                // Also wait for a free L1 port: the same (q, r) algebra
                // against `ports` for `pslot`/`port_slot`.
                let pjump = issue > self.port_q;
                let pr = if pjump { 0 } else { self.port_r + 1 };
                let pcarry = pr == self.ports;
                let pq = (if pjump { issue } else { self.port_q }) + u64::from(pcarry);
                self.port_q = pq;
                self.port_r = if pcarry { 0 } else { pr };
                issue = pq;
                // `slot = slot.max(issue*width)`: the port wait either
                // pushed `issue` past the issue quotient (slot jumps to a
                // multiple of `width`) or left it equal (no-op).
                let ajump = issue > self.issue_q;
                self.issue_q = if ajump { issue } else { self.issue_q };
                self.issue_r = if ajump { 0 } else { self.issue_r };
                let response = mem(issue);
                self.port_r += (response.port_slots.saturating_sub(1)) as u64;
                while self.port_r >= self.ports {
                    self.port_r -= self.ports;
                    self.port_q += 1;
                }
                issue + if is_store { 1 } else { response.latency }
            }
        };

        // Absent destinations write the sentinel slot, re-zeroed
        // unconditionally.
        let d = dst.map_or(NUM_REGS, usize::from);
        self.reg_ready[d] = complete;
        self.reg_ready[NUM_REGS] = 0;
        self.last_issue = issue;
        self.finish = self.finish.max(complete);
        self.n += 1;
    }

    /// Advance the model over a run of non-memory instructions given as
    /// packed metadata words, bit-identical to calling
    /// [`InOrderEngine::step`] once per word — the in-order counterpart
    /// of [`crate::OooEngine::step_run`].
    ///
    /// The scoreboard invariant `last_issue ≤ issue_q` always holds (the
    /// last issue *is* the previous quotient), so a chunk fast-forwards
    /// whenever it is RAW-free and every pre-run source-ready time is at
    /// or below the current issue quotient: no issue ever jumps, and the
    /// issue staircase plus completion writes collapse to one
    /// branch-light pass with no register reads at all.
    ///
    /// # Panics
    ///
    /// Debug-asserts that no word references memory.
    pub fn step_run(&mut self, metas: &[u32]) {
        // Chunked so one RAW hazard doesn't force the whole run onto the
        // slim path.
        for chunk in metas.chunks(64) {
            if chunk.len() < RUN_FAST_MIN || !self.try_run_fast(chunk) {
                for &meta in chunk {
                    let (dst, srcs, mem_store, lat) = crate::trace::unpack_meta_fields(meta);
                    debug_assert!(mem_store.is_none(), "step_run is for non-memory runs");
                    self.step(dst, srcs, None, lat, |_| -> MemResponse {
                        unreachable!("non-memory instruction")
                    });
                }
            }
        }
    }

    /// Attempt the fast-forward over one non-memory chunk; `false` (with
    /// nothing mutated) when the precondition fails.
    fn try_run_fast(&mut self, metas: &[u32]) -> bool {
        let mut written = 0u64;
        let mut src_max = 0u64;
        for &meta in metas {
            debug_assert_eq!(meta & META_HAS_MEM, 0, "step_run is for non-memory runs");
            let s0 = meta_reg_slot(meta, 7, 13);
            let s1 = meta_reg_slot(meta, 14, 20);
            let reads =
                (((s0 < NUM_REGS) as u64) << (s0 & 63)) | (((s1 < NUM_REGS) as u64) << (s1 & 63));
            if written & reads != 0 {
                return false;
            }
            src_max = src_max.max(self.reg_ready[s0]).max(self.reg_ready[s1]);
            let d = meta_reg_slot(meta, 0, 6);
            written |= ((d < NUM_REGS) as u64) << (d & 63);
        }
        // `ready = max(last_issue, sources)`: `last_issue` equals the
        // previous quotient, so with every source at or below the current
        // quotient no issue jumps — strictly one slot per instruction.
        if src_max > self.issue_q {
            return false;
        }
        let mut q = self.issue_q;
        let mut r = self.issue_r;
        for &meta in metas {
            r += 1;
            let carry = r == self.width;
            q += u64::from(carry);
            r = if carry { 0 } else { r };
            let complete = q + meta_exec_latency(meta);
            let d = meta_reg_slot(meta, 0, 6);
            self.reg_ready[d] = complete;
            self.reg_ready[NUM_REGS] = 0;
            self.finish = self.finish.max(complete);
        }
        self.issue_q = q;
        self.issue_r = r;
        self.last_issue = q;
        self.n += metas.len() as u64;
        self.fast_fwd_insts += metas.len() as u64;
        true
    }

    /// Final counts for the stream stepped so far.
    pub fn finish(&self) -> CoreResult {
        CoreResult { instructions: self.n, cycles: self.finish.max(1), mem_ops: self.mem_ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooo::{simulate_ooo, OooConfig};
    use crate::trace::FixedMemory;
    use sipt_mem::VirtAddr;

    fn loads(n: usize, dependent: bool) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                let addr_reg = if dependent && i > 0 { Some(1u8) } else { None };
                Inst::load(0x100 + i as u64 * 4, 1, addr_reg, VirtAddr::new(0x1000 + i as u64 * 64))
            })
            .collect()
    }

    #[test]
    fn alu_stream_reaches_width() {
        let insts: Vec<Inst> =
            (0..2000).map(|i| Inst::alu(i, (i % 32) as u8, [None, None])).collect();
        let r = simulate_inorder(InOrderConfig::default(), insts, &mut FixedMemory { latency: 1 });
        assert!(r.ipc() > 1.5 && r.ipc() <= 2.01, "ipc = {}", r.ipc());
    }

    #[test]
    fn stall_at_use_not_at_issue() {
        // load r1; many independent ALUs; then a consumer of r1. The ALUs
        // must not wait for the load.
        let mut insts = vec![Inst::load(0, 1, None, VirtAddr::new(0x1000))];
        for i in 0..100u64 {
            insts.push(Inst::alu(4 + i, 2, [Some(3), None]));
        }
        insts.push(Inst::alu(999, 4, [Some(1), None]));
        let r = simulate_inorder(InOrderConfig::default(), insts, &mut FixedMemory { latency: 40 });
        // 102 instructions; if the load stalled issue we would see ~90+
        // cycles; stall-at-use finishes right after the load returns.
        assert!(r.cycles <= 55, "cycles = {}", r.cycles);
    }

    #[test]
    fn in_order_hides_less_than_ooo() {
        // Independent misses: OOO overlaps them across the ROB; in-order
        // is limited to what issues before the first use... with
        // independent loads writing the same dst reg, in-order serializes.
        let mut mem = FixedMemory { latency: 50 };
        let io = simulate_inorder(InOrderConfig::default(), loads(200, true), &mut mem);
        let ooo = simulate_ooo(OooConfig::default(), loads(200, false), &mut mem);
        assert!(io.cycles > ooo.cycles * 3, "in-order {} vs OOO {}", io.cycles, ooo.cycles);
    }

    #[test]
    fn capacity_miss_rate_matters_more_than_latency_when_unhidden() {
        // Direct check of the Fig 3 logic: for an in-order core, 100
        // dependent loads at 3 cycles with a 2% miss (to 200-cycle memory)
        // beat 2-cycle hits with a 10% miss rate.
        #[derive(Debug)]
        struct MissyMemory {
            hit: u64,
            miss_every: usize,
            count: usize,
        }
        impl MemoryPath for MissyMemory {
            fn access(
                &mut self,
                _pc: u64,
                _mem: crate::trace::MemRef,
                _now: u64,
            ) -> crate::trace::MemResponse {
                self.count += 1;
                let lat = if self.count.is_multiple_of(self.miss_every) { 200 } else { self.hit };
                crate::trace::MemResponse::simple(lat)
            }
        }
        let fast_small = simulate_inorder(
            InOrderConfig::default(),
            loads(1000, true),
            &mut MissyMemory { hit: 2, miss_every: 10, count: 0 },
        );
        let slow_big = simulate_inorder(
            InOrderConfig::default(),
            loads(1000, true),
            &mut MissyMemory { hit: 3, miss_every: 50, count: 0 },
        );
        assert!(
            slow_big.cycles < fast_small.cycles,
            "bigger-but-slower {} must beat smaller-but-faster {}",
            slow_big.cycles,
            fast_small.cycles
        );
    }

    #[test]
    fn single_port_bounds_mem_throughput() {
        let r = simulate_inorder(
            InOrderConfig { width: 2, mem_ports: 1 },
            loads(500, false),
            &mut FixedMemory { latency: 2 },
        );
        assert!(r.cycles >= 500, "one load per cycle max, got {}", r.cycles);
    }

    #[test]
    fn counts_are_reported() {
        let r = simulate_inorder(
            InOrderConfig::default(),
            loads(7, false),
            &mut FixedMemory { latency: 1 },
        );
        assert_eq!(r.instructions, 7);
        assert_eq!(r.mem_ops, 7);
    }
}
