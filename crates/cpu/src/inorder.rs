//! In-order core timing model (paper Table II: 2-wide, 3 GHz, two-level
//! cache hierarchy).
//!
//! A scoreboarded in-order pipeline: instructions issue strictly in
//! program order, up to `width` per cycle, stalling at use when a source
//! register is not yet ready. Loads expose their full memory latency to
//! dependents; there is no ROB to hide misses behind, which is why the
//! paper finds in-order cores prefer larger L1s (capacity) over the OOO
//! cores' preference for lower latency.

use crate::trace::{CoreResult, Inst, MemOp, MemoryPath, NUM_REGS};

/// In-order core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InOrderConfig {
    /// Issue width.
    pub width: u32,
    /// L1 data ports.
    pub mem_ports: u32,
}

impl Default for InOrderConfig {
    fn default() -> Self {
        Self { width: 2, mem_ports: 1 }
    }
}

/// Simulate an instruction stream on the in-order model.
pub fn simulate_inorder<I, M>(config: InOrderConfig, insts: I, mem: &mut M) -> CoreResult
where
    I: IntoIterator<Item = Inst>,
    M: MemoryPath + ?Sized,
{
    assert!(config.width > 0 && config.mem_ports > 0);
    let width = config.width as u64;
    let ports = config.mem_ports as u64;
    let mut reg_ready = [0u64; NUM_REGS];
    let mut issue_slot = 0u64; // in 1/width-cycle units, strictly in order
    let mut port_slot = 0u64; // in 1/ports-cycle units
    let mut last_issue = 0u64;
    let mut finish = 0u64;
    let mut n = 0u64;
    let mut mem_ops = 0u64;

    for inst in insts {
        // Sources must be ready at issue (stall-at-use), and issue is in
        // program order.
        let mut ready = last_issue;
        for src in inst.srcs.into_iter().flatten() {
            ready = ready.max(reg_ready[src as usize]);
        }
        let mut slot = (ready * width).max(issue_slot + 1);
        let mut issue = slot / width;

        let complete = match inst.mem {
            None => issue + inst.exec_latency,
            Some(mem_ref) => {
                mem_ops += 1;
                // Also wait for a free L1 port.
                let pslot = (issue * ports).max(port_slot + 1);
                issue = pslot / ports;
                slot = slot.max(issue * width);
                let response = mem.access(inst.pc, mem_ref, issue);
                port_slot = pslot + (response.port_slots.saturating_sub(1)) as u64;
                match mem_ref.op {
                    MemOp::Load => issue + response.latency,
                    MemOp::Store => issue + 1, // write buffer
                }
            }
        };

        if let Some(dst) = inst.dst {
            reg_ready[dst as usize] = complete;
        }
        issue_slot = slot;
        last_issue = issue;
        finish = finish.max(complete);
        n += 1;
    }

    CoreResult { instructions: n, cycles: finish.max(1), mem_ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooo::{simulate_ooo, OooConfig};
    use crate::trace::FixedMemory;
    use sipt_mem::VirtAddr;

    fn loads(n: usize, dependent: bool) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                let addr_reg = if dependent && i > 0 { Some(1u8) } else { None };
                Inst::load(0x100 + i as u64 * 4, 1, addr_reg, VirtAddr::new(0x1000 + i as u64 * 64))
            })
            .collect()
    }

    #[test]
    fn alu_stream_reaches_width() {
        let insts: Vec<Inst> =
            (0..2000).map(|i| Inst::alu(i, (i % 32) as u8, [None, None])).collect();
        let r = simulate_inorder(InOrderConfig::default(), insts, &mut FixedMemory { latency: 1 });
        assert!(r.ipc() > 1.5 && r.ipc() <= 2.01, "ipc = {}", r.ipc());
    }

    #[test]
    fn stall_at_use_not_at_issue() {
        // load r1; many independent ALUs; then a consumer of r1. The ALUs
        // must not wait for the load.
        let mut insts = vec![Inst::load(0, 1, None, VirtAddr::new(0x1000))];
        for i in 0..100u64 {
            insts.push(Inst::alu(4 + i, 2, [Some(3), None]));
        }
        insts.push(Inst::alu(999, 4, [Some(1), None]));
        let r = simulate_inorder(InOrderConfig::default(), insts, &mut FixedMemory { latency: 40 });
        // 102 instructions; if the load stalled issue we would see ~90+
        // cycles; stall-at-use finishes right after the load returns.
        assert!(r.cycles <= 55, "cycles = {}", r.cycles);
    }

    #[test]
    fn in_order_hides_less_than_ooo() {
        // Independent misses: OOO overlaps them across the ROB; in-order
        // is limited to what issues before the first use... with
        // independent loads writing the same dst reg, in-order serializes.
        let mut mem = FixedMemory { latency: 50 };
        let io = simulate_inorder(InOrderConfig::default(), loads(200, true), &mut mem);
        let ooo = simulate_ooo(OooConfig::default(), loads(200, false), &mut mem);
        assert!(io.cycles > ooo.cycles * 3, "in-order {} vs OOO {}", io.cycles, ooo.cycles);
    }

    #[test]
    fn capacity_miss_rate_matters_more_than_latency_when_unhidden() {
        // Direct check of the Fig 3 logic: for an in-order core, 100
        // dependent loads at 3 cycles with a 2% miss (to 200-cycle memory)
        // beat 2-cycle hits with a 10% miss rate.
        #[derive(Debug)]
        struct MissyMemory {
            hit: u64,
            miss_every: usize,
            count: usize,
        }
        impl MemoryPath for MissyMemory {
            fn access(
                &mut self,
                _pc: u64,
                _mem: crate::trace::MemRef,
                _now: u64,
            ) -> crate::trace::MemResponse {
                self.count += 1;
                let lat = if self.count.is_multiple_of(self.miss_every) { 200 } else { self.hit };
                crate::trace::MemResponse::simple(lat)
            }
        }
        let fast_small = simulate_inorder(
            InOrderConfig::default(),
            loads(1000, true),
            &mut MissyMemory { hit: 2, miss_every: 10, count: 0 },
        );
        let slow_big = simulate_inorder(
            InOrderConfig::default(),
            loads(1000, true),
            &mut MissyMemory { hit: 3, miss_every: 50, count: 0 },
        );
        assert!(
            slow_big.cycles < fast_small.cycles,
            "bigger-but-slower {} must beat smaller-but-faster {}",
            slow_big.cycles,
            fast_small.cycles
        );
    }

    #[test]
    fn single_port_bounds_mem_throughput() {
        let r = simulate_inorder(
            InOrderConfig { width: 2, mem_ports: 1 },
            loads(500, false),
            &mut FixedMemory { latency: 2 },
        );
        assert!(r.cycles >= 500, "one load per cycle max, got {}", r.cycles);
    }

    #[test]
    fn counts_are_reported() {
        let r = simulate_inorder(
            InOrderConfig::default(),
            loads(7, false),
            &mut FixedMemory { latency: 1 },
        );
        assert_eq!(r.instructions, 7);
        assert_eq!(r.mem_ops, 7);
    }
}
