//! The trace "ISA": the instruction stream the timing models replay.
//!
//! Mirrors what the paper's modified Macsim trace generator captures per
//! instruction: the PC, register dependences, and — for memory operations
//! — the *virtual* address (physical addresses are produced during
//! simulation by the machine's TLB/page-table, not baked into the trace).

use sipt_mem::VirtAddr;

/// Number of architectural registers in the trace ISA.
pub const NUM_REGS: usize = 64;

/// A register name (0..[`NUM_REGS`]).
pub type Reg = u8;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// A load: the destination register becomes ready when data returns.
    Load,
    /// A store: retires through the write buffer without blocking.
    Store,
}

/// A memory reference attached to an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Load or store.
    pub op: MemOp,
    /// Virtual address accessed.
    pub va: VirtAddr,
}

/// One traced instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Program counter (used to index the SIPT predictors).
    pub pc: u64,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Memory reference, if this is a load/store.
    pub mem: Option<MemRef>,
    /// Execution latency of the ALU portion in cycles (≥ 1).
    pub exec_latency: u64,
}

impl Inst {
    /// A simple ALU instruction `dst = f(src)` with unit latency.
    pub fn alu(pc: u64, dst: Reg, srcs: [Option<Reg>; 2]) -> Self {
        Self { pc, dst: Some(dst), srcs, mem: None, exec_latency: 1 }
    }

    /// A load `dst = [va]`, with the address formed from `addr_reg`.
    pub fn load(pc: u64, dst: Reg, addr_reg: Option<Reg>, va: VirtAddr) -> Self {
        Self {
            pc,
            dst: Some(dst),
            srcs: [addr_reg, None],
            mem: Some(MemRef { op: MemOp::Load, va }),
            exec_latency: 1,
        }
    }

    /// A store `[va] = src`.
    pub fn store(pc: u64, data_reg: Option<Reg>, addr_reg: Option<Reg>, va: VirtAddr) -> Self {
        Self {
            pc,
            dst: None,
            srcs: [data_reg, addr_reg],
            mem: Some(MemRef { op: MemOp::Store, va }),
            exec_latency: 1,
        }
    }

    /// Whether this instruction references memory.
    pub fn is_mem(&self) -> bool {
        self.mem.is_some()
    }
}

/// The response of the memory path to one load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Cycles until the data (load) or completion acknowledgement (store)
    /// is available.
    pub latency: u64,
    /// L1 port slots this access consumed (2 for a replayed SIPT access —
    /// the paper's "contends for the L1 cache port" cost).
    pub port_slots: u32,
}

impl MemResponse {
    /// A plain response occupying one port slot.
    pub fn simple(latency: u64) -> Self {
        Self { latency, port_slots: 1 }
    }
}

/// The memory system as seen by a core's timing model.
pub trait MemoryPath {
    /// Perform the access of `inst` (which must have `mem`) at cycle
    /// `now`; returns its latency and port occupancy.
    fn access(&mut self, pc: u64, mem: MemRef, now: u64) -> MemResponse;
}

/// A fixed-latency memory path for unit tests.
#[derive(Debug, Clone, Copy)]
pub struct FixedMemory {
    /// Latency returned for every access.
    pub latency: u64,
}

impl MemoryPath for FixedMemory {
    fn access(&mut self, _pc: u64, _mem: MemRef, _now: u64) -> MemResponse {
        MemResponse::simple(self.latency)
    }
}

/// Result of simulating an instruction stream on a core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreResult {
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Memory operations executed.
    pub mem_ops: u64,
}

impl CoreResult {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let l = Inst::load(0x10, 3, Some(1), VirtAddr::new(0x1000));
        assert!(l.is_mem());
        assert_eq!(l.mem.unwrap().op, MemOp::Load);
        assert_eq!(l.dst, Some(3));

        let s = Inst::store(0x14, Some(2), Some(1), VirtAddr::new(0x1008));
        assert_eq!(s.mem.unwrap().op, MemOp::Store);
        assert_eq!(s.dst, None);

        let a = Inst::alu(0x18, 4, [Some(3), Some(2)]);
        assert!(!a.is_mem());
        assert_eq!(a.exec_latency, 1);
    }

    #[test]
    fn ipc_math() {
        let r = CoreResult { instructions: 100, cycles: 50, mem_ops: 10 };
        assert_eq!(r.ipc(), 2.0);
        assert_eq!(CoreResult::default().ipc(), 0.0);
    }

    #[test]
    fn mem_response_simple() {
        let r = MemResponse::simple(4);
        assert_eq!(r.port_slots, 1);
        assert_eq!(r.latency, 4);
    }
}
