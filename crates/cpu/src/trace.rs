//! The trace "ISA": the instruction stream the timing models replay.
//!
//! Mirrors what the paper's modified Macsim trace generator captures per
//! instruction: the PC, register dependences, and — for memory operations
//! — the *virtual* address (physical addresses are produced during
//! simulation by the machine's TLB/page-table, not baked into the trace).

use sipt_mem::VirtAddr;

/// Number of architectural registers in the trace ISA.
pub const NUM_REGS: usize = 64;

/// A register name (0..[`NUM_REGS`]).
pub type Reg = u8;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// A load: the destination register becomes ready when data returns.
    Load,
    /// A store: retires through the write buffer without blocking.
    Store,
}

/// A memory reference attached to an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Load or store.
    pub op: MemOp,
    /// Virtual address accessed.
    pub va: VirtAddr,
}

/// One traced instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Program counter (used to index the SIPT predictors).
    pub pc: u64,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Memory reference, if this is a load/store.
    pub mem: Option<MemRef>,
    /// Execution latency of the ALU portion in cycles (≥ 1).
    pub exec_latency: u64,
}

impl Inst {
    /// A simple ALU instruction `dst = f(src)` with unit latency.
    pub fn alu(pc: u64, dst: Reg, srcs: [Option<Reg>; 2]) -> Self {
        Self { pc, dst: Some(dst), srcs, mem: None, exec_latency: 1 }
    }

    /// A load `dst = [va]`, with the address formed from `addr_reg`.
    pub fn load(pc: u64, dst: Reg, addr_reg: Option<Reg>, va: VirtAddr) -> Self {
        Self {
            pc,
            dst: Some(dst),
            srcs: [addr_reg, None],
            mem: Some(MemRef { op: MemOp::Load, va }),
            exec_latency: 1,
        }
    }

    /// A store `[va] = src`.
    pub fn store(pc: u64, data_reg: Option<Reg>, addr_reg: Option<Reg>, va: VirtAddr) -> Self {
        Self {
            pc,
            dst: None,
            srcs: [data_reg, addr_reg],
            mem: Some(MemRef { op: MemOp::Store, va }),
            exec_latency: 1,
        }
    }

    /// Whether this instruction references memory.
    pub fn is_mem(&self) -> bool {
        self.mem.is_some()
    }
}

/// Packed-metadata bit: set when the instruction references memory.
///
/// Compact trace encodings (the structure-of-arrays
/// `MaterializedTrace` in `sipt-workloads`) store everything about an
/// [`Inst`] except its PC and memory address in one `u32`:
///
/// ```text
/// bits  0..=5   dst register        bit  6  dst present
/// bits  7..=12  src0 register       bit 13  src0 present
/// bits 14..=19  src1 register       bit 20  src1 present
/// bit  21       references memory   bit 22  memory op is a store
/// bits 23..=30  exec_latency (1..=255)
/// ```
///
/// Six bits per register is exactly [`NUM_REGS`] = 64; the layout lives
/// here, next to the ISA, so the two stay in sync.
pub const META_HAS_MEM: u32 = 1 << 21;

/// Pack the non-address fields of `inst` into one metadata word.
///
/// # Panics
///
/// Panics if `exec_latency` is outside `1..=255` or a register is out of
/// range — both impossible for generator-produced traces.
pub fn pack_inst_meta(inst: &Inst) -> u32 {
    assert!(
        (1..=255).contains(&inst.exec_latency),
        "exec_latency {} does not fit the packed encoding",
        inst.exec_latency
    );
    let mut m = 0u32;
    if let Some(d) = inst.dst {
        assert!((d as usize) < NUM_REGS, "register {d} out of range");
        m |= (d as u32) | (1 << 6);
    }
    if let Some(s) = inst.srcs[0] {
        assert!((s as usize) < NUM_REGS, "register {s} out of range");
        m |= ((s as u32) << 7) | (1 << 13);
    }
    if let Some(s) = inst.srcs[1] {
        assert!((s as usize) < NUM_REGS, "register {s} out of range");
        m |= ((s as u32) << 14) | (1 << 20);
    }
    if let Some(mem) = inst.mem {
        m |= META_HAS_MEM;
        if mem.op == MemOp::Store {
            m |= 1 << 22;
        }
    }
    m | ((inst.exec_latency as u32) << 23)
}

/// Whether a packed metadata word references memory (i.e. whether
/// [`unpack_inst_meta`] needs a virtual address).
#[inline]
pub fn meta_has_mem(meta: u32) -> bool {
    meta & META_HAS_MEM != 0
}

/// Reconstruct the [`Inst`] encoded by `meta` (from [`pack_inst_meta`])
/// with program counter `pc` and — iff [`meta_has_mem`] — address `va`.
///
/// # Panics
///
/// Panics if the word references memory but no `va` was supplied.
#[inline]
pub fn unpack_inst_meta(meta: u32, pc: u64, va: Option<VirtAddr>) -> Inst {
    let reg = |shift: u32, present: u32| -> Option<Reg> {
        (meta & (1 << present) != 0).then(|| ((meta >> shift) & 0x3F) as Reg)
    };
    let mem = (meta & META_HAS_MEM != 0).then(|| MemRef {
        op: if meta & (1 << 22) != 0 { MemOp::Store } else { MemOp::Load },
        va: va.expect("packed instruction references memory but no VA was supplied"),
    });
    Inst {
        pc,
        dst: reg(0, 6),
        srcs: [reg(7, 13), reg(14, 20)],
        mem,
        exec_latency: ((meta >> 23) & 0xFF) as u64,
    }
}

/// Decode the engine-facing fields of a packed metadata word — `(dst,
/// srcs, Some(is_store)` for memory instructions`, exec_latency)` —
/// without materializing an [`Inst`]. Block-replay kernels feed these
/// straight into [`crate::OooEngine::step`] /
/// [`crate::InOrderEngine::step`].
#[inline(always)]
pub fn unpack_meta_fields(meta: u32) -> (Option<Reg>, [Option<Reg>; 2], Option<bool>, u64) {
    let reg = |shift: u32, present: u32| -> Option<Reg> {
        (meta & (1 << present) != 0).then(|| ((meta >> shift) & 0x3F) as Reg)
    };
    let mem_store = (meta & META_HAS_MEM != 0).then_some(meta & (1 << 22) != 0);
    (reg(0, 6), [reg(7, 13), reg(14, 20)], mem_store, ((meta >> 23) & 0xFF) as u64)
}

/// Decode one operand field of a packed metadata word straight to a
/// register-file *slot*: the register number when the presence bit is
/// set, else the engines' always-zero sentinel slot [`NUM_REGS`]. This is
/// the branchless form of [`unpack_meta_fields`]'s `Option<Reg>` decode,
/// shared by the engines' run fast-forward paths.
#[inline(always)]
pub(crate) fn meta_reg_slot(meta: u32, shift: u32, present: u32) -> usize {
    if meta & (1 << present) != 0 {
        ((meta >> shift) & 0x3F) as usize
    } else {
        NUM_REGS
    }
}

/// Execution latency field of a packed metadata word.
#[inline(always)]
pub(crate) fn meta_exec_latency(meta: u32) -> u64 {
    ((meta >> 23) & 0xFF) as u64
}

/// The response of the memory path to one load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Cycles until the data (load) or completion acknowledgement (store)
    /// is available.
    pub latency: u64,
    /// L1 port slots this access consumed (2 for a replayed SIPT access —
    /// the paper's "contends for the L1 cache port" cost).
    pub port_slots: u32,
}

impl MemResponse {
    /// A plain response occupying one port slot.
    pub fn simple(latency: u64) -> Self {
        Self { latency, port_slots: 1 }
    }
}

/// The memory system as seen by a core's timing model.
pub trait MemoryPath {
    /// Perform the access of `inst` (which must have `mem`) at cycle
    /// `now`; returns its latency and port occupancy.
    fn access(&mut self, pc: u64, mem: MemRef, now: u64) -> MemResponse;
}

/// A fixed-latency memory path for unit tests.
#[derive(Debug, Clone, Copy)]
pub struct FixedMemory {
    /// Latency returned for every access.
    pub latency: u64,
}

impl MemoryPath for FixedMemory {
    fn access(&mut self, _pc: u64, _mem: MemRef, _now: u64) -> MemResponse {
        MemResponse::simple(self.latency)
    }
}

/// Result of simulating an instruction stream on a core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreResult {
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Memory operations executed.
    pub mem_ops: u64,
}

impl CoreResult {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let l = Inst::load(0x10, 3, Some(1), VirtAddr::new(0x1000));
        assert!(l.is_mem());
        assert_eq!(l.mem.unwrap().op, MemOp::Load);
        assert_eq!(l.dst, Some(3));

        let s = Inst::store(0x14, Some(2), Some(1), VirtAddr::new(0x1008));
        assert_eq!(s.mem.unwrap().op, MemOp::Store);
        assert_eq!(s.dst, None);

        let a = Inst::alu(0x18, 4, [Some(3), Some(2)]);
        assert!(!a.is_mem());
        assert_eq!(a.exec_latency, 1);
    }

    #[test]
    fn ipc_math() {
        let r = CoreResult { instructions: 100, cycles: 50, mem_ops: 10 };
        assert_eq!(r.ipc(), 2.0);
        assert_eq!(CoreResult::default().ipc(), 0.0);
    }

    #[test]
    fn packed_meta_roundtrips_every_shape() {
        let samples = [
            Inst::alu(0x18, 4, [Some(3), Some(2)]),
            Inst::alu(0x1C, 63, [None, Some(63)]),
            Inst::load(0x10, 3, Some(1), VirtAddr::new(0x1000)),
            Inst::load(0x10, 0, None, VirtAddr::new(0xFFFF_F000)),
            Inst::store(0x14, Some(2), Some(1), VirtAddr::new(0x1008)),
            Inst::store(0x14, None, None, VirtAddr::new(0x8)),
            Inst {
                pc: u64::MAX,
                dst: Some(16),
                srcs: [Some(16), None],
                mem: Some(MemRef { op: MemOp::Load, va: VirtAddr::new(7) }),
                exec_latency: 255,
            },
            Inst { pc: 0, dst: None, srcs: [None, None], mem: None, exec_latency: 3 },
        ];
        for inst in samples {
            let meta = pack_inst_meta(&inst);
            assert_eq!(meta_has_mem(meta), inst.mem.is_some());
            let back = unpack_inst_meta(meta, inst.pc, inst.mem.map(|m| m.va));
            assert_eq!(back, inst, "meta {meta:#x}");
            // The field-wise decoder must agree with the Inst decoder.
            let (dst, srcs, mem_store, lat) = unpack_meta_fields(meta);
            assert_eq!(dst, inst.dst);
            assert_eq!(srcs, inst.srcs);
            assert_eq!(mem_store, inst.mem.map(|m| m.op == MemOp::Store));
            assert_eq!(lat, inst.exec_latency);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn packed_meta_rejects_oversized_latency() {
        let mut inst = Inst::alu(0, 0, [None, None]);
        inst.exec_latency = 256;
        let _ = pack_inst_meta(&inst);
    }

    #[test]
    #[should_panic(expected = "no VA was supplied")]
    fn unpack_requires_va_for_mem_ops() {
        let meta = pack_inst_meta(&Inst::load(0, 1, None, VirtAddr::new(0)));
        let _ = unpack_inst_meta(meta, 0, None);
    }

    #[test]
    fn mem_response_simple() {
        let r = MemResponse::simple(4);
        assert_eq!(r.port_slots, 1);
        assert_eq!(r.latency, 4);
    }
}
