//! Out-of-order core timing model (paper Table II: 6-wide issue, 192-entry
//! ROB, 3 GHz).
//!
//! A timestamp-dataflow model: each instruction's completion time is the
//! max of its dispatch time (fetch bandwidth + ROB occupancy), its source
//! operands' ready times, and structural constraints (L1 ports), plus its
//! execution/memory latency. Retirement is in order at the commit width.
//! This reproduces the properties the paper's results depend on — latency
//! sensitivity of dependent chains, memory-level parallelism across the
//! ROB window, and L1 port contention from SIPT replays — at a small
//! fraction of a full pipeline model's cost.

use crate::trace::{
    meta_exec_latency, meta_reg_slot, CoreResult, Inst, MemOp, MemResponse, MemoryPath,
    META_HAS_MEM, NUM_REGS,
};

/// Runs shorter than this skip the fast-forward precondition scan: the
/// scan costs about as much as simply stepping a handful of instructions.
/// Callers batching non-memory runs can use the same threshold to decide
/// whether a slice hand-off to [`OooEngine::step_run`] is worth its
/// bookkeeping at all.
pub const RUN_FAST_MIN: usize = 8;

/// OOO core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooConfig {
    /// Fetch/issue/commit width.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// L1 data ports (concurrent accesses per cycle).
    pub mem_ports: u32,
}

impl Default for OooConfig {
    fn default() -> Self {
        Self { width: 6, rob: 192, mem_ports: 2 }
    }
}

/// Simulate an instruction stream on the OOO model.
///
/// `mem` services every load/store (through the machine's TLB + SIPT L1 +
/// lower hierarchy); the model charges the returned latency to the
/// dependence chain and the returned port slots to the L1 ports.
pub fn simulate_ooo<I, M>(config: OooConfig, insts: I, mem: &mut M) -> CoreResult
where
    I: IntoIterator<Item = Inst>,
    M: MemoryPath + ?Sized,
{
    let mut engine = OooEngine::new(config);
    for inst in insts {
        let mem_store = inst.mem.map(|m| m.op == MemOp::Store);
        engine.step(inst.dst, inst.srcs, mem_store, inst.exec_latency, |now| {
            mem.access(inst.pc, inst.mem.expect("closure only runs for memory insts"), now)
        });
    }
    engine.finish()
}

/// The incremental form of [`simulate_ooo`]: the same timestamp-dataflow
/// algebra with the loop state lifted into a struct, so block-replay
/// kernels can feed decoded SoA instructions directly without first
/// materializing `Inst` values. [`simulate_ooo`] is a thin wrapper over
/// this type, keeping the two bit-identical by construction.
#[derive(Debug)]
pub struct OooEngine {
    width: u64,
    rob: usize,
    ports: u64,
    // One extra slot: index `NUM_REGS` is a sentinel that always reads 0,
    // so absent operands/destinations become unconditional array accesses
    // (a select on the index) instead of data-dependent branches — the
    // src/dst presence pattern of a real trace is what branch predictors
    // are worst at.
    reg_ready: [u64; NUM_REGS + 1],
    // Retire times of the last `rob` instructions (for ROB occupancy),
    // kept as a flat ring: instruction `i` reads and then overwrites slot
    // `i % rob`, which is exactly the pop-front/push-back FIFO of a
    // `VecDeque` bounded at `rob` entries — without the deque's wrap
    // arithmetic and branchy len tracking on the hot path.
    rob_retire: Vec<u64>,
    // Commit bookkeeping in 1/width-cycle slots: enforces in-order retire
    // at no more than `width` instructions per cycle. Tracked as
    // quotient/remainder against `width` (`retire_slot = q*width + r`,
    // `r < width`) so the per-step `retire_slot / width` needs no divide:
    // the slot either jumps to an exact multiple of `width` or advances
    // by one, and both cases update (q, r) with adds and compares.
    retire_q: u64,
    retire_r: u64,
    // L1 port bookkeeping: a rolling "next free slot" expressed in
    // port-slot units (width `mem_ports` per cycle), tracked as
    // quotient/remainder against `ports` for the same reason.
    port_q: u64,
    port_r: u64,
    // `i / width` and `i % rob` maintained incrementally (division-free):
    // the fetch-cycle counter with its sub-cycle remainder, and the ring
    // cursor with explicit wraparound.
    fetch_time: u64,
    fetch_rem: u64,
    ring_slot: usize,
    i: u64,
    mem_ops: u64,
    fast_fwd_insts: u64,
}

impl OooEngine {
    /// Fresh engine state for one instruction stream.
    pub fn new(config: OooConfig) -> Self {
        assert!(config.width > 0 && config.rob > 0 && config.mem_ports > 0);
        Self {
            width: config.width as u64,
            rob: config.rob,
            ports: config.mem_ports as u64,
            reg_ready: [0u64; NUM_REGS + 1],
            rob_retire: vec![0u64; config.rob],
            retire_q: 0,
            retire_r: 0,
            port_q: 0,
            port_r: 0,
            fetch_time: 0,
            fetch_rem: 0,
            ring_slot: 0,
            i: 0,
            mem_ops: 0,
            fast_fwd_insts: 0,
        }
    }

    /// Instructions advanced through the closed-form run fast-forward
    /// (diagnostic: how much of the stream the precondition captured).
    pub fn fast_fwd_insts(&self) -> u64 {
        self.fast_fwd_insts
    }

    /// Advance the model by one decoded instruction. Memory instructions
    /// pass `mem_store = Some(is_store)` plus a `mem` closure mapping the
    /// access start cycle to its serviced response; for non-memory
    /// instructions `mem` is never called.
    #[inline(always)]
    pub fn step<F>(
        &mut self,
        dst: Option<u8>,
        srcs: [Option<u8>; 2],
        mem_store: Option<bool>,
        exec_latency: u64,
        mut mem: F,
    ) where
        F: FnMut(u64) -> MemResponse,
    {
        // Dispatch: fetch bandwidth + ROB space. The ring slot holds the
        // retire time of instruction `i - rob` (0 while the ROB is still
        // filling: those slots were never written and the ring starts
        // zeroed, so reading unconditionally equals the old `i >= rob`
        // guard). `fetch_time` is `i / width` maintained incrementally.
        let ring_slot = self.ring_slot;
        let rob_free = self.rob_retire[ring_slot];
        let dispatch = self.fetch_time.max(rob_free);

        // Operand readiness: absent operands read the always-zero sentinel
        // slot (0 never raises the max past `dispatch`), so there is no
        // per-operand presence branch.
        let s0 = srcs[0].map_or(NUM_REGS, usize::from);
        let s1 = srcs[1].map_or(NUM_REGS, usize::from);
        let ready = dispatch.max(self.reg_ready[s0]).max(self.reg_ready[s1]);

        // Execute.
        let complete = match mem_store {
            None => ready + exec_latency,
            Some(is_store) => {
                self.mem_ops += 1;
                // Claim L1 port slot(s): the access starts no earlier than
                // both its operands and a free port. With `port_slot_time`
                // as (q, r): `ready*ports >= port_slot_time` iff
                // `ready > q`, or `ready == q` with no sub-cycle residue.
                // Non-short-circuiting `|` and selects keep the claim
                // branch-free (the outcome is data-dependent).
                let claim = (ready > self.port_q) | ((ready == self.port_q) & (self.port_r == 0));
                let start = if claim { ready } else { self.port_q };
                self.port_q = start;
                self.port_r = if claim { 0 } else { self.port_r };
                let response = mem(start);
                self.port_r += response.port_slots as u64;
                while self.port_r >= self.ports {
                    self.port_r -= self.ports;
                    self.port_q += 1;
                }
                // Stores drain through the write buffer: they occupy the
                // port but do not stall dependents.
                start + if is_store { 1 } else { response.latency }
            }
        };

        // Absent destinations write the sentinel slot, which is re-zeroed
        // unconditionally — one dead store instead of a presence branch.
        let d = dst.map_or(NUM_REGS, usize::from);
        self.reg_ready[d] = complete;
        self.reg_ready[NUM_REGS] = 0;

        // In-order retirement at commit width:
        // `retire_slot = (complete*width).max(retire_slot + 1)`. In the
        // (q, r) form the max takes the left arm iff `complete > q` (then
        // the slot lands on an exact multiple of `width`); otherwise the
        // slot advances by one with carry into the quotient. Selects, not
        // branches: whether a retire jumps tracks the workload's latency
        // pattern and mispredicts heavily as a branch.
        let jump = complete > self.retire_q;
        let mut q = if jump { complete } else { self.retire_q };
        let r = if jump { 0 } else { self.retire_r + 1 };
        let carry = r == self.width;
        q += u64::from(carry);
        self.retire_q = q;
        self.retire_r = if carry { 0 } else { r };
        self.rob_retire[ring_slot] = q;

        // Advance the incremental `i / width` and `i % rob` counters.
        let wrap = self.fetch_rem + 1 == self.width;
        self.fetch_time += u64::from(wrap);
        self.fetch_rem = if wrap { 0 } else { self.fetch_rem + 1 };
        self.ring_slot = if ring_slot + 1 == self.rob { 0 } else { ring_slot + 1 };
        self.i += 1;
    }

    /// Advance the model over a *run* of non-memory instructions given as
    /// packed metadata words (see `pack_inst_meta`), bit-identical to
    /// calling [`OooEngine::step`] once per word.
    ///
    /// When a chunk of the run satisfies a cheap precondition — no
    /// read-after-write inside the chunk, and every completion provably
    /// at or below the current retire quotient (typical beneath a
    /// long-latency miss that has pushed retirement far ahead of fetch) —
    /// the retire/fetch/ring algebra advances in a branchless staircase
    /// instead of the per-instruction select cascade. Chunks that fail
    /// the precondition replay through [`OooEngine::step`].
    ///
    /// # Panics
    ///
    /// Debug-asserts that no word references memory.
    pub fn step_run(&mut self, metas: &[u32]) {
        // Chunk below the ROB size so each ring slot is touched at most
        // once per chunk (reads then writes stay pre-/post-run distinct).
        let max_chunk = (self.rob - 1).clamp(1, 64);
        let mut rest = metas;
        while !rest.is_empty() {
            let k = rest.len().min(max_chunk);
            let (chunk, tail) = rest.split_at(k);
            if chunk.len() < RUN_FAST_MIN || !self.try_run_fast(chunk) {
                self.run_slim(chunk);
            }
            rest = tail;
        }
    }

    /// Exact per-instruction replay of a non-memory chunk through
    /// [`OooEngine::step`] (the fast path's fallback).
    fn run_slim(&mut self, metas: &[u32]) {
        for &meta in metas {
            let (dst, srcs, mem_store, lat) = crate::trace::unpack_meta_fields(meta);
            debug_assert!(mem_store.is_none(), "step_run is for non-memory runs");
            self.step(dst, srcs, None, lat, |_| -> MemResponse {
                unreachable!("non-memory instruction")
            });
        }
    }

    /// Attempt the O(passes) fast-forward over one non-memory chunk.
    /// Returns `false` (having mutated nothing) when the precondition
    /// fails.
    fn try_run_fast(&mut self, metas: &[u32]) -> bool {
        debug_assert!(metas.len() < self.rob);
        let k = metas.len() as u64;
        // --- O(1) pre-reject -----------------------------------------
        // Retire times are monotone nondecreasing in program order, so the
        // ring holds nondecreasing values walking forward from `ring_slot`
        // (the oldest entry): the max over the k slots the chunk will read
        // is simply the last of them. Together with the closed-form fetch
        // endpoint this rejects in O(1) whenever retirement is not far
        // ahead of fetch — the common hit-heavy steady state — before
        // paying the O(k) register scan below.
        let last = self.ring_slot + metas.len() - 1;
        let ring_max = self.rob_retire[if last >= self.rob { last - self.rob } else { last }];
        let f_end = self.fetch_time + (self.fetch_rem + k - 1) / self.width;
        if f_end.max(ring_max) > self.retire_q {
            return false;
        }
        // --- precondition scan (read-only) ---------------------------
        // (1) RAW-free: no instruction reads a register written earlier
        //     in the chunk, so every source's ready time is its pre-run
        //     value; (2) collect the max source-ready over registers
        //     actually read, and the max exec latency.
        let mut written = 0u64;
        let mut src_max = 0u64;
        let mut lat_max = 0u64;
        for &meta in metas {
            debug_assert_eq!(meta & META_HAS_MEM, 0, "step_run is for non-memory runs");
            let s0 = meta_reg_slot(meta, 7, 13);
            let s1 = meta_reg_slot(meta, 14, 20);
            let reads =
                (((s0 < NUM_REGS) as u64) << (s0 & 63)) | (((s1 < NUM_REGS) as u64) << (s1 & 63));
            if written & reads != 0 {
                return false;
            }
            src_max = src_max.max(self.reg_ready[s0]).max(self.reg_ready[s1]);
            let d = meta_reg_slot(meta, 0, 6);
            written |= ((d < NUM_REGS) as u64) << (d & 63);
            lat_max = lat_max.max(meta_exec_latency(meta));
        }
        // Every completion is ≤ max(dispatch bound, source bound) + Lmax.
        // When that stays at or below the current retire quotient, no
        // retire ever jumps: the commit staircase advances exactly one
        // slot per instruction and the whole chunk's algebra is
        // closed-form.
        if f_end.max(ring_max).max(src_max) + lat_max > self.retire_q {
            return false;
        }

        // --- pass 1: dataflow ----------------------------------------
        // Reads pre-run ring values and (RAW-free) pre-run register
        // times; writes completion times. Identical arithmetic to
        // `step`, minus the retire/port selects the precondition proved
        // inert.
        let mut ft = self.fetch_time;
        let mut fr = self.fetch_rem;
        let mut slot = self.ring_slot;
        for &meta in metas {
            let dispatch = ft.max(self.rob_retire[slot]);
            let s0 = meta_reg_slot(meta, 7, 13);
            let s1 = meta_reg_slot(meta, 14, 20);
            let ready = dispatch.max(self.reg_ready[s0]).max(self.reg_ready[s1]);
            let complete = ready + meta_exec_latency(meta);
            let d = meta_reg_slot(meta, 0, 6);
            self.reg_ready[d] = complete;
            self.reg_ready[NUM_REGS] = 0;
            let wrap = fr + 1 == self.width;
            ft += u64::from(wrap);
            fr = if wrap { 0 } else { fr + 1 };
            slot = if slot + 1 == self.rob { 0 } else { slot + 1 };
        }
        // --- pass 2: retire staircase + ring writes ------------------
        let mut q = self.retire_q;
        let mut r = self.retire_r;
        let mut ring = self.ring_slot;
        for _ in 0..metas.len() {
            r += 1;
            let carry = r == self.width;
            q += u64::from(carry);
            r = if carry { 0 } else { r };
            self.rob_retire[ring] = q;
            ring = if ring + 1 == self.rob { 0 } else { ring + 1 };
        }
        self.retire_q = q;
        self.retire_r = r;
        self.ring_slot = ring;
        self.fetch_time = ft;
        self.fetch_rem = fr;
        self.i += k;
        self.fast_fwd_insts += k;
        true
    }

    /// Final counts for the stream stepped so far.
    pub fn finish(&self) -> CoreResult {
        // `retire_slot.div_ceil(width)` in (q, r) form: q, plus one if any
        // sub-cycle residue remains.
        CoreResult {
            instructions: self.i,
            cycles: (self.retire_q + u64::from(self.retire_r > 0)).max(1),
            mem_ops: self.mem_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FixedMemory, MemRef, MemResponse};
    use sipt_mem::VirtAddr;

    fn loads(n: usize, dependent: bool) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                let addr_reg = if dependent && i > 0 { Some(1u8) } else { None };
                Inst::load(0x100 + i as u64 * 4, 1, addr_reg, VirtAddr::new(0x1000 + i as u64 * 64))
            })
            .collect()
    }

    #[test]
    fn independent_loads_overlap_dependent_do_not() {
        let mut mem = FixedMemory { latency: 20 };
        let indep = simulate_ooo(OooConfig::default(), loads(100, false), &mut mem);
        let dep = simulate_ooo(OooConfig::default(), loads(100, true), &mut mem);
        assert!(
            dep.cycles > indep.cycles * 5,
            "dependent {} vs independent {}",
            dep.cycles,
            indep.cycles
        );
        // Dependent chain: ≥ latency per load.
        assert!(dep.cycles >= 100 * 20);
    }

    #[test]
    fn ipc_approaches_width_on_alu_stream() {
        let insts: Vec<Inst> =
            (0..6000).map(|i| Inst::alu(i, (i % 32) as u8, [None, None])).collect();
        let mut mem = FixedMemory { latency: 1 };
        let r = simulate_ooo(OooConfig::default(), insts, &mut mem);
        let ipc = r.ipc();
        assert!(ipc > 4.0 && ipc <= 6.01, "ipc = {ipc}");
    }

    #[test]
    fn rob_bounds_memory_level_parallelism() {
        // With a tiny ROB, independent long-latency loads can no longer
        // all overlap.
        let mut mem = FixedMemory { latency: 200 };
        let big = simulate_ooo(
            OooConfig { rob: 192, ..OooConfig::default() },
            loads(400, false),
            &mut mem,
        );
        let small =
            simulate_ooo(OooConfig { rob: 4, ..OooConfig::default() }, loads(400, false), &mut mem);
        assert!(small.cycles > big.cycles * 2, "small {} big {}", small.cycles, big.cycles);
    }

    #[test]
    fn port_contention_serializes_bursts() {
        // 1-port vs 2-port on a load burst.
        let mut mem = FixedMemory { latency: 2 };
        let one = simulate_ooo(
            OooConfig { mem_ports: 1, ..OooConfig::default() },
            loads(1000, false),
            &mut mem,
        );
        let two = simulate_ooo(
            OooConfig { mem_ports: 2, ..OooConfig::default() },
            loads(1000, false),
            &mut mem,
        );
        assert!(one.cycles > two.cycles, "1-port {} vs 2-port {}", one.cycles, two.cycles);
        assert!(one.cycles >= 1000, "1 port bounds throughput to 1 load/cycle");
    }

    #[test]
    fn replayed_accesses_consume_extra_port_slots() {
        // A memory path that reports 2 port slots per access (as a 100%
        // misspeculating SIPT L1 would) halves load throughput.
        #[derive(Debug)]
        struct TwoSlot;
        impl MemoryPath for TwoSlot {
            fn access(&mut self, _pc: u64, _mem: MemRef, _now: u64) -> MemResponse {
                MemResponse { latency: 2, port_slots: 2 }
            }
        }
        let normal =
            simulate_ooo(OooConfig::default(), loads(1000, false), &mut FixedMemory { latency: 2 });
        let replayed = simulate_ooo(OooConfig::default(), loads(1000, false), &mut TwoSlot);
        assert!(
            replayed.cycles as f64 > normal.cycles as f64 * 1.5,
            "replay {} vs normal {}",
            replayed.cycles,
            normal.cycles
        );
    }

    #[test]
    fn stores_do_not_block_dependents() {
        // store; then ALU consuming an unrelated register: the ALU stream
        // should flow at full width even with slow memory.
        let mut insts = Vec::new();
        for i in 0..500u64 {
            insts.push(Inst::store(i * 8, Some(2), None, VirtAddr::new(0x2000 + i * 64)));
            insts.push(Inst::alu(i * 8 + 4, 3, [Some(3), None]));
        }
        let mut mem = FixedMemory { latency: 100 };
        let r = simulate_ooo(OooConfig::default(), insts, &mut mem);
        assert!(r.ipc() > 1.5, "stores must drain via write buffer, ipc = {}", r.ipc());
    }

    #[test]
    fn lower_l1_latency_speeds_up_pointer_chase() {
        // The core motivation experiment in miniature: dependent loads at
        // 4-cycle vs 2-cycle L1.
        let four =
            simulate_ooo(OooConfig::default(), loads(500, true), &mut FixedMemory { latency: 4 });
        let two =
            simulate_ooo(OooConfig::default(), loads(500, true), &mut FixedMemory { latency: 2 });
        let speedup = four.cycles as f64 / two.cycles as f64;
        assert!(speedup > 1.5, "speedup = {speedup}");
    }

    #[test]
    fn result_counts() {
        let mut mem = FixedMemory { latency: 1 };
        let r = simulate_ooo(OooConfig::default(), loads(10, false), &mut mem);
        assert_eq!(r.instructions, 10);
        assert_eq!(r.mem_ops, 10);
        assert!(r.cycles > 0);
    }
}
