//! Out-of-order core timing model (paper Table II: 6-wide issue, 192-entry
//! ROB, 3 GHz).
//!
//! A timestamp-dataflow model: each instruction's completion time is the
//! max of its dispatch time (fetch bandwidth + ROB occupancy), its source
//! operands' ready times, and structural constraints (L1 ports), plus its
//! execution/memory latency. Retirement is in order at the commit width.
//! This reproduces the properties the paper's results depend on — latency
//! sensitivity of dependent chains, memory-level parallelism across the
//! ROB window, and L1 port contention from SIPT replays — at a small
//! fraction of a full pipeline model's cost.

use crate::trace::{CoreResult, Inst, MemOp, MemoryPath, NUM_REGS};

/// OOO core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooConfig {
    /// Fetch/issue/commit width.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// L1 data ports (concurrent accesses per cycle).
    pub mem_ports: u32,
}

impl Default for OooConfig {
    fn default() -> Self {
        Self { width: 6, rob: 192, mem_ports: 2 }
    }
}

/// Simulate an instruction stream on the OOO model.
///
/// `mem` services every load/store (through the machine's TLB + SIPT L1 +
/// lower hierarchy); the model charges the returned latency to the
/// dependence chain and the returned port slots to the L1 ports.
pub fn simulate_ooo<I, M>(config: OooConfig, insts: I, mem: &mut M) -> CoreResult
where
    I: IntoIterator<Item = Inst>,
    M: MemoryPath + ?Sized,
{
    assert!(config.width > 0 && config.rob > 0 && config.mem_ports > 0);
    let mut reg_ready = [0u64; NUM_REGS];
    // Retire times of the last `rob` instructions (for ROB occupancy),
    // kept as a flat ring: instruction `i` reads and then overwrites slot
    // `i % rob`, which is exactly the pop-front/push-back FIFO of a
    // `VecDeque` bounded at `rob` entries — without the deque's wrap
    // arithmetic and branchy len tracking on the hot path.
    let mut rob_retire: Vec<u64> = vec![0u64; config.rob];
    // Commit bookkeeping in 1/width-cycle slots: enforces in-order retire
    // at no more than `width` instructions per cycle.
    let mut retire_slot = 0u64;
    let width = config.width as u64;
    // L1 port bookkeeping: a rolling "next free slot" expressed in
    // port-slot units (width `mem_ports` per cycle).
    let mut port_slot_time = 0u64; // in units of 1/mem_ports cycles
    let ports = config.mem_ports as u64;

    let mut n: u64 = 0;
    let mut mem_ops: u64 = 0;

    for (i, inst) in insts.into_iter().enumerate() {
        let i = i as u64;
        // Dispatch: fetch bandwidth + ROB space. The ring slot holds the
        // retire time of instruction `i - rob` (0 while the ROB is still
        // filling, because the ring starts zeroed and `retire_slot/width`
        // of real instructions is never needed before `i >= rob`).
        let fetch_time = i / config.width as u64;
        let ring_slot = (i as usize) % config.rob;
        let rob_free = if i >= config.rob as u64 { rob_retire[ring_slot] } else { 0 };
        let dispatch = fetch_time.max(rob_free);

        // Operand readiness.
        let mut ready = dispatch;
        for src in inst.srcs.into_iter().flatten() {
            ready = ready.max(reg_ready[src as usize]);
        }

        // Execute.
        let complete = match inst.mem {
            None => ready + inst.exec_latency,
            Some(mem_ref) => {
                mem_ops += 1;
                // Claim L1 port slot(s): the access starts no earlier than
                // both its operands and a free port.
                let earliest_slot = ready * ports;
                let slot = port_slot_time.max(earliest_slot);
                let start = slot / ports;
                let response = mem.access(inst.pc, mem_ref, start);
                port_slot_time = slot + response.port_slots as u64;
                match mem_ref.op {
                    MemOp::Load => start + response.latency,
                    // Stores drain through the write buffer: they occupy
                    // the port but do not stall dependents.
                    MemOp::Store => start + 1,
                }
            }
        };

        if let Some(dst) = inst.dst {
            reg_ready[dst as usize] = complete;
        }

        // In-order retirement at commit width.
        retire_slot = (complete * width).max(retire_slot + 1);
        rob_retire[ring_slot] = retire_slot / width;
        n += 1;
    }

    CoreResult { instructions: n, cycles: retire_slot.div_ceil(width).max(1), mem_ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FixedMemory, MemRef, MemResponse};
    use sipt_mem::VirtAddr;

    fn loads(n: usize, dependent: bool) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                let addr_reg = if dependent && i > 0 { Some(1u8) } else { None };
                Inst::load(0x100 + i as u64 * 4, 1, addr_reg, VirtAddr::new(0x1000 + i as u64 * 64))
            })
            .collect()
    }

    #[test]
    fn independent_loads_overlap_dependent_do_not() {
        let mut mem = FixedMemory { latency: 20 };
        let indep = simulate_ooo(OooConfig::default(), loads(100, false), &mut mem);
        let dep = simulate_ooo(OooConfig::default(), loads(100, true), &mut mem);
        assert!(
            dep.cycles > indep.cycles * 5,
            "dependent {} vs independent {}",
            dep.cycles,
            indep.cycles
        );
        // Dependent chain: ≥ latency per load.
        assert!(dep.cycles >= 100 * 20);
    }

    #[test]
    fn ipc_approaches_width_on_alu_stream() {
        let insts: Vec<Inst> =
            (0..6000).map(|i| Inst::alu(i, (i % 32) as u8, [None, None])).collect();
        let mut mem = FixedMemory { latency: 1 };
        let r = simulate_ooo(OooConfig::default(), insts, &mut mem);
        let ipc = r.ipc();
        assert!(ipc > 4.0 && ipc <= 6.01, "ipc = {ipc}");
    }

    #[test]
    fn rob_bounds_memory_level_parallelism() {
        // With a tiny ROB, independent long-latency loads can no longer
        // all overlap.
        let mut mem = FixedMemory { latency: 200 };
        let big = simulate_ooo(
            OooConfig { rob: 192, ..OooConfig::default() },
            loads(400, false),
            &mut mem,
        );
        let small =
            simulate_ooo(OooConfig { rob: 4, ..OooConfig::default() }, loads(400, false), &mut mem);
        assert!(small.cycles > big.cycles * 2, "small {} big {}", small.cycles, big.cycles);
    }

    #[test]
    fn port_contention_serializes_bursts() {
        // 1-port vs 2-port on a load burst.
        let mut mem = FixedMemory { latency: 2 };
        let one = simulate_ooo(
            OooConfig { mem_ports: 1, ..OooConfig::default() },
            loads(1000, false),
            &mut mem,
        );
        let two = simulate_ooo(
            OooConfig { mem_ports: 2, ..OooConfig::default() },
            loads(1000, false),
            &mut mem,
        );
        assert!(one.cycles > two.cycles, "1-port {} vs 2-port {}", one.cycles, two.cycles);
        assert!(one.cycles >= 1000, "1 port bounds throughput to 1 load/cycle");
    }

    #[test]
    fn replayed_accesses_consume_extra_port_slots() {
        // A memory path that reports 2 port slots per access (as a 100%
        // misspeculating SIPT L1 would) halves load throughput.
        #[derive(Debug)]
        struct TwoSlot;
        impl MemoryPath for TwoSlot {
            fn access(&mut self, _pc: u64, _mem: MemRef, _now: u64) -> MemResponse {
                MemResponse { latency: 2, port_slots: 2 }
            }
        }
        let normal =
            simulate_ooo(OooConfig::default(), loads(1000, false), &mut FixedMemory { latency: 2 });
        let replayed = simulate_ooo(OooConfig::default(), loads(1000, false), &mut TwoSlot);
        assert!(
            replayed.cycles as f64 > normal.cycles as f64 * 1.5,
            "replay {} vs normal {}",
            replayed.cycles,
            normal.cycles
        );
    }

    #[test]
    fn stores_do_not_block_dependents() {
        // store; then ALU consuming an unrelated register: the ALU stream
        // should flow at full width even with slow memory.
        let mut insts = Vec::new();
        for i in 0..500u64 {
            insts.push(Inst::store(i * 8, Some(2), None, VirtAddr::new(0x2000 + i * 64)));
            insts.push(Inst::alu(i * 8 + 4, 3, [Some(3), None]));
        }
        let mut mem = FixedMemory { latency: 100 };
        let r = simulate_ooo(OooConfig::default(), insts, &mut mem);
        assert!(r.ipc() > 1.5, "stores must drain via write buffer, ipc = {}", r.ipc());
    }

    #[test]
    fn lower_l1_latency_speeds_up_pointer_chase() {
        // The core motivation experiment in miniature: dependent loads at
        // 4-cycle vs 2-cycle L1.
        let four =
            simulate_ooo(OooConfig::default(), loads(500, true), &mut FixedMemory { latency: 4 });
        let two =
            simulate_ooo(OooConfig::default(), loads(500, true), &mut FixedMemory { latency: 2 });
        let speedup = four.cycles as f64 / two.cycles as f64;
        assert!(speedup > 1.5, "speedup = {speedup}");
    }

    #[test]
    fn result_counts() {
        let mut mem = FixedMemory { latency: 1 };
        let r = simulate_ooo(OooConfig::default(), loads(10, false), &mut mem);
        assert_eq!(r.instructions, 10);
        assert_eq!(r.mem_ops, 10);
        assert!(r.cycles > 0);
    }
}
