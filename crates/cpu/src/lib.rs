#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-cpu — trace-driven core timing models
//!
//! The stand-in for the paper's Macsim simulator: two timing models that
//! replay an instruction trace against a pluggable [`MemoryPath`] (the
//! machine's TLB + SIPT L1 + lower hierarchy):
//!
//! - [`simulate_ooo`]: 6-wide, 192-entry-ROB out-of-order model
//!   (timestamp dataflow with fetch/commit width, ROB occupancy, and L1
//!   port contention),
//! - [`simulate_inorder`]: 2-wide scoreboarded in-order model
//!   (stall-at-use).
//!
//! Both charge SIPT's replayed accesses as extra L1 port occupancy via
//! [`MemResponse::port_slots`], reproducing the paper's "slow access …
//! contends for the L1 cache port" cost.
//!
//! ```
//! use sipt_cpu::{simulate_ooo, OooConfig, Inst, FixedMemory};
//! use sipt_mem::VirtAddr;
//!
//! let trace: Vec<Inst> =
//!     (0..100).map(|i| Inst::load(i, 1, None, VirtAddr::new(0x1000 + i * 64))).collect();
//! let result = simulate_ooo(OooConfig::default(), trace, &mut FixedMemory { latency: 4 });
//! assert_eq!(result.instructions, 100);
//! assert!(result.ipc() > 0.0);
//! ```

pub mod inorder;
pub mod ooo;
pub mod trace;

pub use inorder::{simulate_inorder, InOrderConfig, InOrderEngine};
pub use ooo::{simulate_ooo, OooConfig, OooEngine, RUN_FAST_MIN};
pub use trace::{
    meta_has_mem, pack_inst_meta, unpack_inst_meta, unpack_meta_fields, CoreResult, FixedMemory,
    Inst, MemOp, MemRef, MemResponse, MemoryPath, Reg, META_HAS_MEM, NUM_REGS,
};
