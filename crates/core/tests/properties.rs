//! Property tests over the SIPT L1 front-end: timing/classification
//! invariants that must hold for every policy, geometry, and address
//! pattern.

use proptest::prelude::*;
use sipt_core::{
    baseline_32k_8w_vipt, sipt_128k_4w, sipt_32k_2w, sipt_32k_4w, sipt_64k_4w, L1Config, L1Policy,
    SiptL1, SpeculationOutcome,
};
use sipt_mem::{PageSize, PhysAddr, PhysFrameNum, Translation, VirtAddr, PAGE_SHIFT};

fn xlate(va: VirtAddr, pfn: u64) -> Translation {
    Translation {
        pa: PhysAddr::new((pfn << PAGE_SHIFT) | va.page_offset()),
        pfn: PhysFrameNum::new(pfn),
        page_size: PageSize::Base4K,
    }
}

fn all_configs() -> Vec<L1Config> {
    let mut v = vec![baseline_32k_8w_vipt()];
    for base in [sipt_32k_2w(), sipt_32k_4w(), sipt_64k_4w(), sipt_128k_4w()] {
        for policy in
            [L1Policy::SiptNaive, L1Policy::SiptBypass, L1Policy::SiptCombined, L1Policy::Ideal]
        {
            v.push(base.clone().with_policy(policy));
        }
    }
    v
}

proptest! {
    /// Timing invariants: latency is at least the array latency, at least
    /// the translation latency for non-overlapped paths, fast accesses
    /// complete at max(l1, tlb), and array reads are 1 or 2 (3 only with
    /// way misprediction, which is off here).
    #[test]
    fn access_invariants(
        ops in proptest::collection::vec((0u64..1u64<<18, 0u64..1u64<<10, 0u64..60, any::<bool>()), 1..200)
    ) {
        for cfg in all_configs() {
            let l1_lat = cfg.latency;
            let mut l1 = SiptL1::new(cfg);
            for &(va_raw, pfn, tlb, write) in &ops {
                let va = VirtAddr::new(va_raw);
                let t = xlate(va, pfn);
                let a = l1.access(va_raw ^ 0x40, va, t, tlb, write);
                prop_assert!(a.latency >= l1_lat);
                prop_assert!(a.array_reads >= 1 && a.array_reads <= 2);
                match a.outcome {
                    SpeculationOutcome::CorrectSpeculation | SpeculationOutcome::IdbHit => {
                        prop_assert_eq!(a.latency, l1_lat.max(tlb));
                    }
                    SpeculationOutcome::CorrectBypass | SpeculationOutcome::OpportunityLoss => {
                        prop_assert_eq!(a.latency, tlb + l1_lat);
                    }
                    SpeculationOutcome::ExtraAccess => {
                        prop_assert_eq!(a.latency, l1_lat.max(tlb) + l1_lat);
                        prop_assert_eq!(a.array_reads, 2);
                    }
                    SpeculationOutcome::NotSpeculative => {
                        prop_assert!(a.latency >= l1_lat.max(tlb).min(tlb + l1_lat));
                    }
                }
            }
            let s = l1.stats();
            prop_assert_eq!(s.accesses, ops.len() as u64);
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            prop_assert_eq!(s.array_reads, s.accesses + s.extra_accesses);
        }
    }

    /// When VA and PA index bits agree, a speculating policy never replays.
    #[test]
    fn identity_translation_never_replays(pages in proptest::collection::vec(0u64..1u64<<10, 1..100)) {
        let mut l1 = SiptL1::new(sipt_128k_4w().with_policy(L1Policy::SiptNaive));
        for &p in &pages {
            let va = VirtAddr::new(p << PAGE_SHIFT);
            l1.access(0x10, va, xlate(va, p), 2, false);
        }
        prop_assert_eq!(l1.stats().extra_accesses, 0);
        prop_assert_eq!(l1.stats().fast_accesses, pages.len() as u64);
    }

    /// The ideal policy's timing never depends on the VA↔PA relationship.
    #[test]
    fn ideal_is_translation_insensitive(
        vas in proptest::collection::vec(0u64..1u64<<20, 1..50),
        pfn_seed in 0u64..1u64<<10,
    ) {
        let mut a = SiptL1::new(sipt_32k_2w().with_policy(L1Policy::Ideal));
        let mut b = SiptL1::new(sipt_32k_2w().with_policy(L1Policy::Ideal));
        for (i, &va_raw) in vas.iter().enumerate() {
            let va = VirtAddr::new(va_raw);
            // Same PFN stream in both runs, but b gets scrambled bits.
            let pfn = pfn_seed + i as u64;
            let la = a.access(0, va, xlate(va, pfn), 2, false);
            let lb = b.access(0, va, xlate(va, pfn), 2, false);
            prop_assert_eq!(la.latency, lb.latency);
            prop_assert_eq!(la.outcome, SpeculationOutcome::NotSpeculative);
        }
    }
}

#[test]
fn combined_converges_on_region_migration() {
    // A PC that walks region A (delta 1), then migrates to region B
    // (delta 3): the IDB must re-learn and recover within a few accesses.
    let mut l1 = SiptL1::new(sipt_32k_2w());
    let mut slow_after_warmup = 0;
    for phase in 0..2u64 {
        let delta = 1 + 2 * phase; // 1 then 3
        for i in 0..200u64 {
            let vpn = 0x400 + (i % 8);
            let va = VirtAddr::new(vpn << PAGE_SHIFT);
            let t = xlate(va, vpn.wrapping_add(delta));
            let a = l1.access(0x99, va, t, 2, false);
            if i > 20 && !a.outcome.is_fast() {
                slow_after_warmup += 1;
            }
        }
    }
    assert!(
        slow_after_warmup <= 8,
        "IDB should re-converge quickly after migration: {slow_after_warmup} slow"
    );
}

#[test]
fn bypass_and_combined_share_perceptron_behaviour() {
    // For a PC whose bits never survive, bypass waits while combined uses
    // the IDB: combined must have strictly more fast accesses and no more
    // extra accesses than naive would produce.
    let make = |policy| SiptL1::new(sipt_32k_2w().with_policy(policy));
    let mut bypass = make(L1Policy::SiptBypass);
    let mut combined = make(L1Policy::SiptCombined);
    let mut naive = make(L1Policy::SiptNaive);
    for i in 0..300u64 {
        let vpn = 0x100 + (i % 4);
        let va = VirtAddr::new(vpn << PAGE_SHIFT);
        let t = xlate(va, vpn + 2); // constant delta 2: bits always change
        bypass.access(0x7, va, t, 2, false);
        combined.access(0x7, va, t, 2, false);
        naive.access(0x7, va, t, 2, false);
    }
    assert!(combined.stats().fast_accesses > 250, "{:?}", combined.stats());
    assert!(bypass.stats().fast_accesses < 50, "{:?}", bypass.stats());
    assert_eq!(naive.stats().extra_accesses, 300);
    assert!(combined.stats().extra_accesses < naive.stats().extra_accesses);
}
