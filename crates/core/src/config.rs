//! L1 configuration: indexing policy, geometry, latency — including the
//! named operating points of the paper's Table II.

use sipt_cache::{CacheGeometry, ReplacementKind};
use sipt_predictors::{CounterConfig, IdbConfig, PerceptronConfig};

/// Which bypass predictor backs the SIPT-bypass/combined policies.
///
/// The paper evaluates the perceptron (>90% accuracy) and mentions
/// rejecting counter-based predictors (~85%, inconsistent); both are kept
/// for the `ablation_bypass` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BypassKind {
    /// Jimenez–Lin global-history perceptron (the paper's choice).
    Perceptron,
    /// PC-indexed saturating counters (the rejected alternative).
    Counter,
}

/// How the L1 forms its set index relative to address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1Policy {
    /// Virtually-indexed physically-tagged: only page-offset bits index the
    /// arrays, so the access overlaps translation for free. Legal only
    /// when the geometry needs zero speculative bits.
    Vipt,
    /// Physically-indexed physically-tagged: every access waits for
    /// translation.
    Pipt,
    /// Oracle: the physical index is magically known (the paper's "ideal
    /// cache" used to bound each configuration in Figs 2, 3, 6, 13).
    Ideal,
    /// §IV naive SIPT: always speculate that the index bits beyond the
    /// page offset are unchanged by translation.
    SiptNaive,
    /// §V SIPT with the perceptron bypass predictor: speculate only when
    /// the perceptron predicts the bits survive translation; otherwise
    /// wait for the physical address.
    SiptBypass,
    /// §VI SIPT with combined bypass + index-delta prediction: always
    /// access speculatively; when the perceptron predicts a change, the
    /// IDB supplies the predicted post-translation bits (for a single
    /// speculative bit, the bypass prediction is simply inverted).
    SiptCombined,
}

impl L1Policy {
    /// Whether this policy ever issues an access before translation
    /// resolves.
    pub fn speculates(self) -> bool {
        matches!(self, L1Policy::SiptNaive | L1Policy::SiptBypass | L1Policy::SiptCombined)
    }
}

impl core::fmt::Display for L1Policy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            L1Policy::Vipt => "VIPT",
            L1Policy::Pipt => "PIPT",
            L1Policy::Ideal => "ideal",
            L1Policy::SiptNaive => "SIPT-naive",
            L1Policy::SiptBypass => "SIPT-bypass",
            L1Policy::SiptCombined => "SIPT+IDB",
        };
        f.write_str(s)
    }
}

/// Full configuration of a SIPT-capable L1 data cache.
#[derive(Debug, Clone, PartialEq)]
pub struct L1Config {
    /// Human-readable name (used in experiment tables).
    pub name: &'static str,
    /// Capacity/associativity geometry.
    pub geometry: CacheGeometry,
    /// Array access latency in cycles.
    pub latency: u64,
    /// Indexing policy.
    pub policy: L1Policy,
    /// Replacement policy.
    pub replacement: ReplacementKind,
    /// Whether MRU way prediction (§VII.A) is enabled.
    pub way_prediction: bool,
    /// Which bypass predictor to use.
    pub bypass: BypassKind,
    /// Bypass-perceptron configuration.
    pub perceptron: PerceptronConfig,
    /// Counter-predictor configuration (used when `bypass` is `Counter`).
    pub counter: CounterConfig,
    /// IDB entry count (delta width is derived from the geometry).
    pub idb_entries: usize,
    /// Extra cycles charged per misspeculation for instruction-scheduler
    /// replay (§VII.C). The paper assumes the existing selective-replay
    /// machinery absorbs SIPT's rare mispredictions (penalty 0); the
    /// `ablation_replay` bench sweeps this to model simpler, costlier
    /// replay schemes.
    pub replay_penalty: u64,
}

impl L1Config {
    /// Number of index bits that must be speculated for this geometry.
    pub fn speculative_bits(&self) -> u32 {
        self.geometry.speculative_bits()
    }

    /// Validate policy/geometry consistency.
    ///
    /// # Panics
    ///
    /// Panics if a VIPT policy is paired with a geometry that needs
    /// speculative bits (the very configuration the paper shows is
    /// impossible).
    pub fn validate(&self) {
        self.try_validate().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`L1Config::validate`] for untrusted configuration: geometry shape,
    /// the VIPT-feasibility constraint, the 3-bit cap on speculated index
    /// bits (the paper's largest configuration, 128 KiB 4-way), and
    /// predictor sizing, as descriptive errors instead of panics.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn try_validate(&self) -> Result<(), String> {
        self.geometry.try_validate().map_err(|e| format!("{}: {e}", self.name))?;
        if self.policy == L1Policy::Vipt && !self.geometry.vipt_feasible() {
            return Err(format!(
                "{} needs {} speculative bits — not buildable as VIPT",
                self.geometry,
                self.speculative_bits()
            ));
        }
        if self.speculative_bits() > 3 {
            return Err(format!(
                "{} needs {} speculative bits; the IDB delta encoding supports at most 3",
                self.geometry,
                self.speculative_bits()
            ));
        }
        if self.policy.speculates() && self.idb_entries == 0 {
            return Err(format!(
                "{}: speculative policy {} requires a nonzero IDB",
                self.name, self.policy
            ));
        }
        if self.latency == 0 {
            return Err(format!("{}: L1 latency must be at least one cycle", self.name));
        }
        Ok(())
    }

    /// Derived IDB configuration (delta width = speculative bits, min 1).
    pub fn idb_config(&self) -> IdbConfig {
        IdbConfig { entries: self.idb_entries, bits: self.speculative_bits().max(1) }
    }

    /// Builder-style: replace the policy.
    pub fn with_policy(mut self, policy: L1Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style: enable or disable way prediction.
    pub fn with_way_prediction(mut self, enabled: bool) -> Self {
        self.way_prediction = enabled;
        self
    }

    /// Builder-style: select the bypass predictor implementation.
    pub fn with_bypass(mut self, bypass: BypassKind) -> Self {
        self.bypass = bypass;
        self
    }

    /// Builder-style: replace the perceptron configuration (size/history
    /// ablations).
    pub fn with_perceptron(mut self, perceptron: PerceptronConfig) -> Self {
        self.perceptron = perceptron;
        self
    }

    /// Builder-style: set the per-misspeculation scheduler-replay penalty
    /// (§VII.C ablation).
    pub fn with_replay_penalty(mut self, cycles: u64) -> Self {
        self.replay_penalty = cycles;
        self
    }
}

fn base(name: &'static str, kib: u64, ways: u32, latency: u64, policy: L1Policy) -> L1Config {
    L1Config {
        name,
        geometry: CacheGeometry::new(kib << 10, ways),
        latency,
        policy,
        replacement: ReplacementKind::Lru,
        way_prediction: false,
        bypass: BypassKind::Perceptron,
        perceptron: PerceptronConfig::default(),
        counter: CounterConfig::default(),
        idb_entries: 64,
        replay_penalty: 0,
    }
}

/// The paper's baseline: Haswell-like 32 KiB 8-way 4-cycle VIPT L1.
pub fn baseline_32k_8w_vipt() -> L1Config {
    base("32KiB 8-way VIPT", 32, 8, 4, L1Policy::Vipt)
}

/// 16 KiB 4-way 2-cycle — the VIPT-feasible capacity-for-latency trade
/// evaluated in Figs 2–3.
pub fn small_16k_4w_vipt() -> L1Config {
    base("16KiB 4-way VIPT", 16, 4, 2, L1Policy::Vipt)
}

/// 32 KiB 2-way 2-cycle SIPT (2 speculative bits) — the best-performing
/// OOO configuration, used for Figs 6, 7, 13, 14, 16, 17.
pub fn sipt_32k_2w() -> L1Config {
    base("32KiB 2-way SIPT", 32, 2, 2, L1Policy::SiptCombined)
}

/// 32 KiB 4-way 3-cycle SIPT (1 speculative bit).
pub fn sipt_32k_4w() -> L1Config {
    base("32KiB 4-way SIPT", 32, 4, 3, L1Policy::SiptCombined)
}

/// 64 KiB 4-way 3-cycle SIPT (2 speculative bits) — best for in-order.
pub fn sipt_64k_4w() -> L1Config {
    base("64KiB 4-way SIPT", 64, 4, 3, L1Policy::SiptCombined)
}

/// 128 KiB 4-way 4-cycle SIPT (3 speculative bits).
pub fn sipt_128k_4w() -> L1Config {
    base("128KiB 4-way SIPT", 128, 4, 4, L1Policy::SiptCombined)
}

/// All four SIPT operating points of Table II, in the order the paper's
/// Fig 15/18 legends list them.
pub fn table2_sipt_configs() -> Vec<L1Config> {
    vec![sipt_32k_2w(), sipt_32k_4w(), sipt_64k_4w(), sipt_128k_4w()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_speculative_bits_match_paper() {
        assert_eq!(sipt_32k_2w().speculative_bits(), 2);
        assert_eq!(sipt_32k_4w().speculative_bits(), 1);
        assert_eq!(sipt_64k_4w().speculative_bits(), 2);
        assert_eq!(sipt_128k_4w().speculative_bits(), 3);
        assert_eq!(baseline_32k_8w_vipt().speculative_bits(), 0);
        assert_eq!(small_16k_4w_vipt().speculative_bits(), 0);
    }

    #[test]
    fn baseline_validates_and_infeasible_vipt_panics() {
        baseline_32k_8w_vipt().validate();
        small_16k_4w_vipt().validate();
        for cfg in table2_sipt_configs() {
            cfg.validate(); // SIPT policies are always fine
        }
        let bad = sipt_32k_2w().with_policy(L1Policy::Vipt);
        assert!(std::panic::catch_unwind(move || bad.validate()).is_err());
    }

    #[test]
    fn idb_width_tracks_geometry() {
        assert_eq!(sipt_128k_4w().idb_config().bits, 3);
        assert_eq!(sipt_32k_4w().idb_config().bits, 1);
        // Even for a zero-bit geometry the IDB degenerates to 1 bit.
        assert_eq!(baseline_32k_8w_vipt().idb_config().bits, 1);
    }

    #[test]
    fn policy_display_and_speculates() {
        assert!(L1Policy::SiptNaive.speculates());
        assert!(!L1Policy::Vipt.speculates());
        assert!(!L1Policy::Ideal.speculates());
        for p in [
            L1Policy::Vipt,
            L1Policy::Pipt,
            L1Policy::Ideal,
            L1Policy::SiptNaive,
            L1Policy::SiptBypass,
            L1Policy::SiptCombined,
        ] {
            assert!(!p.to_string().is_empty());
        }
    }

    #[test]
    fn builder_helpers() {
        let cfg = sipt_32k_2w().with_policy(L1Policy::SiptNaive).with_way_prediction(true);
        assert_eq!(cfg.policy, L1Policy::SiptNaive);
        assert!(cfg.way_prediction);
    }
}
