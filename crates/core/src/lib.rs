#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-core — Speculatively Indexed, Physically Tagged L1 caches
//!
//! The primary contribution of Zheng, Zhu & Erez, "SIPT: Speculatively
//! Indexed, Physically Tagged Caches" (HPCA 2018), as a reusable library:
//! an L1 data-cache front-end that breaks the VIPT `capacity = ways × 4 KiB`
//! constraint by *speculating* on the 1–3 index bits beyond the page offset
//! and verifying them against the translated physical address at tag-match
//! time.
//!
//! Three SIPT variants are provided as [`L1Policy`] values, alongside the
//! conventional VIPT/PIPT policies and the oracle "ideal" index used by the
//! paper as an upper bound:
//!
//! | policy | paper § | mechanism |
//! |---|---|---|
//! | [`L1Policy::SiptNaive`] | IV | always speculate `VA bits == PA bits` |
//! | [`L1Policy::SiptBypass`] | V | 624 B perceptron predicts speculate/bypass |
//! | [`L1Policy::SiptCombined`] | VI | bypassed accesses get an IDB-predicted delta |
//!
//! ## Example
//!
//! ```
//! use sipt_core::{SiptL1, sipt_32k_2w};
//! use sipt_mem::{Translation, VirtAddr, PhysAddr, PhysFrameNum, PageSize};
//!
//! let mut l1 = SiptL1::new(sipt_32k_2w()); // 2 speculative bits, 2-cycle
//! let va = VirtAddr::new(0x5000);
//! let translation = Translation {
//!     pa: PhysAddr::new(0x5000), // identity: index bits unchanged
//!     pfn: PhysFrameNum::new(0x5),
//!     page_size: PageSize::Base4K,
//! };
//! let access = l1.access(0x401000, va, translation, 2, false);
//! assert!(access.outcome.is_fast());
//! assert_eq!(access.latency, 2); // overlapped with translation
//! ```

pub mod config;
pub mod l1;
pub mod outcome;
pub mod telemetry;

pub use config::{
    baseline_32k_8w_vipt, sipt_128k_4w, sipt_32k_2w, sipt_32k_4w, sipt_64k_4w, small_16k_4w_vipt,
    table2_sipt_configs, BypassKind, L1Config, L1Policy,
};
pub use l1::{policy_tags, PolicyTag, SiptL1};
pub use outcome::{L1Access, SiptStats, SpeculationOutcome};
pub use sipt_predictors::{BlockPredictions, PredictorBank, StagedAccess};
pub use telemetry::{BlockTelemetry, L1Telemetry, MispredictCauses};
