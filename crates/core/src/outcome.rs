//! Per-access outcomes and aggregate statistics for the SIPT L1.

/// How the index speculation of one access resolved. The first four
/// variants are exactly the four prediction outcomes of paper §V / Fig 9;
/// `IdbHit` is the additional Fig 12 category created by the §VI combined
/// predictor; `NotSpeculative` covers VIPT/PIPT/ideal policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpeculationOutcome {
    /// Speculated, and the index bits survived translation: a fast access.
    CorrectSpeculation,
    /// Bypassed speculation, and the bits indeed changed: the wait was
    /// necessary (slow access, but no wasted array read).
    CorrectBypass,
    /// Bypassed speculation although the bits were unchanged: a fast
    /// access was squandered.
    OpportunityLoss,
    /// Speculated (possibly via the IDB) with the wrong bits: the access
    /// must be replayed with the physical index — an extra L1 access.
    ExtraAccess,
    /// The bypass predictor said "changed" and the IDB (or the 1-bit
    /// inverted prediction) supplied the correct post-translation bits:
    /// a slow access converted into a fast one.
    IdbHit,
    /// The policy does not speculate (VIPT / PIPT / ideal).
    NotSpeculative,
}

impl SpeculationOutcome {
    /// Whether the access completed at array latency (overlapped with
    /// translation).
    pub fn is_fast(self) -> bool {
        matches!(self, SpeculationOutcome::CorrectSpeculation | SpeculationOutcome::IdbHit)
    }

    /// Whether the access caused a redundant L1 array read.
    pub fn is_extra_access(self) -> bool {
        matches!(self, SpeculationOutcome::ExtraAccess)
    }
}

/// Timing and classification of one L1 access, as seen by the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Access {
    /// Whether the demand access hit in the L1 (after any replay).
    pub hit: bool,
    /// Cycles until the L1 produced data *if it hit*; on a miss, cycles
    /// until the miss was issued to the next level.
    pub latency: u64,
    /// Number of L1 array reads performed (2 for a replayed access, and
    /// way-misprediction second reads).
    pub array_reads: u32,
    /// Speculation outcome classification.
    pub outcome: SpeculationOutcome,
}

/// Aggregate statistics of the SIPT L1 front-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiptStats {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Total L1 array reads, including replays and way-mispredict reads
    /// (the quantity dynamic energy scales with).
    pub array_reads: u64,
    /// Extra (wasted) array reads from misspeculation.
    pub extra_accesses: u64,
    /// Fast accesses (overlapped with translation).
    pub fast_accesses: u64,
    /// Outcome counters, Fig 9 / Fig 12 classification.
    pub correct_speculation: u64,
    /// See [`SpeculationOutcome::CorrectBypass`].
    pub correct_bypass: u64,
    /// See [`SpeculationOutcome::OpportunityLoss`].
    pub opportunity_loss: u64,
    /// See [`SpeculationOutcome::IdbHit`].
    pub idb_hits: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

impl SiptStats {
    /// Record one classified access.
    pub fn record(&mut self, access: &L1Access) {
        self.accesses += 1;
        if access.hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.array_reads += access.array_reads as u64;
        if access.outcome.is_fast() {
            self.fast_accesses += 1;
        }
        match access.outcome {
            SpeculationOutcome::CorrectSpeculation => self.correct_speculation += 1,
            SpeculationOutcome::CorrectBypass => self.correct_bypass += 1,
            SpeculationOutcome::OpportunityLoss => self.opportunity_loss += 1,
            SpeculationOutcome::ExtraAccess => self.extra_accesses += 1,
            SpeculationOutcome::IdbHit => self.idb_hits += 1,
            SpeculationOutcome::NotSpeculative => {}
        }
    }

    /// Demand hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses as f64
    }

    /// Fraction of accesses that were fast (the paper's headline
    /// prediction-accuracy metric for Figs 5/9/12/18).
    pub fn fast_fraction(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.fast_accesses as f64 / self.accesses as f64
    }

    /// Relative extra accesses: `accesses_SIPT / accesses_baseline − 1`
    /// expressed against this cache's own demand count (the paper's
    /// "additional accesses" series in Figs 6/13/15).
    pub fn extra_access_fraction(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.extra_accesses as f64 / self.accesses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(outcome: SpeculationOutcome, hit: bool, reads: u32) -> L1Access {
        L1Access { hit, latency: 2, array_reads: reads, outcome }
    }

    #[test]
    fn outcome_classification_flags() {
        assert!(SpeculationOutcome::CorrectSpeculation.is_fast());
        assert!(SpeculationOutcome::IdbHit.is_fast());
        assert!(!SpeculationOutcome::CorrectBypass.is_fast());
        assert!(!SpeculationOutcome::OpportunityLoss.is_fast());
        assert!(SpeculationOutcome::ExtraAccess.is_extra_access());
        assert!(!SpeculationOutcome::IdbHit.is_extra_access());
    }

    #[test]
    fn stats_accumulate_all_categories() {
        let mut s = SiptStats::default();
        s.record(&acc(SpeculationOutcome::CorrectSpeculation, true, 1));
        s.record(&acc(SpeculationOutcome::ExtraAccess, true, 2));
        s.record(&acc(SpeculationOutcome::IdbHit, false, 1));
        s.record(&acc(SpeculationOutcome::CorrectBypass, true, 1));
        s.record(&acc(SpeculationOutcome::OpportunityLoss, true, 1));
        s.record(&acc(SpeculationOutcome::NotSpeculative, true, 1));
        assert_eq!(s.accesses, 6);
        assert_eq!(s.hits, 5);
        assert_eq!(s.misses, 1);
        assert_eq!(s.array_reads, 7);
        assert_eq!(s.fast_accesses, 2);
        assert_eq!(s.extra_accesses, 1);
        assert_eq!(s.correct_speculation, 1);
        assert_eq!(s.correct_bypass, 1);
        assert_eq!(s.opportunity_loss, 1);
        assert_eq!(s.idb_hits, 1);
    }

    #[test]
    fn derived_rates() {
        let mut s = SiptStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.fast_fraction(), 0.0);
        assert_eq!(s.extra_access_fraction(), 0.0);
        for _ in 0..3 {
            s.record(&acc(SpeculationOutcome::CorrectSpeculation, true, 1));
        }
        s.record(&acc(SpeculationOutcome::ExtraAccess, false, 2));
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(s.fast_fraction(), 0.75);
        assert_eq!(s.extra_access_fraction(), 0.25);
    }
}
