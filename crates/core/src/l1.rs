//! The SIPT L1 data-cache front-end — the paper's contribution.
//!
//! [`SiptL1::access`] models one load/store: it forms a (possibly
//! speculative) set index, probes the array, classifies the speculation
//! outcome, and reports the latency the core observes. The caller (a
//! `sipt-sim` machine) owns the TLB and the lower hierarchy: it passes in
//! the resolved translation and TLB latency, and services misses/fills.
//!
//! Timing rules (paper §IV, Fig 4):
//!
//! - **fast access** — speculation correct (or policy non-speculative with
//!   overlap): data after `max(l1_latency, tlb_latency)` cycles;
//! - **bypass / PIPT** — wait for translation, then access:
//!   `tlb_latency + l1_latency`;
//! - **slow (replayed) access** — misspeculation discovered at the tag
//!   check, repeat with physical index:
//!   `max(l1_latency, tlb_latency) + l1_latency`, plus one wasted array
//!   read that costs energy and occupies the port.

use crate::config::{BypassKind, L1Config, L1Policy};
use crate::outcome::{L1Access, SiptStats, SpeculationOutcome};
use crate::telemetry::{AccessRecord, BlockTelemetry, L1Telemetry};
use sipt_cache::{CacheArray, Evicted, LineAddr, WayPredStats, WayPredictor, LINE_SHIFT};
use sipt_mem::{PageSize, Translation, VirtAddr, PAGE_SHIFT};
use sipt_predictors::{BlockPredictions, PredictorBank, StagedAccess};
use sipt_telemetry::SpecEventKind;

/// Compile-time selection of an [`L1Policy`].
///
/// [`SiptL1::access_mono`] is generic over this trait; a block-replay
/// kernel matches on the runtime policy once per run and instantiates its
/// inner loop with the corresponding [`policy_tags`] ZST, removing the
/// per-access policy dispatch. (Replacement is already monomorphized
/// inside `sipt_cache::CacheArray` via its `Replacement` enum.)
pub trait PolicyTag {
    /// The policy this tag selects.
    const POLICY: L1Policy;
}

/// Zero-sized [`PolicyTag`] types, one per [`L1Policy`] variant.
pub mod policy_tags {
    use super::{L1Policy, PolicyTag};

    macro_rules! tag {
        ($(#[$doc:meta])* $name:ident => $variant:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone, Copy)]
            pub struct $name;
            impl PolicyTag for $name {
                const POLICY: L1Policy = L1Policy::$variant;
            }
        };
    }
    tag!(/** Tag for [`L1Policy::Vipt`]. */ Vipt => Vipt);
    tag!(/** Tag for [`L1Policy::Ideal`]. */ Ideal => Ideal);
    tag!(/** Tag for [`L1Policy::Pipt`]. */ Pipt => Pipt);
    tag!(/** Tag for [`L1Policy::SiptNaive`]. */ SiptNaive => SiptNaive);
    tag!(/** Tag for [`L1Policy::SiptBypass`]. */ SiptBypass => SiptBypass);
    tag!(/** Tag for [`L1Policy::SiptCombined`]. */ SiptCombined => SiptCombined);
}

/// The SIPT-capable L1 data cache.
///
/// All PC-indexed predictor state (bypass perceptron or counter, plus the
/// IDB) lives in one fused [`PredictorBank`]: each speculative access
/// hashes the PC once and touches a single interleaved row instead of
/// chasing three separately-hashed tables.
#[derive(Debug)]
pub struct SiptL1 {
    config: L1Config,
    array: CacheArray,
    way_pred: Option<WayPredictor>,
    bank: PredictorBank,
    stats: SiptStats,
    telemetry: Option<Box<L1Telemetry>>,
}

impl SiptL1 {
    /// Build an L1 from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`L1Config::validate`]).
    pub fn new(config: L1Config) -> Self {
        config.validate();
        let geometry = config.geometry;
        Self {
            array: CacheArray::new(geometry, config.replacement),
            way_pred: config
                .way_prediction
                .then(|| WayPredictor::new(geometry.sets(), geometry.ways)),
            bank: PredictorBank::new(config.perceptron, config.idb_config(), config.counter),
            config,
            stats: SiptStats::default(),
            telemetry: None,
        }
    }

    /// Attach per-access telemetry (metrics + event trace retaining at
    /// most `trace_capacity` events). Replaces any existing attachment.
    pub fn attach_telemetry(&mut self, trace_capacity: usize) {
        self.telemetry = Some(Box::new(L1Telemetry::new(trace_capacity)));
    }

    /// Like [`SiptL1::attach_telemetry`], with the event tracer sampling
    /// 1-in-`sample_every` accesses (the flight-recorder configuration;
    /// metrics stay exact). Replaces any existing attachment.
    pub fn attach_telemetry_sampled(&mut self, trace_capacity: usize, sample_every: u64) {
        self.telemetry = Some(Box::new(L1Telemetry::new_sampled(trace_capacity, sample_every)));
    }

    /// Borrow the attached telemetry, if any.
    pub fn telemetry(&self) -> Option<&L1Telemetry> {
        self.telemetry.as_deref()
    }

    /// Detach and return the telemetry bundle (e.g. at end of run).
    pub fn take_telemetry(&mut self) -> Option<L1Telemetry> {
        self.telemetry.take().map(|b| *b)
    }

    /// The configuration in force.
    pub fn config(&self) -> &L1Config {
        &self.config
    }

    /// Number of speculative index bits this cache uses.
    pub fn speculative_bits(&self) -> u32 {
        self.config.speculative_bits()
    }

    /// Perform one demand access.
    ///
    /// `tlb_cycles` is the latency after which the physical address is
    /// available (from the machine's TLB model); `translation` is the
    /// resolved translation for `va`. Returns hit/latency/outcome; on a
    /// miss the caller services the lower hierarchy and then calls
    /// [`SiptL1::fill`].
    pub fn access(
        &mut self,
        pc: u64,
        va: VirtAddr,
        translation: Translation,
        tlb_cycles: u64,
        write: bool,
    ) -> L1Access {
        self.access_impl(self.config.policy, pc, va, translation, tlb_cycles, write)
    }

    /// [`SiptL1::access`] with the policy fixed at compile time via a
    /// [`PolicyTag`]. Block-replay kernels dispatch once per run and call
    /// this in their inner loop, so the two policy matches below
    /// constant-fold away. Behaviour is identical to [`SiptL1::access`];
    /// the tag must match the configured policy (debug-asserted).
    #[inline]
    pub fn access_mono<P: PolicyTag>(
        &mut self,
        pc: u64,
        va: VirtAddr,
        translation: Translation,
        tlb_cycles: u64,
        write: bool,
    ) -> L1Access {
        debug_assert_eq!(P::POLICY, self.config.policy, "policy tag must match the configuration");
        self.access_impl(P::POLICY, pc, va, translation, tlb_cycles, write)
    }

    /// [`SiptL1::access_mono`] with an optional staged-prediction record
    /// from a preceding [`SiptL1::stage_block`] sweep. `staged` is a pure
    /// acceleration hint: the result is bit-identical with or without it
    /// (pinned by the staging differential tests).
    #[inline]
    pub fn access_mono_staged<P: PolicyTag>(
        &mut self,
        pc: u64,
        va: VirtAddr,
        translation: Translation,
        tlb_cycles: u64,
        write: bool,
        staged: Option<&StagedAccess>,
    ) -> L1Access {
        debug_assert_eq!(P::POLICY, self.config.policy, "policy tag must match the configuration");
        let (access, record) =
            self.access_core(P::POLICY, pc, va, translation, tlb_cycles, write, staged);
        if let Some(t) = &mut self.telemetry {
            t.record(&record);
        }
        access
    }

    /// [`SiptL1::access_mono`] for the block-replay kernel's telemetry
    /// block mode: the access is recorded into the caller's block-local
    /// [`BlockTelemetry`] instead of the attached [`L1Telemetry`], which
    /// the kernel flushes once per block via
    /// [`SiptL1::flush_block_telemetry`]. Only valid while
    /// [`SiptL1::telemetry_block_eligible`] holds (debug-asserted);
    /// the combination is byte-identical to [`SiptL1::access_mono`].
    ///
    /// `staged` optionally carries this access's record from a preceding
    /// [`SiptL1::stage_block`] sweep; it is a pure acceleration hint —
    /// the access result is bit-identical with or without it.
    #[inline]
    #[allow(clippy::too_many_arguments)] // the per-access hot-path signature; grouping would cost a construction per access
    pub fn access_mono_block<P: PolicyTag>(
        &mut self,
        pc: u64,
        va: VirtAddr,
        translation: Translation,
        tlb_cycles: u64,
        write: bool,
        staged: Option<&StagedAccess>,
        blk: &mut BlockTelemetry,
    ) -> L1Access {
        debug_assert_eq!(P::POLICY, self.config.policy, "policy tag must match the configuration");
        debug_assert!(
            self.telemetry_block_eligible(),
            "block-mode access without an eligible telemetry attachment"
        );
        let (access, record) =
            self.access_core(P::POLICY, pc, va, translation, tlb_cycles, write, staged);
        blk.record(&record);
        access
    }

    /// Whether [`SiptL1::stage_block`] has anything to precompute for the
    /// configured policy: staging covers the perceptron + IDB front-end,
    /// so only perceptron-bypass SIPT policies qualify.
    pub fn staging_eligible(&self) -> bool {
        matches!(self.config.policy, L1Policy::SiptBypass | L1Policy::SiptCombined)
            && self.config.bypass == BypassKind::Perceptron
    }

    /// Stage a window of a block's memory accesses ahead of the timing
    /// loop: `pcs` and `unchanged` describe consecutive memory references
    /// in program order starting at block-level access index `base`
    /// (`unchanged[k]` = speculative index bits identical between VA and
    /// PA, as the batched translation pass already knows). The per-access
    /// records land in `out`, to be passed back through
    /// [`SiptL1::access_mono_block`]'s `staged` parameter keyed by the
    /// same block-level index. Read-only on the predictor state — the
    /// bank must be exactly current at the window start; see
    /// [`PredictorBank::stage_block`] for the exactness argument.
    pub fn stage_block(
        &self,
        pcs: &[u64],
        unchanged: &[bool],
        base: usize,
        out: &mut BlockPredictions,
    ) {
        debug_assert!(self.staging_eligible(), "staging an ineligible policy");
        let idb_active =
            self.config.policy == L1Policy::SiptCombined && self.speculative_bits() > 1;
        self.bank.stage_block(pcs, unchanged, idb_active, base, out);
    }

    /// Whether the attached telemetry (if any) can be fed in block mode:
    /// zero-capacity tracer and no sampling, so per-block accumulation
    /// loses nothing. `false` when no telemetry is attached (there is
    /// nothing to accumulate into — use plain [`SiptL1::access_mono`]).
    pub fn telemetry_block_eligible(&self) -> bool {
        self.telemetry.as_deref().is_some_and(L1Telemetry::block_mode_eligible)
    }

    /// Drain a block accumulator into the attached telemetry (no-op
    /// without an attachment — but block mode is only entered when
    /// [`SiptL1::telemetry_block_eligible`], which requires one).
    pub fn flush_block_telemetry(&mut self, blk: &mut BlockTelemetry) {
        if let Some(t) = &mut self.telemetry {
            t.merge_block(blk);
        }
    }

    /// The shared body of [`SiptL1::access`] / [`SiptL1::access_mono`]:
    /// `policy` always equals `self.config.policy`, passed explicitly so
    /// the monomorphized entry makes it a compile-time constant.
    #[inline(always)]
    fn access_impl(
        &mut self,
        policy: L1Policy,
        pc: u64,
        va: VirtAddr,
        translation: Translation,
        tlb_cycles: u64,
        write: bool,
    ) -> L1Access {
        let (access, record) =
            self.access_core(policy, pc, va, translation, tlb_cycles, write, None);
        if let Some(t) = &mut self.telemetry {
            t.record(&record);
        }
        access
    }

    /// The policy/timing/array body shared by every access entry point.
    /// Returns the access result together with its telemetry record; the
    /// record is a handful of register writes and folds away entirely at
    /// call sites that discard it.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // the per-access hot-path signature; grouping would cost a construction per access
    fn access_core(
        &mut self,
        policy: L1Policy,
        pc: u64,
        va: VirtAddr,
        translation: Translation,
        tlb_cycles: u64,
        write: bool,
        staged: Option<&StagedAccess>,
    ) -> (L1Access, AccessRecord) {
        let n = self.speculative_bits();
        let va_bits = va.index_bits(n);
        let pa_bits = translation.pa.index_bits(n);
        let unchanged = va_bits == pa_bits;
        let l1 = self.config.latency;

        // --- speculation decision & classification -----------------------
        // `margin`/`used_idb`/`observed_delta` feed the optional telemetry
        // attachment; they cost a few register writes when it is off.
        // Each predictor-driven arm funnels through one fused bank entry
        // (single row hash, predict+train in one call); operation order
        // and statistics match the historical scalar composition exactly.
        let mut margin = 0u64;
        let mut used_idb = false;
        let mut observed_delta = None;
        let (outcome, speculated_bits) = match policy {
            L1Policy::Vipt | L1Policy::Ideal | L1Policy::Pipt => {
                (SpeculationOutcome::NotSpeculative, pa_bits)
            }
            L1Policy::SiptNaive => (
                if unchanged {
                    SpeculationOutcome::CorrectSpeculation
                } else {
                    SpeculationOutcome::ExtraAccess
                },
                va_bits,
            ),
            L1Policy::SiptBypass => {
                let (speculate, m) = match self.config.bypass {
                    BypassKind::Perceptron => self.bank.perceptron_access(pc, unchanged, staged),
                    BypassKind::Counter => self.bank.counter_access(pc, unchanged),
                };
                margin = m;
                let outcome = match (speculate, unchanged) {
                    (true, true) => SpeculationOutcome::CorrectSpeculation,
                    (true, false) => SpeculationOutcome::ExtraAccess,
                    (false, false) => SpeculationOutcome::CorrectBypass,
                    (false, true) => SpeculationOutcome::OpportunityLoss,
                };
                (outcome, if speculate { va_bits } else { pa_bits })
            }
            L1Policy::SiptCombined => {
                let want_idb = n > 1;
                let observed = if want_idb { translation.index_delta(va, n) } else { 0 };
                let (speculate, delta) = match self.config.bypass {
                    BypassKind::Perceptron => {
                        let out =
                            self.bank.combined_access(pc, unchanged, want_idb, observed, staged);
                        margin = out.margin;
                        (out.speculate, out.delta)
                    }
                    BypassKind::Counter => {
                        // The counter and IDB are independent tables, so
                        // fusing the counter's predict/update around the
                        // IDB operations commutes with the historical
                        // interleaving.
                        let (speculate, m) = self.bank.counter_access(pc, unchanged);
                        margin = m;
                        let delta =
                            if !speculate && want_idb { self.bank.idb_predict(pc) } else { 0 };
                        if want_idb {
                            self.bank.idb_update(pc, observed);
                        }
                        (speculate, delta)
                    }
                };
                used_idb = !speculate;
                let bits = if speculate {
                    va_bits
                } else if n == 1 {
                    // Reversed bypass prediction: flip the single bit.
                    va_bits ^ 1
                } else {
                    self.bank.idb_apply(va_bits, delta)
                };
                if want_idb {
                    observed_delta = Some(observed);
                }
                let outcome = if speculate {
                    if unchanged {
                        SpeculationOutcome::CorrectSpeculation
                    } else {
                        SpeculationOutcome::ExtraAccess
                    }
                } else if bits == pa_bits {
                    SpeculationOutcome::IdbHit
                } else {
                    SpeculationOutcome::ExtraAccess
                };
                (outcome, bits)
            }
        };

        // --- timing -------------------------------------------------------
        let mut latency = match policy {
            L1Policy::Pipt => tlb_cycles + l1,
            L1Policy::Vipt | L1Policy::Ideal => l1.max(tlb_cycles),
            _ => match outcome {
                SpeculationOutcome::CorrectSpeculation | SpeculationOutcome::IdbHit => {
                    l1.max(tlb_cycles)
                }
                SpeculationOutcome::CorrectBypass | SpeculationOutcome::OpportunityLoss => {
                    tlb_cycles + l1
                }
                SpeculationOutcome::ExtraAccess => {
                    l1.max(tlb_cycles) + l1 + self.config.replay_penalty
                }
                SpeculationOutcome::NotSpeculative => unreachable!("covered above"),
            },
        };
        let mut array_reads: u32 = if outcome.is_extra_access() { 2 } else { 1 };

        // --- array contents -----------------------------------------------
        // The speculative probe of a wrong set always misses (full-address
        // tags); the demand outcome is decided by the home-set probe.
        let pa_line = LineAddr::of_phys(translation.pa);
        let home_set = self.array.home_set(pa_line);
        debug_assert_eq!(
            home_set,
            Self::set_from_bits(va, pa_bits, self.array.geometry().index_bits()),
            "home set must equal the offset-bits index combined with PA index bits"
        );
        let hit = match self.array.lookup(home_set, pa_line) {
            Some(way) => {
                if write {
                    self.array.set_dirty(home_set, way);
                }
                if let Some(wp) = &mut self.way_pred {
                    let predicted = wp.predict(home_set);
                    wp.record_hit(home_set, way);
                    if predicted != way {
                        // Second probe of the remaining ways.
                        latency += l1;
                        array_reads += 1;
                    }
                }
                true
            }
            None => false,
        };

        let access = L1Access { hit, latency, array_reads, outcome };
        self.stats.record(&access);

        let kind = match outcome {
            SpeculationOutcome::CorrectSpeculation => SpecEventKind::FastHit,
            SpeculationOutcome::ExtraAccess if used_idb => SpecEventKind::IdbMispredict,
            SpeculationOutcome::ExtraAccess => SpecEventKind::Replay,
            SpeculationOutcome::CorrectBypass => SpecEventKind::BypassWait,
            SpeculationOutcome::OpportunityLoss => SpecEventKind::OpportunityLoss,
            SpeculationOutcome::IdbHit => SpecEventKind::IdbCorrected,
            SpeculationOutcome::NotSpeculative => SpecEventKind::NotSpeculative,
        };
        let record = AccessRecord {
            pc,
            kind,
            speculated_bits,
            actual_bits: pa_bits,
            latency,
            margin,
            hit,
            observed_delta,
            huge_page: translation.page_size == PageSize::Huge2M,
            tlb_cold: tlb_cycles > l1,
        };
        (access, record)
    }

    /// Reconstruct the set index from the page-offset part of `va` and
    /// explicit index bits beyond the page offset (debug cross-check).
    fn set_from_bits(va: VirtAddr, beyond_page_bits: u64, index_bits: u32) -> u64 {
        let offset_part_bits = (PAGE_SHIFT - LINE_SHIFT).min(index_bits);
        let offset_part = (va.raw() >> LINE_SHIFT) & ((1 << offset_part_bits) - 1);
        if index_bits <= offset_part_bits {
            offset_part
        } else {
            (beyond_page_bits << offset_part_bits | offset_part) & ((1 << index_bits) - 1)
        }
    }

    /// Fill a line after the lower hierarchy serviced a miss. Returns the
    /// evicted line (the caller forwards dirty evictions as writebacks).
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        let (way, evicted) = self.array.fill_with_way(line, dirty);
        if let Some(wp) = &mut self.way_pred {
            let set = self.array.home_set(line);
            wp.record_miss(set, way);
        }
        if evicted.is_some_and(|e| e.dirty) {
            self.stats.writebacks += 1;
        }
        evicted
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SiptStats {
        self.stats
    }

    /// Way-prediction statistics, if way prediction is enabled.
    pub fn way_pred_stats(&self) -> Option<WayPredStats> {
        self.way_pred.as_ref().map(WayPredictor::stats)
    }

    /// Reset all statistics (contents and predictor state kept). Any
    /// attached telemetry restarts empty at the same trace capacity, so
    /// post-warmup metrics cover the measured interval only.
    pub fn reset_stats(&mut self) {
        self.stats = SiptStats::default();
        if let Some(wp) = &mut self.way_pred {
            wp.reset_stats();
        }
        if let Some(t) = &mut self.telemetry {
            **t = L1Telemetry::new_sampled(t.tracer.capacity(), t.sample_every());
        }
    }

    /// Borrow the underlying array (inspection/tests).
    pub fn array(&self) -> &CacheArray {
        &self.array
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{baseline_32k_8w_vipt, sipt_128k_4w, sipt_32k_2w, sipt_32k_4w};
    use sipt_mem::{PageSize, PhysAddr, PhysFrameNum};

    /// Build a translation with an explicit VPN→PFN pair.
    fn xlate(va: VirtAddr, pfn: u64) -> Translation {
        Translation {
            pa: PhysAddr::new((pfn << PAGE_SHIFT) | va.page_offset()),
            pfn: PhysFrameNum::new(pfn),
            page_size: PageSize::Base4K,
        }
    }

    const TLB_LAT: u64 = 2;

    #[test]
    fn naive_fast_access_when_bits_unchanged() {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(L1Policy::SiptNaive));
        let va = VirtAddr::new(0x5000);
        let a = l1.access(0x40, va, xlate(va, 0x5), TLB_LAT, false);
        assert_eq!(a.outcome, SpeculationOutcome::CorrectSpeculation);
        assert_eq!(a.latency, 2); // max(l1=2, tlb=2)
        assert_eq!(a.array_reads, 1);
        assert!(!a.hit, "cold cache");
    }

    #[test]
    fn naive_replay_when_bits_change() {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(L1Policy::SiptNaive));
        // VA index bits (2 bits above offset) = 0b01; PFN 0b10 → changed.
        let va = VirtAddr::new(0x1000);
        let a = l1.access(0x40, va, xlate(va, 0b10), TLB_LAT, false);
        assert_eq!(a.outcome, SpeculationOutcome::ExtraAccess);
        assert_eq!(a.latency, 2 + 2);
        assert_eq!(a.array_reads, 2);
        assert_eq!(l1.stats().extra_accesses, 1);
    }

    #[test]
    fn vipt_and_ideal_overlap_translation() {
        for cfg in [baseline_32k_8w_vipt(), sipt_32k_2w().with_policy(L1Policy::Ideal)] {
            let lat = cfg.latency;
            let mut l1 = SiptL1::new(cfg);
            let va = VirtAddr::new(0x1234);
            let a = l1.access(0, va, xlate(va, 99), TLB_LAT, false);
            assert_eq!(a.outcome, SpeculationOutcome::NotSpeculative);
            assert_eq!(a.latency, lat.max(TLB_LAT));
        }
    }

    #[test]
    fn pipt_serializes_translation() {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(L1Policy::Pipt));
        let va = VirtAddr::new(0x1234);
        let a = l1.access(0, va, xlate(va, 99), 9, false);
        assert_eq!(a.latency, 9 + 2);
    }

    #[test]
    fn slow_tlb_stalls_even_fast_accesses() {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(L1Policy::SiptNaive));
        let va = VirtAddr::new(0x5000);
        let a = l1.access(0, va, xlate(va, 0x5), 59, false); // TLB walk
        assert_eq!(a.outcome, SpeculationOutcome::CorrectSpeculation);
        assert_eq!(a.latency, 59, "tag check cannot complete before the PA exists");
    }

    #[test]
    fn hit_after_fill() {
        let mut l1 = SiptL1::new(sipt_32k_2w());
        let va = VirtAddr::new(0x5040);
        let t = xlate(va, 0x5);
        let a = l1.access(0, va, t, TLB_LAT, false);
        assert!(!a.hit);
        l1.fill(LineAddr::of_phys(t.pa), false);
        let b = l1.access(0, va, t, TLB_LAT, false);
        assert!(b.hit);
        assert_eq!(l1.stats().hits, 1);
    }

    #[test]
    fn bypass_predictor_learns_stable_pc() {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(L1Policy::SiptBypass));
        // PC 0x10 always has unchanged bits; PC 0x20 always changed.
        let va_ok = VirtAddr::new(0x5000);
        let va_bad = VirtAddr::new(0x1000);
        for _ in 0..100 {
            l1.access(0x10, va_ok, xlate(va_ok, 0x5), TLB_LAT, false);
            l1.access(0x20, va_bad, xlate(va_bad, 0b10), TLB_LAT, false);
        }
        let s = l1.stats();
        // After warmup, PC 0x10 → correct speculation, 0x20 → correct
        // bypass; transients only at the start.
        assert!(s.correct_speculation > 90, "correct_speculation = {}", s.correct_speculation);
        assert!(s.correct_bypass > 90, "correct_bypass = {}", s.correct_bypass);
        assert!(s.extra_accesses + s.opportunity_loss < 20);
    }

    #[test]
    fn bypass_never_replays_on_correct_bypass() {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(L1Policy::SiptBypass));
        let va = VirtAddr::new(0x1000);
        for _ in 0..50 {
            l1.access(0x20, va, xlate(va, 0b10), TLB_LAT, false);
        }
        let s = l1.stats();
        assert_eq!(s.array_reads, s.accesses + s.extra_accesses);
    }

    #[test]
    fn combined_one_bit_uses_reversed_prediction() {
        // 32 KiB 4-way: a single speculative bit, no IDB involved.
        let mut l1 = SiptL1::new(sipt_32k_4w());
        assert_eq!(l1.speculative_bits(), 1);
        // This PC's bit always flips (VA bit 0 of page number = 1, PA = 0).
        let va = VirtAddr::new(0x1000);
        for _ in 0..100 {
            l1.access(0x30, va, xlate(va, 0b0), TLB_LAT, false);
        }
        let s = l1.stats();
        assert!(s.idb_hits > 80, "reversed prediction should convert to fast: {s:?}");
        assert!(s.fast_fraction() > 0.8);
    }

    #[test]
    fn combined_idb_learns_constant_delta() {
        let mut l1 = SiptL1::new(sipt_32k_2w());
        assert_eq!(l1.speculative_bits(), 2);
        // Walk a "region" where PFN = VPN + 3 (constant delta 3 mod 4).
        for i in 0..200u64 {
            let vpn = 0x100 + (i % 16);
            let va = VirtAddr::new(vpn << PAGE_SHIFT | 0x80);
            l1.access(0x44, va, xlate(va, vpn + 3), TLB_LAT, false);
        }
        let s = l1.stats();
        assert!(s.fast_fraction() > 0.9, "constant-delta region must be predicted: {s:?}");
        assert!(s.idb_hits > 150, "IDB hits = {}", s.idb_hits);
    }

    #[test]
    fn combined_three_bits() {
        let mut l1 = SiptL1::new(sipt_128k_4w());
        assert_eq!(l1.speculative_bits(), 3);
        for i in 0..300u64 {
            let vpn = 0x200 + (i % 32);
            let va = VirtAddr::new(vpn << PAGE_SHIFT);
            l1.access(0x55, va, xlate(va, vpn + 5), TLB_LAT, false);
        }
        assert!(l1.stats().fast_fraction() > 0.85, "{:?}", l1.stats());
    }

    #[test]
    fn way_misprediction_costs_a_second_read() {
        let cfg = baseline_32k_8w_vipt().with_way_prediction(true);
        let mut l1 = SiptL1::new(cfg);
        // Two lines in the same set: alternate between them.
        let va_a = VirtAddr::new(0x0040);
        let va_b = VirtAddr::new(0x0040 + (64 << 6)); // same set (64 sets), different tag
        let ta = xlate(va_a, 0x10);
        let tb = xlate(va_b, 0x11);
        l1.access(0, va_a, ta, TLB_LAT, false);
        l1.fill(LineAddr::of_phys(ta.pa), false);
        l1.access(0, va_b, tb, TLB_LAT, false);
        l1.fill(LineAddr::of_phys(tb.pa), false);
        // Alternating hits: the MRU way is always the *other* line.
        let h1 = l1.access(0, va_a, ta, TLB_LAT, false);
        assert!(h1.hit);
        assert_eq!(h1.array_reads, 2, "MRU mispredict reads twice");
        assert_eq!(h1.latency, 4 + 4);
        let wp = l1.way_pred_stats().unwrap();
        assert_eq!(wp.wrong, 1);
        // Re-access the same line: now predicted correctly.
        let h2 = l1.access(0, va_a, ta, TLB_LAT, false);
        assert_eq!(h2.array_reads, 1);
        assert_eq!(l1.way_pred_stats().unwrap().correct, 1);
    }

    #[test]
    fn writebacks_counted_on_dirty_eviction() {
        let mut l1 = SiptL1::new(sipt_32k_2w());
        let sets = l1.array().geometry().sets();
        // Fill 3 lines mapping to set 0 (stride = sets lines), dirty.
        for i in 0..3u64 {
            let line = LineAddr(i * sets);
            l1.fill(line, true);
        }
        assert_eq!(l1.stats().writebacks, 1, "2-way set overflows on the 3rd fill");
    }

    #[test]
    fn replay_penalty_charges_only_misspeculations() {
        let cfg = sipt_32k_2w().with_policy(L1Policy::SiptNaive).with_replay_penalty(10);
        let mut l1 = SiptL1::new(cfg);
        // Misspeculation: index bits change.
        let va_bad = VirtAddr::new(0x1000);
        let bad = l1.access(0, va_bad, xlate(va_bad, 0b10), TLB_LAT, false);
        assert_eq!(bad.outcome, SpeculationOutcome::ExtraAccess);
        assert_eq!(bad.latency, 2 + 2 + 10);
        // Correct speculation: no penalty.
        let va_ok = VirtAddr::new(0x5000);
        let ok = l1.access(0, va_ok, xlate(va_ok, 0x5), TLB_LAT, false);
        assert_eq!(ok.latency, 2);
    }

    #[test]
    fn telemetry_classifies_naive_outcomes() {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(L1Policy::SiptNaive));
        l1.attach_telemetry(64);
        let va_ok = VirtAddr::new(0x5000);
        let va_bad = VirtAddr::new(0x1000);
        l1.access(0x10, va_ok, xlate(va_ok, 0x5), TLB_LAT, false);
        l1.access(0x20, va_bad, xlate(va_bad, 0b10), TLB_LAT, false);
        let t = l1.telemetry().unwrap();
        let m = t.metrics();
        assert_eq!(m.counter("l1.accesses"), 2);
        assert_eq!(m.counter("l1.fast_hit"), 1);
        assert_eq!(m.counter("l1.replay"), 1);
        assert_eq!(m.histogram("l1.latency").unwrap().count(), 2);
        // The replay's latency lands in the replay histogram.
        let replays = m.histogram("l1.replay_latency").unwrap();
        assert_eq!(replays.count(), 1);
        assert_eq!(replays.max(), Some(4)); // max(2,2) + 2
                                            // Events carry the speculated-vs-actual bits.
        let events: Vec<_> = t.tracer.iter().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].speculated_bits, 0b01);
        assert_eq!(events[1].actual_bits, 0b10);
        assert_eq!(events[1].kind, SpecEventKind::Replay);
    }

    #[test]
    fn telemetry_distinguishes_idb_events_from_replays() {
        let mut l1 = SiptL1::new(sipt_32k_2w()); // combined, 2 bits
        l1.attach_telemetry(1024);
        // Constant-delta region: the IDB learns PFN = VPN + 3.
        for i in 0..100u64 {
            let vpn = 0x100 + (i % 16);
            let va = VirtAddr::new(vpn << PAGE_SHIFT | 0x80);
            l1.access(0x44, va, xlate(va, vpn + 3), TLB_LAT, false);
        }
        let t = l1.telemetry().unwrap();
        assert!(t.metrics().counter("l1.idb_corrected") > 50, "IDB conversions must be traced");
        assert_eq!(
            t.metrics().counter("l1.idb_corrected"),
            l1.stats().idb_hits,
            "telemetry and SiptStats must agree"
        );
        // The observed-delta histogram saw the constant delta 3.
        let m = t.metrics();
        let deltas = m.histogram("l1.idb_delta").unwrap();
        assert_eq!(deltas.count(), 100);
        assert_eq!(deltas.min(), Some(3));
        assert_eq!(deltas.max(), Some(3));
        // Margins were recorded for every speculative access.
        assert_eq!(m.histogram("l1.margin").unwrap().count(), 100);
    }

    #[test]
    fn telemetry_counts_bypass_and_opportunity_loss() {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(L1Policy::SiptBypass));
        l1.attach_telemetry(0); // metrics only, no event retention
        let va_ok = VirtAddr::new(0x5000);
        let va_bad = VirtAddr::new(0x1000);
        for _ in 0..100 {
            l1.access(0x10, va_ok, xlate(va_ok, 0x5), TLB_LAT, false);
            l1.access(0x20, va_bad, xlate(va_bad, 0b10), TLB_LAT, false);
        }
        let t = l1.telemetry().unwrap();
        let s = l1.stats();
        assert_eq!(t.metrics().counter("l1.bypass_wait"), s.correct_bypass);
        assert_eq!(t.metrics().counter("l1.opportunity_loss"), s.opportunity_loss);
        assert_eq!(t.metrics().counter("l1.fast_hit"), s.correct_speculation);
        assert!(t.tracer.is_empty(), "capacity 0 retains nothing");
        assert_eq!(t.tracer.recorded(), 200);
    }

    #[test]
    fn telemetry_resets_with_stats_but_survives_detach() {
        let mut l1 = SiptL1::new(sipt_32k_2w());
        l1.attach_telemetry(16);
        let va = VirtAddr::new(0x5040);
        l1.access(0, va, xlate(va, 0x5), TLB_LAT, false);
        assert_eq!(l1.telemetry().unwrap().accesses(), 1);
        l1.reset_stats();
        assert_eq!(l1.telemetry().unwrap().accesses(), 0, "warmup interval discarded");
        assert_eq!(l1.telemetry().unwrap().tracer.capacity(), 16, "capacity preserved");
        l1.access(0, va, xlate(va, 0x5), TLB_LAT, false);
        let taken = l1.take_telemetry().unwrap();
        assert_eq!(taken.accesses(), 1);
        assert!(l1.telemetry().is_none());
        // With telemetry detached the access path still works.
        l1.access(0, va, xlate(va, 0x5), TLB_LAT, false);
    }

    #[test]
    fn mono_access_matches_dynamic_dispatch_for_every_policy() {
        fn run<P: PolicyTag>(cfg: L1Config) {
            let mut dynamic = SiptL1::new(cfg.clone());
            let mut mono = SiptL1::new(cfg);
            for i in 0..500u64 {
                let vpn = 0x40 + (i % 24);
                let va = VirtAddr::new((vpn << PAGE_SHIFT) | ((i % 32) * 0x40));
                // A mix of unchanged and shifted index bits.
                let pfn = if i % 3 == 0 { vpn } else { vpn + 2 };
                let t = xlate(va, pfn);
                let pc = 0x100 + (i % 8) * 4;
                let a = dynamic.access(pc, va, t, TLB_LAT, i % 5 == 0);
                let b = mono.access_mono::<P>(pc, va, t, TLB_LAT, i % 5 == 0);
                assert_eq!(a, b, "access {i}");
                if !a.hit {
                    dynamic.fill(LineAddr::of_phys(t.pa), false);
                    mono.fill(LineAddr::of_phys(t.pa), false);
                }
            }
            assert_eq!(dynamic.stats(), mono.stats());
        }
        run::<policy_tags::Vipt>(baseline_32k_8w_vipt());
        run::<policy_tags::Ideal>(sipt_32k_2w().with_policy(L1Policy::Ideal));
        run::<policy_tags::Pipt>(sipt_32k_2w().with_policy(L1Policy::Pipt));
        run::<policy_tags::SiptNaive>(sipt_32k_2w().with_policy(L1Policy::SiptNaive));
        run::<policy_tags::SiptBypass>(sipt_32k_2w().with_policy(L1Policy::SiptBypass));
        run::<policy_tags::SiptCombined>(sipt_32k_2w());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "policy tag must match")]
    fn mono_access_rejects_mismatched_tag_in_debug() {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(L1Policy::Pipt));
        let va = VirtAddr::new(0x5000);
        let _ = l1.access_mono::<policy_tags::Vipt>(0, va, xlate(va, 0x5), TLB_LAT, false);
    }

    #[test]
    fn stats_reset_keeps_contents_and_training() {
        let mut l1 = SiptL1::new(sipt_32k_2w());
        let va = VirtAddr::new(0x5040);
        let t = xlate(va, 0x5);
        l1.access(0, va, t, TLB_LAT, false);
        l1.fill(LineAddr::of_phys(t.pa), false);
        l1.reset_stats();
        assert_eq!(l1.stats().accesses, 0);
        assert!(l1.access(0, va, t, TLB_LAT, false).hit);
    }
}
