//! Per-access observability for [`SiptL1`](crate::SiptL1).
//!
//! SIPT's evaluation lives in distributions, not just totals: how the
//! replay penalty is distributed, how confident the perceptron was when
//! it was wrong, what VA→PA index deltas the IDB actually sees. This
//! module bundles a [`MetricsRegistry`] and an [`EventTracer`] into one
//! optional attachment ([`SiptL1::attach_telemetry`]) so the hot path
//! stays branch-cheap when observability is off (a single `Option`
//! check) and fully instrumented when it is on.
//!
//! Metric names emitted (all under the `l1.` prefix):
//!
//! - counters: `l1.accesses`, `l1.hits`, plus one per
//!   [`SpecEventKind`] (`l1.fast_hit`, `l1.replay`, `l1.bypass_wait`,
//!   `l1.opportunity_loss`, `l1.idb_corrected`, `l1.idb_mispredict`,
//!   `l1.not_speculative`);
//! - histograms: `l1.latency` (every access), `l1.replay_latency`
//!   (replays and IDB mispredictions only), `l1.margin` (bypass-predictor
//!   confidence of speculative accesses), `l1.idb_delta` (observed VA→PA
//!   index-bit delta magnitude).
//!
//! [`SiptL1::attach_telemetry`]: crate::SiptL1::attach_telemetry

use sipt_telemetry::{EventTracer, MetricsRegistry, SpecEvent, SpecEventKind};

/// The static counter name for each event kind (`l1.<wire name>`).
fn counter_name(kind: SpecEventKind) -> &'static str {
    match kind {
        SpecEventKind::FastHit => "l1.fast_hit",
        SpecEventKind::Replay => "l1.replay",
        SpecEventKind::BypassWait => "l1.bypass_wait",
        SpecEventKind::OpportunityLoss => "l1.opportunity_loss",
        SpecEventKind::IdbCorrected => "l1.idb_corrected",
        SpecEventKind::IdbMispredict => "l1.idb_mispredict",
        SpecEventKind::NotSpeculative => "l1.not_speculative",
    }
}

/// One L1 access, as seen by telemetry (built by `SiptL1::access`).
#[derive(Debug, Clone, Copy)]
pub struct AccessRecord {
    /// Program counter of the memory operation.
    pub pc: u64,
    /// Speculation event class of the access.
    pub kind: SpecEventKind,
    /// Index bits the cache indexed with (speculated or corrected).
    pub speculated_bits: u64,
    /// Post-translation physical index bits.
    pub actual_bits: u64,
    /// Latency the core observed, in cycles.
    pub latency: u64,
    /// Bypass-predictor confidence margin (0 when not applicable).
    pub margin: u64,
    /// Whether the demand probe hit.
    pub hit: bool,
    /// Observed VA→PA index delta, when the policy tracks one.
    pub observed_delta: Option<u64>,
}

/// Metrics + event trace attached to one [`SiptL1`](crate::SiptL1).
#[derive(Debug)]
pub struct L1Telemetry {
    /// Named counters/histograms (see module docs for the name schema).
    pub metrics: MetricsRegistry,
    /// Ring buffer of recent speculation events.
    pub tracer: EventTracer,
    /// Access ordinal, used as the event "cycle" — the L1 has no cycle
    /// clock of its own; callers that do can correlate via the ordinal.
    ordinal: u64,
}

impl L1Telemetry {
    /// Create a telemetry bundle retaining at most `trace_capacity`
    /// events (0 disables event retention but keeps metrics).
    pub fn new(trace_capacity: usize) -> Self {
        Self {
            metrics: MetricsRegistry::new(),
            tracer: EventTracer::new(trace_capacity),
            ordinal: 0,
        }
    }

    /// Accesses recorded so far.
    pub fn accesses(&self) -> u64 {
        self.ordinal
    }

    /// Record one access (called from `SiptL1::access`).
    pub(crate) fn record(&mut self, rec: &AccessRecord) {
        self.ordinal += 1;
        self.metrics.incr("l1.accesses");
        if rec.hit {
            self.metrics.incr("l1.hits");
        }
        self.metrics.incr(counter_name(rec.kind));
        self.metrics.observe("l1.latency", rec.latency);
        match rec.kind {
            SpecEventKind::Replay | SpecEventKind::IdbMispredict => {
                self.metrics.observe("l1.replay_latency", rec.latency);
            }
            SpecEventKind::FastHit
            | SpecEventKind::BypassWait
            | SpecEventKind::OpportunityLoss
            | SpecEventKind::IdbCorrected
            | SpecEventKind::NotSpeculative => {}
        }
        if rec.kind != SpecEventKind::NotSpeculative {
            self.metrics.observe("l1.margin", rec.margin);
        }
        if let Some(delta) = rec.observed_delta {
            self.metrics.observe("l1.idb_delta", delta);
        }
        self.tracer.push(SpecEvent {
            cycle: self.ordinal,
            pc: rec.pc,
            kind: rec.kind,
            speculated_bits: rec.speculated_bits,
            actual_bits: rec.actual_bits,
            latency: rec.latency,
            margin: rec.margin,
        });
    }
}
