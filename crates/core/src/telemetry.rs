//! Per-access observability for [`SiptL1`](crate::SiptL1).
//!
//! SIPT's evaluation lives in distributions, not just totals: how the
//! replay penalty is distributed, how confident the perceptron was when
//! it was wrong, what VA→PA index deltas the IDB actually sees. This
//! module bundles hot-path accumulators and an [`EventTracer`] into one
//! optional attachment ([`SiptL1::attach_telemetry`]) so the hot path
//! stays branch-cheap when observability is off (a single `Option`
//! check) and fully instrumented when it is on.
//!
//! ## Hot-path layout
//!
//! [`L1Telemetry::record`] runs on **every** access of an instrumented
//! run, so it accumulates into plain `u64` fields and inline
//! [`Log2Histogram`]s — no per-record map lookups. The named
//! [`MetricsRegistry`] view is materialized lazily by
//! [`L1Telemetry::metrics`]; its snapshot is byte-identical to what
//! per-record `incr`/`observe` calls would have produced (names absent
//! until first touched, same values, same key order).
//!
//! Metric names emitted (all under the `l1.` prefix):
//!
//! - counters: `l1.accesses`, `l1.hits`, plus one per
//!   [`SpecEventKind`] (`l1.fast_hit`, `l1.replay`, `l1.bypass_wait`,
//!   `l1.opportunity_loss`, `l1.idb_corrected`, `l1.idb_mispredict`,
//!   `l1.not_speculative`);
//! - histograms: `l1.latency` (every access), `l1.replay_latency`
//!   (replays and IDB mispredictions only), `l1.margin` (bypass-predictor
//!   confidence of speculative accesses), `l1.idb_delta` (observed VA→PA
//!   index-bit delta magnitude).
//!
//! [`SiptL1::attach_telemetry`]: crate::SiptL1::attach_telemetry

use sipt_telemetry::{EventTracer, Json, Log2Histogram, MetricsRegistry, SpecEvent, SpecEventKind};

/// Every event kind, in a fixed order matching the accumulator array.
const KINDS: [SpecEventKind; 7] = [
    SpecEventKind::FastHit,
    SpecEventKind::Replay,
    SpecEventKind::BypassWait,
    SpecEventKind::OpportunityLoss,
    SpecEventKind::IdbCorrected,
    SpecEventKind::IdbMispredict,
    SpecEventKind::NotSpeculative,
];

/// The accumulator-array slot of each event kind.
#[inline]
fn kind_index(kind: SpecEventKind) -> usize {
    match kind {
        SpecEventKind::FastHit => 0,
        SpecEventKind::Replay => 1,
        SpecEventKind::BypassWait => 2,
        SpecEventKind::OpportunityLoss => 3,
        SpecEventKind::IdbCorrected => 4,
        SpecEventKind::IdbMispredict => 5,
        SpecEventKind::NotSpeculative => 6,
    }
}

/// The static counter name for each event kind (`l1.<wire name>`).
fn counter_name(kind: SpecEventKind) -> &'static str {
    match kind {
        SpecEventKind::FastHit => "l1.fast_hit",
        SpecEventKind::Replay => "l1.replay",
        SpecEventKind::BypassWait => "l1.bypass_wait",
        SpecEventKind::OpportunityLoss => "l1.opportunity_loss",
        SpecEventKind::IdbCorrected => "l1.idb_corrected",
        SpecEventKind::IdbMispredict => "l1.idb_mispredict",
        SpecEventKind::NotSpeculative => "l1.not_speculative",
    }
}

/// One L1 access, as seen by telemetry (built by `SiptL1::access`).
#[derive(Debug, Clone, Copy)]
pub struct AccessRecord {
    /// Program counter of the memory operation.
    pub pc: u64,
    /// Speculation event class of the access.
    pub kind: SpecEventKind,
    /// Index bits the cache indexed with (speculated or corrected).
    pub speculated_bits: u64,
    /// Post-translation physical index bits.
    pub actual_bits: u64,
    /// Latency the core observed, in cycles.
    pub latency: u64,
    /// Bypass-predictor confidence margin (0 when not applicable).
    pub margin: u64,
    /// Whether the demand probe hit.
    pub hit: bool,
    /// Observed VA→PA index delta, when the policy tracks one.
    pub observed_delta: Option<u64>,
    /// Whether the access translated through a 2 MiB superpage. A
    /// superpage offset covers every L1 index bit, so a misprediction on
    /// a superpage access means the *predictor* chose badly (bypassed or
    /// applied a stale delta), not that the bits actually moved.
    pub huge_page: bool,
    /// Whether translation arrived after the array probe would have
    /// completed (L2 TLB hit or page walk) — the "cold TLB" regime in
    /// which speculation is most valuable and mispredictions costliest.
    pub tlb_cold: bool,
}

/// Misprediction totals bucketed by root cause (paper §V: why the
/// speculated index bits were wrong). A misprediction is any replayed
/// access ([`SpecEventKind::Replay`] or [`SpecEventKind::IdbMispredict`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MispredictCauses {
    /// VA→PA index delta genuinely changed under a 4 KiB page with a
    /// warm TLB — the baseline speculation hazard.
    pub delta_change: u64,
    /// Mispredicted although the page was a 2 MiB superpage (index bits
    /// cannot change): predictor pathology, not address-layout hazard.
    pub superpage: u64,
    /// Mispredicted while the translation was still in flight past the
    /// array latency (L2 TLB hit or full walk).
    pub cold_tlb: u64,
}

impl MispredictCauses {
    /// Total mispredictions across all causes.
    pub fn total(&self) -> u64 {
        self.delta_change + self.superpage + self.cold_tlb
    }

    /// JSON object `{delta_change, superpage, cold_tlb}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("delta_change", Json::u64(self.delta_change)),
            ("superpage", Json::u64(self.superpage)),
            ("cold_tlb", Json::u64(self.cold_tlb)),
        ])
    }
}

/// Metrics + event trace attached to one [`SiptL1`](crate::SiptL1).
#[derive(Debug)]
pub struct L1Telemetry {
    /// Ring buffer of recent speculation events.
    pub tracer: EventTracer,
    /// Access ordinal, used as the event "cycle" — the L1 has no cycle
    /// clock of its own; callers that do can correlate via the ordinal.
    ordinal: u64,
    /// Demand-probe hits.
    hits: u64,
    /// Per-kind event counts, indexed by [`kind_index`].
    kind_counts: [u64; 7],
    /// `l1.latency`: every access.
    latency: Log2Histogram,
    /// `l1.replay_latency`: replays and IDB mispredictions only.
    replay_latency: Log2Histogram,
    /// `l1.margin`: speculative accesses only.
    margin: Log2Histogram,
    /// `l1.idb_delta`: observed VA→PA index deltas.
    idb_delta: Log2Histogram,
    /// Flight-recorder sampling period: every `sample_every`-th access
    /// is pushed to the tracer (1 = every access).
    sample_every: u64,
    /// Accesses skipped by sampling (not pushed to the tracer).
    sampled_out: u64,
    /// Misprediction totals by root cause.
    causes: MispredictCauses,
}

impl L1Telemetry {
    /// Create a telemetry bundle retaining at most `trace_capacity`
    /// events (0 disables event retention but keeps metrics).
    pub fn new(trace_capacity: usize) -> Self {
        Self::new_sampled(trace_capacity, 1)
    }

    /// Like [`L1Telemetry::new`], sampling 1-in-`sample_every` accesses
    /// into the event tracer (deterministic, ordinal-based — access 1,
    /// 1+N, 1+2N, ... are kept). 0 is treated as 1 (sample everything).
    /// Metrics, histograms, and cause counters always see every access;
    /// only the flight-recorder ring is sampled.
    pub fn new_sampled(trace_capacity: usize, sample_every: u64) -> Self {
        Self {
            tracer: EventTracer::new(trace_capacity),
            ordinal: 0,
            hits: 0,
            kind_counts: [0; 7],
            latency: Log2Histogram::default(),
            replay_latency: Log2Histogram::default(),
            margin: Log2Histogram::default(),
            idb_delta: Log2Histogram::default(),
            sample_every: sample_every.max(1),
            sampled_out: 0,
            causes: MispredictCauses::default(),
        }
    }

    /// The flight-recorder sampling period (1 = unsampled).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Accesses the sampler skipped (never reached the tracer).
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Misprediction totals by root cause.
    pub fn mispredict_causes(&self) -> MispredictCauses {
        self.causes
    }

    /// The flight-recorder summary for the report's `observability`
    /// block: tracer accounting (capacity/recorded/retained/dropped),
    /// sampling accounting, and the misprediction-cause breakdown.
    pub fn flight_json(&self) -> Json {
        let mut j = self.tracer.to_json();
        j.insert("sample_every", Json::u64(self.sample_every));
        j.insert("sampled_out", Json::u64(self.sampled_out));
        j.insert("mispredict_causes", self.causes.to_json());
        j
    }

    /// Accesses recorded so far.
    pub fn accesses(&self) -> u64 {
        self.ordinal
    }

    /// The named-metrics view of everything recorded so far, materialized
    /// on demand. Names appear only once their value has been touched —
    /// exactly as if every [`L1Telemetry::record`] had gone through the
    /// registry directly — so snapshots and report JSON are unchanged by
    /// the hot-path accumulator layout.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        if self.ordinal > 0 {
            m.count("l1.accesses", self.ordinal);
        }
        if self.hits > 0 {
            m.count("l1.hits", self.hits);
        }
        for kind in KINDS {
            let n = self.kind_counts[kind_index(kind)];
            if n > 0 {
                m.count(counter_name(kind), n);
            }
        }
        for (name, hist) in [
            ("l1.latency", &self.latency),
            ("l1.replay_latency", &self.replay_latency),
            ("l1.margin", &self.margin),
            ("l1.idb_delta", &self.idb_delta),
        ] {
            if hist.count() > 0 {
                m.set_histogram(name, hist.clone());
            }
        }
        m
    }

    /// Record one access (called from `SiptL1::access`). Forced inline:
    /// at monomorphized call sites the event kind is a constant, so the
    /// kind-conditional branches below fold away entirely.
    #[inline(always)]
    pub(crate) fn record(&mut self, rec: &AccessRecord) {
        self.ordinal += 1;
        self.hits += u64::from(rec.hit);
        self.kind_counts[kind_index(rec.kind)] += 1;
        self.latency.record(rec.latency);
        if matches!(rec.kind, SpecEventKind::Replay | SpecEventKind::IdbMispredict) {
            self.replay_latency.record(rec.latency);
        }
        if rec.kind != SpecEventKind::NotSpeculative {
            self.margin.record(rec.margin);
        }
        if let Some(delta) = rec.observed_delta {
            self.idb_delta.record(delta);
        }
        if matches!(rec.kind, SpecEventKind::Replay | SpecEventKind::IdbMispredict) {
            // Cause priority: a superpage misprediction is predictor
            // pathology regardless of TLB temperature; otherwise a slow
            // translation marks the cold-TLB regime; the remainder are
            // genuine index-delta changes.
            if rec.huge_page {
                self.causes.superpage += 1;
            } else if rec.tlb_cold {
                self.causes.cold_tlb += 1;
            } else {
                self.causes.delta_change += 1;
            }
        }
        if self.sample_every > 1 && !(self.ordinal - 1).is_multiple_of(self.sample_every) {
            self.sampled_out += 1;
            return;
        }
        self.tracer.push(SpecEvent {
            cycle: self.ordinal,
            pc: rec.pc,
            kind: rec.kind,
            speculated_bits: rec.speculated_bits,
            actual_bits: rec.actual_bits,
            latency: rec.latency,
            margin: rec.margin,
        });
    }
}

/// Block-local telemetry accumulator for the block-replay kernel.
///
/// Holds exactly the plain-counter state of [`L1Telemetry`] — hit/kind
/// counts, the four histograms, cause buckets — with no ordinal and no
/// tracer. The kernel records every access of a run into one reusable
/// `BlockTelemetry` on the stack and flushes it into the attached
/// [`L1Telemetry`] once per block via `SiptL1::flush_block_telemetry`,
/// keeping per-access work down to local field updates.
///
/// Only valid when the tracer retains nothing and sampling is off
/// (`trace_capacity == 0`, `sample_every == 1` — the runner's default
/// attachment): then the deferred tracer bookkeeping is a pure count
/// ([`EventTracer::account_unretained`]) and the merged state is
/// field-for-field identical to per-access recording, which
/// `block_merge_matches_sequential_recording` pins.
#[derive(Debug)]
pub struct BlockTelemetry {
    count: u64,
    hits: u64,
    kind_counts: [u64; 7],
    latency: Log2Histogram,
    replay_latency: Log2Histogram,
    margin: Log2Histogram,
    idb_delta: Log2Histogram,
    causes: MispredictCauses,
}

impl Default for BlockTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockTelemetry {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            hits: 0,
            kind_counts: [0; 7],
            latency: Log2Histogram::default(),
            replay_latency: Log2Histogram::default(),
            margin: Log2Histogram::default(),
            idb_delta: Log2Histogram::default(),
            causes: MispredictCauses::default(),
        }
    }

    /// Accesses accumulated since the last flush.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Record one access — [`L1Telemetry::record`] minus ordinal and
    /// tracer, same kind-conditional structure so monomorphized call
    /// sites fold the branches identically.
    #[inline(always)]
    pub(crate) fn record(&mut self, rec: &AccessRecord) {
        self.count += 1;
        self.hits += u64::from(rec.hit);
        self.kind_counts[kind_index(rec.kind)] += 1;
        self.latency.record(rec.latency);
        if matches!(rec.kind, SpecEventKind::Replay | SpecEventKind::IdbMispredict) {
            self.replay_latency.record(rec.latency);
        }
        if rec.kind != SpecEventKind::NotSpeculative {
            self.margin.record(rec.margin);
        }
        if let Some(delta) = rec.observed_delta {
            self.idb_delta.record(delta);
        }
        if matches!(rec.kind, SpecEventKind::Replay | SpecEventKind::IdbMispredict) {
            if rec.huge_page {
                self.causes.superpage += 1;
            } else if rec.tlb_cold {
                self.causes.cold_tlb += 1;
            } else {
                self.causes.delta_change += 1;
            }
        }
    }
}

impl L1Telemetry {
    /// Whether this telemetry attachment can be fed via
    /// [`BlockTelemetry`]: nothing is retained per access (zero-capacity
    /// tracer) and sampling is off, so deferred bookkeeping loses no
    /// information.
    pub fn block_mode_eligible(&self) -> bool {
        self.tracer.capacity() == 0 && self.sample_every == 1
    }

    /// Drain `blk` into this telemetry. Field-for-field identical to
    /// having recorded each access directly (histogram merge is exact;
    /// the ordinal advances by the block count; the zero-capacity tracer
    /// counts every access as recorded-and-dropped).
    ///
    /// # Panics
    ///
    /// Panics (debug) unless [`L1Telemetry::block_mode_eligible`].
    pub(crate) fn merge_block(&mut self, blk: &mut BlockTelemetry) {
        debug_assert!(self.block_mode_eligible(), "block flush into an ineligible telemetry");
        self.ordinal += blk.count;
        self.hits += blk.hits;
        for (a, b) in self.kind_counts.iter_mut().zip(blk.kind_counts) {
            *a += b;
        }
        self.latency.merge(&blk.latency);
        self.replay_latency.merge(&blk.replay_latency);
        self.margin.merge(&blk.margin);
        self.idb_delta.merge(&blk.idb_delta);
        self.causes.delta_change += blk.causes.delta_change;
        self.causes.superpage += blk.causes.superpage;
        self.causes.cold_tlb += blk.causes.cold_tlb;
        self.tracer.account_unretained(blk.count);
        *blk = BlockTelemetry::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The materialized registry must be indistinguishable from one fed
    /// per-record `incr`/`observe` calls — same names, same values, same
    /// absent-until-touched behaviour.
    #[test]
    fn materialized_metrics_match_direct_registry_feed() {
        let mut t = L1Telemetry::new(8);
        let mut direct = MetricsRegistry::new();
        let kinds = [
            (SpecEventKind::FastHit, true, 2, 3, None),
            (SpecEventKind::Replay, false, 9, 1, None),
            (SpecEventKind::IdbCorrected, true, 4, 2, Some(1)),
            (SpecEventKind::NotSpeculative, true, 6, 0, None),
            (SpecEventKind::Replay, true, 11, 2, Some(3)),
        ];
        for (i, &(kind, hit, latency, margin, delta)) in kinds.iter().enumerate() {
            t.record(&AccessRecord {
                pc: i as u64,
                kind,
                speculated_bits: 0,
                actual_bits: 0,
                latency,
                margin,
                hit,
                observed_delta: delta,
                huge_page: false,
                tlb_cold: false,
            });
            direct.incr("l1.accesses");
            if hit {
                direct.incr("l1.hits");
            }
            direct.incr(counter_name(kind));
            direct.observe("l1.latency", latency);
            if matches!(kind, SpecEventKind::Replay | SpecEventKind::IdbMispredict) {
                direct.observe("l1.replay_latency", latency);
            }
            if kind != SpecEventKind::NotSpeculative {
                direct.observe("l1.margin", margin);
            }
            if let Some(d) = delta {
                direct.observe("l1.idb_delta", d);
            }
        }
        assert_eq!(t.metrics().snapshot(), direct.snapshot());
        assert_eq!(t.metrics().snapshot().to_json().render(), direct.snapshot().to_json().render());
    }

    /// Untouched names stay absent (the lazily-created-entry contract).
    #[test]
    fn untouched_metrics_stay_absent() {
        let t = L1Telemetry::new(4);
        let snap = t.metrics().snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());

        let mut t = L1Telemetry::new(4);
        t.record(&AccessRecord {
            pc: 0,
            kind: SpecEventKind::NotSpeculative,
            speculated_bits: 0,
            actual_bits: 0,
            latency: 4,
            margin: 0,
            hit: false,
            observed_delta: None,
            huge_page: false,
            tlb_cold: false,
        });
        let snap = t.metrics().snapshot();
        assert_eq!(snap.counters.get("l1.accesses"), Some(&1));
        assert!(!snap.counters.contains_key("l1.hits"));
        assert!(!snap.histograms.contains_key("l1.margin"));
        assert!(snap.histograms.contains_key("l1.latency"));
    }

    fn rec(pc: u64, kind: SpecEventKind, huge_page: bool, tlb_cold: bool) -> AccessRecord {
        AccessRecord {
            pc,
            kind,
            speculated_bits: 0,
            actual_bits: 1,
            latency: 7,
            margin: 0,
            hit: true,
            observed_delta: None,
            huge_page,
            tlb_cold,
        }
    }

    /// Sampling must thin only the tracer: metrics and cause counters
    /// keep exact totals, and the skipped accesses are accounted.
    #[test]
    fn sampling_thins_tracer_but_not_metrics() {
        let mut t = L1Telemetry::new_sampled(64, 4);
        for i in 0..10 {
            t.record(&rec(i, SpecEventKind::FastHit, false, false));
        }
        assert_eq!(t.accesses(), 10);
        assert_eq!(t.metrics().snapshot().counters["l1.fast_hit"], 10);
        // Ordinals 1, 5, 9 sampled in; the other 7 sampled out.
        assert_eq!(t.tracer.recorded(), 3);
        assert_eq!(t.sampled_out(), 7);
        let cycles: Vec<u64> = t.tracer.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 5, 9], "deterministic ordinal-based sampling");
        let j = t.flight_json();
        assert_eq!(j.path("sample_every").and_then(Json::as_f64), Some(4.0));
        assert_eq!(j.path("sampled_out").and_then(Json::as_f64), Some(7.0));
    }

    /// Mispredictions bucket by cause with superpage > cold-TLB > delta
    /// priority; correct speculations never count.
    #[test]
    fn mispredict_causes_bucket_by_priority() {
        let mut t = L1Telemetry::new(16);
        t.record(&rec(0, SpecEventKind::Replay, false, false)); // delta change
        t.record(&rec(1, SpecEventKind::Replay, true, true)); // superpage wins
        t.record(&rec(2, SpecEventKind::IdbMispredict, false, true)); // cold TLB
        t.record(&rec(3, SpecEventKind::FastHit, true, true)); // not a mispredict
        t.record(&rec(4, SpecEventKind::BypassWait, false, true)); // not a mispredict
        let causes = t.mispredict_causes();
        assert_eq!(causes.delta_change, 1);
        assert_eq!(causes.superpage, 1);
        assert_eq!(causes.cold_tlb, 1);
        assert_eq!(causes.total(), 3);
        let j = t.flight_json();
        assert_eq!(j.path("mispredict_causes.superpage").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.path("capacity").and_then(Json::as_f64), Some(16.0));
    }

    /// Block-accumulated recording flushed per block must be
    /// indistinguishable from per-access recording: metrics snapshot,
    /// cause buckets, accesses, and tracer accounting all byte-identical.
    #[test]
    fn block_merge_matches_sequential_recording() {
        let mut direct = L1Telemetry::new(0);
        let mut blocked = L1Telemetry::new(0);
        assert!(blocked.block_mode_eligible());
        let mut blk = BlockTelemetry::new();
        let kinds = [
            SpecEventKind::FastHit,
            SpecEventKind::Replay,
            SpecEventKind::IdbMispredict,
            SpecEventKind::NotSpeculative,
            SpecEventKind::BypassWait,
        ];
        for i in 0..97u64 {
            let r = AccessRecord {
                pc: 0x1000 + i,
                kind: kinds[(i % 5) as usize],
                speculated_bits: i % 4,
                actual_bits: (i + 1) % 4,
                latency: 2 + i % 19,
                margin: i % 7,
                hit: i % 3 != 0,
                observed_delta: (i % 4 == 1).then_some(i % 5),
                huge_page: i % 6 == 2,
                tlb_cold: i % 4 == 3,
            };
            direct.record(&r);
            blk.record(&r);
            // Uneven block boundaries, including a 1-access block.
            if i % 17 == 0 {
                blocked.merge_block(&mut blk);
                assert_eq!(blk.count(), 0, "flush drains the accumulator");
            }
        }
        blocked.merge_block(&mut blk);
        assert_eq!(direct.accesses(), blocked.accesses());
        assert_eq!(direct.metrics().snapshot(), blocked.metrics().snapshot());
        assert_eq!(
            direct.metrics().snapshot().to_json().render(),
            blocked.metrics().snapshot().to_json().render()
        );
        assert_eq!(direct.mispredict_causes(), blocked.mispredict_causes());
        assert_eq!(direct.tracer.recorded(), blocked.tracer.recorded());
        assert_eq!(direct.tracer.dropped(), blocked.tracer.dropped());
        assert_eq!(direct.sampled_out(), blocked.sampled_out());
        assert_eq!(direct.flight_json().render(), blocked.flight_json().render());
    }

    /// Retention or sampling disqualifies block mode.
    #[test]
    fn block_mode_eligibility_requires_silent_tracer() {
        assert!(L1Telemetry::new(0).block_mode_eligible());
        assert!(!L1Telemetry::new(16).block_mode_eligible());
        assert!(!L1Telemetry::new_sampled(0, 4).block_mode_eligible());
        assert!(L1Telemetry::new_sampled(0, 0).block_mode_eligible(), "0 normalizes to 1");
    }

    /// The sampling configuration must not leak into the metrics
    /// snapshot (payload safety: reports are fingerprint-pinned).
    #[test]
    fn sampling_leaves_metrics_snapshot_identical() {
        let mut full = L1Telemetry::new(32);
        let mut sampled = L1Telemetry::new_sampled(32, 8);
        for i in 0..20 {
            let r = rec(
                i,
                if i % 3 == 0 { SpecEventKind::Replay } else { SpecEventKind::FastHit },
                false,
                i % 2 == 0,
            );
            full.record(&r);
            sampled.record(&r);
        }
        assert_eq!(full.metrics().snapshot(), sampled.metrics().snapshot());
        assert_eq!(full.mispredict_causes(), sampled.mispredict_causes());
    }
}
