//! Internal calibration probe: prints per-benchmark hit rates, fast
//! fractions and IPCs for the smoke set. Not part of the documented
//! examples (those live in the workspace-level `examples/`).

use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w, L1Policy};
use sipt_sim::{run_benchmark, speculation_profile, Condition, SystemKind};

fn main() {
    let cond = Condition::quick();
    for bench in ["sjeng", "hmmer", "libquantum", "mcf", "calculix", "gcc", "graph500"] {
        let base = run_benchmark(bench, baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
        let naive = run_benchmark(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptNaive),
            SystemKind::OooThreeLevel,
            &cond,
        );
        let comb = run_benchmark(bench, sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        let prof = speculation_profile(bench, &cond);
        println!(
            "{bench:14} ipc={:.3} l1hit={:.3} l2hit={:.3} llchit={:.3} tlb1={:.3} | naive_fast={:.3} comb_fast={:.3} | unch1={:.3} unch2={:.3} huge={:.3} | sipt_ipc_vs={:.3}",
            base.ipc(),
            base.sipt.hit_rate(),
            base.l2.map_or(0.0, |l| l.hit_rate()),
            base.llc.hit_rate(),
            base.tlb.l1_hit_rate(),
            naive.sipt.fast_fraction(),
            comb.sipt.fast_fraction(),
            prof.unchanged[0],
            prof.unchanged[1],
            prof.hugepage,
            comb.ipc_vs(&base),
        );
    }
}
