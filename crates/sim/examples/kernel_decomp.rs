//! Wall-clock decomposition of the block-replay kernel — a profiling aid,
//! not a benchmark of record (`cargo run -p sipt-sim --release --example
//! kernel_decomp`). Times each kernel ingredient in isolation over the
//! same trace the full kernel replays, so a perf regression can be
//! attributed to a phase without a system profiler.

use sipt_cache::WayPredictor;
use sipt_core::{sipt_32k_2w, BlockPredictions, L1Policy, PredictorBank, SiptL1};
use sipt_cpu::{unpack_meta_fields, MemResponse, OooConfig, OooEngine};
use sipt_mem::{
    AddressSpace, BuddyAllocator, PhysAddr, PhysFrameNum, PlacementPolicy, Translation, VirtAddr,
};
use sipt_predictors::{IndexDeltaBuffer, PerceptronPredictor};
use sipt_sim::{replay_trace, Machine, SystemKind};
use sipt_workloads::{benchmark, MaterializedTrace, TraceGen};
use std::time::Instant;

const INSTS: u64 = 200_000;
const REPS: u32 = 5;

fn time<R>(label: &str, insts: u64, mut f: impl FnMut() -> R) {
    // One warmup, then best-of-REPS.
    std::hint::black_box(f());
    let mut best = f64::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("{label:32} {:8.2} ns/inst  ({:.1} ms)", best * 1e9 / insts as f64, best * 1e3);
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "mcf".into());
    let spec = benchmark(&which).unwrap();
    let mut phys = BuddyAllocator::with_bytes(1 << 30);
    let mut asp = AddressSpace::new(7, PlacementPolicy::LinuxDefault);
    let gen = TraceGen::build(&spec, &mut asp, &mut phys, INSTS, 42).unwrap();
    let trace = MaterializedTrace::from_gen(gen);
    let mem_count: u64 = {
        let mut c = trace.cursor();
        let mut n = 0u64;
        while let Some(b) = c.next_block(4096) {
            n += b.mem_vas.len() as u64;
        }
        n
    };
    println!(
        "trace {which}: {INSTS} insts, {mem_count} memory refs ({:.0}%)",
        100.0 * mem_count as f64 / INSTS as f64
    );

    // (a) full kernel, combined (staged + unstaged predictor front-end)
    // and ideal policies.
    for (label, cfg, stage) in [
        ("full replay (SiptCombined)", sipt_32k_2w(), true),
        ("full replay (SiptCombined, unstaged)", sipt_32k_2w(), false),
        ("full replay (Ideal)", sipt_32k_2w().with_policy(L1Policy::Ideal), true),
    ] {
        sipt_sim::set_predictor_stage(stage);
        let mut machine = Machine::new(asp.clone(), cfg, SystemKind::OooThreeLevel);
        time(label, INSTS, || {
            replay_trace(SystemKind::OooThreeLevel, &mut machine, &trace, "decomp").unwrap()
        });
    }
    sipt_sim::set_predictor_stage(false);

    // (b) cursor walk alone: block slicing + meta decode.
    time("cursor + meta decode", INSTS, || {
        let mut c = trace.cursor();
        let mut acc = 0u64;
        while let Some(b) = c.next_block(256) {
            for (&meta, &pc) in b.meta.iter().zip(b.pcs) {
                let (d, s, m, l) = unpack_meta_fields(meta);
                acc = acc
                    .wrapping_add(pc)
                    .wrapping_add(l)
                    .wrapping_add(d.unwrap_or(0) as u64)
                    .wrapping_add(s[0].unwrap_or(0) as u64)
                    .wrapping_add(m.map_or(0, u64::from));
            }
        }
        acc
    });

    // (c) engine steps alone: constant-latency memory, no L1/TLB.
    time("engine step (OOO)", INSTS, || {
        let mut engine = OooEngine::new(OooConfig::default());
        let mut c = trace.cursor();
        while let Some(b) = c.next_block(256) {
            for &meta in b.meta {
                let (dst, srcs, mem_store, lat) = unpack_meta_fields(meta);
                engine
                    .step(dst, srcs, mem_store, lat, |_| MemResponse { latency: 3, port_slots: 1 });
            }
        }
        engine.finish()
    });

    // (c') engine steps with run detection: non-memory runs go through
    // `step_run` (the production phase-2 shape), memory ops step alone.
    // The trailing coverage line says how many instructions the closed-
    // form fast-forward absorbed (it only engages when retirement has
    // been pushed far ahead of fetch, e.g. beneath a DRAM miss).
    let run_engine = || {
        let mut engine = OooEngine::new(OooConfig::default());
        let mut c = trace.cursor();
        while let Some(b) = c.next_block(256) {
            let meta = b.meta;
            let mut i = 0usize;
            while i < meta.len() {
                let start = i;
                while i < meta.len() && !sipt_cpu::meta_has_mem(meta[i]) {
                    i += 1;
                }
                // Production shape: long runs through the fast-forwarding
                // slice API, short runs stepped inline.
                if i - start >= sipt_cpu::RUN_FAST_MIN {
                    engine.step_run(&meta[start..i]);
                } else {
                    for &m in &meta[start..i] {
                        let (dst, srcs, _, lat) = unpack_meta_fields(m);
                        engine.step(dst, srcs, None, lat, |_| -> MemResponse {
                            unreachable!("non-memory instruction")
                        });
                    }
                }
                if i < meta.len() {
                    let (dst, srcs, mem_store, lat) = unpack_meta_fields(meta[i]);
                    engine.step(dst, srcs, mem_store, lat, |_| MemResponse {
                        latency: 3,
                        port_slots: 1,
                    });
                    i += 1;
                }
            }
        }
        engine
    };
    time("engine step_run (OOO)", INSTS, || run_engine().finish());
    {
        let engine = run_engine();
        println!(
            "{:32} {:8.1} % of insts",
            "  fast-forward coverage",
            100.0 * engine.fast_fwd_insts() as f64 / INSTS as f64
        );
    }

    // (d) translation phase alone (the production phase-1, both modes).
    for (label, on) in [("phase1 translate (batched)", true), ("phase1 translate (plain)", false)] {
        sipt_sim::set_tlb_batch(on);
        let cfg = sipt_32k_2w();
        let mut machine = Machine::new(asp.clone(), cfg, SystemKind::OooThreeLevel);
        // Replay once to warm the TLB, then time full replays; the
        // translate share is (replay - engine - L1) but also directly
        // visible via the batched-vs-plain delta.
        time(label, INSTS, || {
            replay_trace(SystemKind::OooThreeLevel, &mut machine, &trace, "decomp").unwrap()
        });
    }
    sipt_sim::set_tlb_batch(true);

    // (e) L1 access alone over the trace's memory VAs (identity
    // translation; hit-heavy by construction).
    for (label, policy) in [
        ("l1 access (SiptCombined)", L1Policy::SiptCombined),
        ("l1 access (Ideal)", L1Policy::Ideal),
    ] {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(policy));
        let vas: Vec<u64> = {
            let mut c = trace.cursor();
            let mut v = Vec::new();
            while let Some(b) = c.next_block(4096) {
                v.extend_from_slice(b.mem_vas);
            }
            v
        };
        time(label, vas.len() as u64, || {
            let mut acc = 0u64;
            for (i, &raw) in vas.iter().enumerate() {
                let va = VirtAddr::new(raw);
                let t = Translation {
                    pa: PhysAddr::new(raw),
                    pfn: PhysFrameNum::new(raw >> 12),
                    page_size: sipt_mem::PageSize::Base4K,
                };
                let a = l1.access(0x400000 + (i as u64 % 64) * 4, va, t, 2, false);
                acc = acc.wrapping_add(a.latency);
            }
            acc
        });
    }

    // (f) combined-predictor decomposition: the L1's predictor overhead
    // split into its ingredients, each over the trace's memory-access
    // stream. Outcomes use a deterministic synthetic mix (~75% index bits
    // unchanged) so the perceptron trains at a realistic rate instead of
    // saturating, and deltas derive from the VA's index bits.
    let cfg = sipt_32k_2w();
    let (pcs, mvas): (Vec<u64>, Vec<u64>) = {
        let mut c = trace.cursor();
        let (mut p, mut v) = (Vec::new(), Vec::new());
        while let Some(b) = c.next_block(4096) {
            let mut mi = 0usize;
            for (&meta, &pc) in b.meta.iter().zip(b.pcs) {
                if unpack_meta_fields(meta).2.is_some() {
                    p.push(pc);
                    v.push(b.mem_vas[mi]);
                    mi += 1;
                }
            }
        }
        (p, v)
    };
    let unchanged: Vec<bool> = mvas.iter().map(|&raw| (raw ^ (raw >> 7)) & 3 != 0).collect();
    let deltas: Vec<u64> = mvas.iter().map(|&raw| (raw >> 12) & 3).collect();
    let nmem = pcs.len() as u64;

    time("  perceptron predict+train", nmem, || {
        let mut p = PerceptronPredictor::new(cfg.perceptron);
        let mut acc = 0u64;
        for (&pc, &un) in pcs.iter().zip(&unchanged) {
            acc = acc.wrapping_add(u64::from(p.predict(pc)));
            p.update(pc, un);
        }
        acc
    });
    time("  idb predict+update", nmem, || {
        let mut idb = IndexDeltaBuffer::new(cfg.idb_config());
        let mut acc = 0u64;
        for (&pc, &d) in pcs.iter().zip(&deltas) {
            acc = acc.wrapping_add(idb.predict(pc));
            idb.update(pc, d);
        }
        acc
    });
    time("  way predictor", nmem, || {
        let mut wp = WayPredictor::new(cfg.geometry.sets(), cfg.geometry.ways);
        let mut acc = 0u64;
        for &raw in &mvas {
            let set = (raw >> 6) % cfg.geometry.sets();
            let way = wp.predict(set);
            acc = acc.wrapping_add(u64::from(way));
            wp.record_hit(set, way ^ ((raw >> 9) as u32 & 1));
        }
        acc
    });
    time("  bank fused combined", nmem, || {
        let mut bank = PredictorBank::new(cfg.perceptron, cfg.idb_config(), cfg.counter);
        let mut acc = 0u64;
        for ((&pc, &un), &d) in pcs.iter().zip(&unchanged).zip(&deltas) {
            let o = bank.combined_access(pc, un, true, d, None);
            acc = acc.wrapping_add(o.margin).wrapping_add(o.delta);
        }
        acc
    });
    time("  bank staged sweep", nmem, || {
        let bank = PredictorBank::new(cfg.perceptron, cfg.idb_config(), cfg.counter);
        let mut preds = BlockPredictions::new();
        let mut acc = 0u64;
        for (w, (pw, uw)) in pcs.chunks(64).zip(unchanged.chunks(64)).enumerate() {
            bank.stage_block(pw, uw, true, w * 64, &mut preds);
            acc = acc.wrapping_add(preds.len() as u64);
        }
        acc
    });
}
