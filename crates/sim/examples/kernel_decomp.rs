//! Wall-clock decomposition of the block-replay kernel — a profiling aid,
//! not a benchmark of record (`cargo run -p sipt-sim --release --example
//! kernel_decomp`). Times each kernel ingredient in isolation over the
//! same trace the full kernel replays, so a perf regression can be
//! attributed to a phase without a system profiler.

use sipt_core::{sipt_32k_2w, L1Policy, SiptL1};
use sipt_cpu::{unpack_meta_fields, MemResponse, OooConfig, OooEngine};
use sipt_mem::{
    AddressSpace, BuddyAllocator, PhysAddr, PhysFrameNum, PlacementPolicy, Translation, VirtAddr,
};
use sipt_sim::{replay_trace, Machine, SystemKind};
use sipt_workloads::{benchmark, MaterializedTrace, TraceGen};
use std::time::Instant;

const INSTS: u64 = 200_000;
const REPS: u32 = 5;

fn time<R>(label: &str, insts: u64, mut f: impl FnMut() -> R) {
    // One warmup, then best-of-REPS.
    std::hint::black_box(f());
    let mut best = f64::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("{label:32} {:8.2} ns/inst  ({:.1} ms)", best * 1e9 / insts as f64, best * 1e3);
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "mcf".into());
    let spec = benchmark(&which).unwrap();
    let mut phys = BuddyAllocator::with_bytes(1 << 30);
    let mut asp = AddressSpace::new(7, PlacementPolicy::LinuxDefault);
    let gen = TraceGen::build(&spec, &mut asp, &mut phys, INSTS, 42).unwrap();
    let trace = MaterializedTrace::from_gen(gen);
    let mem_count: u64 = {
        let mut c = trace.cursor();
        let mut n = 0u64;
        while let Some(b) = c.next_block(4096) {
            n += b.mem_vas.len() as u64;
        }
        n
    };
    println!(
        "trace {which}: {INSTS} insts, {mem_count} memory refs ({:.0}%)",
        100.0 * mem_count as f64 / INSTS as f64
    );

    // (a) full kernel, combined + ideal policies.
    for (label, cfg) in [
        ("full replay (SiptCombined)", sipt_32k_2w()),
        ("full replay (Ideal)", sipt_32k_2w().with_policy(L1Policy::Ideal)),
    ] {
        let mut machine = Machine::new(asp.clone(), cfg, SystemKind::OooThreeLevel);
        time(label, INSTS, || {
            replay_trace(SystemKind::OooThreeLevel, &mut machine, &trace, "decomp").unwrap()
        });
    }

    // (b) cursor walk alone: block slicing + meta decode.
    time("cursor + meta decode", INSTS, || {
        let mut c = trace.cursor();
        let mut acc = 0u64;
        while let Some(b) = c.next_block(256) {
            for (&meta, &pc) in b.meta.iter().zip(b.pcs) {
                let (d, s, m, l) = unpack_meta_fields(meta);
                acc = acc
                    .wrapping_add(pc)
                    .wrapping_add(l)
                    .wrapping_add(d.unwrap_or(0) as u64)
                    .wrapping_add(s[0].unwrap_or(0) as u64)
                    .wrapping_add(m.map_or(0, u64::from));
            }
        }
        acc
    });

    // (c) engine steps alone: constant-latency memory, no L1/TLB.
    time("engine step (OOO)", INSTS, || {
        let mut engine = OooEngine::new(OooConfig::default());
        let mut c = trace.cursor();
        while let Some(b) = c.next_block(256) {
            for &meta in b.meta {
                let (dst, srcs, mem_store, lat) = unpack_meta_fields(meta);
                engine
                    .step(dst, srcs, mem_store, lat, |_| MemResponse { latency: 3, port_slots: 1 });
            }
        }
        engine.finish()
    });

    // (d) translation phase alone (the production phase-1, both modes).
    for (label, on) in [("phase1 translate (batched)", true), ("phase1 translate (plain)", false)] {
        sipt_sim::set_tlb_batch(on);
        let cfg = sipt_32k_2w();
        let mut machine = Machine::new(asp.clone(), cfg, SystemKind::OooThreeLevel);
        // Replay once to warm the TLB, then time full replays; the
        // translate share is (replay - engine - L1) but also directly
        // visible via the batched-vs-plain delta.
        time(label, INSTS, || {
            replay_trace(SystemKind::OooThreeLevel, &mut machine, &trace, "decomp").unwrap()
        });
    }
    sipt_sim::set_tlb_batch(true);

    // (e) L1 access alone over the trace's memory VAs (identity
    // translation; hit-heavy by construction).
    for (label, policy) in [
        ("l1 access (SiptCombined)", L1Policy::SiptCombined),
        ("l1 access (Ideal)", L1Policy::Ideal),
    ] {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(policy));
        let vas: Vec<u64> = {
            let mut c = trace.cursor();
            let mut v = Vec::new();
            while let Some(b) = c.next_block(4096) {
                v.extend_from_slice(b.mem_vas);
            }
            v
        };
        time(label, vas.len() as u64, || {
            let mut acc = 0u64;
            for (i, &raw) in vas.iter().enumerate() {
                let va = VirtAddr::new(raw);
                let t = Translation {
                    pa: PhysAddr::new(raw),
                    pfn: PhysFrameNum::new(raw >> 12),
                    page_size: sipt_mem::PageSize::Base4K,
                };
                let a = l1.access(0x400000 + (i as u64 % 64) * 4, va, t, 2, false);
                acc = acc.wrapping_add(a.latency);
            }
            acc
        });
    }
}
