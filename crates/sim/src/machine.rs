//! A full simulated machine: core-facing memory path assembled from the
//! OS model, TLB, SIPT L1, lower cache hierarchy and DRAM.

use sipt_cache::{CacheGeometry, CacheLevel, LineAddr, LowerHierarchy, ReplacementKind};
use sipt_core::{L1Config, SiptL1};
use sipt_cpu::{MemOp, MemRef, MemResponse, MemoryPath};
use sipt_dram::{Dram, DramConfig};
use sipt_energy::{ActivityCounts, EnergyParams, L2_TABLE2, LLC_INORDER_TABLE2, LLC_OOO_TABLE2};
use sipt_mem::{AddressSpace, TranslationCache};
use sipt_tlb::{DataTlb, PageFault, TlbConfig};
use std::sync::Arc;

/// Which of Table II's two systems is being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// 6-wide OOO core with private L2 and a shared LLC (3 levels).
    OooThreeLevel,
    /// 2-wide in-order core with L1 + LLC only (2 levels).
    InOrderTwoLevel,
}

impl SystemKind {
    /// Private L2 of the system, if any (Table II: 256 KiB, 8-way,
    /// 12-cycle).
    pub fn l2(&self) -> Option<CacheLevel> {
        match self {
            SystemKind::OooThreeLevel => {
                Some(CacheLevel::new(CacheGeometry::new(256 << 10, 8), 12, ReplacementKind::Lru))
            }
            SystemKind::InOrderTwoLevel => None,
        }
    }

    /// The LLC for one core's share. Table II: OOO 2 MiB 16-way 25-cycle;
    /// in-order 1 MiB 16-way 20-cycle. The paper grows the LLC
    /// proportionally with core count, so the per-core share is constant
    /// and the same geometry serves single- and multi-core runs.
    pub fn llc(&self) -> CacheLevel {
        match self {
            SystemKind::OooThreeLevel => {
                CacheLevel::new(CacheGeometry::new(2 << 20, 16), 25, ReplacementKind::Lru)
            }
            SystemKind::InOrderTwoLevel => {
                CacheLevel::new(CacheGeometry::new(1 << 20, 16), 20, ReplacementKind::Lru)
            }
        }
    }

    /// LLC energy parameters from Table II.
    pub fn llc_energy(&self) -> sipt_energy::LevelEnergy {
        match self {
            SystemKind::OooThreeLevel => LLC_OOO_TABLE2,
            SystemKind::InOrderTwoLevel => LLC_INORDER_TABLE2,
        }
    }
}

/// The per-core machine: page table + TLB + SIPT L1 + L2/LLC + DRAM.
///
/// Implements [`MemoryPath`], so it plugs directly under the `sipt-cpu`
/// timing models.
#[derive(Debug)]
pub struct Machine {
    pub(crate) asp: Arc<AddressSpace>,
    pub(crate) tlb: DataTlb,
    /// Software (wall-clock-only) cache in front of the page-table walk:
    /// address spaces are immutable during replay, so no invalidation is
    /// ever needed. Does not change simulated behaviour.
    pub(crate) xlat: TranslationCache,
    pub(crate) l1: SiptL1,
    pub(crate) lower: LowerHierarchy<Dram>,
    system: SystemKind,
    /// First page fault hit by the memory path, latched for the runner.
    /// Traces come from outside (trace files), so an unmapped VA is input
    /// badness, not a simulator bug: [`MemoryPath::access`] records it
    /// here and returns a unit-latency response instead of panicking, and
    /// the replay loop turns it into a typed [`crate::SimError::Trace`].
    fault: Option<PageFault>,
}

impl Machine {
    /// Assemble a machine around an address space whose workload memory is
    /// already mapped.
    pub fn new(asp: AddressSpace, l1_config: L1Config, system: SystemKind) -> Self {
        Self::new_shared(Arc::new(asp), l1_config, system)
    }

    /// [`Machine::new`] over a *shared* address space — the prep-cache
    /// path, where N machines replay the same prepared workload without
    /// cloning its page table.
    pub fn new_shared(asp: Arc<AddressSpace>, l1_config: L1Config, system: SystemKind) -> Self {
        Self {
            asp,
            tlb: DataTlb::new(TlbConfig::default()),
            xlat: TranslationCache::new(),
            l1: SiptL1::new(l1_config),
            lower: LowerHierarchy::new(system.l2(), system.llc(), Dram::new(DramConfig::default())),
            system,
            fault: None,
        }
    }

    /// Take (and clear) the first page fault the memory path recorded, if
    /// any. Replay drivers must check this after a run: a `Some` means the
    /// trace referenced unmapped memory and the run's metrics are invalid.
    pub fn take_fault(&mut self) -> Option<PageFault> {
        self.fault.take()
    }

    /// The SIPT L1 (statistics, configuration).
    pub fn l1(&self) -> &SiptL1 {
        &self.l1
    }

    /// Mutable access to the SIPT L1 — used to attach telemetry
    /// ([`SiptL1::attach_telemetry`]) before a run.
    pub fn l1_mut(&mut self) -> &mut SiptL1 {
        &mut self.l1
    }

    /// TLB statistics.
    pub fn tlb(&self) -> &DataTlb {
        &self.tlb
    }

    /// The lower hierarchy (L2/LLC/DRAM statistics).
    pub fn lower(&self) -> &LowerHierarchy<Dram> {
        &self.lower
    }

    /// The address space (for post-run inspection, e.g. huge-page
    /// fraction).
    pub fn address_space(&self) -> &AddressSpace {
        &self.asp
    }

    /// The system kind.
    pub fn system(&self) -> SystemKind {
        self.system
    }

    /// Reset all statistics after warmup (contents and training kept).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.tlb.reset_stats();
        self.lower.reset_stats();
        self.lower.backend_mut().reset_stats();
    }

    /// Energy parameters of this machine's hierarchy (L1 energy from the
    /// CACTI model, L2/LLC from Table II).
    pub fn energy_params(&self) -> EnergyParams {
        let g = self.l1.config().geometry;
        EnergyParams {
            l1: sipt_energy::l1_energy_of(g.capacity, g.ways),
            l1_ways: g.ways,
            l2: match self.system {
                SystemKind::OooThreeLevel => Some(L2_TABLE2),
                SystemKind::InOrderTwoLevel => None,
            },
            llc: self.system.llc_energy(),
            has_predictor: self.l1.config().policy.speculates(),
        }
    }

    /// Activity counts for energy accounting after a run of `cycles`.
    pub fn activity(&self, cycles: u64) -> ActivityCounts {
        let sipt = self.l1.stats();
        let wp_correct = self.l1.way_pred_stats().map_or(0, |w| w.correct);
        let l2 = self.lower.l2_stats();
        let llc = self.lower.llc_stats();
        ActivityCounts {
            cycles,
            l1_reads: sipt.array_reads,
            l1_waypred_correct: wp_correct,
            l1_demand_accesses: sipt.accesses,
            l2_accesses: l2.map_or(0, |s| s.accesses + s.fills),
            llc_accesses: llc.accesses + llc.fills,
        }
    }
}

impl MemoryPath for Machine {
    #[inline]
    fn access(&mut self, pc: u64, mem: MemRef, now: u64) -> MemResponse {
        // Disjoint field borrows: the TLB walk closure consults the
        // software translation cache in front of the page table.
        let Machine { asp, tlb, xlat, l1, lower, fault, .. } = self;
        let outcome = match tlb.translate_with(mem.va, |va| xlat.translate(asp.page_table(), va)) {
            Ok(outcome) => outcome,
            Err(f) => {
                // Unmapped VA: latch the first fault and keep the timing
                // model alive with a unit response; the driver surfaces
                // the typed error after the run.
                fault.get_or_insert(f);
                return MemResponse { latency: 1, port_slots: 1 };
            }
        };
        let is_store = mem.op == MemOp::Store;
        let access = l1.access(pc, mem.va, outcome.translation, outcome.cycles, is_store);
        let mut latency = access.latency;
        if !access.hit {
            let line = LineAddr::of_phys(outcome.translation.pa);
            let service = lower.access(line, is_store, now + latency);
            latency += service.latency;
            if let Some(evicted) = l1.fill(line, is_store) {
                if evicted.dirty {
                    lower.writeback(evicted.line);
                }
            }
        }
        MemResponse { latency, port_slots: access.array_reads.max(1) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};
    use sipt_cpu::{simulate_ooo, Inst, OooConfig};
    use sipt_mem::{BuddyAllocator, PlacementPolicy, VirtAddr, PAGE_SIZE};

    fn machine_with_region(policy: PlacementPolicy, l1: L1Config) -> (Machine, VirtAddr) {
        let mut phys = BuddyAllocator::with_bytes(256 << 20);
        let mut asp = AddressSpace::new(0, policy);
        let region = asp.mmap(8 << 20, &mut phys).unwrap();
        (Machine::new(asp, l1, SystemKind::OooThreeLevel), region.start)
    }

    #[test]
    fn access_flows_through_all_levels() {
        let (mut m, base) = machine_with_region(PlacementPolicy::LinuxDefault, sipt_32k_2w());
        let mem = MemRef { op: MemOp::Load, va: base };
        let cold = m.access(0x40, mem, 0);
        // Cold: TLB walk + L1 miss + L2 miss + LLC miss + DRAM.
        assert!(cold.latency > 100, "cold latency = {}", cold.latency);
        let warm = m.access(0x40, mem, 1000);
        assert!(warm.latency <= 4, "warm hit latency = {}", warm.latency);
        assert_eq!(m.l1().stats().accesses, 2);
        assert_eq!(m.tlb().stats().walks, 1);
    }

    #[test]
    fn huge_page_backing_makes_speculation_succeed() {
        let (mut m, base) = machine_with_region(PlacementPolicy::LinuxDefault, sipt_32k_2w());
        // Touch several pages: under THP the whole region is huge-mapped,
        // so all speculative bits are translation-invariant.
        for i in 0..64u64 {
            m.access(0x80, MemRef { op: MemOp::Load, va: base + i * PAGE_SIZE }, i * 10);
        }
        let s = m.l1().stats();
        assert_eq!(s.fast_accesses, s.accesses, "every access should be fast: {s:?}");
    }

    #[test]
    fn scattered_backing_defeats_naive_speculation() {
        use sipt_core::L1Policy;
        let cfg = sipt_32k_2w().with_policy(L1Policy::SiptNaive);
        let (mut m, base) = machine_with_region(PlacementPolicy::Scattered, cfg);
        for i in 0..256u64 {
            m.access(0x80, MemRef { op: MemOp::Load, va: base + i * PAGE_SIZE }, i * 10);
        }
        let s = m.l1().stats();
        // 2 speculative bits, random frames: ~25% of pages match by luck.
        let fast = s.fast_fraction();
        assert!(fast < 0.5, "scattered memory should break naive SIPT, fast = {fast}");
        assert!(s.extra_accesses > 100);
    }

    #[test]
    fn runs_under_the_ooo_model() {
        let (mut m, base) = machine_with_region(PlacementPolicy::LinuxDefault, sipt_32k_2w());
        let trace: Vec<Inst> = (0..2000)
            .map(|i| Inst::load(0x100 + (i % 16) * 4, 1, None, base + (i * 64) % (4 << 20)))
            .collect();
        let r = simulate_ooo(OooConfig::default(), trace, &mut m);
        assert_eq!(r.instructions, 2000);
        assert!(r.ipc() > 0.1);
        let counts = m.activity(r.cycles);
        assert_eq!(counts.cycles, r.cycles);
        assert!(counts.l1_reads >= 2000);
    }

    #[test]
    fn energy_params_reflect_config() {
        let (m, _) = machine_with_region(PlacementPolicy::LinuxDefault, sipt_32k_2w());
        let p = m.energy_params();
        assert_eq!(p.l1.dynamic_nj, 0.10); // Table II 32K 2-way
        assert!(p.has_predictor);
        assert!(p.l2.is_some());
        let (mb, _) = machine_with_region(PlacementPolicy::LinuxDefault, baseline_32k_8w_vipt());
        let pb = mb.energy_params();
        assert_eq!(pb.l1.dynamic_nj, 0.38);
        assert!(!pb.has_predictor);
    }

    #[test]
    fn reset_stats_zeroes_everything() {
        let (mut m, base) = machine_with_region(PlacementPolicy::LinuxDefault, sipt_32k_2w());
        m.access(0x40, MemRef { op: MemOp::Load, va: base }, 0);
        m.reset_stats();
        assert_eq!(m.l1().stats().accesses, 0);
        assert_eq!(m.tlb().stats().total(), 0);
        assert_eq!(m.lower().llc_stats().accesses, 0);
        // Contents kept: next access is an L1 hit.
        let r = m.access(0x40, MemRef { op: MemOp::Load, va: base }, 10);
        assert!(r.latency <= 4);
    }

    #[test]
    fn in_order_system_has_no_l2() {
        let mut phys = BuddyAllocator::with_bytes(64 << 20);
        let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
        let region = asp.mmap(1 << 20, &mut phys).unwrap();
        let mut m = Machine::new(asp, sipt_64k_4w_inorder(), SystemKind::InOrderTwoLevel);
        m.access(0, MemRef { op: MemOp::Load, va: region.start }, 0);
        assert!(m.lower().l2_stats().is_none());
        assert!(m.energy_params().l2.is_none());
    }

    fn sipt_64k_4w_inorder() -> L1Config {
        sipt_core::sipt_64k_4w()
    }
}
