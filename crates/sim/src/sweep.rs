//! Dependency-free parallel sweep engine with panic isolation.
//!
//! Every paper artifact is a benchmark × configuration × condition sweep
//! whose individual runs are pure functions of their inputs (each run
//! seeds its own RNGs from the [`Condition`]), so they parallelize
//! embarrassingly — the same structure trace-driven simulators like
//! Sniper and gem5's multi-run harnesses exploit. This module provides:
//!
//! - [`run_parallel_isolated`]: execute independent tasks on a
//!   [`std::thread::scope`]-based worker pool with **panic isolation** —
//!   every task runs inside `catch_unwind`, a panicking run is captured
//!   as a structured [`TaskFailure`] (with a bounded retry budget and an
//!   optional watchdog timeout) and the rest of the sweep completes
//!   deterministically, in **submission order**;
//! - [`run_parallel`]: the legacy all-or-nothing front-end (`Vec<T>` out);
//!   failures are still isolated, recorded and reported — it panics with
//!   an aggregate summary only *after* every other task has finished;
//! - [`Sweep`]: a typed builder over [`RunRequest`]s with
//!   checkpoint/resume: completed task metrics are persisted to
//!   `results/<name>.checkpoint.json` as they finish and restored
//!   (bit-exactly) on `--resume`, and failed tasks are replaced by inert
//!   placeholders so figure assembly survives;
//! - job-count plumbing: `SIPT_JOBS` (parsed once, warning on malformed
//!   values) overridden by [`set_jobs`] (the `--jobs N` CLI flag), with
//!   [`std::thread::available_parallelism`] as the default;
//! - a process-wide [`ParallelismProfile`] accumulator that the report
//!   writer folds into the `parallelism` block.
//!
//! `jobs = 1` is an *exact* serial fallback: no worker threads are
//! spawned and the tasks run inline on the calling thread, in order.

use crate::checkpoint;
use crate::machine::SystemKind;
use crate::metrics::RunMetrics;
use crate::resilience::{self, TaskFailure, WatchdogFlag};
use crate::runner::{trace_capacity, Condition};
use sipt_telemetry::json::Json;
use sipt_telemetry::{span, Span};
use sipt_workloads::{benchmark, WorkloadSpec};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Job-count resolution
// ---------------------------------------------------------------------------

/// Explicit override set by the `--jobs N` CLI flag (0 = unset).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `SIPT_JOBS`, parsed exactly once for the whole process so every sweep
/// (and every worker) agrees on it. Malformed values warn on stderr and
/// fall back to the default rather than being silently treated as 0.
fn jobs_from_env() -> Option<usize> {
    static PARSED: OnceLock<Option<usize>> = OnceLock::new();
    *PARSED.get_or_init(|| match crate::env::parse_or_warn("SIPT_JOBS") {
        Some(0) => {
            eprintln!("warning: SIPT_JOBS=0 is invalid (need >= 1); using the default");
            None
        }
        Some(n) => Some(n.min(usize::MAX as u64) as usize),
        None => None,
    })
}

/// Set the process-wide job count (the `--jobs N` flag). Takes precedence
/// over `SIPT_JOBS`. Values of 0 are ignored.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// The job count sweeps use unless given an explicit count: the
/// [`set_jobs`] override, else `SIPT_JOBS`, else the host's available
/// parallelism.
pub fn effective_jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    jobs_from_env().unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

// ---------------------------------------------------------------------------
// Parallelism accounting
// ---------------------------------------------------------------------------

/// Wall-clock accounting of one parallel sweep execution: how many
/// workers ran, how busy each was, and the resulting speedup over the
/// serial (sum-of-busy-time) cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelismProfile {
    /// Worker count actually used (after clamping to the task count).
    pub jobs: usize,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Wall-clock milliseconds from first submission to last completion.
    pub wall_ms: f64,
    /// Per-worker busy milliseconds (time spent inside tasks, including
    /// failed attempts), indexed by worker id. Length equals `jobs`.
    pub worker_busy_ms: Vec<f64>,
    /// Which worker executed each task, in submission order.
    pub assigned_worker: Vec<usize>,
}

impl ParallelismProfile {
    /// Total busy milliseconds across workers — the serial cost of the
    /// same sweep.
    pub fn total_busy_ms(&self) -> f64 {
        self.worker_busy_ms.iter().sum()
    }

    /// Wall-clock speedup versus running the same tasks serially:
    /// `total_busy_ms / wall_ms` (1.0 when the sweep ran serially).
    pub fn speedup(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.total_busy_ms() / self.wall_ms
        } else {
            1.0
        }
    }

    /// This profile as the report-schema `parallelism` object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("jobs", Json::u64(self.jobs as u64)),
            ("tasks", Json::u64(self.tasks as u64)),
            ("wall_ms", Json::num(self.wall_ms)),
            ("worker_busy_ms", Json::arr(self.worker_busy_ms.iter().map(|&v| Json::num(v)))),
            ("total_busy_ms", Json::num(self.total_busy_ms())),
            ("speedup", Json::num(self.speedup())),
        ])
    }
}

/// Process-wide accumulation of every sweep executed so far, folded into
/// the report `parallelism` block by the figure binaries.
#[derive(Debug, Clone, Default, PartialEq)]
struct Accumulated {
    sweeps: usize,
    jobs_max: usize,
    tasks: usize,
    wall_ms: f64,
    worker_busy_ms: Vec<f64>,
}

static ACCUMULATED: Mutex<Option<Accumulated>> = Mutex::new(None);

/// Fold one executed profile into the process-wide accumulator (the
/// supervisor records its sharded profiles through this too).
pub(crate) fn record_profile(profile: &ParallelismProfile) {
    let mut guard = ACCUMULATED.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let acc = guard.get_or_insert_with(Accumulated::default);
    acc.sweeps += 1;
    acc.jobs_max = acc.jobs_max.max(profile.jobs);
    acc.tasks += profile.tasks;
    acc.wall_ms += profile.wall_ms;
    if acc.worker_busy_ms.len() < profile.worker_busy_ms.len() {
        acc.worker_busy_ms.resize(profile.worker_busy_ms.len(), 0.0);
    }
    for (total, busy) in acc.worker_busy_ms.iter_mut().zip(&profile.worker_busy_ms) {
        *total += busy;
    }
}

/// The process-wide `parallelism` report block: `None` until the first
/// sweep has executed. Aggregates every sweep run so far (a figure binary
/// typically runs several). Since schema v4 it also carries the
/// workload-preparation-cache counters (`prep_cache`) — wall-clock
/// accounting only, never part of the scientific payload.
pub fn parallelism_json() -> Option<Json> {
    let guard = ACCUMULATED.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let acc = guard.as_ref()?;
    let total_busy: f64 = acc.worker_busy_ms.iter().sum();
    let speedup = if acc.wall_ms > 0.0 { total_busy / acc.wall_ms } else { 1.0 };
    Some(Json::obj([
        ("jobs", Json::u64(acc.jobs_max as u64)),
        ("sweeps", Json::u64(acc.sweeps as u64)),
        ("tasks", Json::u64(acc.tasks as u64)),
        ("wall_ms", Json::num(acc.wall_ms)),
        ("worker_busy_ms", Json::arr(acc.worker_busy_ms.iter().map(|&v| Json::num(v)))),
        ("total_busy_ms", Json::num(total_busy)),
        ("speedup", Json::num(speedup)),
        ("prep_cache", crate::prep_cache::stats_json()),
    ]))
}

/// Snapshot of the process-wide sweep accounting: `(tasks, wall_ms)`
/// across every sweep executed so far. Used by the perf harness to
/// derive per-figure simulated-MIPS without re-parsing reports.
pub fn accumulated_totals() -> Option<(usize, f64)> {
    let guard = ACCUMULATED.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    guard.as_ref().map(|acc| (acc.tasks, acc.wall_ms))
}

// ---------------------------------------------------------------------------
// The watchdog
// ---------------------------------------------------------------------------

/// Per-worker in-flight state shared with the watchdog monitor thread.
type InflightSlots = Arc<Vec<Mutex<Option<(usize, Instant)>>>>;

/// A watchdog monitoring the pool's in-flight tasks against the
/// configured `--task-timeout`. When no timeout is configured this is a
/// no-op (no thread is spawned).
struct Watchdog {
    slots: InflightSlots,
    done: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn start(workers: usize) -> Self {
        let slots: InflightSlots = Arc::new((0..workers).map(|_| Mutex::new(None)).collect());
        let done = Arc::new(AtomicBool::new(false));
        let handle = resilience::task_timeout_ms().map(|timeout_ms| {
            let slots = Arc::clone(&slots);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let poll = Duration::from_millis((timeout_ms / 4).clamp(5, 50));
                let mut flagged = std::collections::HashSet::new();
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(poll);
                    for slot in slots.iter() {
                        let inflight =
                            *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        if let Some((task, start)) = inflight {
                            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
                            if elapsed_ms > timeout_ms as f64 && flagged.insert(task) {
                                resilience::record_watchdog_flag(WatchdogFlag {
                                    task,
                                    elapsed_ms,
                                    timeout_ms,
                                });
                                if resilience::watchdog_kill() {
                                    // Thread-mode fallback: an in-process
                                    // task cannot be killed individually, so
                                    // the whole run aborts with exit 124.
                                    // `--isolation process` scopes the kill
                                    // to the offending worker instead.
                                    eprintln!(
                                        "watchdog: SIPT_WATCHDOG_KILL=1 — aborting (exit 124; \
                                         use --isolation process to kill only the stuck worker)"
                                    );
                                    std::process::exit(124);
                                }
                            }
                        }
                    }
                }
            })
        });
        Self { slots, done, handle }
    }

    fn begin(slots: &InflightSlots, worker: usize, task: usize) {
        *slots[worker].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some((task, Instant::now()));
    }

    fn finish(slots: &InflightSlots, worker: usize) {
        *slots[worker].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    fn stop(mut self) {
        self.done.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

/// Marker panic message of a drain placeholder: the slot was never
/// executed because a SIGTERM/SIGINT drain stopped the pool. Drain
/// placeholders are never recorded as real failures — the sweep layer
/// recognises them and exits through the drain path instead.
pub(crate) const DRAIN_MARKER: &str = "graceful drain: task not executed";

fn drain_placeholder(id: usize) -> TaskFailure {
    TaskFailure {
        task: id,
        label: format!("task-{id}"),
        worker: 0,
        panic_msg: DRAIN_MARKER.to_owned(),
        elapsed_ms: 0.0,
        attempts: 0,
    }
}

/// Whether a failure is a drain placeholder rather than a real fault.
pub(crate) fn is_drain_placeholder(f: &TaskFailure) -> bool {
    f.attempts == 0 && f.panic_msg == DRAIN_MARKER
}

// ---------------------------------------------------------------------------
// The isolated engine
// ---------------------------------------------------------------------------

/// One pool task: a process-global id (assigned at submission via
/// [`resilience::allocate_task_ids`], so fault injection and failure
/// reports are deterministic regardless of worker scheduling), a caller
/// label, and the work itself. The closure receives the executing worker
/// id; it must be `FnMut` so the retry policy can re-invoke it.
pub struct PoolTask<F> {
    /// Process-global task id.
    pub id: usize,
    /// Caller label for failure reporting.
    pub label: String,
    /// The work. Re-invoked on retry.
    pub task: F,
}

/// Execute one task with panic capture, fault injection, and a bounded
/// attempt budget. Returns the result (or the final failure) plus the
/// total busy milliseconds across attempts. Shared with the supervisor's
/// worker executor so in-process and sharded attempts behave identically.
pub(crate) fn execute_attempts<T, F: FnMut(usize) -> T>(
    id: usize,
    label: &str,
    worker: usize,
    max_attempts: u32,
    f: &mut F,
) -> (Result<T, TaskFailure>, f64) {
    let max_attempts = max_attempts.max(1);
    let mut busy = 0.0;
    let mut last: Option<(String, f64)> = None;
    for attempt in 0..max_attempts {
        let mut task_span = Span::enter_with(
            label.to_owned(),
            "sweep.task",
            vec![("task", Json::u64(id as u64)), ("attempt", Json::u64(u64::from(attempt)))],
        );
        let t0 = Instant::now();
        let outcome = resilience::catch_task_panic(|| {
            resilience::inject_at_task_start(id, attempt);
            f(worker)
        });
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        busy += elapsed_ms;
        match outcome {
            Ok(value) => {
                task_span.arg("status", Json::str("ok"));
                return (Ok(value), busy);
            }
            Err(panic_msg) => {
                task_span.arg("status", Json::str("panicked"));
                if attempt + 1 < max_attempts {
                    resilience::record_retry();
                    eprintln!(
                        "sweep task {id} ({label}) panicked (attempt {}/{max_attempts}): \
                         {panic_msg}; retrying",
                        attempt + 1
                    );
                }
                last = Some((panic_msg, elapsed_ms));
            }
        }
    }
    let (panic_msg, elapsed_ms) = last.expect("at least one attempt ran");
    let failure = TaskFailure {
        task: id,
        label: label.to_owned(),
        worker,
        panic_msg,
        elapsed_ms,
        attempts: max_attempts,
    };
    (Err(failure), busy)
}

/// Run independent tasks on a scoped worker pool with panic isolation and
/// return their outcomes in **submission order** together with the
/// parallelism profile.
///
/// Each task runs inside `catch_unwind` with up to `max_attempts`
/// executions; a task that panics on every attempt yields
/// `Err(TaskFailure)` in its slot while every other task still completes.
/// The caller decides what to do with failures (record, substitute,
/// re-panic). A configured `--task-timeout` arms a watchdog thread that
/// flags (or, with `SIPT_WATCHDOG_KILL=1`, aborts on) overrunning tasks.
///
/// `jobs <= 1` (or a single task) is an exact serial fallback: everything
/// runs inline on the calling thread, in order, with no pool. Results are
/// identical either way because each task is an independent pure function
/// — the pool only changes *when* a task runs, never its inputs.
pub fn run_parallel_isolated<T, F>(
    tasks: Vec<PoolTask<F>>,
    jobs: usize,
    max_attempts: u32,
) -> (Vec<Result<T, TaskFailure>>, ParallelismProfile)
where
    T: Send,
    F: FnMut(usize) -> T + Send,
{
    resilience::install_quiet_panic_hook();
    let n = tasks.len();
    let jobs = jobs.max(1).min(n.max(1));
    let wall = Instant::now();

    if jobs <= 1 {
        let watchdog = Watchdog::start(1);
        let slots = Arc::clone(&watchdog.slots);
        let mut results = Vec::with_capacity(n);
        // The inline loop *is* the worker: its whole duration is busy
        // time (per-attempt timing still feeds failure reports).
        let loop_start = Instant::now();
        for mut entry in tasks {
            // Graceful drain: stop claiming new work, fill the remaining
            // slots with drain placeholders (the caller exits through the
            // drain path, never treating them as results).
            if sipt_signal::drain_requested() {
                results.push(Err(drain_placeholder(entry.id)));
                continue;
            }
            Watchdog::begin(&slots, 0, entry.id);
            let (result, _task_busy) =
                execute_attempts(entry.id, &entry.label, 0, max_attempts, &mut entry.task);
            Watchdog::finish(&slots, 0);
            results.push(result);
        }
        let busy = loop_start.elapsed().as_secs_f64() * 1e3;
        watchdog.stop();
        let profile = ParallelismProfile {
            jobs: 1,
            tasks: n,
            wall_ms: wall.elapsed().as_secs_f64() * 1e3,
            worker_busy_ms: vec![busy],
            assigned_worker: vec![0; n],
        };
        record_profile(&profile);
        return (results, profile);
    }

    // Work-stealing-by-index: each slot is claimed exactly once via the
    // shared counter, and each outcome lands in its submission slot, so
    // output order is independent of completion order.
    let ids: Vec<usize> = tasks.iter().map(|t| t.id).collect();
    let task_cells: Vec<Mutex<Option<(String, F)>>> =
        tasks.into_iter().map(|t| Mutex::new(Some((t.label, t.task)))).collect();
    let result_cells: Vec<Mutex<Option<Result<T, TaskFailure>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let assigned: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let busy: Vec<Mutex<f64>> = (0..jobs).map(|_| Mutex::new(0.0)).collect();
    let next = AtomicUsize::new(0);
    let watchdog = Watchdog::start(jobs);

    std::thread::scope(|scope| {
        for (worker, busy_cell) in busy.iter().enumerate() {
            let task_cells = &task_cells;
            let result_cells = &result_cells;
            let assigned = &assigned;
            let ids = &ids;
            let next = &next;
            let slots = Arc::clone(&watchdog.slots);
            scope.spawn(move || {
                // Claim a stable trace track: tid 0 is the orchestrator,
                // workers are 1..=jobs regardless of OS thread identity.
                span::set_virtual_tid(worker as u32 + 1, &format!("worker {worker}"));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Graceful drain: in-flight tasks finish (they hold
                    // earlier indices), unclaimed slots become drain
                    // placeholders so every result cell is still filled.
                    if sipt_signal::drain_requested() {
                        *result_cells[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) =
                            Some(Err(drain_placeholder(ids[i])));
                        continue;
                    }
                    let (label, mut task) = task_cells[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                        .expect("task claimed twice");
                    Watchdog::begin(&slots, worker, ids[i]);
                    let (result, task_busy) =
                        execute_attempts(ids[i], &label, worker, max_attempts, &mut task);
                    Watchdog::finish(&slots, worker);
                    *busy_cell.lock().unwrap_or_else(std::sync::PoisonError::into_inner) +=
                        task_busy;
                    assigned[i].store(worker, Ordering::Relaxed);
                    *result_cells[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                        Some(result);
                }
            });
        }
    });
    watchdog.stop();

    let results: Vec<Result<T, TaskFailure>> = result_cells
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("worker completed every claimed task")
        })
        .collect();
    let profile = ParallelismProfile {
        jobs,
        tasks: n,
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
        worker_busy_ms: busy
            .into_iter()
            .map(|cell| cell.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
            .collect(),
        assigned_worker: assigned.into_iter().map(AtomicUsize::into_inner).collect(),
    };
    record_profile(&profile);
    (results, profile)
}

/// Run independent tasks on the pool and return plain results in
/// submission order — the legacy all-or-nothing front-end.
///
/// Panic isolation still applies: a panicking task no longer aborts the
/// pool mid-flight. Every other task completes first, each failure is
/// recorded in the process-wide resilience registry, and only then does
/// this function panic with an aggregate summary (callers that need the
/// per-task outcomes use [`run_parallel_isolated`]).
///
/// # Panics
///
/// Panics (after completing all other tasks) if any task panicked.
pub fn run_parallel<T, F>(tasks: Vec<F>, jobs: usize) -> (Vec<T>, ParallelismProfile)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let base = resilience::allocate_task_ids(n);
    let pool_tasks: Vec<PoolTask<_>> = tasks
        .into_iter()
        .enumerate()
        .map(|(i, f)| {
            let mut cell = Some(f);
            PoolTask {
                id: base + i,
                label: format!("task-{}", base + i),
                task: move |_worker: usize| (cell.take().expect("single attempt"))(),
            }
        })
        .collect();
    // FnOnce tasks cannot be retried, so the attempt budget is 1.
    let (outcomes, profile) = run_parallel_isolated(pool_tasks, jobs, 1);
    let mut results = Vec::with_capacity(n);
    let mut failures: Vec<TaskFailure> = Vec::new();
    let mut drained = false;
    for outcome in outcomes {
        match outcome {
            Ok(v) => results.push(v),
            Err(f) if is_drain_placeholder(&f) => drained = true,
            Err(f) => {
                resilience::record_failure(f.clone());
                failures.push(f);
            }
        }
    }
    if drained {
        // A SIGTERM/SIGINT drain stopped the pool: this front-end cannot
        // return a partial Vec<T>, so exit through the drain path (the
        // checkpoint, when armed, already holds everything completed).
        crate::supervisor::exit_for_drain(results.len(), n);
    }
    if let Some(first) = failures.first() {
        panic!("{} of {n} parallel tasks failed; first: {first}", failures.len());
    }
    (results, profile)
}

/// [`run_parallel`] at the process-default job count ([`effective_jobs`]).
pub fn run_parallel_default<T, F>(tasks: Vec<F>) -> (Vec<T>, ParallelismProfile)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_parallel(tasks, effective_jobs())
}

// ---------------------------------------------------------------------------
// The typed single-core sweep builder
// ---------------------------------------------------------------------------

/// One single-core benchmark run: the exact inputs of
/// [`crate::runner::run_spec`], plus a caller label for row assembly and
/// the event-trace capacity resolved once per sweep so every worker
/// agrees on it.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Workload to run.
    pub spec: WorkloadSpec,
    /// L1 configuration.
    pub l1: sipt_core::L1Config,
    /// System (core + hierarchy) model.
    pub system: SystemKind,
    /// Operating condition.
    pub cond: Condition,
    /// Caller label (benchmark name, config label, …) for row assembly.
    pub label: String,
}

impl RunRequest {
    /// Deterministic content fingerprint of this request, used to match
    /// checkpoint entries against the sweep that produced them.
    pub fn fingerprint(&self) -> u64 {
        // Debug formatting of the full input tuple is deterministic
        // (f64's Debug prints the shortest round-trip representation) and
        // covers every field that influences the run.
        checkpoint::fnv1a64(
            format!("{:?}|{:?}|{:?}|{:?}|{}", self.spec, self.l1, self.system, self.cond, {
                &self.label
            })
            .as_bytes(),
        )
    }
}

/// Builder that collects [`RunRequest`]s and executes them on the worker
/// pool, returning metrics in submission order.
#[derive(Debug, Default)]
pub struct Sweep {
    requests: Vec<RunRequest>,
}

/// Process-global sweep sequence number: sweeps execute in deterministic
/// program order on the main thread, so `(sweep seq, task index)` is a
/// stable checkpoint key across runs of the same binary.
fn next_sweep_seq() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The results of a sweep: one [`RunMetrics`] per request, in submission
/// order, plus the parallelism profile and any captured task failures.
///
/// A failed task's slot holds [`RunMetrics::failed_placeholder`] — inert
/// values (IPC 1.0, zero counters) that keep downstream figure assembly
/// alive — and the corresponding [`TaskFailure`] appears both here and in
/// the process-wide resilience registry (so the binary's failure table,
/// report block, and non-zero exit all fire).
#[derive(Debug)]
pub struct SweepResult {
    /// Metrics in submission order.
    pub metrics: Vec<RunMetrics>,
    /// Wall-clock/parallelism accounting.
    pub profile: ParallelismProfile,
    /// Captured failures (empty on a clean sweep).
    pub failures: Vec<TaskFailure>,
}

/// Consuming the results yields [`RunMetrics`] in submission order — the
/// porting idiom is `let mut runs = sweep.run().into_iter()` followed by
/// `runs.next().expect("submitted")` in the same order as submission.
impl IntoIterator for SweepResult {
    type Item = RunMetrics;
    type IntoIter = std::vec::IntoIter<RunMetrics>;

    fn into_iter(self) -> Self::IntoIter {
        self.metrics.into_iter()
    }
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a raw request. Returns its submission index.
    pub fn push(&mut self, request: RunRequest) -> usize {
        self.requests.push(request);
        self.requests.len() - 1
    }

    /// Queue a run of a named benchmark preset (the parallel analogue of
    /// [`crate::runner::run_benchmark`]). Returns its submission index.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::UnknownBenchmark`] if `name` is not a known
    /// benchmark preset.
    pub fn try_bench(
        &mut self,
        name: &str,
        l1: sipt_core::L1Config,
        system: SystemKind,
        cond: &Condition,
    ) -> Result<usize, crate::SimError> {
        let spec = benchmark(name)
            .ok_or_else(|| crate::SimError::UnknownBenchmark { name: name.to_owned() })?;
        Ok(self.push(RunRequest { spec, l1, system, cond: *cond, label: name.to_owned() }))
    }

    /// Queue a run of a named benchmark preset.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known benchmark preset — use
    /// [`Sweep::try_bench`] on untrusted names.
    pub fn bench(
        &mut self,
        name: &str,
        l1: sipt_core::L1Config,
        system: SystemKind,
        cond: &Condition,
    ) -> usize {
        self.try_bench(name, l1, system, cond).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Execute at the process-default job count ([`effective_jobs`]).
    pub fn run(self) -> SweepResult {
        let jobs = effective_jobs();
        self.run_with_jobs(jobs)
    }

    /// Execute on exactly `jobs` workers (1 = serial, inline).
    ///
    /// Under `--isolation process` (parent side) the pending slots are
    /// handed to the [`crate::supervisor`], which re-execs this binary in
    /// worker mode per shard; merged results are byte-identical to the
    /// in-process path because workers stream metrics in the checkpoint
    /// byte codec. In a worker process this call either returns inert
    /// placeholders (sweeps before the assigned one — the replay skips
    /// them) or executes the assigned shard and exits, never returning.
    pub fn run_with_jobs(self, jobs: usize) -> SweepResult {
        // Resolve the event-trace capacity once, outside the pool, so the
        // workers cannot disagree (and the env var is only parsed once).
        let capacity = trace_capacity();
        let n = self.requests.len();
        let sweep_seq = next_sweep_seq();

        // Worker mode: the replay of the binary's main up to the target
        // sweep. Ids are still allocated (so fault-injection ids line up
        // with the supervisor's), but only the assigned shard executes.
        if let Some(shard) = crate::supervisor::worker_shard() {
            let local_base = resilience::allocate_task_ids(n);
            if sweep_seq < shard.sweep_seq {
                return crate::supervisor::skipped_sweep_result(&self.requests);
            }
            if local_base != shard.base_id {
                eprintln!(
                    "warning: worker replay allocated task base {local_base} but the \
                     supervisor assigned {}; using the supervisor's ids",
                    shard.base_id
                );
            }
            crate::supervisor::run_worker_shard(self.requests, shard, capacity, sweep_seq);
        }

        let isolation = crate::supervisor::isolation();
        let _sweep_span = Span::enter_with(
            format!("sweep {sweep_seq}"),
            "sweep",
            vec![
                ("tasks", Json::u64(n as u64)),
                ("jobs", Json::u64(jobs.max(1) as u64)),
                ("isolation", Json::str(isolation.name())),
            ],
        );
        // Global ids are allocated for *every* slot — including ones that
        // resume from a checkpoint — so fault-injection task ids stay
        // stable whether or not a resume skipped work.
        let base_id = resilience::allocate_task_ids(n);

        // Restore completed tasks from the checkpoint, when resuming.
        let ckpt = checkpoint::active();
        let mut slots: Vec<Option<RunMetrics>> = (0..n).map(|_| None).collect();
        let mut restored = 0u64;
        if let Some(ckpt) = &ckpt {
            let mut restore_span = Span::enter(format!("restore sweep {sweep_seq}"), "checkpoint");
            for (i, req) in self.requests.iter().enumerate() {
                let key = checkpoint::task_key(sweep_seq, i);
                if let Some(metrics) = ckpt.restore(&key, req.fingerprint()) {
                    slots[i] = Some(metrics);
                    restored += 1;
                }
            }
            restore_span.arg("restored", Json::u64(restored));
            if restored > 0 {
                resilience::record_checkpoint_hits(restored);
                eprintln!(
                    "resume: sweep {sweep_seq} restored {restored}/{n} task(s) from {}",
                    ckpt.path().display()
                );
            }
        }

        // Slots that still need to run, with their requests.
        let mut pending: Vec<(usize, RunRequest)> = Vec::new();
        for (i, req) in self.requests.into_iter().enumerate() {
            if slots[i].is_none() {
                pending.push((i, req));
            }
        }

        let attempts = resilience::task_retries() + 1;
        let mut failures = Vec::new();
        let mut drained = false;
        let mut profile: Option<ParallelismProfile> = None;

        // Process isolation: hand the pending slots to the supervisor,
        // which shards them across re-exec'd worker processes. A
        // supervisor that cannot start at all degrades to the thread
        // pool with a warning rather than failing the sweep.
        if isolation == crate::supervisor::Isolation::Process && !pending.is_empty() {
            match crate::supervisor::run_sharded(
                &pending,
                sweep_seq,
                base_id,
                jobs.max(1),
                ckpt.as_ref(),
            ) {
                Ok((outcomes, sharded_profile)) => {
                    for (slot, outcome) in outcomes {
                        match outcome {
                            Ok(metrics) => slots[slot] = Some(metrics),
                            Err(failure) => {
                                resilience::record_failure(failure.clone());
                                slots[slot] = Some(RunMetrics::failed_placeholder(&failure.label));
                                failures.push(failure);
                            }
                        }
                    }
                    drained = sipt_signal::drain_requested();
                    profile = Some(sharded_profile);
                }
                Err(e) => {
                    eprintln!(
                        "warning: {e}; falling back to thread isolation for sweep {sweep_seq}"
                    );
                }
            }
        }

        // Thread isolation (the default, the worker-mode path, and the
        // supervisor-unavailable fallback): pool tasks with the full
        // per-task pipeline inside the isolation boundary — simulate,
        // stamp the worker id, apply any injected metric corruption,
        // audit, and append to the checkpoint.
        let profile = match profile {
            Some(profile) => profile,
            None => {
                let order: Vec<usize> = pending.iter().map(|&(i, _)| i).collect();
                let tasks: Vec<PoolTask<_>> = pending
                    .into_iter()
                    .map(|(i, req)| {
                        let id = base_id + i;
                        let label = req.label.clone();
                        let err_label = req.label.clone();
                        let key = checkpoint::task_key(sweep_seq, i);
                        let fingerprint = req.fingerprint();
                        let ckpt = ckpt.clone();
                        PoolTask {
                            id,
                            label,
                            // The closure returns `Result`: a typed SimError
                            // (bad trace, unknown benchmark, oversized
                            // workload) is a deterministic property of the
                            // *inputs*, so it is wrapped as a TaskFailure
                            // immediately — the retry budget (which exists
                            // for injected/transient panics) never spends an
                            // attempt re-running it. Panics (including audit
                            // violations) still unwind into the pool's catch
                            // and stay retryable.
                            task: move |worker: usize| -> Result<RunMetrics, TaskFailure> {
                                let t0 = Instant::now();
                                let mut metrics =
                                    match crate::runner::try_run_spec_with_trace_capacity(
                                        &req.spec,
                                        req.l1.clone(),
                                        req.system,
                                        &req.cond,
                                        capacity,
                                    ) {
                                        Ok(metrics) => metrics,
                                        Err(e) => {
                                            return Err(TaskFailure {
                                                task: id,
                                                label: err_label.clone(),
                                                worker,
                                                panic_msg: e.to_string(),
                                                elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
                                                attempts: 1,
                                            });
                                        }
                                    };
                                metrics.phases.worker = worker;
                                if resilience::inject_bit_flip(id) {
                                    metrics.sipt.accesses ^= 1;
                                }
                                if crate::audit::enabled() {
                                    if let Err(e) = crate::audit::check_metrics(&metrics) {
                                        panic!("{e}");
                                    }
                                }
                                if let Some(ckpt) = &ckpt {
                                    ckpt.append(&key, fingerprint, &metrics);
                                }
                                Ok(metrics)
                            },
                        }
                    })
                    .collect();

                let (outcomes, profile) = run_parallel_isolated(tasks, jobs, attempts);
                for (slot, outcome) in order.into_iter().zip(outcomes) {
                    // Two failure planes: Err(_) from the pool (panic
                    // exhausted the retry budget) and Ok(Err(_)) from the
                    // task itself (typed error, attempts == 1, zero retries
                    // spent). Drain placeholders are neither — they mark
                    // slots a graceful shutdown never executed.
                    match outcome.and_then(|typed| typed) {
                        Ok(metrics) => slots[slot] = Some(metrics),
                        Err(failure) if is_drain_placeholder(&failure) => drained = true,
                        Err(failure) => {
                            resilience::record_failure(failure.clone());
                            slots[slot] = Some(RunMetrics::failed_placeholder(&failure.label));
                            failures.push(failure);
                        }
                    }
                }
                profile
            }
        };

        if drained {
            // Completed results are flushed to the checkpoint (when armed);
            // report what was saved and exit through the drain path.
            let done = slots.iter().filter(|slot| slot.is_some()).count();
            crate::supervisor::exit_for_drain(done, n);
        }
        let metrics = slots
            .into_iter()
            .map(|slot| slot.expect("every slot restored, computed, or placeholdered"))
            .collect();
        SweepResult { metrics, profile, failures }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};

    #[test]
    fn results_arrive_in_submission_order() {
        // Tasks with deliberately inverted costs: the first submission is
        // the slowest, so completion order differs from submission order.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis((8 - i) as u64));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let (results, profile) = run_parallel(tasks, 4);
        assert_eq!(results, (0..8).collect::<Vec<_>>());
        assert_eq!(profile.jobs, 4);
        assert_eq!(profile.tasks, 8);
        assert_eq!(profile.assigned_worker.len(), 8);
        assert!(profile.worker_busy_ms.iter().all(|&b| b >= 0.0));
    }

    #[test]
    fn serial_fallback_spawns_no_pool() {
        let (results, profile) = run_parallel((0..3).map(|i| move || i * 2).collect(), 1);
        assert_eq!(results, vec![0, 2, 4]);
        assert_eq!(profile.jobs, 1);
        assert_eq!(profile.worker_busy_ms.len(), 1);
        assert_eq!(profile.assigned_worker, vec![0, 0, 0]);
        assert!((profile.speedup() - 1.0).abs() < 0.5, "serial speedup ~1");
    }

    #[test]
    fn jobs_clamp_to_task_count() {
        let (results, profile) = run_parallel(vec![|| 7usize], 16);
        assert_eq!(results, vec![7]);
        assert_eq!(profile.jobs, 1, "one task needs one worker");
    }

    #[test]
    fn empty_sweep_is_fine() {
        let (results, profile) = run_parallel(Vec::<fn() -> u8>::new(), 4);
        assert!(results.is_empty());
        assert_eq!(profile.tasks, 0);
    }

    #[test]
    fn sweep_matches_direct_runner_calls() {
        let cond = Condition::quick();
        let mut sweep = Sweep::new();
        sweep.bench("sjeng", baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
        sweep.bench("sjeng", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        assert_eq!(sweep.len(), 2);
        let result = sweep.run_with_jobs(2);
        assert!(result.failures.is_empty());
        let direct_base =
            crate::run_benchmark("sjeng", baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
        let direct_sipt =
            crate::run_benchmark("sjeng", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        assert_eq!(result.metrics[0].core, direct_base.core);
        assert_eq!(result.metrics[0].sipt, direct_base.sipt);
        assert_eq!(result.metrics[1].core, direct_sipt.core);
        assert_eq!(result.metrics[1].sipt, direct_sipt.sipt);
    }

    #[test]
    fn profile_json_has_required_keys() {
        let (_, profile) = run_parallel(vec![|| ()], 1);
        let json = profile.to_json();
        for key in ["jobs", "tasks", "wall_ms", "worker_busy_ms", "total_busy_ms", "speedup"] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        assert!(parallelism_json().is_some(), "global accumulator must be primed");
    }

    #[test]
    fn isolated_pool_captures_panics_and_finishes_the_rest() {
        let base = resilience::allocate_task_ids(6);
        let tasks: Vec<PoolTask<_>> = (0..6usize)
            .map(|i| PoolTask {
                id: base + i,
                label: format!("iso-{i}"),
                task: move |_w: usize| {
                    if i == 2 {
                        panic!("kaboom {i}");
                    }
                    i * 10
                },
            })
            .collect();
        let (outcomes, profile) = run_parallel_isolated(tasks, 3, 2);
        assert_eq!(profile.tasks, 6);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 2 {
                let failure = outcome.as_ref().unwrap_err();
                assert_eq!(failure.task, base + 2);
                assert_eq!(failure.label, "iso-2");
                assert_eq!(failure.attempts, 2, "retry budget spent");
                assert!(failure.panic_msg.contains("kaboom"));
            } else {
                assert_eq!(*outcome.as_ref().unwrap(), i * 10);
            }
        }
    }

    #[test]
    fn retry_recovers_transient_panics() {
        let base = resilience::allocate_task_ids(1);
        let attempts = std::sync::Arc::new(AtomicUsize::new(0));
        let seen = std::sync::Arc::clone(&attempts);
        let tasks = vec![PoolTask {
            id: base,
            label: "flaky".to_owned(),
            task: move |_w: usize| {
                if seen.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("transient");
                }
                99usize
            },
        }];
        let (outcomes, _) = run_parallel_isolated(tasks, 1, 3);
        assert_eq!(*outcomes[0].as_ref().unwrap(), 99);
        assert_eq!(attempts.load(Ordering::Relaxed), 2, "second attempt succeeded");
    }

    #[test]
    #[should_panic(expected = "parallel tasks failed")]
    fn legacy_front_end_panics_after_completion() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("legacy boom")), Box::new(|| 3)];
        let _ = run_parallel(tasks, 2);
    }

    #[test]
    fn request_fingerprints_discriminate_inputs() {
        let cond = Condition::quick();
        let mut sweep = Sweep::new();
        sweep.bench("sjeng", baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
        sweep.bench("sjeng", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        let a = sweep.requests[0].fingerprint();
        let b = sweep.requests[1].fingerprint();
        assert_ne!(a, b, "different configs must fingerprint differently");
        assert_eq!(a, sweep.requests[0].fingerprint(), "fingerprints are stable");
    }

    #[test]
    fn try_bench_reports_unknown_names() {
        let cond = Condition::quick();
        let mut sweep = Sweep::new();
        let err = sweep
            .try_bench("not-a-benchmark", baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond)
            .unwrap_err();
        assert!(matches!(err, crate::SimError::UnknownBenchmark { .. }));
        assert!(sweep.is_empty());
    }
}
