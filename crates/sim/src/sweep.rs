//! Dependency-free parallel sweep engine.
//!
//! Every paper artifact is a benchmark × configuration × condition sweep
//! whose individual runs are pure functions of their inputs (each run
//! seeds its own RNGs from the [`Condition`]), so they parallelize
//! embarrassingly — the same structure trace-driven simulators like
//! Sniper and gem5's multi-run harnesses exploit. This module provides:
//!
//! - [`run_parallel`]: execute a vector of independent closures on a
//!   [`std::thread::scope`]-based worker pool and return the results in
//!   **submission order**, so figure rows, harmonic means, and JSON
//!   reports are bit-identical to a serial run;
//! - [`Sweep`]: a typed builder over [`RunRequest`]s (benchmark runs
//!   through [`crate::runner::run_spec`]) for the common single-core case;
//! - job-count plumbing: `SIPT_JOBS` (parsed once, warning on malformed
//!   values) overridden by [`set_jobs`] (the `--jobs N` CLI flag), with
//!   [`std::thread::available_parallelism`] as the default;
//! - a process-wide [`ParallelismProfile`] accumulator that the report
//!   writer folds into the schema-v2 `parallelism` block.
//!
//! `jobs = 1` is an *exact* serial fallback: no worker threads are
//! spawned and the tasks run inline on the calling thread, in order.

use crate::machine::SystemKind;
use crate::metrics::RunMetrics;
use crate::runner::{run_spec_with_trace_capacity, trace_capacity, Condition};
use sipt_telemetry::json::Json;
use sipt_workloads::{benchmark, WorkloadSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Job-count resolution
// ---------------------------------------------------------------------------

/// Explicit override set by the `--jobs N` CLI flag (0 = unset).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `SIPT_JOBS`, parsed exactly once for the whole process so every sweep
/// (and every worker) agrees on it. Malformed values warn on stderr and
/// fall back to the default rather than being silently treated as 0.
fn jobs_from_env() -> Option<usize> {
    static PARSED: OnceLock<Option<usize>> = OnceLock::new();
    *PARSED.get_or_init(|| match std::env::var("SIPT_JOBS") {
        Ok(v) if v.is_empty() => None,
        Ok(v) => match v.parse::<usize>() {
            Ok(0) => {
                eprintln!("warning: SIPT_JOBS=0 is invalid (need >= 1); using the default");
                None
            }
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("warning: malformed SIPT_JOBS={v:?} (not an integer); using the default");
                None
            }
        },
        Err(_) => None,
    })
}

/// Set the process-wide job count (the `--jobs N` flag). Takes precedence
/// over `SIPT_JOBS`. Values of 0 are ignored.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// The job count sweeps use unless given an explicit count: the
/// [`set_jobs`] override, else `SIPT_JOBS`, else the host's available
/// parallelism.
pub fn effective_jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    jobs_from_env().unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

// ---------------------------------------------------------------------------
// Parallelism accounting
// ---------------------------------------------------------------------------

/// Wall-clock accounting of one parallel sweep execution: how many
/// workers ran, how busy each was, and the resulting speedup over the
/// serial (sum-of-busy-time) cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelismProfile {
    /// Worker count actually used (after clamping to the task count).
    pub jobs: usize,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Wall-clock milliseconds from first submission to last completion.
    pub wall_ms: f64,
    /// Per-worker busy milliseconds (time spent inside tasks), indexed by
    /// worker id. Length equals `jobs`.
    pub worker_busy_ms: Vec<f64>,
    /// Which worker executed each task, in submission order.
    pub assigned_worker: Vec<usize>,
}

impl ParallelismProfile {
    /// Total busy milliseconds across workers — the serial cost of the
    /// same sweep.
    pub fn total_busy_ms(&self) -> f64 {
        self.worker_busy_ms.iter().sum()
    }

    /// Wall-clock speedup versus running the same tasks serially:
    /// `total_busy_ms / wall_ms` (1.0 when the sweep ran serially).
    pub fn speedup(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.total_busy_ms() / self.wall_ms
        } else {
            1.0
        }
    }

    /// This profile as the report-schema `parallelism` object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("jobs", Json::u64(self.jobs as u64)),
            ("tasks", Json::u64(self.tasks as u64)),
            ("wall_ms", Json::num(self.wall_ms)),
            ("worker_busy_ms", Json::arr(self.worker_busy_ms.iter().map(|&v| Json::num(v)))),
            ("total_busy_ms", Json::num(self.total_busy_ms())),
            ("speedup", Json::num(self.speedup())),
        ])
    }
}

/// Process-wide accumulation of every sweep executed so far, folded into
/// the schema-v2 report `parallelism` block by the figure binaries.
#[derive(Debug, Clone, Default, PartialEq)]
struct Accumulated {
    sweeps: usize,
    jobs_max: usize,
    tasks: usize,
    wall_ms: f64,
    worker_busy_ms: Vec<f64>,
}

static ACCUMULATED: Mutex<Option<Accumulated>> = Mutex::new(None);

fn record(profile: &ParallelismProfile) {
    let mut guard = ACCUMULATED.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let acc = guard.get_or_insert_with(Accumulated::default);
    acc.sweeps += 1;
    acc.jobs_max = acc.jobs_max.max(profile.jobs);
    acc.tasks += profile.tasks;
    acc.wall_ms += profile.wall_ms;
    if acc.worker_busy_ms.len() < profile.worker_busy_ms.len() {
        acc.worker_busy_ms.resize(profile.worker_busy_ms.len(), 0.0);
    }
    for (total, busy) in acc.worker_busy_ms.iter_mut().zip(&profile.worker_busy_ms) {
        *total += busy;
    }
}

/// The process-wide `parallelism` report block: `None` until the first
/// sweep has executed. Aggregates every sweep run so far (a figure binary
/// typically runs several).
pub fn parallelism_json() -> Option<Json> {
    let guard = ACCUMULATED.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let acc = guard.as_ref()?;
    let total_busy: f64 = acc.worker_busy_ms.iter().sum();
    let speedup = if acc.wall_ms > 0.0 { total_busy / acc.wall_ms } else { 1.0 };
    Some(Json::obj([
        ("jobs", Json::u64(acc.jobs_max as u64)),
        ("sweeps", Json::u64(acc.sweeps as u64)),
        ("tasks", Json::u64(acc.tasks as u64)),
        ("wall_ms", Json::num(acc.wall_ms)),
        ("worker_busy_ms", Json::arr(acc.worker_busy_ms.iter().map(|&v| Json::num(v)))),
        ("total_busy_ms", Json::num(total_busy)),
        ("speedup", Json::num(speedup)),
    ]))
}

// ---------------------------------------------------------------------------
// The generic engine
// ---------------------------------------------------------------------------

/// Run independent tasks on a scoped worker pool and return their results
/// in **submission order** together with the parallelism profile.
///
/// `jobs <= 1` (or a single task) is an exact serial fallback: everything
/// runs inline on the calling thread, in order, with no pool. Results are
/// identical either way because each task is an independent pure function
/// — the pool only changes *when* a task runs, never its inputs.
pub fn run_parallel<T, F>(tasks: Vec<F>, jobs: usize) -> (Vec<T>, ParallelismProfile)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let jobs = jobs.max(1).min(n.max(1));
    let wall = Instant::now();

    if jobs <= 1 {
        let t0 = Instant::now();
        let results: Vec<T> = tasks.into_iter().map(|task| task()).collect();
        let busy = t0.elapsed().as_secs_f64() * 1e3;
        let profile = ParallelismProfile {
            jobs: 1,
            tasks: n,
            wall_ms: wall.elapsed().as_secs_f64() * 1e3,
            worker_busy_ms: vec![busy],
            assigned_worker: vec![0; n],
        };
        record(&profile);
        return (results, profile);
    }

    // Work-stealing-by-index: each slot is claimed exactly once via the
    // shared counter, and each result lands in its submission slot, so
    // output order is independent of completion order.
    let task_cells: Vec<Mutex<Option<F>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let result_cells: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let assigned: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let busy: Vec<Mutex<f64>> = (0..jobs).map(|_| Mutex::new(0.0)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for (worker, busy_cell) in busy.iter().enumerate() {
            let task_cells = &task_cells;
            let result_cells = &result_cells;
            let assigned = &assigned;
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = task_cells[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("task claimed twice");
                let t0 = Instant::now();
                let result = task();
                let elapsed = t0.elapsed().as_secs_f64() * 1e3;
                *busy_cell.lock().unwrap_or_else(std::sync::PoisonError::into_inner) += elapsed;
                assigned[i].store(worker, Ordering::Relaxed);
                *result_cells[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    Some(result);
            });
        }
    });

    let results: Vec<T> = result_cells
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("worker completed every claimed task")
        })
        .collect();
    let profile = ParallelismProfile {
        jobs,
        tasks: n,
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
        worker_busy_ms: busy
            .into_iter()
            .map(|cell| cell.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
            .collect(),
        assigned_worker: assigned.into_iter().map(AtomicUsize::into_inner).collect(),
    };
    record(&profile);
    (results, profile)
}

/// [`run_parallel`] at the process-default job count ([`effective_jobs`]).
pub fn run_parallel_default<T, F>(tasks: Vec<F>) -> (Vec<T>, ParallelismProfile)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_parallel(tasks, effective_jobs())
}

// ---------------------------------------------------------------------------
// The typed single-core sweep builder
// ---------------------------------------------------------------------------

/// One single-core benchmark run: the exact inputs of
/// [`crate::runner::run_spec`], plus a caller label for row assembly and
/// the event-trace capacity resolved once per sweep so every worker
/// agrees on it.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Workload to run.
    pub spec: WorkloadSpec,
    /// L1 configuration.
    pub l1: sipt_core::L1Config,
    /// System (core + hierarchy) model.
    pub system: SystemKind,
    /// Operating condition.
    pub cond: Condition,
    /// Caller label (benchmark name, config label, …) for row assembly.
    pub label: String,
}

/// Builder that collects [`RunRequest`]s and executes them on the worker
/// pool, returning metrics in submission order.
#[derive(Debug, Default)]
pub struct Sweep {
    requests: Vec<RunRequest>,
}

/// The results of a sweep: one [`RunMetrics`] per request, in submission
/// order, plus the parallelism profile of the execution.
#[derive(Debug)]
pub struct SweepResult {
    /// Metrics in submission order.
    pub metrics: Vec<RunMetrics>,
    /// Wall-clock/parallelism accounting.
    pub profile: ParallelismProfile,
}

/// Consuming the results yields [`RunMetrics`] in submission order — the
/// porting idiom is `let mut runs = sweep.run().into_iter()` followed by
/// `runs.next().expect("submitted")` in the same order as submission.
impl IntoIterator for SweepResult {
    type Item = RunMetrics;
    type IntoIter = std::vec::IntoIter<RunMetrics>;

    fn into_iter(self) -> Self::IntoIter {
        self.metrics.into_iter()
    }
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a raw request. Returns its submission index.
    pub fn push(&mut self, request: RunRequest) -> usize {
        self.requests.push(request);
        self.requests.len() - 1
    }

    /// Queue a run of a named benchmark preset (the parallel analogue of
    /// [`crate::runner::run_benchmark`]). Returns its submission index.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known benchmark preset.
    pub fn bench(
        &mut self,
        name: &str,
        l1: sipt_core::L1Config,
        system: SystemKind,
        cond: &Condition,
    ) -> usize {
        let spec = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        self.push(RunRequest { spec, l1, system, cond: *cond, label: name.to_owned() })
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Execute at the process-default job count ([`effective_jobs`]).
    pub fn run(self) -> SweepResult {
        let jobs = effective_jobs();
        self.run_with_jobs(jobs)
    }

    /// Execute on exactly `jobs` workers (1 = serial, inline).
    pub fn run_with_jobs(self, jobs: usize) -> SweepResult {
        // Resolve the event-trace capacity once, outside the pool, so the
        // workers cannot disagree (and the env var is only parsed once).
        let capacity = trace_capacity();
        let tasks: Vec<_> = self
            .requests
            .into_iter()
            .map(|req| {
                move || {
                    run_spec_with_trace_capacity(&req.spec, req.l1, req.system, &req.cond, capacity)
                }
            })
            .collect();
        let (mut metrics, profile) = run_parallel(tasks, jobs);
        for (m, &worker) in metrics.iter_mut().zip(&profile.assigned_worker) {
            m.phases.worker = worker;
        }
        SweepResult { metrics, profile }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};

    #[test]
    fn results_arrive_in_submission_order() {
        // Tasks with deliberately inverted costs: the first submission is
        // the slowest, so completion order differs from submission order.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis((8 - i) as u64));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let (results, profile) = run_parallel(tasks, 4);
        assert_eq!(results, (0..8).collect::<Vec<_>>());
        assert_eq!(profile.jobs, 4);
        assert_eq!(profile.tasks, 8);
        assert_eq!(profile.assigned_worker.len(), 8);
        assert!(profile.worker_busy_ms.iter().all(|&b| b >= 0.0));
    }

    #[test]
    fn serial_fallback_spawns_no_pool() {
        let (results, profile) = run_parallel((0..3).map(|i| move || i * 2).collect(), 1);
        assert_eq!(results, vec![0, 2, 4]);
        assert_eq!(profile.jobs, 1);
        assert_eq!(profile.worker_busy_ms.len(), 1);
        assert_eq!(profile.assigned_worker, vec![0, 0, 0]);
        assert!((profile.speedup() - 1.0).abs() < 0.5, "serial speedup ~1");
    }

    #[test]
    fn jobs_clamp_to_task_count() {
        let (results, profile) = run_parallel(vec![|| 7usize], 16);
        assert_eq!(results, vec![7]);
        assert_eq!(profile.jobs, 1, "one task needs one worker");
    }

    #[test]
    fn empty_sweep_is_fine() {
        let (results, profile) = run_parallel(Vec::<fn() -> u8>::new(), 4);
        assert!(results.is_empty());
        assert_eq!(profile.tasks, 0);
    }

    #[test]
    fn sweep_matches_direct_runner_calls() {
        let cond = Condition::quick();
        let mut sweep = Sweep::new();
        sweep.bench("sjeng", baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
        sweep.bench("sjeng", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        assert_eq!(sweep.len(), 2);
        let result = sweep.run_with_jobs(2);
        let direct_base =
            crate::run_benchmark("sjeng", baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
        let direct_sipt =
            crate::run_benchmark("sjeng", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        assert_eq!(result.metrics[0].core, direct_base.core);
        assert_eq!(result.metrics[0].sipt, direct_base.sipt);
        assert_eq!(result.metrics[1].core, direct_sipt.core);
        assert_eq!(result.metrics[1].sipt, direct_sipt.sipt);
    }

    #[test]
    fn profile_json_has_required_keys() {
        let (_, profile) = run_parallel(vec![|| ()], 1);
        let json = profile.to_json();
        for key in ["jobs", "tasks", "wall_ms", "worker_busy_ms", "total_busy_ms", "speedup"] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        assert!(parallelism_json().is_some(), "global accumulator must be primed");
    }
}
