//! The block-replay kernel: the hot path of every timed run.
//!
//! Per-access replay (`runner::run_core`) pays, for every instruction, an
//! `Inst` rematerialization, a TLB probe, two `match`es on the L1 policy,
//! and a virtual-ish hop through the [`MemoryPath`] trait object surface.
//! This module restructures the loop around fixed-size blocks of packed
//! structure-of-arrays instructions ([`sipt_workloads::InstBlock`]):
//!
//! 1. **Batched translation with per-set MRU guards** — each block's
//!    memory VAs are translated *before* the timing loop. Consecutive
//!    accesses to the same 4 KiB page skip the set-associative TLB probe
//!    entirely via [`sipt_tlb::DataTlb::translate_repeat`], and
//!    *non-consecutive* repeats within the run are short-circuited by
//!    [`sipt_tlb::TlbBatch`]: one guard slot per L1-TLB set remembers the
//!    set's MRU page, so any re-reference of a set-MRU page skips the
//!    probe too (the skipped `get` would only refresh an already-MRU
//!    entry, so every future replacement decision is unchanged — see the
//!    `TlbBatch` docs for the proof sketch). Translation state (TLB +
//!    translation cache) is disjoint from the cache hierarchy and
//!    translations are time-independent, so hoisting them out of the
//!    timing loop is bit-identical by construction. `SIPT_TLB_BATCH=0`
//!    (or [`set_tlb_batch`]`(false)`, the figure binaries'
//!    `--no-tlb-batch`) falls back to the plain probe-per-page path.
//! 2. **Monomorphized policy dispatch** — the `(SystemKind, L1Policy)`
//!    pair is matched *once per run*; the inner loop calls
//!    [`sipt_core::SiptL1::access_mono`] with a zero-sized
//!    [`sipt_core::PolicyTag`], so the per-access policy `match`es constant-fold
//!    away and the engine step inlines without trait indirection.
//! 3. **Engine state in a struct** — [`sipt_cpu::OooEngine`] /
//!    [`sipt_cpu::InOrderEngine`] carry the timestamp-dataflow state, so the
//!    kernel steps decoded fields (`unpack_meta_fields`) without building
//!    `Inst` values.
//! 4. **Per-block telemetry accumulation** — when the attached
//!    [`sipt_core::L1Telemetry`] retains no events and samples every
//!    access (the runner's default), the timing loop records into a
//!    stack-local [`sipt_core::BlockTelemetry`] and merges it into the
//!    shared sink once per block, keeping the ring-buffer and sampling
//!    machinery off the per-access path. Snapshots, flight summaries and
//!    tracer drop-accounting stay byte-identical (pinned by
//!    `block_merge_matches_sequential_recording` in `sipt-core`).
//!
//! A translation fault (an unmapped VA — possible only for *external*
//! traces, never for generated workloads) surfaces as a typed
//! [`SimError::Trace`] instead of a panic, before any timing state is
//! advanced for the faulting block.
//!
//! The batch size comes from `SIPT_REPLAY_BATCH` (default
//! [`DEFAULT_REPLAY_BATCH`]) or [`set_replay_batch`]; any batch size
//! produces bit-identical results — the golden-fingerprint tests pin this.

use crate::error::SimError;
use crate::machine::{Machine, SystemKind};
use sipt_cache::{LineAddr, LowerHierarchy};
use sipt_core::{policy_tags, BlockPredictions, BlockTelemetry, L1Policy, PolicyTag, SiptL1};
use sipt_cpu::{
    meta_has_mem, unpack_meta_fields, CoreResult, InOrderConfig, InOrderEngine, MemResponse,
    OooConfig, OooEngine, RUN_FAST_MIN,
};
use sipt_dram::Dram;
use sipt_mem::{VirtAddr, VirtPageNum};
use sipt_tlb::{TlbBatch, TlbOutcome};
use sipt_workloads::{InstBlock, MaterializedTrace, TraceCursor};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Batch-size knob
// ---------------------------------------------------------------------------

/// Default instructions per replay block. Large enough to amortize the
/// per-block dispatch and translation-buffer setup, small enough that the
/// block's SoA slices and translation buffer stay L1-cache resident.
pub const DEFAULT_REPLAY_BATCH: usize = 256;

/// Programmatic batch override (0 = unset; takes precedence over the
/// environment).
static BATCH_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide replay batch size, overriding `SIPT_REPLAY_BATCH`
/// (0 clears the override). Any batch size yields bit-identical results;
/// this knob exists for the differential tests and the CI batch smoke.
pub fn set_replay_batch(batch: usize) {
    BATCH_OVERRIDE.store(batch, Ordering::Relaxed);
}

/// The replay batch size: the [`set_replay_batch`] override, else
/// `SIPT_REPLAY_BATCH` (parsed once, clamped to >= 1, malformed values
/// warn), else [`DEFAULT_REPLAY_BATCH`].
pub fn replay_batch() -> usize {
    let explicit = BATCH_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    static PARSED: OnceLock<usize> = OnceLock::new();
    *PARSED.get_or_init(|| match crate::env::parse_or_warn("SIPT_REPLAY_BATCH") {
        Some(0) => {
            eprintln!("warning: SIPT_REPLAY_BATCH=0 is invalid (need >= 1); using the default");
            DEFAULT_REPLAY_BATCH
        }
        Some(n) => n.min(usize::MAX as u64) as usize,
        None => DEFAULT_REPLAY_BATCH,
    })
}

// ---------------------------------------------------------------------------
// TLB-batching knob
// ---------------------------------------------------------------------------

/// Runtime enable state for guarded TLB batching: 0 = follow
/// `SIPT_TLB_BATCH`, 1 = forced on, 2 = forced off (the figure binaries'
/// `--no-tlb-batch` flag).
static TLB_BATCH_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn tlb_batch_env_default() -> bool {
    static PARSED: OnceLock<bool> = OnceLock::new();
    *PARSED.get_or_init(|| match std::env::var("SIPT_TLB_BATCH") {
        // Unset or blank keeps the default (on); otherwise the shared
        // switch semantics apply, so `SIPT_TLB_BATCH=0` disables.
        Ok(v) => v.trim().is_empty() || crate::env::switch_value(&v),
        Err(_) => true,
    })
}

/// Force guarded TLB batching on or off for the rest of the process,
/// overriding `SIPT_TLB_BATCH`. Batching is a pure wall-clock
/// optimization — payloads are bit-identical either way (pinned by the
/// golden-fingerprint and escape-hatch tests) — so the escape hatch
/// exists for triage, not correctness.
pub fn set_tlb_batch(on: bool) {
    TLB_BATCH_OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Whether the translation phase uses [`TlbBatch`] MRU guards.
pub fn tlb_batch_enabled() -> bool {
    match TLB_BATCH_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => tlb_batch_env_default(),
    }
}

// ---------------------------------------------------------------------------
// Predictor-staging knob
// ---------------------------------------------------------------------------

/// Runtime enable state for the block-staged predictor front-end: 0 =
/// follow `SIPT_PREDICTOR_STAGE`, 1 = forced on, 2 = forced off.
static PREDICTOR_STAGE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn predictor_stage_env_default() -> bool {
    static PARSED: OnceLock<bool> = OnceLock::new();
    *PARSED.get_or_init(|| match std::env::var("SIPT_PREDICTOR_STAGE") {
        // Unset or blank keeps the default (off — see below); otherwise
        // the shared switch semantics apply, so `SIPT_PREDICTOR_STAGE=1`
        // opts in and `SIPT_PREDICTOR_STAGE=0` forces off.
        Ok(v) => !v.trim().is_empty() && crate::env::switch_value(&v),
        Err(_) => false,
    })
}

/// Force the block-staged predictor front-end on or off for the rest of
/// the process, overriding `SIPT_PREDICTOR_STAGE`. Staging is payload-
/// neutral — the staged records are validity-stamped and the L1 falls
/// back to the scalar predictor path on any stamp mismatch, so results
/// are bit-identical either way (pinned by the golden fingerprints, which
/// the identity suite sweeps with staging forced on *and* off).
///
/// It is **off by default**: a staged dot-product costs exactly what the
/// in-loop dot-product costs (same rows, same unroll), so staging can
/// only relocate the predictor arithmetic while paying for the gather,
/// sweep, stamps, and record traffic on top — measured at roughly +7
/// ns/inst on the combined-policy replay at production block sizes (see
/// the hot-path appendix in EXPERIMENTS.md). The mechanism stays for
/// hosts or configurations where the trade flips.
pub fn set_predictor_stage(on: bool) {
    PREDICTOR_STAGE_OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Whether the replay kernel stages predictor state per block.
pub fn predictor_stage_enabled() -> bool {
    match PREDICTOR_STAGE_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => predictor_stage_env_default(),
    }
}

// ---------------------------------------------------------------------------
// Engine abstraction
// ---------------------------------------------------------------------------

/// The two core timing engines, unified for the kernel's generic inner
/// loop. Implemented on the concrete engine types so every call site
/// monomorphizes — no dyn dispatch on the hot path.
trait BlockEngine {
    /// Fresh engine with the system's Table II default configuration.
    fn fresh() -> Self;
    /// Advance by one decoded instruction (same contract as
    /// [`OooEngine::step`]).
    fn step_inst<F: FnMut(u64) -> MemResponse>(
        &mut self,
        dst: Option<u8>,
        srcs: [Option<u8>; 2],
        mem_store: Option<bool>,
        exec_latency: u64,
        mem: F,
    );
    /// Advance over a run of non-memory instructions (packed metadata),
    /// bit-identical to stepping each one; long eligible runs advance in
    /// closed form (same contract as [`OooEngine::step_run`]).
    fn step_run(&mut self, metas: &[u32]);
    /// Final counts for the stream stepped so far.
    fn result(&self) -> CoreResult;
}

impl BlockEngine for OooEngine {
    fn fresh() -> Self {
        OooEngine::new(OooConfig::default())
    }

    #[inline(always)]
    fn step_inst<F: FnMut(u64) -> MemResponse>(
        &mut self,
        dst: Option<u8>,
        srcs: [Option<u8>; 2],
        mem_store: Option<bool>,
        exec_latency: u64,
        mem: F,
    ) {
        self.step(dst, srcs, mem_store, exec_latency, mem);
    }

    #[inline]
    fn step_run(&mut self, metas: &[u32]) {
        OooEngine::step_run(self, metas);
    }

    fn result(&self) -> CoreResult {
        self.finish()
    }
}

impl BlockEngine for InOrderEngine {
    fn fresh() -> Self {
        InOrderEngine::new(InOrderConfig::default())
    }

    #[inline(always)]
    fn step_inst<F: FnMut(u64) -> MemResponse>(
        &mut self,
        dst: Option<u8>,
        srcs: [Option<u8>; 2],
        mem_store: Option<bool>,
        exec_latency: u64,
        mem: F,
    ) {
        self.step(dst, srcs, mem_store, exec_latency, mem);
    }

    #[inline]
    fn step_run(&mut self, metas: &[u32]) {
        InOrderEngine::step_run(self, metas);
    }

    fn result(&self) -> CoreResult {
        self.finish()
    }
}

// ---------------------------------------------------------------------------
// The kernel
// ---------------------------------------------------------------------------

/// Replay up to `limit` instructions from `cursor` through `machine` on
/// the system's core model, in blocks. Pass `usize::MAX` to drain the
/// cursor. The cursor stops exactly at the boundary, so warmup and
/// measurement are separate calls (VPN coalescing state never crosses the
/// `reset_stats` boundary — it is per-block anyway).
///
/// # Errors
///
/// [`SimError::Trace`] when the stream references an unmapped virtual
/// address (`workload` names the stream in the error).
pub(crate) fn replay(
    system: SystemKind,
    machine: &mut Machine,
    cursor: &mut TraceCursor<'_>,
    limit: usize,
    workload: &str,
) -> Result<CoreResult, SimError> {
    // One match per *run*: 2 systems x 6 policies, each arm a fully
    // monomorphized kernel instance.
    macro_rules! dispatch_policies {
        ($engine:ty) => {
            match machine.l1.config().policy {
                L1Policy::Vipt => {
                    replay_mono::<$engine, policy_tags::Vipt>(machine, cursor, limit, workload)
                }
                L1Policy::Ideal => {
                    replay_mono::<$engine, policy_tags::Ideal>(machine, cursor, limit, workload)
                }
                L1Policy::Pipt => {
                    replay_mono::<$engine, policy_tags::Pipt>(machine, cursor, limit, workload)
                }
                L1Policy::SiptNaive => {
                    replay_mono::<$engine, policy_tags::SiptNaive>(machine, cursor, limit, workload)
                }
                L1Policy::SiptBypass => replay_mono::<$engine, policy_tags::SiptBypass>(
                    machine, cursor, limit, workload,
                ),
                L1Policy::SiptCombined => replay_mono::<$engine, policy_tags::SiptCombined>(
                    machine, cursor, limit, workload,
                ),
            }
        };
    }
    match system {
        SystemKind::OooThreeLevel => dispatch_policies!(OooEngine),
        SystemKind::InOrderTwoLevel => dispatch_policies!(InOrderEngine),
    }
}

/// Replay a whole materialized trace through `machine` — the public entry
/// point for external traces (`trace_tool replay`, differential tests).
///
/// # Errors
///
/// [`SimError::Trace`] when the trace references an unmapped virtual
/// address — external trace files are untrusted input, so a bad trace is
/// a typed, *non-retryable* error rather than a panic.
pub fn replay_trace(
    system: SystemKind,
    machine: &mut Machine,
    trace: &MaterializedTrace,
    workload: &str,
) -> Result<CoreResult, SimError> {
    let mut cursor = trace.cursor();
    replay(system, machine, &mut cursor, usize::MAX, workload)
}

/// The monomorphized kernel body: everything the per-access path did, with
/// translation batched per block and the policy constant-folded.
fn replay_mono<E: BlockEngine, P: PolicyTag>(
    machine: &mut Machine,
    cursor: &mut TraceCursor<'_>,
    limit: usize,
    workload: &str,
) -> Result<CoreResult, SimError> {
    let batch = replay_batch();
    let mut engine = E::fresh();
    let mut xbuf: Vec<TlbOutcome> = Vec::with_capacity(batch.min(1 << 16));
    // Per-set MRU guards, fresh per replay call: nothing mutates the
    // L1-TLB arrays between blocks of one call except the translation
    // phase itself, so the guards stay valid across blocks.
    let batching = tlb_batch_enabled();
    let mut guards = TlbBatch::for_tlb(machine.tlb());
    // Predictor staging: sweep (pc, unchanged) windows through the fused
    // bank ahead of the timing loop (lazily, inside `step_block`, so the
    // scratch stays cache-resident). `unchanged` derives from the batched
    // translations alone, so staging needs nothing from timing.
    let staging = predictor_stage_enabled() && machine.l1().staging_eligible();
    let mut preds = BlockPredictions::new();
    // Telemetry mode is a property of the attachment, fixed for the run:
    // block accumulation when the tracer retains nothing and sampling is
    // 1:1 (the runner's default), per-access recording otherwise.
    let block_tlm = machine.l1().telemetry_block_eligible();
    let mut blk = BlockTelemetry::new();
    let mut remaining = limit;
    while remaining > 0 {
        let Some(block) = cursor.next_block(batch.min(remaining)) else { break };
        remaining -= block.len();

        // Disjoint field borrows: the translation phase needs tlb + xlat +
        // asp; the timing phase needs l1 + lower.
        let Machine { asp, tlb, xlat, l1, lower, .. } = machine;

        // Phase 1: batch-translate the block's memory VAs. `prev_vpn`
        // tracks VPN runs (the previous outcome is xbuf's last entry);
        // non-consecutive set-MRU repeats fall to the guard check.
        xbuf.clear();
        let mut prev_vpn: Option<VirtPageNum> = None;
        for &raw in block.mem_vas {
            let va = VirtAddr::new(raw);
            let vpn = va.vpn();
            let outcome = if prev_vpn == Some(vpn) {
                let prev = xbuf.last().expect("a VPN run starts with a full translation");
                tlb.translate_repeat(prev, va)
            } else if batching {
                tlb.translate_batched(&mut guards, va, |va| xlat.translate(asp.page_table(), va))
                    .map_err(|fault| SimError::trace(workload, fault.to_string()))?
            } else {
                tlb.translate_with(va, |va| xlat.translate(asp.page_table(), va))
                    .map_err(|fault| SimError::trace(workload, fault.to_string()))?
            };
            prev_vpn = Some(vpn);
            xbuf.push(outcome);
        }

        // Phase 2: step the timing engine over the block (staging the
        // predictor front-end in windows as it goes), then drain the
        // block-local telemetry (if engaged) in one merge.
        if block_tlm {
            step_block::<E, P, true>(
                &mut engine,
                l1,
                lower,
                &block,
                &xbuf,
                staging,
                &mut preds,
                &mut blk,
            );
            l1.flush_block_telemetry(&mut blk);
        } else {
            step_block::<E, P, false>(
                &mut engine,
                l1,
                lower,
                &block,
                &xbuf,
                staging,
                &mut preds,
                &mut blk,
            );
        }
    }
    Ok(engine.result())
}

/// Phase 2 of the kernel: step the timing engine over one block. Memory
/// instructions consume pre-translated outcomes in order; the memory
/// closure is the body of `Machine::access` minus the TLB probe. `BLK_TLM`
/// selects block-local telemetry accumulation at compile time, so the
/// per-access path carries no telemetry-mode branch in either instance.
#[inline]
#[allow(clippy::too_many_arguments)] // the phase-2 kernel entry: every argument is distinct per-block state
fn step_block<E: BlockEngine, P: PolicyTag, const BLK_TLM: bool>(
    engine: &mut E,
    l1: &mut SiptL1,
    lower: &mut LowerHierarchy<Dram>,
    block: &InstBlock<'_>,
    xbuf: &[TlbOutcome],
    staging: bool,
    preds: &mut BlockPredictions,
    blk: &mut BlockTelemetry,
) {
    let meta = block.meta;
    let mut mem_idx = 0usize;
    let mut stage_next = 0usize;
    let mut i = 0usize;
    while i < meta.len() {
        if !meta_has_mem(meta[i]) {
            // A run of non-memory instructions. Long runs go to the
            // engine as a slice, which fast-forwards eligible chunks in
            // closed form and replays the rest exactly; short runs (the
            // common case between memory ops) step inline — the slice
            // hand-off's bookkeeping costs more than it can save below
            // the fast-path's own minimum run length.
            let start = i;
            i += 1;
            while i < meta.len() && !meta_has_mem(meta[i]) {
                i += 1;
            }
            let run = &meta[start..i];
            if run.len() >= RUN_FAST_MIN {
                engine.step_run(run);
            } else {
                for &m in run {
                    let (dst, srcs, _, exec_latency) = unpack_meta_fields(m);
                    engine.step_inst(dst, srcs, None, exec_latency, |_| -> MemResponse {
                        unreachable!("non-memory instruction")
                    });
                }
            }
            continue;
        }
        let (dst, srcs, mem_store, exec_latency) = unpack_meta_fields(meta[i]);
        let is_store = mem_store.expect("meta_has_mem guarantees a memory op");
        let pc = block.pcs[i];
        let va = VirtAddr::new(block.mem_vas[mem_idx]);
        let outcome = xbuf[mem_idx];
        if staging && mem_idx == stage_next {
            stage_next = stage_window(l1, block, xbuf, i, mem_idx, preds);
        }
        let staged = preds.get(mem_idx);
        mem_idx += 1;
        i += 1;
        engine.step_inst(dst, srcs, Some(is_store), exec_latency, |now| {
            let access = if BLK_TLM {
                l1.access_mono_block::<P>(
                    pc,
                    va,
                    outcome.translation,
                    outcome.cycles,
                    is_store,
                    staged,
                    blk,
                )
            } else {
                l1.access_mono_staged::<P>(
                    pc,
                    va,
                    outcome.translation,
                    outcome.cycles,
                    is_store,
                    staged,
                )
            };
            let mut latency = access.latency;
            if !access.hit {
                let line = LineAddr::of_phys(outcome.translation.pa);
                let service = lower.access(line, is_store, now + latency);
                latency += service.latency;
                if let Some(evicted) = l1.fill(line, is_store) {
                    if evicted.dirty {
                        lower.writeback(evicted.line);
                    }
                }
            }
            MemResponse { latency, port_slots: access.array_reads.max(1) }
        });
    }
    debug_assert_eq!(mem_idx, xbuf.len(), "every memory VA consumed");
}

/// Memory accesses staged per window. Sized so the scratch (stamps +
/// records + gathered PCs/outcomes) stays L1-cache-resident next to the
/// block's SoA arrays, and so stamp invalidation — which only has to
/// cover trainings *within* the window, because the bank is exactly
/// current at each window start — voids few staged sums.
const STAGE_WINDOW: usize = 64;

/// Stage the next window of memory accesses starting at instruction
/// `inst_idx` (block-level memory-access index `mem_idx`): gather up to
/// [`STAGE_WINDOW`] (pc, unchanged) pairs ahead of the timing cursor and
/// sweep them through the fused predictor bank. Returns the block-level
/// access index at which the following window begins.
fn stage_window(
    l1: &SiptL1,
    block: &InstBlock<'_>,
    xbuf: &[TlbOutcome],
    inst_idx: usize,
    mem_idx: usize,
    preds: &mut BlockPredictions,
) -> usize {
    let spec_bits = l1.speculative_bits();
    let meta = block.meta;
    let mut pcs = [0u64; STAGE_WINDOW];
    let mut unchanged = [false; STAGE_WINDOW];
    let mut n = 0usize;
    let mut mi = mem_idx;
    let mut i = inst_idx;
    while n < STAGE_WINDOW && i < meta.len() {
        if meta_has_mem(meta[i]) {
            pcs[n] = block.pcs[i];
            let va = VirtAddr::new(block.mem_vas[mi]);
            unchanged[n] = xbuf[mi].translation.index_bits_unchanged(va, spec_bits);
            mi += 1;
            n += 1;
        }
        i += 1;
    }
    l1.stage_block(&pcs[..n], &unchanged[..n], mem_idx, preds);
    mem_idx + n
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipt_core::{sipt_32k_2w, L1Config};
    use sipt_cpu::Inst;
    use sipt_mem::{AddressSpace, BuddyAllocator, PlacementPolicy};
    use sipt_workloads::{benchmark, TraceGen};

    fn prepared(name: &str, n: u64) -> (AddressSpace, MaterializedTrace) {
        let spec = benchmark(name).unwrap();
        let mut phys = BuddyAllocator::with_bytes(1 << 30);
        let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
        let gen = TraceGen::build(&spec, &mut asp, &mut phys, n, 42).unwrap();
        (asp, MaterializedTrace::from_gen(gen))
    }

    fn run_block(
        system: SystemKind,
        l1: L1Config,
        asp: AddressSpace,
        trace: &MaterializedTrace,
        warmup: usize,
    ) -> (CoreResult, Machine) {
        let mut machine = Machine::new(asp, l1, system);
        let mut cursor = trace.cursor();
        replay(system, &mut machine, &mut cursor, warmup, "test").unwrap();
        machine.reset_stats();
        let core = replay(system, &mut machine, &mut cursor, usize::MAX, "test").unwrap();
        (core, machine)
    }

    fn run_per_access(
        system: SystemKind,
        l1: L1Config,
        asp: AddressSpace,
        trace: &MaterializedTrace,
        warmup: usize,
    ) -> (CoreResult, Machine) {
        let mut machine = Machine::new(asp, l1, system);
        let mut cursor = trace.cursor();
        crate::runner::run_core(system, (&mut cursor).take(warmup), &mut machine);
        machine.reset_stats();
        let core = crate::runner::run_core(system, cursor, &mut machine);
        assert!(machine.take_fault().is_none());
        (core, machine)
    }

    /// The load-bearing invariant: the block kernel is bit-identical to
    /// per-access replay — same core counts and same per-structure stats —
    /// for every system, representative policies, and batch sizes
    /// bracketing the block boundary cases.
    #[test]
    fn block_kernel_matches_per_access_replay() {
        use sipt_core::baseline_32k_8w_vipt;
        let cases = [
            (SystemKind::OooThreeLevel, sipt_32k_2w()),
            (SystemKind::OooThreeLevel, baseline_32k_8w_vipt()),
            (SystemKind::InOrderTwoLevel, sipt_32k_2w()),
        ];
        for (system, l1) in cases {
            let policy = l1.policy;
            let (asp_ref, trace) = prepared("mcf", 12_000);
            let (ref_core, ref_machine) =
                run_per_access(system, l1.clone(), asp_ref, &trace, 3_000);
            for batch in [1usize, 7, 256] {
                for batching in [true, false] {
                    set_replay_batch(batch);
                    set_tlb_batch(batching);
                    let (asp, trace2) = prepared("mcf", 12_000);
                    assert_eq!(trace2, trace, "preparation is deterministic");
                    let (core, machine) = run_block(system, l1.clone(), asp, &trace2, 3_000);
                    let tag = format!("{system:?}/{policy:?} batch {batch} tlb_batch {batching}");
                    assert_eq!(core, ref_core, "{tag}");
                    assert_eq!(machine.l1().stats(), ref_machine.l1().stats(), "{tag}");
                    assert_eq!(machine.tlb().stats(), ref_machine.tlb().stats(), "{tag}");
                    assert_eq!(
                        machine.lower().llc_stats(),
                        ref_machine.lower().llc_stats(),
                        "{tag}"
                    );
                }
            }
            set_replay_batch(DEFAULT_REPLAY_BATCH);
            set_tlb_batch(true);
        }
    }

    #[test]
    fn unmapped_va_surfaces_as_typed_trace_error() {
        let (asp, _) = prepared("mcf", 100);
        let bogus = MaterializedTrace::from_insts(vec![Inst::load(
            0x40,
            1,
            None,
            VirtAddr::new(0xdead_0000_0000),
        )]);
        let mut machine = Machine::new(asp, sipt_32k_2w(), SystemKind::OooThreeLevel);
        let err =
            replay_trace(SystemKind::OooThreeLevel, &mut machine, &bogus, "bad-trace").unwrap_err();
        assert!(matches!(err, SimError::Trace { .. }), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("bad-trace") && msg.contains("page fault"), "{msg}");
    }

    #[test]
    fn limit_zero_runs_nothing() {
        let (asp, trace) = prepared("sjeng", 500);
        let mut machine = Machine::new(asp, sipt_32k_2w(), SystemKind::OooThreeLevel);
        let mut cursor = trace.cursor();
        let core = replay(SystemKind::OooThreeLevel, &mut machine, &mut cursor, 0, "test").unwrap();
        assert_eq!(core.instructions, 0);
        // The cursor did not advance: a full drain still sees everything.
        let rest = replay(SystemKind::OooThreeLevel, &mut machine, &mut cursor, usize::MAX, "test")
            .unwrap();
        assert_eq!(rest.instructions, 500);
    }

    #[test]
    fn batch_knob_resolution_order() {
        set_replay_batch(17);
        assert_eq!(replay_batch(), 17);
        set_replay_batch(0); // clears the override back to env/default
        set_replay_batch(DEFAULT_REPLAY_BATCH);
        assert_eq!(replay_batch(), DEFAULT_REPLAY_BATCH);
    }

    #[test]
    fn tlb_batch_override_wins_over_env() {
        set_tlb_batch(false);
        assert!(!tlb_batch_enabled());
        set_tlb_batch(true);
        assert!(tlb_batch_enabled());
    }
}
