//! Process-wide observability accounting for the report envelope.
//!
//! Two signals feed the schema-v5 `observability` block:
//!
//! 1. **Span sink accounting** — event/drop counts from
//!    [`sipt_telemetry::span`] when `--trace-spans` / `SIPT_TRACE_SPANS`
//!    armed host tracing (the spans themselves export separately to
//!    `results/<name>.trace.json`).
//! 2. **Speculation flight recorder** — per-run summaries of the sampled
//!    [`EventTracer`](sipt_telemetry::EventTracer) ring: capacity /
//!    recorded / retained / dropped counts, the 1-in-N sampling
//!    configuration (`SIPT_FLIGHT_SAMPLE`), and the misprediction
//!    breakdown by cause (delta change / superpage / cold TLB).
//!
//! Like the `resilience` block, the entries live in a bounded
//! process-wide registry (mirroring `resilience::REGISTRY`) rather than
//! in `RunMetrics`, so the checkpoint codec and the fingerprint-pinned
//! payloads stay untouched. [`observability_json`] returns `None` when
//! nothing observability-related is armed, keeping plain runs'
//! envelopes byte-identical to v4 modulo the version number.

use sipt_telemetry::{span, Json};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Cap on retained per-run flight summaries; a 10k-run sweep should not
/// bloat its report. Overflow is counted, never silent.
const MAX_FLIGHT_RUNS: usize = 256;

#[derive(Default)]
struct Registry {
    flights: Vec<Json>,
    dropped_runs: u64,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    f(guard.get_or_insert_with(Registry::default))
}

/// The `SIPT_FLIGHT_SAMPLE` override, parsed once: `Some(n)` when the
/// variable is set to a valid integer (0 is clamped to 1 — sample
/// everything), `None` when unset or malformed (which warns).
pub(crate) fn flight_sample_override() -> Option<u64> {
    static PARSED: OnceLock<Option<u64>> = OnceLock::new();
    *PARSED.get_or_init(|| crate::env::parse_or_warn("SIPT_FLIGHT_SAMPLE").map(|n| n.max(1)))
}

/// The flight-recorder sampling period: every Nth speculation event is
/// retained in the per-run tracer ring. Defaults to 1 (unsampled).
pub fn flight_sample_every() -> u64 {
    flight_sample_override().unwrap_or(1)
}

/// Whether the flight recorder is armed — an event-trace capacity was
/// requested (`SIPT_TRACE_EVENTS`) or a sampling period was configured
/// (`SIPT_FLIGHT_SAMPLE`). Per-run summaries are only collected when
/// armed, so default runs carry no observability weight.
pub fn flight_armed() -> bool {
    crate::runner::trace_capacity() > 0 || flight_sample_override().is_some()
}

/// Record one finished run's flight-recorder summary (its
/// `L1Telemetry::flight_json` plus the run name).
pub(crate) fn record_flight(run: &str, mut summary: Json) {
    summary.insert("run", Json::str(run));
    with_registry(|r| {
        if r.flights.len() >= MAX_FLIGHT_RUNS {
            r.dropped_runs += 1;
        } else {
            r.flights.push(summary);
        }
    });
}

/// Drop all recorded flight summaries (tests and sweep-service reuse).
pub fn clear() {
    let mut guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    *guard = None;
}

/// The envelope's `observability` block, or `None` when neither span
/// tracing nor the flight recorder is armed (so clean runs stay
/// byte-identical to schema v4 modulo the version number).
pub fn observability_json() -> Option<Json> {
    let spans_armed = span::enabled() || span::recorded() > 0 || span::dropped() > 0;
    let (flights, dropped_runs) = with_registry(|r| (r.flights.clone(), r.dropped_runs));
    let flight_on = flight_armed() || !flights.is_empty();
    if !spans_armed && !flight_on {
        return None;
    }
    let mut block = Json::obj::<&str>([]);
    if spans_armed {
        block.insert("spans", span::summary_json());
    }
    if flight_on {
        block.insert(
            "flight_recorder",
            Json::obj([
                ("sample_every", Json::u64(flight_sample_every())),
                ("runs", Json::arr(flights)),
                ("dropped_runs", Json::u64(dropped_runs)),
            ]),
        );
    }
    Some(block)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialized against other tests touching the global registry and
    /// span sink via a private gate (the registry is process-wide).
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn flight_entries_accumulate_and_bound() {
        let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        for i in 0..(MAX_FLIGHT_RUNS + 3) {
            record_flight(&format!("run{i}"), Json::obj([("recorded", Json::u64(i as u64))]));
        }
        let block = observability_json().expect("entries present");
        let runs = block.path("flight_recorder.runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), MAX_FLIGHT_RUNS);
        assert_eq!(runs[0].path("run").and_then(Json::as_str), Some("run0"));
        assert_eq!(block.path("flight_recorder.dropped_runs").and_then(Json::as_f64), Some(3.0));
        clear();
    }

    #[test]
    fn silent_when_nothing_armed() {
        let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        // Spans disabled and no flight entries: the block must vanish
        // (unless another test armed the process-wide span sink or an
        // SIPT_TRACE_EVENTS env leaked in, which the suite avoids).
        if !span::enabled() && span::recorded() == 0 && !flight_armed() {
            assert!(observability_json().is_none());
        }
        clear();
    }
}
