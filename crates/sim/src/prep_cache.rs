//! Workload preparation cache: prepare once, replay everywhere.
//!
//! Every figure driver sweeps many L1 configurations over the *same*
//! `(WorkloadSpec, Condition)` pair, yet preparation — buddy allocator
//! construction, the fragmentation preamble, and generating the full
//! instruction stream — used to be repeated for every single task, and
//! `speculation_profile` repeated it yet again. This module caches the
//! prepared state as an [`Arc<PreparedWorkload>`] keyed by a content
//! fingerprint of `(spec, condition)` (the same FNV-1a machinery the
//! checkpoint layer uses), so N configs × one workload prepare **once**.
//!
//! Correctness rests on two facts:
//!
//! - preparation is deterministic in `(spec, cond)` — it seeds its own
//!   RNGs from `cond.seed` and never consults ambient state — so a cached
//!   entry is bit-identical to a fresh preparation, and
//! - the prepared state is immutable during replay — the address space is
//!   only read and the [`sipt_workloads::MaterializedTrace`] replays
//!   through cursors — so sharing one copy across concurrent pool workers
//!   cannot change results.
//!
//! Cached and uncached runs therefore produce byte-identical scientific
//! payloads; only wall-clock differs. The cache is on by default; disable
//! it with `SIPT_PREP_CACHE=0` or the figure binaries' `--no-prep-cache`
//! flag (see [`set_enabled`]). Hit/miss counters feed the report's
//! `parallelism.prep_cache` block (schema v4).
//!
//! Concurrency: the map lock is held only to look up or insert a per-key
//! cell; preparation itself runs under the cell's own mutex, so workers
//! preparing *different* workloads proceed in parallel while workers
//! racing on the *same* workload block until the first finishes. A
//! panicking preparation poisons only its cell, which is recovered and
//! retried — one injected fault cannot wedge the cache.

use crate::checkpoint::fnv1a64;
use crate::error::SimError;
use crate::runner::{try_prepare_run, Condition, PreparedRun};
use sipt_mem::AddressSpace;
use sipt_telemetry::json::Json;
use sipt_telemetry::Span;
use sipt_workloads::{MaterializedTrace, WorkloadSpec};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A fully prepared, immutable, replayable workload: the address space
/// (page table included) plus the materialized instruction stream
/// covering `warmup + instructions`.
#[derive(Debug)]
pub struct PreparedWorkload {
    /// The workload's address space (owns the page table); shared by
    /// every machine replaying this workload.
    pub asp: Arc<AddressSpace>,
    /// The drained, replayable trace.
    pub trace: MaterializedTrace,
}

/// One prepared core of a multiprogrammed mix: the per-process address
/// space and trace, plus the wall-clock cost of preparing it (attributed
/// to the core's `allocate` phase on every replay).
#[derive(Debug)]
pub struct PreparedMixCore {
    /// Benchmark name of the app on this core.
    pub app: String,
    /// The process's address space.
    pub asp: Arc<AddressSpace>,
    /// The core's replayable trace.
    pub trace: MaterializedTrace,
    /// Wall-clock milliseconds spent allocating + generating this core's
    /// workload at preparation time.
    pub allocate_ms: f64,
}

/// A fully prepared quad-core mix. Mixes are cached as a unit — the four
/// processes allocate from *one shared* buddy allocator in program
/// order, so per-`(spec, cond)` sharing with single-core runs would be
/// wrong (the interleaving is the point).
#[derive(Debug)]
pub struct PreparedMix {
    /// Per-core prepared state, in mix order.
    pub cores: Vec<PreparedMixCore>,
}

type CacheResult = Result<Arc<PreparedWorkload>, SimError>;
/// One per-key slot: `None` until the first claimant finishes preparing.
type Cell = Arc<Mutex<Option<CacheResult>>>;
type MixCell = Arc<Mutex<Option<Arc<PreparedMix>>>>;

#[derive(Default)]
struct CacheState {
    map: HashMap<u64, Cell>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
}

static CACHE: Mutex<Option<CacheState>> = Mutex::new(None);
static MIX_CACHE: Mutex<Option<HashMap<u64, MixCell>>> = Mutex::new(None);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Runtime enable state: 0 = follow `SIPT_PREP_CACHE`, 1 = forced on,
/// 2 = forced off (the `--no-prep-cache` flag).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Maximum number of live cache entries before FIFO eviction (in-flight
/// users keep their `Arc`s, so eviction never affects running tasks).
fn capacity() -> usize {
    static PARSED: OnceLock<usize> = OnceLock::new();
    *PARSED.get_or_init(|| match crate::env::parse_or_warn("SIPT_PREP_CACHE_CAP") {
        Some(0) => {
            eprintln!("warning: SIPT_PREP_CACHE_CAP=0 is not a usable capacity; using 64");
            64
        }
        Some(n) => n.min(usize::MAX as u64) as usize,
        None => 64,
    })
}

fn env_default() -> bool {
    static PARSED: OnceLock<bool> = OnceLock::new();
    *PARSED.get_or_init(|| match std::env::var("SIPT_PREP_CACHE") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    })
}

/// Force the cache on or off for the rest of the process, overriding
/// `SIPT_PREP_CACHE`. The figure binaries' `--no-prep-cache` flag calls
/// `set_enabled(false)`.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Whether the cache is currently consulted.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_default(),
    }
}

/// Content fingerprint of a `(spec, cond)` pair — FNV-1a over the full
/// `Debug` rendering, like the checkpoint layer's request fingerprints.
pub fn fingerprint(spec: &WorkloadSpec, cond: &Condition) -> u64 {
    fnv1a64(format!("prep|{spec:?}|{cond:?}").as_bytes())
}

fn prepare_fresh(spec: &WorkloadSpec, cond: &Condition) -> CacheResult {
    let PreparedRun { asp, trace } = try_prepare_run(spec, cond)?;
    Ok(Arc::new(PreparedWorkload { asp: Arc::new(asp), trace: MaterializedTrace::from_gen(trace) }))
}

/// The prepared workload for `(spec, cond)`: cached when the cache is
/// enabled, freshly prepared otherwise. Either way the returned state is
/// bit-identical — the cache changes wall-clock only.
///
/// # Errors
///
/// Propagates the preparation's [`SimError`] (workload too large, audit
/// violation). Failed preparations are cached too: every config of an
/// impossible workload reports the same error without re-failing the
/// expensive preparation.
pub fn get_or_prepare(spec: &WorkloadSpec, cond: &Condition) -> CacheResult {
    let mut span = Span::enter(format!("prep {}", spec.name), "prep_cache");
    if !enabled() {
        span.arg("outcome", Json::str("bypass"));
        return prepare_fresh(spec, cond);
    }
    let key = fingerprint(spec, cond);
    let cell = {
        let mut guard = CACHE.lock().unwrap_or_else(PoisonError::into_inner);
        let state = guard.get_or_insert_with(CacheState::default);
        match state.map.get(&key) {
            Some(cell) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                span.arg("outcome", Json::str("hit"));
                Arc::clone(cell)
            }
            None => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                span.arg("outcome", Json::str("miss"));
                let cell: Cell = Arc::new(Mutex::new(None));
                state.map.insert(key, Arc::clone(&cell));
                state.order.push_back(key);
                while state.map.len() > capacity() {
                    if let Some(old) = state.order.pop_front() {
                        state.map.remove(&old);
                    }
                }
                cell
            }
        }
    };
    // Prepare (or wait for the preparing worker) under the cell's own
    // lock. A poisoned cell means a previous claimant panicked before
    // publishing a result; recover the guard and retry the preparation.
    let mut slot = cell.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(result) = slot.as_ref() {
        return result.clone();
    }
    let result = prepare_fresh(spec, cond);
    *slot = Some(result.clone());
    result
}

/// The prepared state of a whole mix, cached under
/// `(mix_name, cond)`; `prepare` runs only on a miss (or whenever the
/// cache is disabled). Used by [`crate::multicore::run_mix`].
///
/// The closure-based shape keeps mix preparation (shared buddy
/// allocator, per-process traces) in the multicore module while the
/// caching/concurrency policy lives here, shared with the single-core
/// path.
pub(crate) fn get_or_prepare_mix(
    mix_name: &str,
    cond: &Condition,
    prepare: impl FnOnce() -> Arc<PreparedMix>,
) -> Arc<PreparedMix> {
    if !enabled() {
        return prepare();
    }
    let key = fnv1a64(format!("mix|{mix_name}|{cond:?}").as_bytes());
    let cell = {
        let mut guard = MIX_CACHE.lock().unwrap_or_else(PoisonError::into_inner);
        let map = guard.get_or_insert_with(HashMap::new);
        match map.get(&key) {
            Some(cell) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                Arc::clone(cell)
            }
            None => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                let cell: MixCell = Arc::new(Mutex::new(None));
                map.insert(key, Arc::clone(&cell));
                cell
            }
        }
    };
    let mut slot = cell.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(mix) = slot.as_ref() {
        return Arc::clone(mix);
    }
    let mix = prepare();
    *slot = Some(Arc::clone(&mix));
    mix
}

/// Counter snapshot for reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepCacheStats {
    /// Lookups that found an existing entry (including one still being
    /// prepared by another worker).
    pub hits: u64,
    /// Lookups that created a new entry (distinct workloads prepared).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Whether lookups currently consult the cache.
    pub enabled: bool,
}

/// Snapshot the cache counters. `entries` counts single-core *and* mix
/// entries.
pub fn stats() -> PrepCacheStats {
    let singles =
        CACHE.lock().unwrap_or_else(PoisonError::into_inner).as_ref().map_or(0, |s| s.map.len());
    let mixes =
        MIX_CACHE.lock().unwrap_or_else(PoisonError::into_inner).as_ref().map_or(0, HashMap::len);
    PrepCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries: singles + mixes,
        enabled: enabled(),
    }
}

/// The `prep_cache` object of the report's `parallelism` block
/// (schema v4).
pub fn stats_json() -> Json {
    let s = stats();
    Json::obj([
        ("enabled", Json::Bool(s.enabled)),
        ("hits", Json::u64(s.hits)),
        ("misses", Json::u64(s.misses)),
        ("entries", Json::u64(s.entries as u64)),
    ])
}

/// Drop all entries and zero the counters (tests and long-lived drivers
/// that want isolated accounting).
pub fn clear() {
    *CACHE.lock().unwrap_or_else(PoisonError::into_inner) = None;
    *MIX_CACHE.lock().unwrap_or_else(PoisonError::into_inner) = None;
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipt_workloads::benchmark;

    /// The whole suite shares one process, so these tests serialize on a
    /// lock and restore the default state afterwards.
    fn with_clean_cache<R>(f: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        set_enabled(true);
        let out = f();
        clear();
        OVERRIDE.store(0, Ordering::Relaxed);
        out
    }

    #[test]
    fn second_lookup_hits_and_shares_the_arc() {
        with_clean_cache(|| {
            let spec = benchmark("sjeng").unwrap();
            let cond = Condition::quick();
            let a = get_or_prepare(&spec, &cond).unwrap();
            let b = get_or_prepare(&spec, &cond).unwrap();
            assert!(Arc::ptr_eq(&a, &b), "hit must share the prepared state");
            let s = stats();
            assert_eq!((s.hits, s.misses), (1, 1));
            assert_eq!(s.entries, 1);
        });
    }

    #[test]
    fn cached_state_is_bit_identical_to_fresh_preparation() {
        with_clean_cache(|| {
            let spec = benchmark("mcf").unwrap();
            let cond = Condition::quick();
            let cached = get_or_prepare(&spec, &cond).unwrap();
            let fresh = prepare_fresh(&spec, &cond).unwrap();
            assert_eq!(cached.trace, fresh.trace);
            let c: Vec<_> = cached.trace.cursor().collect();
            let f: Vec<_> = fresh.trace.cursor().collect();
            assert_eq!(c, f);
        });
    }

    #[test]
    fn distinct_conditions_are_distinct_entries() {
        with_clean_cache(|| {
            let spec = benchmark("sjeng").unwrap();
            let a = Condition::quick();
            let b = Condition { seed: 43, ..a };
            assert_ne!(fingerprint(&spec, &a), fingerprint(&spec, &b));
            let _ = get_or_prepare(&spec, &a).unwrap();
            let _ = get_or_prepare(&spec, &b).unwrap();
            assert_eq!(stats().misses, 2);
        });
    }

    #[test]
    fn disabled_cache_prepares_fresh_and_counts_nothing() {
        with_clean_cache(|| {
            set_enabled(false);
            let spec = benchmark("sjeng").unwrap();
            let cond = Condition::quick();
            let a = get_or_prepare(&spec, &cond).unwrap();
            let b = get_or_prepare(&spec, &cond).unwrap();
            assert!(!Arc::ptr_eq(&a, &b));
            let s = stats();
            assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
            assert!(!s.enabled);
        });
    }

    #[test]
    fn failed_preparation_is_cached() {
        with_clean_cache(|| {
            let spec = benchmark("mcf").unwrap(); // 1.7 GiB footprint
            let cond = Condition { memory_bytes: 1 << 20, ..Condition::quick() };
            let a = get_or_prepare(&spec, &cond).unwrap_err();
            let b = get_or_prepare(&spec, &cond).unwrap_err();
            assert_eq!(a, b);
            let s = stats();
            assert_eq!((s.hits, s.misses), (1, 1));
        });
    }

    #[test]
    fn concurrent_lookups_prepare_once() {
        with_clean_cache(|| {
            let spec = benchmark("gcc").unwrap();
            let cond = Condition::quick();
            let prepared: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> =
                    (0..8).map(|_| scope.spawn(|| get_or_prepare(&spec, &cond).unwrap())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for p in &prepared[1..] {
                assert!(Arc::ptr_eq(&prepared[0], p));
            }
            let s = stats();
            assert_eq!(s.misses, 1, "one preparation for eight workers");
            assert_eq!(s.hits, 7);
        });
    }

    #[test]
    fn fifo_eviction_bounds_entries() {
        with_clean_cache(|| {
            // Capacity is process-wide (default 64): insert 65 distinct
            // keys and watch the count stay bounded.
            let spec = benchmark("sjeng").unwrap();
            for seed in 0..65u64 {
                let cond = Condition { seed, instructions: 50, warmup: 10, ..Condition::quick() };
                let _ = get_or_prepare(&spec, &cond).unwrap();
            }
            assert!(stats().entries <= 64, "entries = {}", stats().entries);
            assert_eq!(stats().misses, 65);
        });
    }

    #[test]
    fn stats_json_shape() {
        with_clean_cache(|| {
            let rendered = stats_json().render();
            for field in ["\"enabled\"", "\"hits\"", "\"misses\"", "\"entries\""] {
                assert!(rendered.contains(field), "{rendered}");
            }
        });
    }
}
