//! Quad-core multiprogrammed simulation (paper §VI.B, Fig 15).
//!
//! The paper's quad-core runs multiprogrammed (no-sharing) mixes with
//! private L1/L2 per core, an LLC scaled with core count, and traces
//! recycled until the last core finishes; it observes that "individual
//! application speedup on each core is nearly-identical to the single-core
//! experiments … there is no sharing and no contention". We model exactly
//! that structure: the four workloads allocate from a *shared* physical
//! memory (so buddy-allocator interleaving across processes is real — the
//! part that matters to SIPT), then each core runs on its private L1/L2
//! and its constant per-core LLC share. Throughput is reported as
//! sum-of-IPC, as in the paper.

use crate::machine::{Machine, SystemKind};
use crate::metrics::{PhaseProfile, RunMetrics};
use crate::prep_cache::{self, PreparedMix, PreparedMixCore};
use crate::runner::{collect, Condition};
use sipt_core::L1Config;
use sipt_mem::{fragment_memory, AddressSpace, BuddyAllocator};
use sipt_rng::{SeedableRng, StdRng};
use sipt_workloads::{benchmark, MaterializedTrace, TraceGen, MIXES};
use std::sync::Arc;
use std::time::Instant;

/// Metrics of one quad-core mix run.
#[derive(Debug, Clone)]
pub struct MixMetrics {
    /// Mix name (Table III).
    pub name: String,
    /// Per-core metrics, in mix order.
    pub cores: Vec<RunMetrics>,
}

impl MixMetrics {
    /// Sum of per-core IPCs (the paper's throughput metric).
    pub fn sum_ipc(&self) -> f64 {
        self.cores.iter().map(RunMetrics::ipc).sum()
    }

    /// Sum-of-IPC speedup versus a baseline mix run.
    pub fn speedup_vs(&self, baseline: &MixMetrics) -> f64 {
        self.sum_ipc() / baseline.sum_ipc()
    }

    /// Total hierarchy energy across cores, normalized to a baseline.
    /// Returns 0 when the baseline consumed no energy (e.g. an empty
    /// mix), rather than dividing by zero.
    pub fn energy_vs(&self, baseline: &MixMetrics) -> f64 {
        let e: f64 = self.cores.iter().map(|c| c.energy.total()).sum();
        let b: f64 = baseline.cores.iter().map(|c| c.energy.total()).sum();
        if b > 0.0 {
            e / b
        } else {
            0.0
        }
    }

    /// Mean extra-L1-access fraction across cores, versus a baseline.
    /// Returns 0 for an empty mix rather than dividing by zero.
    pub fn extra_accesses_vs(&self, baseline: &MixMetrics) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        self.cores.iter().zip(&baseline.cores).map(|(c, b)| c.extra_accesses_vs(b)).sum::<f64>()
            / self.cores.len() as f64
    }
}

/// Run one Table III mix on a quad-core system with the given private-L1
/// configuration.
///
/// # Panics
///
/// Panics if `mix_name` is not in Table III or memory is insufficient.
pub fn run_mix(mix_name: &str, l1: L1Config, cond: &Condition) -> MixMetrics {
    let (_, apps) = MIXES
        .iter()
        .find(|(name, _)| *name == mix_name)
        .unwrap_or_else(|| panic!("unknown mix {mix_name}"));

    // Mixes cache as a *unit*: the four processes allocate from one
    // shared buddy allocator in program order, so the interleaving (the
    // part that matters to SIPT) is a property of the whole mix, not of
    // any one `(spec, cond)`.
    let prepared = prep_cache::get_or_prepare_mix(mix_name, cond, || {
        Arc::new(prepare_mix(mix_name, apps, cond))
    });

    // The paper's quad-core mixes share no state at runtime (private
    // L1/L2, per-core LLC share, immutable prepared traces), so the four
    // cores are independent replays and can run on their own threads
    // *within* one mix run. Sharding is gated off inside sweep-pool tasks
    // (fig15 runs whole mixes as pool tasks — worker counts must not
    // multiply) and under `jobs = 1` (exact serial contract). Results are
    // bit-identical either way: each core owns its machine and cursor, and
    // the process-wide simulation totals accumulate order-independently.
    let shard = !crate::resilience::in_pool_task()
        && crate::sweep::effective_jobs() > 1
        && prepared.cores.len() > 1;
    let cores: Vec<RunMetrics> = if shard {
        std::thread::scope(|scope| {
            let l1 = &l1;
            let handles: Vec<_> = prepared
                .cores
                .iter()
                .map(|prep| scope.spawn(move || run_mix_core(prep, l1.clone(), cond)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .collect()
        })
    } else {
        prepared.cores.iter().map(|prep| run_mix_core(prep, l1.clone(), cond)).collect()
    };
    MixMetrics { name: mix_name.to_owned(), cores }
}

/// Replay one prepared core of a mix: warmup, reset, measure, collect.
/// Mixes are generated workloads (always fully mapped), so a trace error
/// here is a simulator bug and panics like the other trusted-input paths.
fn run_mix_core(prep: &PreparedMixCore, l1: L1Config, cond: &Condition) -> RunMetrics {
    let mut machine = Machine::new_shared(Arc::clone(&prep.asp), l1, SystemKind::OooThreeLevel);
    let allocated = Instant::now();
    let mut cursor = prep.trace.cursor();
    crate::block::replay(
        SystemKind::OooThreeLevel,
        &mut machine,
        &mut cursor,
        cond.warmup as usize,
        &prep.app,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    machine.reset_stats();
    let warmed = Instant::now();
    let core = crate::block::replay(
        SystemKind::OooThreeLevel,
        &mut machine,
        &mut cursor,
        usize::MAX,
        &prep.app,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    let measure_secs = warmed.elapsed().as_secs_f64();
    crate::metrics::record_simulation(core.instructions, measure_secs);
    let phases = PhaseProfile {
        allocate_ms: prep.allocate_ms,
        warmup_ms: warmed.duration_since(allocated).as_secs_f64() * 1e3,
        measure_ms: measure_secs * 1e3,
        simulated_mips: if measure_secs > 0.0 {
            core.instructions as f64 / (measure_secs * 1e6)
        } else {
            0.0
        },
        worker: 0,
    };
    let mut metrics = collect(&prep.app, core, &machine);
    metrics.phases = phases;
    metrics
}

/// Allocate and generate a whole mix against one shared physical memory.
///
/// All four processes allocate in program order, so later processes see
/// the earlier ones' footprints. Each core's allocate phase is timed
/// individually so the per-core phase profiles serialize as real
/// measurements (not the zeroed defaults the JSON reports would
/// otherwise present as data); replays reuse the preparation-time cost.
fn prepare_mix(mix_name: &str, apps: &[&str], cond: &Condition) -> PreparedMix {
    let mut phys = BuddyAllocator::with_bytes(cond.memory_bytes);
    let mut rng = StdRng::seed_from_u64(cond.seed ^ 0x4C0E);
    let _hold =
        cond.fragmented.then(|| fragment_memory(&mut phys, 0.5, &mut rng).expect("fragmentation"));

    let mut cores = Vec::new();
    for (core_id, app) in apps.iter().enumerate() {
        let t0 = Instant::now();
        let spec = benchmark(app).unwrap_or_else(|| panic!("unknown app {app}"));
        let mut asp = AddressSpace::new(core_id as u16, cond.placement);
        let gen = TraceGen::build(
            &spec,
            &mut asp,
            &mut phys,
            cond.warmup + cond.instructions,
            cond.seed + core_id as u64,
        )
        .unwrap_or_else(|e| panic!("{mix_name}/{app}: {e}"));
        let trace = MaterializedTrace::from_gen(gen);
        cores.push(PreparedMixCore {
            app: (*app).to_owned(),
            asp: Arc::new(asp),
            trace,
            allocate_ms: t0.elapsed().as_secs_f64() * 1e3,
        });
    }
    PreparedMix { cores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};

    fn quad_cond() -> Condition {
        Condition {
            memory_bytes: 4 << 30,
            instructions: 15_000,
            warmup: 5_000,
            ..Condition::default()
        }
    }

    #[test]
    fn mix_runs_all_four_cores() {
        let m = run_mix("mix0", baseline_32k_8w_vipt(), &quad_cond());
        assert_eq!(m.cores.len(), 4);
        assert_eq!(m.cores[0].name, "h264ref");
        assert!(m.sum_ipc() > 0.5);
    }

    #[test]
    fn sipt_improves_mix_throughput() {
        let cond = quad_cond();
        let base = run_mix("mix0", baseline_32k_8w_vipt(), &cond);
        let sipt = run_mix("mix0", sipt_32k_2w(), &cond);
        assert!(sipt.speedup_vs(&base) > 1.0, "mix0 speedup = {}", sipt.speedup_vs(&base));
        assert!(sipt.energy_vs(&base) < 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown mix")]
    fn unknown_mix_panics() {
        let _ = run_mix("mix99", baseline_32k_8w_vipt(), &quad_cond());
    }

    /// Regression: quad-core runs used to leave `PhaseProfile::default()`
    /// (0 ms, 0 MIPS) in every core's metrics, which the JSON reports
    /// serialized as if they were real measurements.
    #[test]
    fn mix_cores_carry_real_phase_profiles() {
        let m = run_mix("mix0", sipt_32k_2w(), &quad_cond());
        for core in &m.cores {
            assert!(
                core.phases.measure_ms > 0.0,
                "{}: measure phase must be timed, got {:?}",
                core.name,
                core.phases
            );
            assert!(core.phases.warmup_ms > 0.0, "{}: warmup must be timed", core.name);
            assert!(core.phases.allocate_ms > 0.0, "{}: allocation must be timed", core.name);
            assert!(core.phases.simulated_mips > 0.0, "{}: MIPS must be derived", core.name);
        }
    }

    /// Regression: the mix-level ratios used to divide by zero for empty
    /// mixes and zero-energy baselines.
    #[test]
    fn mix_ratios_guard_degenerate_baselines() {
        let empty = MixMetrics { name: "empty".into(), cores: Vec::new() };
        assert_eq!(empty.extra_accesses_vs(&empty), 0.0, "empty mix must not divide by zero");
        assert_eq!(empty.energy_vs(&empty), 0.0, "zero-energy baseline must not divide");
        let real = run_mix("mix0", sipt_32k_2w(), &quad_cond());
        assert!(real.extra_accesses_vs(&real).is_finite());
        assert!((real.energy_vs(&real) - 1.0).abs() < 1e-12);
        assert_eq!(real.energy_vs(&empty), 0.0);
    }

    /// Intra-run core sharding must be a pure wall-clock optimization:
    /// the scientific payload (core counts, cache/TLB stats, energy) of a
    /// sharded mix run is bit-identical to a serial one.
    #[test]
    fn sharded_mix_matches_serial_mix() {
        let cond = quad_cond();
        let prev = crate::sweep::effective_jobs();
        crate::sweep::set_jobs(1);
        let serial = run_mix("mix1", sipt_32k_2w(), &cond);
        crate::sweep::set_jobs(4);
        let sharded = run_mix("mix1", sipt_32k_2w(), &cond);
        crate::sweep::set_jobs(prev);
        assert_eq!(serial.cores.len(), sharded.cores.len());
        for (a, b) in serial.cores.iter().zip(&sharded.cores) {
            assert_eq!(a.name, b.name, "core order is submission order");
            assert_eq!(a.core, b.core, "{}: core counts must match", a.name);
            assert_eq!(a.sipt, b.sipt, "{}: L1 stats must match", a.name);
            assert_eq!(a.tlb, b.tlb, "{}: TLB stats must match", a.name);
            assert_eq!(a.llc, b.llc, "{}: LLC stats must match", a.name);
            assert_eq!(a.energy, b.energy, "{}: energy must match", a.name);
        }
    }

    #[test]
    fn shared_allocator_interleaves_processes() {
        // Four processes allocating from one buddy allocator must not
        // receive overlapping frames — verified implicitly by the buddy
        // allocator's double-allocation assertions while running any mix
        // with fine-grained allocators (mix2 contains calculix+gromacs).
        let cond = Condition { instructions: 2_000, warmup: 500, ..quad_cond() };
        let m = run_mix("mix2", sipt_32k_2w(), &cond);
        assert_eq!(m.cores.len(), 4);
    }
}
