//! Run-level metrics and the small statistics helpers the paper uses
//! (harmonic-mean speedups, arithmetic-mean energy).

use sipt_cache::{LevelStats, WayPredStats};
use sipt_core::SiptStats;
use sipt_cpu::CoreResult;
use sipt_dram::DramStats;
use sipt_energy::EnergyBreakdown;
use sipt_telemetry::MetricsSnapshot;
use sipt_tlb::TlbStats;

/// Wall-clock profile of one run's phases, plus the simulator's own
/// throughput — "how long did this experiment take and where" for the
/// machine-readable reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseProfile {
    /// Milliseconds spent building the workload (allocation + trace
    /// generator construction).
    pub allocate_ms: f64,
    /// Milliseconds spent in the warmup interval.
    pub warmup_ms: f64,
    /// Milliseconds spent in the measured interval.
    pub measure_ms: f64,
    /// Simulated instruction throughput of the measured interval, in
    /// millions of instructions per wall-clock second.
    pub simulated_mips: f64,
    /// Index of the sweep worker that executed this run (0 for serial
    /// runs and for runs outside a [`crate::sweep::Sweep`]).
    pub worker: usize,
}

impl PhaseProfile {
    /// Total wall-clock milliseconds across all phases.
    pub fn total_ms(&self) -> f64 {
        self.allocate_ms + self.warmup_ms + self.measure_ms
    }
}

/// Everything measured in one single-core simulation.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Benchmark name.
    pub name: String,
    /// Core timing result.
    pub core: CoreResult,
    /// SIPT L1 statistics.
    pub sipt: SiptStats,
    /// Way-predictor statistics, when enabled.
    pub way_pred: Option<WayPredStats>,
    /// TLB statistics.
    pub tlb: TlbStats,
    /// Private L2 statistics (three-level systems).
    pub l2: Option<LevelStats>,
    /// LLC statistics.
    pub llc: LevelStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Cache-hierarchy energy breakdown.
    pub energy: EnergyBreakdown,
    /// Fraction of the workload's pages on 2 MiB mappings.
    pub huge_fraction: f64,
    /// Wall-clock phase profile of the run (simulator observability).
    pub phases: PhaseProfile,
    /// L1 telemetry snapshot of the measured interval, when telemetry was
    /// attached (see [`sipt_core::SiptL1::attach_telemetry`]).
    pub l1_metrics: Option<MetricsSnapshot>,
}

impl RunMetrics {
    /// The inert stand-in a [`crate::sweep::Sweep`] substitutes for a task
    /// that failed every attempt: IPC exactly 1.0 (1 instruction / 1
    /// cycle) and unit L1 static energy, everything else zero.
    ///
    /// The values are chosen so downstream figure assembly survives
    /// mechanically — normalized-IPC ratios stay strictly positive (the
    /// harmonic mean rejects zeros) and energy ratios stay finite — while
    /// the accompanying `TaskFailure` in the report's `failures` block and
    /// the binary's non-zero exit mark the row as invalid.
    pub fn failed_placeholder(name: &str) -> Self {
        RunMetrics {
            name: name.to_owned(),
            core: CoreResult { instructions: 1, cycles: 1, mem_ops: 0 },
            sipt: SiptStats::default(),
            way_pred: None,
            tlb: TlbStats::default(),
            l2: None,
            llc: LevelStats::default(),
            dram: DramStats::default(),
            energy: EnergyBreakdown { l1_static: 1.0, ..Default::default() },
            huge_fraction: 0.0,
            phases: PhaseProfile::default(),
            l1_metrics: None,
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.core.ipc()
    }

    /// IPC normalized to a baseline run.
    pub fn ipc_vs(&self, baseline: &RunMetrics) -> f64 {
        self.ipc() / baseline.ipc()
    }

    /// Total hierarchy energy normalized to a baseline run.
    pub fn energy_vs(&self, baseline: &RunMetrics) -> f64 {
        self.energy.total() / baseline.energy.total()
    }

    /// Dynamic energy normalized to a baseline's *total* energy (the
    /// paper's "normalized dynamic energy" series in Figs 7/14).
    pub fn dynamic_energy_vs(&self, baseline: &RunMetrics) -> f64 {
        self.energy.dynamic() / baseline.energy.total()
    }

    /// Additional L1 accesses relative to a baseline's demand accesses
    /// (the paper's `accesses_SIPT / accesses_baseline − 1`).
    pub fn extra_accesses_vs(&self, baseline: &RunMetrics) -> f64 {
        if baseline.sipt.accesses == 0 {
            return 0.0;
        }
        (self.sipt.accesses + self.sipt.extra_accesses) as f64 / baseline.sipt.accesses as f64 - 1.0
    }
}

/// Error from [`try_harmonic_mean`]: the offending value and its index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonPositiveValue {
    /// Index of the first non-positive value in the input slice.
    pub index: usize,
    /// The value itself (≤ 0, or NaN).
    pub value: f64,
}

impl std::fmt::Display for NonPositiveValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "harmonic mean requires strictly positive values, got {} at index {}",
            self.value, self.index
        )
    }
}

impl std::error::Error for NonPositiveValue {}

/// Harmonic mean (the paper's speedup average) without panicking: returns
/// `Err` carrying the first non-positive (or NaN) value. `Ok(0.0)` for an
/// empty slice.
pub fn try_harmonic_mean(values: &[f64]) -> Result<f64, NonPositiveValue> {
    if values.is_empty() {
        return Ok(0.0);
    }
    let mut sum = 0.0;
    for (index, &value) in values.iter().enumerate() {
        if value <= 0.0 || value.is_nan() {
            return Err(NonPositiveValue { index, value });
        }
        sum += 1.0 / value;
    }
    Ok(values.len() as f64 / sum)
}

/// Harmonic mean (the paper's speedup average). Returns 0 for an empty
/// slice. Infallible front-end for [`try_harmonic_mean`] — experiment
/// binaries feed it IPC ratios, which are positive by construction.
///
/// # Panics
///
/// Panics if any value is not strictly positive (including NaN).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    match try_harmonic_mean(values) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    }
}

/// Arithmetic mean (the paper's energy average). Returns 0 for an empty
/// slice.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Process-wide simulation accounting, fed by every measured run
/// (single-core and per mix core) and read by the perf harness
/// (`cargo bench -p sipt-bench --bench sweeps`) to derive true
/// simulated-MIPS figures per artifact. Wall-clock bookkeeping only —
/// never serialized into a scientific payload.
mod sim_totals {
    use std::sync::atomic::{AtomicU64, Ordering};

    static INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
    /// Microseconds, so an atomic integer suffices.
    static MEASURE_US: AtomicU64 = AtomicU64::new(0);

    pub(super) fn record(instructions: u64, measure_secs: f64) {
        INSTRUCTIONS.fetch_add(instructions, Ordering::Relaxed);
        MEASURE_US.fetch_add((measure_secs * 1e6).max(0.0) as u64, Ordering::Relaxed);
    }

    pub(super) fn totals() -> (u64, f64) {
        (INSTRUCTIONS.load(Ordering::Relaxed), MEASURE_US.load(Ordering::Relaxed) as f64 / 1e3)
    }
}

/// Record one measured simulation interval (instructions retired over
/// `measure_secs` of host wall time) into the process-wide totals.
pub fn record_simulation(instructions: u64, measure_secs: f64) {
    sim_totals::record(instructions, measure_secs);
}

/// The process-wide simulation totals so far: `(instructions,
/// measure_ms)`. Monotonically increasing; callers interested in one
/// interval snapshot before/after and subtract.
pub fn simulation_totals() -> (u64, f64) {
    sim_totals::totals()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_totals_accumulate() {
        let (i0, m0) = simulation_totals();
        record_simulation(1_000, 0.002);
        let (i1, m1) = simulation_totals();
        assert!(i1 >= i0 + 1_000);
        assert!(m1 >= m0 + 1.9, "2ms must register, got {} -> {}", m0, m1);
    }

    #[test]
    fn means() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[2.0, 2.0]), 2.0);
        assert!((harmonic_mean(&[1.0, 2.0]) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(arithmetic_mean(&[1.0, 3.0]), 2.0);
        assert_eq!(arithmetic_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn harmonic_rejects_zero() {
        harmonic_mean(&[1.0, 0.0]);
    }

    #[test]
    fn try_harmonic_reports_offender() {
        assert_eq!(try_harmonic_mean(&[]), Ok(0.0));
        assert_eq!(try_harmonic_mean(&[2.0, 2.0]), Ok(2.0));
        let err = try_harmonic_mean(&[1.0, -3.0, 2.0]).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.value, -3.0);
        assert!(err.to_string().contains("index 1"));
        // NaN is not > 0, so it must be rejected rather than poisoning
        // the mean.
        let err = try_harmonic_mean(&[1.0, f64::NAN]).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.value.is_nan());
    }

    #[test]
    fn harmonic_below_arithmetic() {
        let v = [0.8, 1.0, 1.4];
        assert!(harmonic_mean(&v) < arithmetic_mean(&v));
    }

    #[test]
    fn phase_profile_totals() {
        let p = PhaseProfile {
            allocate_ms: 1.5,
            warmup_ms: 2.0,
            measure_ms: 6.5,
            simulated_mips: 12.0,
            worker: 0,
        };
        assert!((p.total_ms() - 10.0).abs() < 1e-12);
        assert_eq!(PhaseProfile::default().total_ms(), 0.0);
    }

    /// `extra_accesses_vs` must not divide by a zero-access baseline
    /// (e.g. a run whose measured interval contained no memory ops).
    #[test]
    fn extra_accesses_guards_zero_baseline() {
        let cond = crate::Condition::quick();
        let mut base = crate::run_benchmark(
            "hmmer",
            sipt_core::baseline_32k_8w_vipt(),
            crate::SystemKind::OooThreeLevel,
            &cond,
        );
        let sipt = crate::run_benchmark(
            "hmmer",
            sipt_core::sipt_32k_2w(),
            crate::SystemKind::OooThreeLevel,
            &cond,
        );
        assert!(sipt.extra_accesses_vs(&base).is_finite());
        base.sipt.accesses = 0;
        assert_eq!(sipt.extra_accesses_vs(&base), 0.0, "zero baseline must not divide");
    }
}
