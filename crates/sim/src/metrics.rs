//! Run-level metrics and the small statistics helpers the paper uses
//! (harmonic-mean speedups, arithmetic-mean energy).

use sipt_cache::{LevelStats, WayPredStats};
use sipt_core::SiptStats;
use sipt_cpu::CoreResult;
use sipt_dram::DramStats;
use sipt_energy::EnergyBreakdown;
use sipt_tlb::TlbStats;

/// Everything measured in one single-core simulation.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Benchmark name.
    pub name: String,
    /// Core timing result.
    pub core: CoreResult,
    /// SIPT L1 statistics.
    pub sipt: SiptStats,
    /// Way-predictor statistics, when enabled.
    pub way_pred: Option<WayPredStats>,
    /// TLB statistics.
    pub tlb: TlbStats,
    /// Private L2 statistics (three-level systems).
    pub l2: Option<LevelStats>,
    /// LLC statistics.
    pub llc: LevelStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Cache-hierarchy energy breakdown.
    pub energy: EnergyBreakdown,
    /// Fraction of the workload's pages on 2 MiB mappings.
    pub huge_fraction: f64,
}

impl RunMetrics {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.core.ipc()
    }

    /// IPC normalized to a baseline run.
    pub fn ipc_vs(&self, baseline: &RunMetrics) -> f64 {
        self.ipc() / baseline.ipc()
    }

    /// Total hierarchy energy normalized to a baseline run.
    pub fn energy_vs(&self, baseline: &RunMetrics) -> f64 {
        self.energy.total() / baseline.energy.total()
    }

    /// Dynamic energy normalized to a baseline's *total* energy (the
    /// paper's "normalized dynamic energy" series in Figs 7/14).
    pub fn dynamic_energy_vs(&self, baseline: &RunMetrics) -> f64 {
        self.energy.dynamic() / baseline.energy.total()
    }

    /// Additional L1 accesses relative to a baseline's demand accesses
    /// (the paper's `accesses_SIPT / accesses_baseline − 1`).
    pub fn extra_accesses_vs(&self, baseline: &RunMetrics) -> f64 {
        if baseline.sipt.accesses == 0 {
            return 0.0;
        }
        (self.sipt.accesses + self.sipt.extra_accesses) as f64
            / baseline.sipt.accesses as f64
            - 1.0
    }
}

/// Harmonic mean (the paper's speedup average). Returns 0 for an empty
/// slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "harmonic mean requires positive values, got {v}");
            1.0 / v
        })
        .sum();
    values.len() as f64 / sum
}

/// Arithmetic mean (the paper's energy average). Returns 0 for an empty
/// slice.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[2.0, 2.0]), 2.0);
        assert!((harmonic_mean(&[1.0, 2.0]) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(arithmetic_mean(&[1.0, 3.0]), 2.0);
        assert_eq!(arithmetic_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn harmonic_rejects_zero() {
        harmonic_mean(&[1.0, 0.0]);
    }

    #[test]
    fn harmonic_below_arithmetic() {
        let v = [0.8, 1.0, 1.4];
        assert!(harmonic_mean(&v) < arithmetic_mean(&v));
    }
}
