//! The process-sharded sweep supervisor: crash-proof workers, backoff
//! respawn, quarantine, and graceful drain.
//!
//! PR 3's `catch_unwind` isolation contains *panics*, but an `abort()`,
//! a segfault, or the OOM killer takes the whole process — and with it
//! every completed-but-unreported task. With `--isolation process` (or
//! `SIPT_ISOLATION=process`) a [`crate::Sweep`] no longer runs its tasks
//! in-process: the pending slots are partitioned into **shards** keyed by
//! the checkpoint fingerprints, and for each shard the supervisor
//! re-execs the *current binary* in worker mode, supervising the fleet
//! over a pipe-based protocol ([`crate::wire`]).
//!
//! Workers are deterministic replays, not serialized closures: a worker
//! re-runs the binary's `main`, skips every sweep before its target
//! (inert placeholders), executes exactly its assigned slots of the
//! target sweep, streams each result as bit-exact checkpoint-codec bytes,
//! and exits. Because every run is a pure function of its
//! [`crate::RunRequest`], the merged results are byte-identical to
//! in-process execution — the kernel-bit-identity fingerprints hold
//! across `--isolation thread|process` at any job count.
//!
//! Fault containment policy:
//!
//! - a dead worker (abort, signal, OOM-kill, nonzero exit) is respawned
//!   on its shard's unfinished slots with exponential backoff, up to
//!   `SIPT_RESPAWN_BUDGET` respawns per shard;
//! - a shard that exhausts the budget is **quarantined**: its unfinished
//!   slots become permanent [`TaskFailure`]s (placeholder metrics,
//!   failure table, exit 1) instead of being retried forever;
//! - `SIPT_WATCHDOG_KILL=1` kills only the offending *worker* (the
//!   in-flight task is failed, the rest of the shard respawns without
//!   charging the budget) — exit 124 remains the documented thread-mode
//!   fallback;
//! - protocol corruption (malformed sentinel lines, fingerprint
//!   mismatches, undecodable payloads) poisons the worker and
//!   quarantines its shard immediately;
//! - SIGTERM/SIGINT drain the fleet gracefully: no new shard launches,
//!   each worker finishes its in-flight task and exits, merged partial
//!   results are already in the checkpoint, and the run exits
//!   [`sipt_signal::EXIT_DRAINED`] with resume instructions.
//!
//! Everything the supervisor observed lands in the schema-v6
//! `resilience.supervisor` report block ([`supervisor_json`]).

use crate::checkpoint::{self, CheckpointHandle};
use crate::error::SimError;
use crate::metrics::RunMetrics;
use crate::resilience::{self, TaskFailure, WatchdogFlag};
use crate::sweep::{execute_attempts, record_profile, ParallelismProfile, RunRequest};
use crate::wire::{self, Parsed, WorkerMsg};
use sipt_telemetry::json::Json;
use sipt_telemetry::{span, Span};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write as _};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Isolation mode selection
// ---------------------------------------------------------------------------

/// How a sweep isolates its tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isolation {
    /// In-process worker threads with `catch_unwind` (the default).
    /// Contains panics; cannot contain aborts, segfaults, or OOM kills.
    Thread,
    /// One supervised subprocess per shard. Contains everything short of
    /// the supervisor itself dying.
    Process,
}

impl Isolation {
    /// Stable lowercase name (`thread` / `process`).
    pub fn name(self) -> &'static str {
        match self {
            Isolation::Thread => "thread",
            Isolation::Process => "process",
        }
    }

    /// Parse a `--isolation` / `SIPT_ISOLATION` value.
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim() {
            "thread" => Some(Isolation::Thread),
            "process" => Some(Isolation::Process),
            _ => None,
        }
    }
}

/// Explicit override set by the `--isolation` CLI flag
/// (0 = unset, 1 = thread, 2 = process).
static ISOLATION_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide isolation mode (the `--isolation` flag). Takes
/// precedence over `SIPT_ISOLATION`.
pub fn set_isolation(mode: Isolation) {
    let v = match mode {
        Isolation::Thread => 1,
        Isolation::Process => 2,
    };
    ISOLATION_OVERRIDE.store(v, Ordering::Relaxed);
}

/// `SIPT_ISOLATION`, parsed once per process; malformed values warn and
/// fall back to the thread default rather than silently changing modes.
fn isolation_from_env() -> Option<Isolation> {
    static PARSED: OnceLock<Option<Isolation>> = OnceLock::new();
    *PARSED.get_or_init(|| {
        crate::env::choice_or_warn("SIPT_ISOLATION", &["thread", "process"])
            .and_then(|v| Isolation::parse(&v))
    })
}

/// The effective isolation mode: the [`set_isolation`] override, else
/// `SIPT_ISOLATION`, else [`Isolation::Thread`]. Worker processes always
/// report `Thread` — a worker supervising its own sub-fleet would recurse
/// without bound.
pub fn isolation() -> Isolation {
    if worker_mode() {
        return Isolation::Thread;
    }
    match ISOLATION_OVERRIDE.load(Ordering::Relaxed) {
        1 => Isolation::Thread,
        2 => Isolation::Process,
        _ => isolation_from_env().unwrap_or(Isolation::Thread),
    }
}

/// Install the SIGTERM/SIGINT drain handlers (idempotent). Re-exported
/// here so binaries need no direct `sipt-signal` dependency.
pub fn install_drain_handlers() {
    sipt_signal::install_drain_handlers();
}

// ---------------------------------------------------------------------------
// Worker-mode plumbing (the re-exec'd side)
// ---------------------------------------------------------------------------

/// Target sweep sequence number (env, worker side).
const ENV_SWEEP: &str = "SIPT_WORKER_SWEEP";
/// Comma-separated sweep-local slot indices assigned to this worker.
const ENV_SLOTS: &str = "SIPT_WORKER_SLOTS";
/// The parent's `base_id` for the target sweep, so fault-injection task
/// ids line up even if replay allocated ids differently.
const ENV_BASE: &str = "SIPT_WORKER_BASE";
/// Spawn attempt of this shard (0 = first spawn), offsetting the
/// fault-injection attempt counter so `:once` faults stay once-ever.
const ENV_ATTEMPT: &str = "SIPT_WORKER_ATTEMPT";
/// Display/profile worker slot (0-based, < jobs).
const ENV_SLOT: &str = "SIPT_WORKER_SLOT";

/// A worker's assignment, decoded from the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WorkerShard {
    /// Sweep sequence number to execute.
    pub sweep_seq: usize,
    /// Sweep-local slots to run, in order.
    pub slots: Vec<usize>,
    /// Parent-side `base_id` of the target sweep.
    pub base_id: usize,
    /// Spawn attempt (0 = first spawn of this shard).
    pub attempt: u32,
    /// Worker slot for profile/failure attribution.
    pub worker_slot: usize,
}

fn parse_env<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Whether this process is a re-exec'd `--worker-shard` worker.
pub fn worker_mode() -> bool {
    static PARSED: OnceLock<bool> = OnceLock::new();
    *PARSED.get_or_init(|| std::env::var_os(ENV_SLOTS).is_some())
}

/// The worker assignment, parsed once. `None` outside worker mode; a
/// malformed assignment in worker mode is a protocol error (exit 3) —
/// there is no sensible fallback for a worker that cannot know its work.
pub(crate) fn worker_shard() -> Option<&'static WorkerShard> {
    static PARSED: OnceLock<Option<WorkerShard>> = OnceLock::new();
    PARSED
        .get_or_init(|| {
            if !worker_mode() {
                return None;
            }
            let decoded = (|| {
                let slots_raw = std::env::var(ENV_SLOTS).ok()?;
                let mut slots = Vec::new();
                for field in slots_raw.split(',').filter(|s| !s.trim().is_empty()) {
                    slots.push(field.trim().parse().ok()?);
                }
                if slots.is_empty() {
                    return None;
                }
                Some(WorkerShard {
                    sweep_seq: parse_env(ENV_SWEEP)?,
                    slots,
                    base_id: parse_env(ENV_BASE)?,
                    attempt: parse_env(ENV_ATTEMPT)?,
                    worker_slot: parse_env(ENV_SLOT)?,
                })
            })();
            match decoded {
                Some(shard) => Some(shard),
                None => {
                    eprintln!("worker: malformed shard assignment in environment; exiting");
                    std::process::exit(3);
                }
            }
        })
        .as_ref()
}

/// Emit one protocol line on stdout, flushed immediately so the
/// supervisor sees it even if this process dies on the next instruction.
fn emit(msg: &WorkerMsg) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{}", msg.encode());
    let _ = out.flush();
}

/// Execute this worker's assigned shard of the target sweep and exit.
///
/// Runs each assigned slot through the same pipeline as the in-process
/// pool — simulate, stamp the worker id, injected bit flips, audit —
/// with the same retry budget, and streams every outcome to the
/// supervisor. Checkpoint appends happen on the *parent* side (the
/// worker's results travel in the identical byte codec), so a torn
/// worker never corrupts the checkpoint file.
pub(crate) fn run_worker_shard(
    requests: Vec<RunRequest>,
    shard: &WorkerShard,
    capacity: usize,
    sweep_seq: usize,
) -> ! {
    if sweep_seq != shard.sweep_seq {
        eprintln!(
            "worker: reached sweep {sweep_seq} while targeting sweep {} — \
             the replay diverged; exiting",
            shard.sweep_seq
        );
        std::process::exit(3);
    }
    resilience::install_quiet_panic_hook();
    // `:once` faults must be once per *task*, not once per spawn: offset
    // the attempt counter by the attempts already spent in prior spawns.
    resilience::set_attempt_offset(shard.attempt * (resilience::task_retries() + 1));
    emit(&WorkerMsg::Hello { sweep_seq, tasks: shard.slots.len() });

    // Liveness beacon, decoupled from task execution so a long simulation
    // never looks like a hang.
    std::thread::spawn(|| loop {
        std::thread::sleep(Duration::from_millis(200));
        emit(&WorkerMsg::Heartbeat);
    });
    // The supervisor's only downstream channel: a `drain` line on stdin
    // raises the same flag SIGTERM would.
    std::thread::spawn(|| {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim() == wire::DRAIN_COMMAND {
                sipt_signal::request_drain();
            }
        }
    });

    let attempts = resilience::task_retries() + 1;
    for (completed, &slot) in shard.slots.iter().enumerate() {
        if sipt_signal::drain_requested() {
            emit(&WorkerMsg::Drained { completed });
            std::process::exit(0);
        }
        let Some(req) = requests.get(slot) else {
            eprintln!("worker: assigned slot {slot} beyond sweep of {}; exiting", requests.len());
            std::process::exit(3);
        };
        let id = shard.base_id + slot;
        emit(&WorkerMsg::Start { slot });
        let fingerprint = req.fingerprint();
        let worker_slot = shard.worker_slot;
        let mut task = |worker: usize| -> Result<RunMetrics, TaskFailure> {
            let t0 = Instant::now();
            let mut metrics = match crate::runner::try_run_spec_with_trace_capacity(
                &req.spec,
                req.l1.clone(),
                req.system,
                &req.cond,
                capacity,
            ) {
                Ok(metrics) => metrics,
                Err(e) => {
                    return Err(TaskFailure {
                        task: id,
                        label: req.label.clone(),
                        worker,
                        panic_msg: e.to_string(),
                        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
                        attempts: 1,
                    });
                }
            };
            metrics.phases.worker = worker;
            if resilience::inject_bit_flip(id) {
                metrics.sipt.accesses ^= 1;
            }
            if crate::audit::enabled() {
                if let Err(e) = crate::audit::check_metrics(&metrics) {
                    panic!("{e}");
                }
            }
            Ok(metrics)
        };
        let (outcome, _busy) = execute_attempts(id, &req.label, worker_slot, attempts, &mut task);
        match outcome.and_then(|typed| typed) {
            Ok(metrics) => {
                emit(&WorkerMsg::Done {
                    slot,
                    fingerprint,
                    metrics: checkpoint::encode_metrics(&metrics),
                });
            }
            Err(failure) => {
                emit(&WorkerMsg::Fail {
                    slot,
                    attempts: failure.attempts,
                    elapsed_ms: failure.elapsed_ms,
                    message: failure.panic_msg,
                });
            }
        }
    }
    std::process::exit(0);
}

/// Placeholder results for a sweep a worker replay skips (every sweep
/// before its target): inert metrics, an empty profile, no failures
/// recorded and nothing folded into the process-wide accumulators.
pub(crate) fn skipped_sweep_result(requests: &[RunRequest]) -> crate::sweep::SweepResult {
    crate::sweep::SweepResult {
        metrics: requests.iter().map(|r| RunMetrics::failed_placeholder(&r.label)).collect(),
        profile: ParallelismProfile {
            jobs: 1,
            tasks: requests.len(),
            wall_ms: 0.0,
            worker_busy_ms: vec![0.0],
            assigned_worker: vec![0; requests.len()],
        },
        failures: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Supervisor statistics (the schema-v6 `resilience.supervisor` block)
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct Stats {
    sweeps: u64,
    shards: u64,
    workers_spawned: u64,
    respawns: u64,
    worker_deaths: u64,
    quarantined_shards: u64,
    quarantined_tasks: u64,
    watchdog_kills: u64,
    heartbeats: u64,
    results_merged: u64,
    fingerprint_mismatches: u64,
    protocol_errors: u64,
    drained: bool,
}

static STATS: Mutex<Option<Stats>> = Mutex::new(None);

fn with_stats<R>(f: impl FnOnce(&mut Stats) -> R) -> R {
    let mut guard = STATS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(Stats::default))
}

/// The `resilience.supervisor` report block: `None` until a sweep has
/// actually run under process isolation in this process.
pub fn supervisor_json() -> Option<Json> {
    let guard = STATS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let s = guard.as_ref()?.clone();
    drop(guard);
    Some(Json::obj([
        ("isolation", Json::str(Isolation::Process.name())),
        ("sweeps", Json::u64(s.sweeps)),
        ("shards", Json::u64(s.shards)),
        ("workers_spawned", Json::u64(s.workers_spawned)),
        ("respawns", Json::u64(s.respawns)),
        ("worker_deaths", Json::u64(s.worker_deaths)),
        ("quarantined_shards", Json::u64(s.quarantined_shards)),
        ("quarantined_tasks", Json::u64(s.quarantined_tasks)),
        ("watchdog_kills", Json::u64(s.watchdog_kills)),
        ("heartbeats", Json::u64(s.heartbeats)),
        ("results_merged", Json::u64(s.results_merged)),
        ("fingerprint_mismatches", Json::u64(s.fingerprint_mismatches)),
        ("protocol_errors", Json::u64(s.protocol_errors)),
        ("drained", Json::Bool(s.drained)),
        ("respawn_budget", Json::u64(u64::from(respawn_budget()))),
        ("respawn_backoff_ms", Json::u64(respawn_backoff_ms())),
    ]))
}

// ---------------------------------------------------------------------------
// Supervisor policy knobs
// ---------------------------------------------------------------------------

/// Maximum respawns per shard before quarantine (`SIPT_RESPAWN_BUDGET`,
/// default 2).
pub fn respawn_budget() -> u32 {
    static PARSED: OnceLock<u64> = OnceLock::new();
    *PARSED.get_or_init(|| crate::env::parse_or_warn_default("SIPT_RESPAWN_BUDGET", 2).min(64))
        as u32
}

/// Base backoff before a respawn, doubling per respawn of the same shard
/// (`SIPT_RESPAWN_BACKOFF_MS`, default 25).
pub fn respawn_backoff_ms() -> u64 {
    static PARSED: OnceLock<u64> = OnceLock::new();
    *PARSED.get_or_init(|| {
        crate::env::parse_or_warn_default("SIPT_RESPAWN_BACKOFF_MS", 25).min(60_000)
    })
}

/// Shard size override (`SIPT_SHARD_SIZE`); default is one shard per
/// worker (`ceil(pending / jobs)`), so a clean fleet spawns exactly
/// `jobs` processes.
fn shard_size_for(pending: usize, jobs: usize) -> usize {
    static PARSED: OnceLock<Option<u64>> = OnceLock::new();
    let explicit = *PARSED.get_or_init(|| {
        crate::env::parse_or_warn("SIPT_SHARD_SIZE").filter(|&n| {
            if n == 0 {
                eprintln!("warning: SIPT_SHARD_SIZE=0 is invalid (need >= 1); using the default");
            }
            n > 0
        })
    });
    match explicit {
        Some(n) => (n as usize).min(pending.max(1)),
        None => pending.div_ceil(jobs.max(1)).max(1),
    }
}

/// How long a fresh worker may stay silent (no hello, no heartbeat)
/// before it is presumed wedged (`SIPT_WORKER_SPAWN_TIMEOUT_MS`,
/// default 30 s).
fn spawn_timeout_ms() -> u64 {
    static PARSED: OnceLock<u64> = OnceLock::new();
    *PARSED.get_or_init(|| {
        crate::env::parse_or_warn_default("SIPT_WORKER_SPAWN_TIMEOUT_MS", 30_000).max(100)
    })
}

// ---------------------------------------------------------------------------
// Drain exit
// ---------------------------------------------------------------------------

/// Graceful-drain exit: print what was saved and how to continue, then
/// exit [`sipt_signal::EXIT_DRAINED`]. Called by the sweep engine once
/// in-flight work has settled and the checkpoint is flushed.
pub(crate) fn exit_for_drain(done: usize, total: usize) -> ! {
    with_stats(|s| s.drained = true);
    span::instant_with(
        "drain",
        "supervisor",
        vec![("done", Json::u64(done as u64)), ("total", Json::u64(total as u64))],
    );
    eprintln!("drain: interrupted with {done}/{total} task(s) of the current sweep complete");
    match checkpoint::active() {
        Some(ckpt) => eprintln!(
            "drain: checkpoint flushed to {}; re-run the same command with --resume to continue",
            ckpt.path().display()
        ),
        None => eprintln!(
            "drain: no checkpoint was armed; re-run with --resume to make sweeps resumable"
        ),
    }
    std::process::exit(sipt_signal::EXIT_DRAINED);
}

// ---------------------------------------------------------------------------
// The supervisor proper (the parent side)
// ---------------------------------------------------------------------------

/// One shard: a contiguous chunk of pending sweep slots, identified by
/// the FNV fingerprint of its requests' checkpoint fingerprints.
#[derive(Debug)]
struct Shard {
    index: usize,
    /// Unfinished slots, in submission order.
    remaining: Vec<usize>,
    /// Shard content fingerprint (diagnostics / span labels).
    fingerprint: u64,
    /// Respawns consumed so far.
    respawns: u32,
    /// Total spawns (for the worker's attempt offset).
    spawns: u32,
    /// Earliest next launch (backoff).
    ready_at: Instant,
    /// Last death description (for quarantine messages).
    last_death: String,
}

/// A live worker process.
struct Active {
    shard_idx: usize,
    worker_slot: usize,
    child: Child,
    stdin: Option<ChildStdin>,
    reader: Option<std::thread::JoinHandle<()>>,
    spawned_at: Instant,
    last_heard: Instant,
    /// `(slot, started)` of the in-flight task.
    inflight: Option<(usize, Instant)>,
    hello_seen: bool,
    drain_sent: bool,
    eof_seen: bool,
    /// Slot deliberately killed by the scoped watchdog.
    watchdog_victim: Option<usize>,
    /// Protocol-corruption description, if any.
    poisoned: Option<String>,
}

enum Event {
    Line(Parsed),
    Eof,
}

/// Outcomes of one sharded execution: resolved `(slot, result)` pairs in
/// submission order. Under a drain, unexecuted slots are simply absent.
type ShardedOutcomes = Vec<(usize, Result<RunMetrics, TaskFailure>)>;

/// Execute the pending slots of a sweep under process isolation.
///
/// # Errors
///
/// [`SimError::Supervisor`] when the supervisor cannot start at all
/// (e.g. the current executable path is unresolvable); the caller then
/// falls back to thread isolation with a warning.
pub(crate) fn run_sharded(
    pending: &[(usize, RunRequest)],
    sweep_seq: usize,
    base_id: usize,
    jobs: usize,
    ckpt: Option<&CheckpointHandle>,
) -> Result<(ShardedOutcomes, ParallelismProfile), SimError> {
    let exe = std::env::current_exe()
        .map_err(|e| SimError::supervisor(format!("cannot resolve current executable: {e}")))?;
    let jobs = jobs.max(1).min(pending.len().max(1));
    let shard_size = shard_size_for(pending.len(), jobs);
    let by_slot: HashMap<usize, (u64, &str)> = pending
        .iter()
        .map(|(slot, req)| (*slot, (req.fingerprint(), req.label.as_str())))
        .collect();
    let mut shards: Vec<Shard> = pending
        .chunks(shard_size)
        .enumerate()
        .map(|(index, chunk)| {
            let mut fp_bytes = Vec::with_capacity(chunk.len() * 8);
            for (_, req) in chunk {
                fp_bytes.extend_from_slice(&req.fingerprint().to_le_bytes());
            }
            Shard {
                index,
                remaining: chunk.iter().map(|(slot, _)| *slot).collect(),
                fingerprint: checkpoint::fnv1a64(&fp_bytes),
                respawns: 0,
                spawns: 0,
                ready_at: Instant::now(),
                last_death: String::new(),
            }
        })
        .collect();
    with_stats(|s| {
        s.sweeps += 1;
        s.shards += shards.len() as u64;
    });
    let mut sup_span = Span::enter_with(
        format!("supervise sweep {sweep_seq}"),
        "supervisor",
        vec![
            ("jobs", Json::u64(jobs as u64)),
            ("shards", Json::u64(shards.len() as u64)),
            ("tasks", Json::u64(pending.len() as u64)),
        ],
    );

    let wall = Instant::now();
    let (tx, rx) = mpsc::channel::<(u64, Event)>();
    let mut queue: VecDeque<usize> = (0..shards.len()).collect();
    let mut active: HashMap<u64, Active> = HashMap::new();
    let mut free_slots: Vec<usize> = (0..jobs).rev().collect();
    let mut results: HashMap<usize, Result<RunMetrics, TaskFailure>> = HashMap::new();
    let mut busy_ms = vec![0.0f64; jobs];
    let mut assigned: HashMap<usize, usize> = HashMap::new();
    let mut flagged: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut next_uid: u64 = 0;
    let mut drain_seen = false;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let draining = sipt_signal::drain_requested();
        if draining && !drain_seen {
            drain_seen = true;
            drain_deadline = Some(Instant::now() + Duration::from_secs(10));
            eprintln!(
                "drain: signal received — asking {} worker(s) to finish in-flight tasks",
                active.len()
            );
            for worker in active.values_mut() {
                if let Some(stdin) = worker.stdin.as_mut() {
                    let _ = writeln!(stdin, "{}", wire::DRAIN_COMMAND);
                    let _ = stdin.flush();
                }
                worker.drain_sent = true;
            }
        }

        // Launch ready shards onto free worker slots.
        while !draining && !free_slots.is_empty() {
            let now = Instant::now();
            let Some(pos) = queue.iter().position(|&i| shards[i].ready_at <= now) else {
                break;
            };
            let shard_idx = queue.remove(pos).expect("position came from the queue");
            let worker_slot = free_slots.pop().expect("checked non-empty");
            let shard = &mut shards[shard_idx];
            let slots_csv =
                shard.remaining.iter().map(ToString::to_string).collect::<Vec<_>>().join(",");
            let mut cmd = Command::new(&exe);
            cmd.args(std::env::args().skip(1))
                .arg("--worker-shard")
                .env(ENV_SWEEP, sweep_seq.to_string())
                .env(ENV_SLOTS, &slots_csv)
                .env(ENV_BASE, base_id.to_string())
                .env(ENV_ATTEMPT, shard.spawns.to_string())
                .env(ENV_SLOT, worker_slot.to_string())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            match cmd.spawn() {
                Ok(mut child) => {
                    shard.spawns += 1;
                    with_stats(|s| s.workers_spawned += 1);
                    let uid = next_uid;
                    next_uid += 1;
                    let stdout = child.stdout.take().expect("stdout was piped");
                    let stdin = child.stdin.take();
                    let tx = tx.clone();
                    let shard_fp = shard.fingerprint;
                    let spawn_no = shard.spawns;
                    let reader = std::thread::spawn(move || {
                        span::set_virtual_tid(
                            64 + worker_slot as u32,
                            &format!("shard worker {worker_slot}"),
                        );
                        let _span = Span::enter_with(
                            format!("worker {worker_slot} shard {shard_idx}"),
                            "supervisor.worker",
                            vec![
                                ("shard_fp", Json::str(format!("{shard_fp:016x}"))),
                                ("spawn", Json::u64(u64::from(spawn_no))),
                            ],
                        );
                        for line in std::io::BufReader::new(stdout).lines() {
                            let Ok(line) = line else { break };
                            let parsed = wire::parse_line(&line);
                            if !matches!(parsed, Parsed::Noise)
                                && tx.send((uid, Event::Line(parsed))).is_err()
                            {
                                break;
                            }
                        }
                        let _ = tx.send((uid, Event::Eof));
                    });
                    active.insert(
                        uid,
                        Active {
                            shard_idx,
                            worker_slot,
                            child,
                            stdin,
                            reader: Some(reader),
                            spawned_at: Instant::now(),
                            last_heard: Instant::now(),
                            inflight: None,
                            hello_seen: false,
                            drain_sent: false,
                            eof_seen: false,
                            watchdog_victim: None,
                            poisoned: None,
                        },
                    );
                }
                Err(e) => {
                    free_slots.push(worker_slot);
                    shard.last_death = format!("spawn failed: {e}");
                    with_stats(|s| s.worker_deaths += 1);
                    respawn_or_quarantine(shard, base_id, &by_slot, &mut results, &mut queue);
                }
            }
        }

        // Pump worker events (block briefly so the loop is responsive
        // without spinning).
        let mut reaped: Vec<u64> = Vec::new();
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(first) => {
                let mut pump = Some(first);
                while let Some((uid, event)) = pump.take() {
                    handle_event(
                        uid,
                        event,
                        &mut active,
                        &mut shards,
                        &mut results,
                        &mut busy_ms,
                        &mut assigned,
                        &by_slot,
                        base_id,
                        sweep_seq,
                        ckpt,
                        &mut reaped,
                    );
                    pump = rx.try_recv().ok();
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {}
        }

        // Reap workers whose streams closed.
        for uid in reaped {
            if let Some(worker) = active.remove(&uid) {
                finalize_worker(
                    worker,
                    &mut shards,
                    &mut results,
                    &mut queue,
                    &mut free_slots,
                    &by_slot,
                    base_id,
                    drain_seen,
                );
            }
        }

        // Scoped watchdog: flag overrunning tasks; with SIPT_WATCHDOG_KILL=1
        // kill only the offending worker (never the whole run).
        if let Some(timeout_ms) = resilience::task_timeout_ms() {
            for worker in active.values_mut() {
                let Some((slot, started)) = worker.inflight else { continue };
                let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                if elapsed_ms > timeout_ms as f64 && flagged.insert(base_id + slot) {
                    resilience::record_watchdog_flag(WatchdogFlag {
                        task: base_id + slot,
                        elapsed_ms,
                        timeout_ms,
                    });
                    if resilience::watchdog_kill() {
                        eprintln!(
                            "watchdog: SIPT_WATCHDOG_KILL=1 — killing worker {} \
                             (task {} only; the sweep continues)",
                            worker.worker_slot,
                            base_id + slot
                        );
                        worker.watchdog_victim = Some(slot);
                        with_stats(|s| s.watchdog_kills += 1);
                        span::instant_with(
                            format!("watchdog kill worker {}", worker.worker_slot),
                            "supervisor",
                            vec![("task", Json::u64((base_id + slot) as u64))],
                        );
                        let _ = worker.child.kill();
                    }
                }
            }
        }

        // Spawn liveness: a worker that never says hello is wedged.
        let spawn_timeout = Duration::from_millis(spawn_timeout_ms());
        for worker in active.values_mut() {
            if !worker.hello_seen
                && worker.poisoned.is_none()
                && worker.spawned_at.elapsed() > spawn_timeout
            {
                worker.poisoned =
                    Some(format!("no hello within {} ms of spawn", spawn_timeout.as_millis()));
                let _ = worker.child.kill();
            }
        }

        // Drain stragglers: a worker that ignores the drain command gets
        // killed once the grace period lapses (its finished results are
        // already merged and checkpointed).
        if let Some(deadline) = drain_deadline {
            if Instant::now() > deadline {
                for worker in active.values_mut() {
                    let _ = worker.child.kill();
                }
            }
        }

        if active.is_empty() && (queue.is_empty() || draining) {
            break;
        }
    }

    with_stats(|s| s.drained |= drain_seen);
    let profile = ParallelismProfile {
        jobs,
        tasks: pending.len(),
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
        worker_busy_ms: busy_ms,
        assigned_worker: pending
            .iter()
            .map(|(slot, _)| assigned.get(slot).copied().unwrap_or(0))
            .collect(),
    };
    record_profile(&profile);
    sup_span.arg("merged", Json::u64(results.len() as u64));
    let outcomes: ShardedOutcomes =
        pending.iter().filter_map(|(slot, _)| results.remove(slot).map(|r| (*slot, r))).collect();
    Ok((outcomes, profile))
}

/// Handle one worker event. Mutates shard/result/accounting state and
/// pushes the worker's uid onto `reaped` when its stream closed.
#[allow(clippy::too_many_arguments)]
fn handle_event(
    uid: u64,
    event: Event,
    active: &mut HashMap<u64, Active>,
    shards: &mut [Shard],
    results: &mut HashMap<usize, Result<RunMetrics, TaskFailure>>,
    busy_ms: &mut [f64],
    assigned: &mut HashMap<usize, usize>,
    by_slot: &HashMap<usize, (u64, &str)>,
    base_id: usize,
    sweep_seq: usize,
    ckpt: Option<&CheckpointHandle>,
    reaped: &mut Vec<u64>,
) {
    let Some(worker) = active.get_mut(&uid) else { return };
    worker.last_heard = Instant::now();
    let msg = match event {
        Event::Eof => {
            worker.eof_seen = true;
            reaped.push(uid);
            return;
        }
        Event::Line(Parsed::Noise) => return,
        Event::Line(Parsed::Malformed(line)) => {
            with_stats(|s| s.protocol_errors += 1);
            worker.poisoned = Some(format!("malformed protocol line: {line}"));
            let _ = worker.child.kill();
            return;
        }
        Event::Line(Parsed::Msg(msg)) => msg,
    };
    match msg {
        WorkerMsg::Hello { .. } => worker.hello_seen = true,
        WorkerMsg::Heartbeat => with_stats(|s| s.heartbeats += 1),
        WorkerMsg::Start { slot } => worker.inflight = Some((slot, Instant::now())),
        WorkerMsg::Done { slot, fingerprint, metrics } => {
            let busy = worker
                .inflight
                .take()
                .map_or(0.0, |(_, started)| started.elapsed().as_secs_f64() * 1e3);
            busy_ms[worker.worker_slot] += busy;
            let Some(&(expected_fp, _)) = by_slot.get(&slot) else {
                worker.poisoned = Some(format!("done for unassigned slot {slot}"));
                let _ = worker.child.kill();
                return;
            };
            if fingerprint != expected_fp {
                with_stats(|s| s.fingerprint_mismatches += 1);
                worker.poisoned = Some(format!(
                    "slot {slot} fingerprint mismatch: worker {fingerprint:016x}, \
                     supervisor {expected_fp:016x}"
                ));
                let _ = worker.child.kill();
                return;
            }
            let Some(decoded) = checkpoint::decode_metrics(&metrics) else {
                with_stats(|s| s.protocol_errors += 1);
                worker.poisoned = Some(format!("slot {slot} metrics payload undecodable"));
                let _ = worker.child.kill();
                return;
            };
            if let Some(ckpt) = ckpt {
                ckpt.append(&checkpoint::task_key(sweep_seq, slot), fingerprint, &decoded);
            }
            // Fold the worker's simulated work into this process's
            // totals, exactly as an in-process run would have: the
            // bench MIPS accounting must not see process isolation.
            crate::metrics::record_simulation(
                decoded.core.instructions,
                decoded.phases.measure_ms / 1e3,
            );
            assigned.insert(slot, worker.worker_slot);
            shards[worker.shard_idx].remaining.retain(|&s| s != slot);
            results.insert(slot, Ok(decoded));
            with_stats(|s| s.results_merged += 1);
        }
        WorkerMsg::Fail { slot, attempts, elapsed_ms, message } => {
            let busy = worker
                .inflight
                .take()
                .map_or(0.0, |(_, started)| started.elapsed().as_secs_f64() * 1e3);
            busy_ms[worker.worker_slot] += busy;
            let label = by_slot
                .get(&slot)
                .map_or_else(|| format!("task-{}", base_id + slot), |&(_, l)| l.to_owned());
            assigned.insert(slot, worker.worker_slot);
            shards[worker.shard_idx].remaining.retain(|&s| s != slot);
            results.insert(
                slot,
                Err(TaskFailure {
                    task: base_id + slot,
                    label,
                    worker: worker.worker_slot,
                    panic_msg: message,
                    elapsed_ms,
                    attempts,
                }),
            );
        }
        WorkerMsg::Drained { completed } => {
            span::instant_with(
                format!("worker {} drained", worker.worker_slot),
                "supervisor",
                vec![("completed", Json::u64(completed as u64))],
            );
        }
    }
}

/// Describe a child's exit status for death/quarantine messages.
fn describe_exit(status: Option<std::process::ExitStatus>) -> String {
    let Some(status) = status else {
        return String::from("exit status unavailable");
    };
    if let Some(code) = status.code() {
        return format!("exited with code {code}");
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            let name = match sig {
                6 => " (SIGABRT)",
                9 => " (SIGKILL)",
                11 => " (SIGSEGV)",
                _ => "",
            };
            return format!("killed by signal {sig}{name}");
        }
    }
    format!("{status}")
}

/// Respawn a shard (with backoff) or quarantine it when the budget is
/// spent. Returns `true` when a respawn was scheduled.
fn respawn_or_quarantine(
    shard: &mut Shard,
    base_id: usize,
    by_slot: &HashMap<usize, (u64, &str)>,
    results: &mut HashMap<usize, Result<RunMetrics, TaskFailure>>,
    queue: &mut VecDeque<usize>,
) -> bool {
    if shard.respawns < respawn_budget() {
        shard.respawns += 1;
        let backoff = respawn_backoff_ms() << (shard.respawns - 1).min(16);
        shard.ready_at = Instant::now() + Duration::from_millis(backoff);
        with_stats(|s| s.respawns += 1);
        eprintln!(
            "supervisor: shard {} ({} task(s) left) worker died ({}); \
             respawn {}/{} in {} ms",
            shard.index,
            shard.remaining.len(),
            shard.last_death,
            shard.respawns,
            respawn_budget(),
            backoff
        );
        span::instant_with(
            format!("respawn shard {}", shard.index),
            "supervisor",
            vec![
                ("respawn", Json::u64(u64::from(shard.respawns))),
                ("backoff_ms", Json::u64(backoff)),
            ],
        );
        queue.push_back(shard.index);
        true
    } else {
        let remaining: Vec<usize> = shard.remaining.drain(..).collect();
        with_stats(|s| {
            s.quarantined_shards += 1;
            s.quarantined_tasks += remaining.len() as u64;
        });
        eprintln!(
            "supervisor: quarantining shard {} ({:016x}): respawn budget ({}) exhausted; \
             {} task(s) failed permanently (last death: {})",
            shard.index,
            shard.fingerprint,
            respawn_budget(),
            remaining.len(),
            shard.last_death
        );
        span::instant_with(
            format!("quarantine shard {}", shard.index),
            "supervisor",
            vec![("tasks", Json::u64(remaining.len() as u64))],
        );
        for slot in remaining {
            let label = by_slot
                .get(&slot)
                .map_or_else(|| format!("task-{}", base_id + slot), |&(_, l)| l.to_owned());
            results.insert(
                slot,
                Err(TaskFailure {
                    task: base_id + slot,
                    label,
                    worker: 0,
                    panic_msg: format!(
                        "quarantined shard {:016x}: worker died {} time(s), last: {}",
                        shard.fingerprint, shard.spawns, shard.last_death
                    ),
                    elapsed_ms: 0.0,
                    attempts: shard.spawns.max(1),
                }),
            );
        }
        false
    }
}

/// A worker's stream closed: wait for the process, classify the exit,
/// and decide between shard-complete, respawn, quarantine, and drain.
#[allow(clippy::too_many_arguments)]
fn finalize_worker(
    mut worker: Active,
    shards: &mut [Shard],
    results: &mut HashMap<usize, Result<RunMetrics, TaskFailure>>,
    queue: &mut VecDeque<usize>,
    free_slots: &mut Vec<usize>,
    by_slot: &HashMap<usize, (u64, &str)>,
    base_id: usize,
    draining: bool,
) {
    let status = worker.child.wait().ok();
    if let Some(reader) = worker.reader.take() {
        let _ = reader.join();
    }
    free_slots.push(worker.worker_slot);
    let shard = &mut shards[worker.shard_idx];

    // A deliberate watchdog kill fails only the in-flight task; the rest
    // of the shard respawns without charging the respawn budget.
    if let Some(slot) = worker.watchdog_victim {
        let timeout = resilience::task_timeout_ms().unwrap_or(0);
        let label = by_slot
            .get(&slot)
            .map_or_else(|| format!("task-{}", base_id + slot), |&(_, l)| l.to_owned());
        shard.remaining.retain(|&s| s != slot);
        results.insert(
            slot,
            Err(TaskFailure {
                task: base_id + slot,
                label,
                worker: worker.worker_slot,
                panic_msg: format!(
                    "watchdog killed the worker: task exceeded --task-timeout ({timeout} ms) \
                     with SIPT_WATCHDOG_KILL=1"
                ),
                elapsed_ms: worker
                    .inflight
                    .map_or(0.0, |(_, started)| started.elapsed().as_secs_f64() * 1e3),
                attempts: 1,
            }),
        );
        if !shard.remaining.is_empty() && !draining {
            shard.ready_at = Instant::now();
            queue.push_back(shard.index);
        }
        return;
    }

    // Protocol corruption poisons the shard outright: a worker that
    // cannot speak the protocol cannot be trusted to re-run either.
    if let Some(reason) = worker.poisoned {
        shard.last_death = reason;
        shard.respawns = respawn_budget(); // force the quarantine branch
        respawn_or_quarantine(shard, base_id, by_slot, results, queue);
        return;
    }

    if shard.remaining.is_empty() {
        return; // shard complete
    }
    if draining {
        return; // unexecuted slots stay for --resume
    }
    shard.last_death = describe_exit(status);
    with_stats(|s| s.worker_deaths += 1);
    span::instant_with(
        format!("worker {} died", worker.worker_slot),
        "supervisor",
        vec![("status", Json::str(&shard.last_death))],
    );
    respawn_or_quarantine(shard, base_id, by_slot, results, queue);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_parses_and_names() {
        assert_eq!(Isolation::parse("thread"), Some(Isolation::Thread));
        assert_eq!(Isolation::parse(" process "), Some(Isolation::Process));
        assert_eq!(Isolation::parse("fork"), None);
        assert_eq!(Isolation::Thread.name(), "thread");
        assert_eq!(Isolation::Process.name(), "process");
    }

    #[test]
    fn isolation_override_wins() {
        // Not worker mode in tests, so the override is honored.
        set_isolation(Isolation::Process);
        assert_eq!(isolation(), Isolation::Process);
        set_isolation(Isolation::Thread);
        assert_eq!(isolation(), Isolation::Thread);
        ISOLATION_OVERRIDE.store(0, Ordering::Relaxed);
    }

    #[test]
    fn shard_sizes_cover_all_slots() {
        // Default: one shard per worker.
        assert_eq!(shard_size_for(12, 4), 3);
        assert_eq!(shard_size_for(13, 4), 4);
        assert_eq!(shard_size_for(1, 8), 1);
        assert_eq!(shard_size_for(0, 4), 1);
    }

    #[test]
    fn exit_descriptions_are_informative() {
        assert_eq!(describe_exit(None), "exit status unavailable");
    }

    #[test]
    fn supervisor_block_absent_until_used() {
        // Other tests in this binary may have primed it; only assert the
        // shape when present.
        if let Some(json) = supervisor_json() {
            for key in ["isolation", "shards", "workers_spawned", "respawns", "drained"] {
                assert!(json.get(key).is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn quarantine_records_every_remaining_slot() {
        let mut shard = Shard {
            index: 7,
            remaining: vec![3, 4],
            fingerprint: 0xabcd,
            respawns: respawn_budget(), // budget already spent
            spawns: 3,
            ready_at: Instant::now(),
            last_death: "killed by signal 6 (SIGABRT)".into(),
        };
        let by_slot: HashMap<usize, (u64, &str)> =
            [(3, (1u64, "sjeng")), (4, (2u64, "mcf"))].into_iter().collect();
        let mut results = HashMap::new();
        let mut queue = VecDeque::new();
        let respawned = respawn_or_quarantine(&mut shard, 100, &by_slot, &mut results, &mut queue);
        assert!(!respawned);
        assert!(queue.is_empty());
        let f3 = results.get(&3).unwrap().as_ref().unwrap_err();
        assert_eq!(f3.task, 103);
        assert_eq!(f3.label, "sjeng");
        assert!(f3.panic_msg.contains("quarantined shard"));
        assert!(f3.panic_msg.contains("SIGABRT"));
        let f4 = results.get(&4).unwrap().as_ref().unwrap_err();
        assert_eq!(f4.task, 104);
        assert_eq!(f4.label, "mcf");
    }

    #[test]
    fn respawn_backoff_doubles() {
        let mut shard = Shard {
            index: 0,
            remaining: vec![0],
            fingerprint: 1,
            respawns: 0,
            spawns: 1,
            ready_at: Instant::now(),
            last_death: "exited with code 134".into(),
        };
        let by_slot: HashMap<usize, (u64, &str)> = [(0, (1u64, "x"))].into_iter().collect();
        let mut results = HashMap::new();
        let mut queue = VecDeque::new();
        assert!(respawn_or_quarantine(&mut shard, 0, &by_slot, &mut results, &mut queue));
        assert_eq!(shard.respawns, 1);
        assert_eq!(queue.pop_front(), Some(0));
        let first_ready = shard.ready_at;
        assert!(respawn_or_quarantine(&mut shard, 0, &by_slot, &mut results, &mut queue));
        assert_eq!(shard.respawns, 2);
        assert!(shard.ready_at >= first_ready, "backoff grows");
        assert!(results.is_empty(), "respawns resolve nothing");
    }
}
