//! The resilience layer: structured task failures, retry/watchdog policy,
//! deterministic fault injection, and the schema-v3 `resilience` report
//! block.
//!
//! Long sweeps must never lose finished work to one bad point. The worker
//! pool ([`crate::sweep`]) wraps every task in `catch_unwind`; a panic is
//! captured here as a [`TaskFailure`] (task id, worker, panic message,
//! elapsed time, attempts) while the remaining tasks complete
//! deterministically. A process-wide registry accumulates every failure
//! and watchdog flag so the figure binaries can print a failure table,
//! stamp the report's `resilience` block, and exit non-zero.
//!
//! Knobs (all parsed once per process):
//!
//! - `SIPT_TASK_RETRIES` / [`set_task_retries`] — bounded re-execution of
//!   a panicked task (default 1 retry; simulations are pure functions of
//!   their inputs, so retries only help against injected/transient
//!   faults, and a deterministic panic fails every attempt).
//! - `SIPT_TASK_TIMEOUT_MS` / [`set_task_timeout_ms`] (the `--task-timeout`
//!   CLI flag) — a watchdog flags tasks running longer than this; with
//!   `SIPT_WATCHDOG_KILL=1` it kills overrunning work instead of waiting
//!   forever. Under `--isolation process` the kill is scoped to the
//!   offending *worker process* (the task is failed, the sweep continues);
//!   in thread mode the only containable unit is the whole process, so it
//!   aborts with exit 124 (the documented fallback).
//! - `SIPT_FAULT_INJECT=<spec>` — deterministic fault injection for
//!   proving the isolation/retry/audit machinery actually fires (see
//!   [`FaultSpec`]). `abort:` directives take down the whole process —
//!   only `--isolation process` (see [`crate::supervisor`]) survives them.

use sipt_telemetry::json::Json;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Structured failures
// ---------------------------------------------------------------------------

/// One captured task failure: a panic (organic or injected) that exhausted
/// its retry budget, recorded instead of aborting the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskFailure {
    /// Process-global task id (submission order across all sweeps).
    pub task: usize,
    /// Caller label (benchmark/config) when known, else `task-<id>`.
    pub label: String,
    /// Worker that executed the final attempt.
    pub worker: usize,
    /// The panic payload, downcast to text when possible.
    pub panic_msg: String,
    /// Wall-clock milliseconds spent in the final attempt.
    pub elapsed_ms: f64,
    /// Total attempts made (1 = no retry).
    pub attempts: u32,
}

impl TaskFailure {
    /// This failure as a `failures[]` entry of the schema-v3 `resilience`
    /// block.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("task", Json::u64(self.task as u64)),
            ("label", Json::str(&self.label)),
            ("worker", Json::u64(self.worker as u64)),
            ("panic_msg", Json::str(&self.panic_msg)),
            ("elapsed_ms", Json::num(self.elapsed_ms)),
            ("attempts", Json::u64(u64::from(self.attempts))),
        ])
    }
}

impl core::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "task {} ({}) failed on worker {} after {} attempt(s) ({:.1} ms): {}",
            self.task, self.label, self.worker, self.attempts, self.elapsed_ms, self.panic_msg
        )
    }
}

/// A watchdog observation: a task exceeded the configured timeout.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogFlag {
    /// Process-global task id.
    pub task: usize,
    /// Elapsed milliseconds when flagged.
    pub elapsed_ms: f64,
    /// The timeout that was exceeded.
    pub timeout_ms: u64,
}

impl WatchdogFlag {
    /// This flag as a `watchdog_flags[]` entry.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("task", Json::u64(self.task as u64)),
            ("elapsed_ms", Json::num(self.elapsed_ms)),
            ("timeout_ms", Json::u64(self.timeout_ms)),
        ])
    }
}

// ---------------------------------------------------------------------------
// Process-wide registry
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Registry {
    failures: Vec<TaskFailure>,
    watchdog_flags: Vec<WatchdogFlag>,
    retries_spent: u64,
    checkpoint_hits: u64,
    corrupt_checkpoint_lines: u64,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(Registry::default))
}

/// Record a captured failure in the process-wide registry (the pool calls
/// this; tests may too).
pub fn record_failure(failure: TaskFailure) {
    eprintln!("sweep task failure: {failure}");
    sipt_telemetry::span::instant_with(
        format!("task {} failed", failure.task),
        "resilience",
        vec![
            ("label", Json::str(&failure.label)),
            ("attempts", Json::u64(failure.attempts as u64)),
        ],
    );
    with_registry(|r| r.failures.push(failure));
}

/// Record a watchdog flag.
pub fn record_watchdog_flag(flag: WatchdogFlag) {
    eprintln!(
        "watchdog: task {} exceeded --task-timeout ({:.0} ms > {} ms)",
        flag.task, flag.elapsed_ms, flag.timeout_ms
    );
    sipt_telemetry::span::instant_with(
        format!("watchdog flag task {}", flag.task),
        "resilience",
        vec![
            ("elapsed_ms", Json::num(flag.elapsed_ms)),
            ("timeout_ms", Json::u64(flag.timeout_ms)),
        ],
    );
    with_registry(|r| r.watchdog_flags.push(flag));
}

/// Record that a retry was spent (an attempt failed but the budget allowed
/// another).
pub fn record_retry() {
    sipt_telemetry::span::instant("retry", "resilience");
    with_registry(|r| r.retries_spent += 1);
}

/// Record that `n` tasks were restored from a sweep checkpoint instead of
/// being re-executed.
pub fn record_checkpoint_hits(n: u64) {
    with_registry(|r| r.checkpoint_hits += n);
}

/// Record that `n` corrupt (unparseable) lines were skipped while loading
/// a sweep checkpoint. Each line was already warned about individually on
/// stderr; the count surfaces in the `resilience` report block so silent
/// checkpoint corruption is visible in artifacts, not just scrollback.
pub fn record_corrupt_checkpoint_lines(n: u64) {
    with_registry(|r| r.corrupt_checkpoint_lines += n);
}

/// Number of corrupt checkpoint lines skipped so far.
pub fn corrupt_checkpoint_lines() -> u64 {
    with_registry(|r| r.corrupt_checkpoint_lines)
}

/// All failures captured so far, in capture order.
pub fn failures() -> Vec<TaskFailure> {
    with_registry(|r| r.failures.clone())
}

/// Number of failures captured so far.
pub fn failure_count() -> usize {
    with_registry(|r| r.failures.len())
}

/// All watchdog flags raised so far.
pub fn watchdog_flags() -> Vec<WatchdogFlag> {
    with_registry(|r| r.watchdog_flags.clone())
}

/// The `resilience` report block (schema v3, extended in v6 with
/// `corrupt_checkpoint_lines` and the `supervisor` sub-block): `None`
/// until something worth reporting happened (a failure, a watchdog flag,
/// a retry, a checkpoint restore, checkpoint corruption, fault injection
/// being armed, or a process-isolation sweep having run). Scientific
/// payloads are unchanged when no fault occurs — the block is simply
/// absent.
pub fn resilience_json() -> Option<Json> {
    let (failures, flags, retries, ckpt, corrupt) = with_registry(|r| {
        (
            r.failures.clone(),
            r.watchdog_flags.clone(),
            r.retries_spent,
            r.checkpoint_hits,
            r.corrupt_checkpoint_lines,
        )
    });
    let injected = injected_fault_count();
    let supervisor = crate::supervisor::supervisor_json();
    if failures.is_empty()
        && flags.is_empty()
        && retries == 0
        && ckpt == 0
        && corrupt == 0
        && injected == 0
        && supervisor.is_none()
    {
        return None;
    }
    Some(Json::obj([
        ("failures", Json::arr(failures.iter().map(TaskFailure::to_json))),
        ("watchdog_flags", Json::arr(flags.iter().map(WatchdogFlag::to_json))),
        ("retries_spent", Json::u64(retries)),
        ("checkpoint_hits", Json::u64(ckpt)),
        ("corrupt_checkpoint_lines", Json::u64(corrupt)),
        ("fault_injections", Json::u64(injected)),
        ("task_retries", Json::u64(u64::from(task_retries()))),
        ("task_timeout_ms", task_timeout_ms().map_or(Json::Null, Json::u64)),
        ("supervisor", supervisor.unwrap_or(Json::Null)),
    ]))
}

/// Render the human-readable failure table printed by bench binaries
/// before a non-zero exit. Empty string when there are no failures.
pub fn failure_table() -> String {
    let failures = failures();
    if failures.is_empty() {
        return String::new();
    }
    let mut out = String::from("== task failures ==\n");
    out.push_str("task  attempts  worker  elapsed_ms  label            panic\n");
    for f in &failures {
        out.push_str(&format!(
            "{:<4}  {:<8}  {:<6}  {:<10.1}  {:<15}  {}\n",
            f.task, f.attempts, f.worker, f.elapsed_ms, f.label, f.panic_msg
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Policy knobs
// ---------------------------------------------------------------------------

/// `--task-retries` / programmatic override (`u32::MAX` = unset).
static RETRIES_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);
/// `--task-timeout` override in ms (0 = unset, `u64::MAX` = explicitly off).
static TIMEOUT_OVERRIDE_MS: AtomicU64 = AtomicU64::new(0);

use crate::env::parse_or_warn as env_u64;

/// Set the per-task retry budget (number of *re*-executions after a
/// panicked attempt). Takes precedence over `SIPT_TASK_RETRIES`.
pub fn set_task_retries(retries: u32) {
    RETRIES_OVERRIDE.store(retries as usize, Ordering::Relaxed);
}

/// The per-task retry budget: the [`set_task_retries`] override, else
/// `SIPT_TASK_RETRIES`, else 1.
pub fn task_retries() -> u32 {
    let explicit = RETRIES_OVERRIDE.load(Ordering::Relaxed);
    if explicit != usize::MAX {
        return explicit as u32;
    }
    static PARSED: OnceLock<Option<u64>> = OnceLock::new();
    PARSED.get_or_init(|| env_u64("SIPT_TASK_RETRIES")).map_or(1, |n| n.min(16) as u32)
}

/// Set the watchdog timeout in milliseconds (the `--task-timeout` flag;
/// 0 disables the watchdog).
pub fn set_task_timeout_ms(ms: u64) {
    TIMEOUT_OVERRIDE_MS.store(if ms == 0 { u64::MAX } else { ms }, Ordering::Relaxed);
}

/// The watchdog timeout: the [`set_task_timeout_ms`] override, else
/// `SIPT_TASK_TIMEOUT_MS`, else `None` (watchdog off).
pub fn task_timeout_ms() -> Option<u64> {
    match TIMEOUT_OVERRIDE_MS.load(Ordering::Relaxed) {
        0 => {
            static PARSED: OnceLock<Option<u64>> = OnceLock::new();
            *PARSED.get_or_init(|| env_u64("SIPT_TASK_TIMEOUT_MS").filter(|&n| n > 0))
        }
        u64::MAX => None,
        ms => Some(ms),
    }
}

/// Whether the watchdog should abort the process (exit 124) when a task
/// exceeds the timeout, instead of just flagging it (`SIPT_WATCHDOG_KILL=1`).
pub fn watchdog_kill() -> bool {
    static PARSED: OnceLock<bool> = OnceLock::new();
    *PARSED.get_or_init(|| matches!(std::env::var("SIPT_WATCHDOG_KILL"), Ok(v) if v == "1"))
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// One deterministic fault directive from `SIPT_FAULT_INJECT`.
///
/// Spec grammar (comma-separated directives):
///
/// ```text
/// panic:<task>          panic on every attempt of global task <task>
/// panic:<task>:once     panic only on the first attempt (retry recovers)
/// abort:<task>          call std::process::abort() at the start of task
///                       <task> — a fault catch_unwind CANNOT contain;
///                       only --isolation process survives it
/// abort:<task>:once     abort only on the very first attempt (a respawned
///                       worker then completes the task)
/// slow:<task>:<ms>      sleep <ms> at the start of task <task> (trips the watchdog)
/// flip:<task>           XOR 1 into the task's SIPT access counter after the
///                       run (metrics-conservation audit must catch it)
/// ```
///
/// Task ids are process-global submission indices (0-based, across all
/// sweeps in the process), so injection is deterministic regardless of
/// worker scheduling. `:once` counts attempts across worker *respawns*
/// too: a shard worker re-executed after a crash carries an attempt
/// offset ([`set_attempt_offset`]) so the fault does not re-fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Panic inside the task.
    Panic {
        /// Global task id.
        task: usize,
        /// Inject only on the first attempt (retries then recover).
        once: bool,
    },
    /// Abort the whole process at task start (`std::process::abort()`),
    /// modelling the fault class `catch_unwind` cannot contain: SIGABRT,
    /// segfaults, OOM kills.
    Abort {
        /// Global task id.
        task: usize,
        /// Inject only on the first (effective) attempt — a respawned
        /// shard worker then completes the task.
        once: bool,
    },
    /// Sleep at task start.
    Slow {
        /// Global task id.
        task: usize,
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// Flip a bit in the task's metrics after the run.
    BitFlip {
        /// Global task id.
        task: usize,
    },
}

/// Parse a `SIPT_FAULT_INJECT` spec string. Returns `Err` with a
/// description for malformed directives.
pub fn parse_fault_spec(spec: &str) -> Result<Vec<FaultSpec>, String> {
    let mut out = Vec::new();
    for directive in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let parts: Vec<&str> = directive.split(':').collect();
        let parse_task =
            |s: &str| s.parse::<usize>().map_err(|_| format!("bad task id {s:?} in {directive:?}"));
        match parts.as_slice() {
            ["panic", task] => out.push(FaultSpec::Panic { task: parse_task(task)?, once: false }),
            ["panic", task, "once"] => {
                out.push(FaultSpec::Panic { task: parse_task(task)?, once: true });
            }
            ["abort", task] => out.push(FaultSpec::Abort { task: parse_task(task)?, once: false }),
            ["abort", task, "once"] => {
                out.push(FaultSpec::Abort { task: parse_task(task)?, once: true });
            }
            ["slow", task, ms] => out.push(FaultSpec::Slow {
                task: parse_task(task)?,
                ms: ms.parse().map_err(|_| format!("bad ms {ms:?} in {directive:?}"))?,
            }),
            ["flip", task] => out.push(FaultSpec::BitFlip { task: parse_task(task)? }),
            _ => return Err(format!("unknown fault directive {directive:?}")),
        }
    }
    Ok(out)
}

/// The armed fault set, parsed once from `SIPT_FAULT_INJECT` (malformed
/// specs warn and arm nothing rather than aborting a long run).
pub fn armed_faults() -> &'static [FaultSpec] {
    static PARSED: OnceLock<Vec<FaultSpec>> = OnceLock::new();
    PARSED.get_or_init(|| match std::env::var("SIPT_FAULT_INJECT") {
        Ok(spec) if !spec.is_empty() => match parse_fault_spec(&spec) {
            Ok(faults) => faults,
            Err(e) => {
                eprintln!("warning: malformed SIPT_FAULT_INJECT: {e}; injection disarmed");
                Vec::new()
            }
        },
        _ => Vec::new(),
    })
}

static INJECTED: AtomicU64 = AtomicU64::new(0);

/// Number of faults actually injected so far this process.
pub fn injected_fault_count() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Attempts already spent on this process's tasks in *previous* worker
/// spawns (shard workers respawned after a crash). Added to the in-process
/// attempt number so `:once` faults are once per task, not once per spawn.
static ATTEMPT_OFFSET: AtomicU64 = AtomicU64::new(0);

/// Set the cross-spawn attempt offset (shard workers call this with
/// `spawn_attempt × attempts_per_spawn` before executing).
pub fn set_attempt_offset(offset: u32) {
    ATTEMPT_OFFSET.store(u64::from(offset), Ordering::Relaxed);
}

/// Fault-injection hook at task start: sleeps for `slow` directives,
/// panics for matching `panic` directives, and aborts the process for
/// `abort` directives. Called by the pool inside the `catch_unwind`
/// boundary (which contains the panics but, by design, not the aborts).
pub fn inject_at_task_start(task: usize, attempt: u32) {
    let attempt_eff = u64::from(attempt) + ATTEMPT_OFFSET.load(Ordering::Relaxed);
    for fault in armed_faults() {
        match *fault {
            FaultSpec::Slow { task: t, ms } if t == task => {
                INJECTED.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            FaultSpec::Panic { task: t, once } if t == task && (!once || attempt_eff == 0) => {
                INJECTED.fetch_add(1, Ordering::Relaxed);
                panic!("injected fault: panic at task {task} (attempt {attempt})");
            }
            FaultSpec::Abort { task: t, once } if t == task && (!once || attempt_eff == 0) => {
                INJECTED.fetch_add(1, Ordering::Relaxed);
                eprintln!("injected fault: abort at task {task} (attempt {attempt_eff})");
                std::process::abort();
            }
            _ => {}
        }
    }
}

/// Whether a `flip` directive targets `task`. The sweep layer applies the
/// actual metric corruption (it owns the metrics type).
pub fn inject_bit_flip(task: usize) -> bool {
    let hit =
        armed_faults().iter().any(|f| matches!(*f, FaultSpec::BitFlip { task: t } if t == task));
    if hit {
        INJECTED.fetch_add(1, Ordering::Relaxed);
    }
    hit
}

// ---------------------------------------------------------------------------
// Global task ids
// ---------------------------------------------------------------------------

static NEXT_TASK_ID: AtomicUsize = AtomicUsize::new(0);

/// Allocate `n` consecutive process-global task ids (called at submission
/// time, on the main thread, so ids are deterministic).
pub fn allocate_task_ids(n: usize) -> usize {
    NEXT_TASK_ID.fetch_add(n, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Panic-message capture
// ---------------------------------------------------------------------------

thread_local! {
    static IN_POOL_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once) a panic hook that silences the default backtrace noise
/// for panics *inside pool tasks* — they are captured as [`TaskFailure`]s
/// — while delegating to the previous hook everywhere else.
pub fn install_quiet_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_POOL_TASK.with(std::cell::Cell::get) {
                // Captured and reported as a structured TaskFailure.
                return;
            }
            previous(info);
        }));
    });
}

/// Whether the current thread is executing inside a pool task (including
/// the serial inline path). Used to gate nested parallelism: quad-core
/// mixes shard their cores across threads only when *not* already running
/// under the sweep pool, so worker counts never multiply.
pub fn in_pool_task() -> bool {
    IN_POOL_TASK.with(std::cell::Cell::get)
}

/// Run `f` with panics captured: returns `Err(panic message)` instead of
/// unwinding past the caller. Marks the thread as "in pool task" so the
/// quiet hook suppresses the default stderr trace.
pub fn catch_task_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    IN_POOL_TASK.with(|flag| flag.set(true));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    IN_POOL_TASK.with(|flag| flag.set(false));
    result.map_err(|payload| panic_message(payload.as_ref()))
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_spec_parses_all_directives() {
        let faults =
            parse_fault_spec("panic:3, panic:4:once, abort:5, abort:6:once, slow:2:250, flip:7")
                .unwrap();
        assert_eq!(
            faults,
            vec![
                FaultSpec::Panic { task: 3, once: false },
                FaultSpec::Panic { task: 4, once: true },
                FaultSpec::Abort { task: 5, once: false },
                FaultSpec::Abort { task: 6, once: true },
                FaultSpec::Slow { task: 2, ms: 250 },
                FaultSpec::BitFlip { task: 7 },
            ]
        );
        assert_eq!(parse_fault_spec("").unwrap(), vec![]);
        assert!(parse_fault_spec("panic:x").is_err());
        assert!(parse_fault_spec("abort:x").is_err());
        assert!(parse_fault_spec("abort:1:twice").is_err());
        assert!(parse_fault_spec("melt:3").is_err());
        assert!(parse_fault_spec("slow:1:fast").is_err());
    }

    #[test]
    fn attempt_offset_shifts_once_semantics() {
        // With an offset, attempt 0 of a respawned worker is no longer
        // "the first attempt" — a `:once` panic must not re-fire.
        set_attempt_offset(2);
        inject_at_task_start(987_654, 0); // would panic if offset ignored
        set_attempt_offset(0);
    }

    #[test]
    fn catch_task_panic_returns_message() {
        install_quiet_panic_hook();
        assert_eq!(catch_task_panic(|| 42).unwrap(), 42);
        let err = catch_task_panic(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(err, "boom 7");
        let err = catch_task_panic(|| std::panic::panic_any(13u32)).unwrap_err();
        assert!(err.contains("non-string"));
        // The thread-local is reset either way.
        assert_eq!(catch_task_panic(|| 1).unwrap(), 1);
    }

    #[test]
    fn registry_accumulates_and_renders() {
        let before = failure_count();
        record_failure(TaskFailure {
            task: 900_001,
            label: "unit-test".into(),
            worker: 0,
            panic_msg: "synthetic".into(),
            elapsed_ms: 1.5,
            attempts: 2,
        });
        assert_eq!(failure_count(), before + 1);
        let table = failure_table();
        assert!(table.contains("unit-test"));
        assert!(table.contains("synthetic"));
        let json = resilience_json().expect("failures present");
        assert!(json.get("failures").is_some());
        assert!(json.get("task_retries").is_some());
    }

    #[test]
    fn task_ids_are_monotonic() {
        let a = allocate_task_ids(3);
        let b = allocate_task_ids(2);
        assert!(b >= a + 3);
    }

    #[test]
    fn failure_display_mentions_everything() {
        let f = TaskFailure {
            task: 5,
            label: "sjeng/32K2w".into(),
            worker: 1,
            panic_msg: "oops".into(),
            elapsed_ms: 12.0,
            attempts: 2,
        };
        let s = f.to_string();
        for needle in ["task 5", "sjeng/32K2w", "worker 1", "2 attempt", "oops"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
        let j = f.to_json();
        assert_eq!(j.path("attempts").and_then(Json::as_f64), Some(2.0));
    }
}
