//! `SIPT_AUDIT=1` invariant auditor.
//!
//! When armed, every run re-checks the structural invariants the
//! scientific results rest on, at three points:
//!
//! - **ownership** ([`check_ownership`], inside
//!   `crate::runner::try_prepare_run` while the buddy allocator is still
//!   alive): every page-table mapping points at frames the allocator has
//!   actually handed out, no two mappings share a frame, and huge
//!   mappings are 512-aligned;
//! - **machine state** ([`check_l1`], after the measured interval):
//!   tag/index round-trip through the L1 geometry, and
//!   replacement-metadata sanity (every resident line sits in its home
//!   set, the MRU way is in range);
//! - **metrics conservation** ([`check_metrics`], inside the sweep-pool
//!   isolation boundary): hits + misses == accesses at every level,
//!   fast/outcome counters bounded by accesses, energies finite and
//!   non-negative.
//!
//! A violation surfaces as [`SimError::Audit`]; inside a sweep the
//! auditor panics with that diagnostic, which the panic-isolation layer
//! converts into a structured `TaskFailure` — so one corrupted run is
//! reported (and the binary exits non-zero) while the rest of the sweep
//! survives. The `SIPT_FAULT_INJECT=flip:<task>` hook exists precisely
//! to prove this path fires.

use crate::error::SimError;
use crate::metrics::RunMetrics;
use sipt_cache::{CacheGeometry, LineAddr};
use sipt_core::SiptL1;
use sipt_mem::{BuddyAllocator, PageSize, PageTable};
use std::sync::OnceLock;

/// Whether `SIPT_AUDIT=1` is armed (parsed once per process). Any value
/// other than `1`/`true` disables the auditor.
pub fn enabled() -> bool {
    static PARSED: OnceLock<bool> = OnceLock::new();
    *PARSED.get_or_init(|| matches!(std::env::var("SIPT_AUDIT").as_deref(), Ok("1") | Ok("true")))
}

/// Page-table ↔ buddy-allocator frame ownership: every mapped frame is
/// allocated, huge mappings are aligned, and no frame backs two
/// mappings.
///
/// # Errors
///
/// [`SimError::Audit`] (`frame-ownership`) on the first violation.
pub fn check_ownership(pt: &PageTable, phys: &BuddyAllocator) -> Result<(), SimError> {
    let mut owned = std::collections::HashSet::new();
    for (vpn, mapping) in pt.iter() {
        let frames = match mapping.page_size {
            PageSize::Base4K => 1u64,
            PageSize::Huge2M => {
                if !mapping.pfn.raw().is_multiple_of(512) {
                    return Err(SimError::audit(
                        "frame-ownership",
                        format!(
                            "huge mapping at vpn {:#x} starts at unaligned pfn {:#x}",
                            vpn.raw(),
                            mapping.pfn.raw()
                        ),
                    ));
                }
                512
            }
        };
        for f in mapping.pfn.raw()..mapping.pfn.raw() + frames {
            if !phys.is_allocated(sipt_mem::PhysFrameNum::new(f)) {
                return Err(SimError::audit(
                    "frame-ownership",
                    format!(
                        "vpn {:#x} maps frame {f:#x} the allocator has not handed out",
                        vpn.raw()
                    ),
                ));
            }
            if !owned.insert(f) {
                return Err(SimError::audit(
                    "frame-ownership",
                    format!("frame {f:#x} backs two mappings"),
                ));
            }
        }
    }
    Ok(())
}

/// Tag/index round-trip through a cache geometry: decomposing a line
/// address into (tag, set) and recomposing it is the identity, and the
/// set index is always in range.
///
/// # Errors
///
/// [`SimError::Audit`] (`tag-index-roundtrip`) on the first failing
/// address.
pub fn check_geometry(g: &CacheGeometry) -> Result<(), SimError> {
    // Walk a spread of line addresses: small, set-boundary-straddling,
    // and high-bit-heavy patterns.
    let probes = (0..64u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16).chain([
        0,
        1,
        g.sets() - 1,
        g.sets(),
        u64::MAX >> 10,
    ]);
    for raw in probes {
        let line = LineAddr(raw);
        let set = g.set_of(line);
        if set >= g.sets() {
            return Err(SimError::audit(
                "tag-index-roundtrip",
                format!("{g}: line {raw:#x} indexed set {set} of {}", g.sets()),
            ));
        }
        if g.line_of(g.tag_of(line), set) != line {
            return Err(SimError::audit(
                "tag-index-roundtrip",
                format!("{g}: line {raw:#x} does not survive tag/index recomposition"),
            ));
        }
    }
    Ok(())
}

/// L1 structural sanity after a run: geometry round-trip plus
/// replacement metadata — every resident line lives in its home set and
/// the MRU way (when a set is non-empty) is a valid way index.
///
/// # Errors
///
/// [`SimError::Audit`] (`tag-index-roundtrip` or `replacement-sanity`).
pub fn check_l1(l1: &SiptL1) -> Result<(), SimError> {
    let array = l1.array();
    let g = array.geometry();
    check_geometry(g)?;
    let ways = g.ways;
    for line in array.iter() {
        let home = array.home_set(line.line);
        if array.probe(home, line.line).is_none() {
            return Err(SimError::audit(
                "replacement-sanity",
                format!("resident line {:#x} is not probeable in its home set {home}", line.line.0),
            ));
        }
    }
    for set in 0..g.sets() {
        if let Some(way) = array.mru_way(set) {
            if way >= ways {
                return Err(SimError::audit(
                    "replacement-sanity",
                    format!("set {set}: MRU way {way} out of range (ways = {ways})"),
                ));
            }
        }
    }
    let capacity = (g.sets() * ways as u64) as usize;
    if array.resident_lines() > capacity {
        return Err(SimError::audit(
            "replacement-sanity",
            format!("{} resident lines exceed capacity {capacity}", array.resident_lines()),
        ));
    }
    Ok(())
}

fn conserve(level: &str, hits: u64, misses: u64, accesses: u64) -> Result<(), SimError> {
    if hits + misses != accesses {
        return Err(SimError::audit(
            "metrics-conservation",
            format!("{level}: hits {hits} + misses {misses} != accesses {accesses}"),
        ));
    }
    Ok(())
}

/// Metrics conservation for one finished run.
///
/// # Errors
///
/// [`SimError::Audit`] (`metrics-conservation`) on the first violated
/// identity.
pub fn check_metrics(m: &RunMetrics) -> Result<(), SimError> {
    conserve("L1", m.sipt.hits, m.sipt.misses, m.sipt.accesses)?;
    if let Some(l2) = &m.l2 {
        conserve("L2", l2.hits, l2.misses, l2.accesses)?;
    }
    conserve("LLC", m.llc.hits, m.llc.misses, m.llc.accesses)?;
    if m.sipt.fast_accesses > m.sipt.accesses {
        return Err(SimError::audit(
            "metrics-conservation",
            format!(
                "L1: fast accesses {} exceed demand accesses {}",
                m.sipt.fast_accesses, m.sipt.accesses
            ),
        ));
    }
    let classified = m.sipt.correct_speculation
        + m.sipt.correct_bypass
        + m.sipt.opportunity_loss
        + m.sipt.idb_hits;
    if classified > m.sipt.accesses {
        return Err(SimError::audit(
            "metrics-conservation",
            format!(
                "L1: {classified} classified speculation outcomes exceed {} accesses",
                m.sipt.accesses
            ),
        ));
    }
    for (name, v) in [
        ("l1_dynamic", m.energy.l1_dynamic),
        ("l1_static", m.energy.l1_static),
        ("l2_dynamic", m.energy.l2_dynamic),
        ("l2_static", m.energy.l2_static),
        ("llc_dynamic", m.energy.llc_dynamic),
        ("llc_static", m.energy.llc_static),
        ("predictor", m.energy.predictor),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(SimError::audit(
                "metrics-conservation",
                format!("energy.{name} = {v} is not finite and non-negative"),
            ));
        }
    }
    if !(0.0..=1.0).contains(&m.huge_fraction) {
        return Err(SimError::audit(
            "metrics-conservation",
            format!("huge_fraction {} outside [0, 1]", m.huge_fraction),
        ));
    }
    if !m.ipc().is_finite() {
        return Err(SimError::audit(
            "metrics-conservation",
            format!("non-finite IPC from {} instructions / {} cycles", m.core.instructions, {
                m.core.cycles
            }),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SystemKind;
    use crate::runner::Condition;
    use sipt_core::baseline_32k_8w_vipt;

    #[test]
    fn geometry_roundtrip_holds_for_all_paper_configs() {
        for cfg in [
            sipt_core::baseline_32k_8w_vipt(),
            sipt_core::small_16k_4w_vipt(),
            sipt_core::sipt_32k_2w(),
            sipt_core::sipt_32k_4w(),
            sipt_core::sipt_64k_4w(),
            sipt_core::sipt_128k_4w(),
        ] {
            check_geometry(&cfg.geometry).expect("round-trip must hold");
        }
    }

    #[test]
    fn clean_run_passes_every_check() {
        let m = crate::run_benchmark(
            "sjeng",
            baseline_32k_8w_vipt(),
            SystemKind::OooThreeLevel,
            &Condition::quick(),
        );
        check_metrics(&m).expect("clean metrics must conserve");
    }

    #[test]
    fn corrupted_metrics_are_caught() {
        let mut m = crate::run_benchmark(
            "sjeng",
            baseline_32k_8w_vipt(),
            SystemKind::OooThreeLevel,
            &Condition::quick(),
        );
        m.sipt.accesses ^= 1; // the flip:<task> fault, applied directly
        let err = check_metrics(&m).unwrap_err();
        assert!(matches!(err, SimError::Audit { invariant: "metrics-conservation", .. }));
        assert!(err.to_string().contains("hits"));
    }

    #[test]
    fn ownership_audit_accepts_real_workloads_and_rejects_theft() {
        use sipt_mem::{AddressSpace, PhysFrameNum, VirtPageNum};
        let spec = sipt_workloads::benchmark("sjeng").unwrap();
        let cond = Condition::quick();
        let mut phys = BuddyAllocator::with_bytes(cond.memory_bytes);
        let mut asp = AddressSpace::new(0, cond.placement);
        sipt_workloads::TraceGen::build(&spec, &mut asp, &mut phys, 1000, cond.seed).expect("fits");
        check_ownership(asp.page_table(), &phys).expect("real allocation must own its frames");

        // A mapping to a frame the allocator never handed out must be
        // caught. (Built on a standalone page table: the address-space API
        // deliberately does not expose unchecked mapping.)
        let mut pt = PageTable::new();
        let untouched = BuddyAllocator::new(16); // nothing ever allocated
        pt.map(VirtPageNum::new(0xdead0), PhysFrameNum::new(3), PageSize::Base4K)
            .expect("fresh vpn");
        let err = check_ownership(&pt, &untouched).unwrap_err();
        assert!(matches!(err, SimError::Audit { invariant: "frame-ownership", .. }));
    }

    #[test]
    fn disabled_by_default_in_tests_unless_env_set() {
        // Whatever the environment says, enabled() must be a pure function
        // of it (parsed once) — calling twice gives the same answer.
        assert_eq!(enabled(), enabled());
    }
}
