//! The typed error layer for untrusted-input paths.
//!
//! The simulator's scientific core is allowed to `panic!` on internal
//! invariant violations (those are bugs), but everything reachable from
//! *outside* input — benchmark names, workload/geometry configuration,
//! trace files, memory sizing — surfaces a [`SimError`] instead, so a bad
//! config or truncated trace produces a diagnostic and a structured
//! failure rather than a process abort.

use sipt_mem::MemError;

/// Errors on the untrusted-input paths of the simulator: configuration
/// validation, workload construction, trace parsing, memory exhaustion,
/// invariant audits, and checkpoint files.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// `name` is not a known benchmark preset.
    UnknownBenchmark {
        /// The requested benchmark name.
        name: String,
    },
    /// An L1/geometry/condition configuration failed validation.
    Config {
        /// What was wrong.
        detail: String,
    },
    /// The workload does not fit in the configured physical memory.
    WorkloadTooLarge {
        /// Workload name.
        workload: String,
        /// Underlying description (allocator error, sizes).
        detail: String,
    },
    /// A memory-model operation failed (buddy-allocator OOM, bad
    /// mapping, …).
    Mem(MemError),
    /// An `SIPT_AUDIT=1` invariant check failed.
    Audit {
        /// Which invariant was violated.
        invariant: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A trace-driven workload referenced memory its address space never
    /// mapped — an untrusted trace file replayed against the wrong
    /// benchmark's mappings, or a truncated/corrupted recording. This is
    /// a property of the *input*, so it is deterministic and must never
    /// be retried by the resilience layer.
    Trace {
        /// Workload (or trace file) name.
        workload: String,
        /// What went wrong (e.g. the faulting virtual address).
        detail: String,
    },
    /// A sweep checkpoint file could not be read, parsed, or written.
    Checkpoint {
        /// Offending file (or logical location).
        path: String,
        /// What went wrong.
        detail: String,
    },
    /// The process-isolation sweep supervisor could not be started (e.g.
    /// the current executable path is unresolvable for re-exec). The
    /// sweep engine reports this and falls back to thread isolation.
    Supervisor {
        /// What went wrong.
        detail: String,
    },
}

impl SimError {
    /// Shorthand for a configuration-validation failure.
    pub fn config(detail: impl Into<String>) -> Self {
        SimError::Config { detail: detail.into() }
    }

    /// Shorthand for an audit failure.
    pub fn audit(invariant: &'static str, detail: impl Into<String>) -> Self {
        SimError::Audit { invariant, detail: detail.into() }
    }

    /// Shorthand for a bad-trace failure.
    pub fn trace(workload: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::Trace { workload: workload.into(), detail: detail.into() }
    }

    /// Shorthand for a checkpoint failure.
    pub fn checkpoint(path: impl Into<String>, detail: impl Into<String>) -> Self {
        SimError::Checkpoint { path: path.into(), detail: detail.into() }
    }

    /// Shorthand for a sweep-supervisor failure.
    pub fn supervisor(detail: impl Into<String>) -> Self {
        SimError::Supervisor { detail: detail.into() }
    }
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::UnknownBenchmark { name } => write!(f, "unknown benchmark {name:?}"),
            SimError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            SimError::WorkloadTooLarge { workload, detail } => {
                write!(f, "{workload}: workload does not fit: {detail}")
            }
            SimError::Mem(e) => write!(f, "memory model error: {e}"),
            SimError::Audit { invariant, detail } => {
                write!(f, "audit failure [{invariant}]: {detail}")
            }
            SimError::Trace { workload, detail } => {
                write!(f, "{workload}: bad trace: {detail}")
            }
            SimError::Checkpoint { path, detail } => {
                write!(f, "checkpoint error at {path}: {detail}")
            }
            SimError::Supervisor { detail } => {
                write!(f, "sweep supervisor error: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemError> for SimError {
    fn from(e: MemError) -> Self {
        SimError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = SimError::UnknownBenchmark { name: "sjong".into() };
        assert!(e.to_string().contains("sjong"));
        assert!(SimError::config("spec bits 4 > 3").to_string().contains("spec bits"));
        let e = SimError::WorkloadTooLarge { workload: "mcf".into(), detail: "oom".into() };
        assert!(e.to_string().contains("mcf"));
        let e = SimError::audit("metrics-conservation", "hits+misses != accesses");
        assert!(e.to_string().contains("metrics-conservation"));
        let e = SimError::checkpoint("results/x.checkpoint.json", "bad line");
        assert!(e.to_string().contains("checkpoint"));
        let e = SimError::trace("replay:mcf", "page fault at VA 0xdead000");
        assert!(e.to_string().contains("bad trace"));
        assert!(e.to_string().contains("0xdead000"));
        let e = SimError::from(MemError::OutOfMemory { requested_order: 3 });
        assert!(e.to_string().contains("memory"));
        let e = SimError::supervisor("cannot resolve current executable");
        assert!(e.to_string().contains("supervisor"));
        assert!(e.to_string().contains("executable"));
    }
}
