//! One shared policy for numeric environment knobs.
//!
//! Every `SIPT_*` tuning variable used to hand-roll its own parse — some
//! warned on malformed values (`SIPT_TRACE_EVENTS`), some silently
//! ignored them (`SIPT_TASK_TIMEOUT_MS`). This module unifies them: a
//! malformed value **always** produces one human-readable warning on
//! stderr naming the variable and the rejected text, and the knob falls
//! back to its default. Unset variables are silent.
//!
//! Callers typically wrap [`parse_or_warn`] in a `OnceLock` so the parse
//! (and any warning) happens once per process; the helper itself is
//! stateless and warns on every call, which is what the warning-emission
//! test exercises.

/// Parse `name` from the environment as a `u64`.
///
/// Returns `None` when unset or set to an empty string (both mean "use
/// the default", silently); warns on stderr and returns `None` when set
/// but malformed (non-integer, negative, overflow). Surrounding
/// whitespace is tolerated.
pub fn parse_or_warn(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    if raw.trim().is_empty() {
        return None;
    }
    parse_value(name, &raw)
}

/// The pure parsing/warning core of [`parse_or_warn`], separated so the
/// warning path is unit-testable without mutating the process
/// environment.
pub fn parse_value(name: &str, raw: &str) -> Option<u64> {
    match raw.trim().parse::<u64>() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: malformed {name}={raw:?} (not an unsigned integer); ignoring");
            None
        }
    }
}

/// [`parse_or_warn`] with a default for unset/malformed values.
pub fn parse_or_warn_default(name: &str, default: u64) -> u64 {
    parse_or_warn(name).unwrap_or(default)
}

/// Parse `name` from the environment as one of a closed set of choices
/// (trimmed, exact match). Unset/empty means "use the default" (silently,
/// `None`); any other value warns on stderr naming the accepted choices
/// and returns `None`.
pub fn choice_or_warn(name: &str, choices: &[&str]) -> Option<String> {
    let raw = std::env::var(name).ok()?;
    choice_value(name, &raw, choices)
}

/// The pure parsing/warning core of [`choice_or_warn`], separated so the
/// warning path is unit-testable without mutating the process
/// environment.
pub fn choice_value(name: &str, raw: &str, choices: &[&str]) -> Option<String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    if choices.contains(&trimmed) {
        return Some(trimmed.to_owned());
    }
    eprintln!("warning: malformed {name}={raw:?} (expected one of {choices:?}); ignoring");
    None
}

/// Whether a boolean-ish `SIPT_*` switch is set: any non-empty value
/// other than `0` counts as on (matching `SIPT_JSON` semantics).
/// Surrounding whitespace is tolerated, like [`parse_or_warn`], so
/// `SIPT_TRACE_SPANS=" 0"` stays off.
pub fn switch_enabled(name: &str) -> bool {
    matches!(std::env::var(name), Ok(v) if switch_value(&v))
}

/// The pure comparison core of [`switch_enabled`], separated so the
/// whitespace handling is unit-testable without mutating the process
/// environment.
pub fn switch_value(raw: &str) -> bool {
    let trimmed = raw.trim();
    !trimmed.is_empty() && trimmed != "0"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_padded_integers() {
        assert_eq!(parse_value("SIPT_X", "42"), Some(42));
        assert_eq!(parse_value("SIPT_X", " 7 "), Some(7));
        assert_eq!(parse_value("SIPT_X", "0"), Some(0));
    }

    #[test]
    fn switch_tolerates_whitespace_like_parse_or_warn() {
        assert!(switch_value("1"));
        assert!(switch_value(" 1 "));
        assert!(switch_value("yes"));
        assert!(!switch_value("0"));
        assert!(!switch_value(" 0"), "padded zero must stay off");
        assert!(!switch_value("0 "), "padded zero must stay off");
        assert!(!switch_value(""));
        assert!(!switch_value("   "), "whitespace-only means unset");
    }

    #[test]
    fn choice_accepts_known_values_only() {
        let choices = &["thread", "process"];
        assert_eq!(choice_value("SIPT_ISOLATION", "process", choices), Some("process".into()));
        assert_eq!(choice_value("SIPT_ISOLATION", " thread ", choices), Some("thread".into()));
        assert_eq!(choice_value("SIPT_ISOLATION", "fork", choices), None);
        assert_eq!(choice_value("SIPT_ISOLATION", "", choices), None);
        assert_eq!(choice_value("SIPT_ISOLATION", "  ", choices), None);
    }

    #[test]
    fn rejects_malformed_values() {
        assert_eq!(parse_value("SIPT_X", "four"), None);
        assert_eq!(parse_value("SIPT_X", "-3"), None);
        assert_eq!(parse_value("SIPT_X", "1.5"), None);
        assert_eq!(parse_value("SIPT_X", ""), None);
        assert_eq!(parse_value("SIPT_X", "99999999999999999999999"), None);
    }
}
