//! Single-core experiment runner: allocate a workload through the OS
//! model, warm the machine, then measure.
//!
//! Untrusted inputs — benchmark names, L1/condition configuration, and
//! workload sizing against physical memory — flow through the `try_*`
//! entry points, which surface a typed [`SimError`] instead of panicking.
//! The panicking front-ends remain for trusted callers (the figure
//! drivers, whose inputs are compiled-in paper constants).
//!
//! A run is location-transparent: the same entry points execute on the
//! in-process sweep pool (thread isolation) and inside `--worker-shard`
//! re-executions under the process-isolation supervisor
//! ([`crate::supervisor`]). Every simulated bit derives from the run's
//! own seeded RNG and configuration, never from process identity, which
//! is what makes sharded results byte-identical to in-process ones.

use crate::error::SimError;
use crate::machine::{Machine, SystemKind};
use crate::metrics::{PhaseProfile, RunMetrics};
use sipt_core::L1Config;
use sipt_cpu::{simulate_inorder, simulate_ooo, CoreResult, InOrderConfig, OooConfig};
use sipt_mem::{fragment_memory, AddressSpace, BuddyAllocator, PlacementPolicy, TranslationCache};
use sipt_rng::{SeedableRng, StdRng};
use sipt_telemetry::Span;
use sipt_workloads::{benchmark, TraceGen, WorkloadSpec};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Event-trace capacity requested via the `SIPT_TRACE_EVENTS` environment
/// variable (0 / unset → no event retention; metrics are always recorded
/// when telemetry is attached).
///
/// Parsed exactly once per process: a malformed value warns on stderr
/// (instead of being silently treated as 0) and every subsequent run —
/// including every [`crate::sweep::Sweep`] worker — sees the same
/// capacity.
pub(crate) fn trace_capacity() -> usize {
    static PARSED: OnceLock<usize> = OnceLock::new();
    *PARSED.get_or_init(|| {
        crate::env::parse_or_warn("SIPT_TRACE_EVENTS").unwrap_or(0).min(usize::MAX as u64) as usize
    })
}

/// Operating conditions of a run: memory state, placement policy, and
/// simulation length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Condition {
    /// Page-placement policy (the §VII.B sensitivity axis).
    pub placement: PlacementPolicy,
    /// Whether physical memory is pre-fragmented to `Fu(9) > 0.95`.
    pub fragmented: bool,
    /// Simulated physical memory size in bytes.
    pub memory_bytes: u64,
    /// Measured instructions.
    pub instructions: u64,
    /// Warmup instructions (caches/TLB/predictors train; stats then
    /// reset — the paper does not warm the predictor, but does fast-forward
    /// to a SimPoint, which warmup approximates).
    pub warmup: u64,
    /// RNG seed for workload generation and fragmentation.
    pub seed: u64,
}

impl Default for Condition {
    fn default() -> Self {
        Self {
            placement: PlacementPolicy::LinuxDefault,
            fragmented: false,
            memory_bytes: 1 << 30,
            instructions: 200_000,
            warmup: 50_000,
            seed: 42,
        }
    }
}

impl Condition {
    /// A quick-run condition for tests and smoke benches.
    pub fn quick() -> Self {
        Self { instructions: 30_000, warmup: 8_000, ..Self::default() }
    }

    /// Validate this condition as untrusted input.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] when the simulation window is empty or the
    /// physical memory is smaller than one page.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.instructions == 0 {
            return Err(SimError::config("measured instructions must be >= 1"));
        }
        if self.memory_bytes < 4096 {
            return Err(SimError::config(format!(
                "physical memory of {} bytes is smaller than one 4 KiB page",
                self.memory_bytes
            )));
        }
        Ok(())
    }

    /// The paper's four §VII.B sensitivity conditions, in figure order:
    /// normal, fragmented, THP off, and no >4 KiB contiguity.
    pub fn sensitivity_sweep() -> Vec<(&'static str, Condition)> {
        let normal = Condition::default();
        vec![
            ("Normal", normal),
            ("Fragmented", Condition { fragmented: true, memory_bytes: 2 << 30, ..normal }),
            ("THP-off", Condition { placement: PlacementPolicy::ThpOff, ..normal }),
            ("Par-bound", Condition { placement: PlacementPolicy::Scattered, ..normal }),
        ]
    }
}

/// Run one benchmark on one L1 configuration and system.
///
/// # Panics
///
/// Panics if `name` is not a known benchmark preset or the workload does
/// not fit in the configured memory.
pub fn run_benchmark(name: &str, l1: L1Config, system: SystemKind, cond: &Condition) -> RunMetrics {
    try_run_benchmark(name, l1, system, cond).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_benchmark`] for untrusted inputs: unknown benchmark names,
/// invalid L1/condition configurations, and workloads that do not fit in
/// the configured memory surface as a typed [`SimError`] instead of a
/// panic.
///
/// # Errors
///
/// [`SimError::UnknownBenchmark`], [`SimError::Config`],
/// [`SimError::WorkloadTooLarge`], or [`SimError::Audit`] (with
/// `SIPT_AUDIT=1`).
pub fn try_run_benchmark(
    name: &str,
    l1: L1Config,
    system: SystemKind,
    cond: &Condition,
) -> Result<RunMetrics, SimError> {
    let spec =
        benchmark(name).ok_or_else(|| SimError::UnknownBenchmark { name: name.to_owned() })?;
    try_run_spec(&spec, l1, system, cond)
}

/// [`run_spec`] with typed errors: validates the L1 configuration and the
/// condition, then prepares and runs the workload.
///
/// # Errors
///
/// [`SimError::Config`], [`SimError::WorkloadTooLarge`], or
/// [`SimError::Audit`] (with `SIPT_AUDIT=1`).
pub fn try_run_spec(
    spec: &WorkloadSpec,
    l1: L1Config,
    system: SystemKind,
    cond: &Condition,
) -> Result<RunMetrics, SimError> {
    l1.try_validate().map_err(SimError::config)?;
    cond.validate()?;
    try_run_spec_with_trace_capacity(spec, l1, system, cond, trace_capacity())
}

/// The allocate/fragment/trace-build preamble shared by [`run_spec`] and
/// [`speculation_profile`]: one buddy allocator, the `cond.seed ^ 0xF7A6`
/// fragmentation RNG, and a trace covering `warmup + instructions`
/// instructions — so a profile explains exactly the access window the
/// timed runs measure. Callers normally reach this through
/// [`crate::prep_cache::get_or_prepare`], which materializes the trace
/// and shares the result across every run of the same `(spec, cond)`.
pub(crate) struct PreparedRun {
    /// The workload's address space (owns the page table).
    pub asp: AddressSpace,
    /// The workload trace, `warmup + instructions` long.
    pub trace: TraceGen,
}

/// [`PreparedRun`] construction with typed errors: workload sizing against physical
/// memory is untrusted input (huge-page mixes under fragmentation can
/// exhaust a small memory), so exhaustion surfaces as
/// [`SimError::WorkloadTooLarge`] rather than a process abort. With
/// `SIPT_AUDIT=1`, the page-table↔allocator ownership audit runs here,
/// while the allocator is still alive.
///
/// # Errors
///
/// [`SimError::WorkloadTooLarge`] when allocation fails, or
/// [`SimError::Audit`] on an ownership violation.
pub(crate) fn try_prepare_run(
    spec: &WorkloadSpec,
    cond: &Condition,
) -> Result<PreparedRun, SimError> {
    let mut phys = BuddyAllocator::with_bytes(cond.memory_bytes);
    let mut rng = StdRng::seed_from_u64(cond.seed ^ 0xF7A6);
    let _hold = match cond.fragmented {
        true => Some(fragment_memory(&mut phys, 0.5, &mut rng).map_err(|e| {
            SimError::WorkloadTooLarge {
                workload: spec.name.to_owned(),
                detail: format!("fragmentation preamble failed: {e}"),
            }
        })?),
        false => None,
    };
    let mut asp = AddressSpace::new(0, cond.placement);
    let trace =
        TraceGen::build(spec, &mut asp, &mut phys, cond.warmup + cond.instructions, cond.seed)
            .map_err(|e| SimError::WorkloadTooLarge {
                workload: spec.name.to_owned(),
                detail: e.to_string(),
            })?;
    if crate::audit::enabled() {
        crate::audit::check_ownership(asp.page_table(), &phys)?;
    }
    Ok(PreparedRun { asp, trace })
}

/// Run a workload spec on one L1 configuration and system.
pub fn run_spec(
    spec: &WorkloadSpec,
    l1: L1Config,
    system: SystemKind,
    cond: &Condition,
) -> RunMetrics {
    run_spec_with_trace_capacity(spec, l1, system, cond, trace_capacity())
}

/// [`run_spec`] with an explicit event-trace capacity — the entry point
/// [`crate::sweep::Sweep`] uses so the capacity is resolved once per sweep
/// rather than per worker.
pub(crate) fn run_spec_with_trace_capacity(
    spec: &WorkloadSpec,
    l1: L1Config,
    system: SystemKind,
    cond: &Condition,
    trace_events: usize,
) -> RunMetrics {
    try_run_spec_with_trace_capacity(spec, l1, system, cond, trace_events)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The fallible core of every single-run entry point.
///
/// Preparation goes through [`crate::prep_cache::get_or_prepare`]: with
/// the cache enabled (the default), N configurations sweeping the same
/// `(spec, cond)` share one preparation; disabled, each run prepares
/// fresh. Either way the run replays a
/// [`sipt_workloads::MaterializedTrace`] cursor, so the simulated stream
/// — and therefore every scientific result — is bit-identical.
pub(crate) fn try_run_spec_with_trace_capacity(
    spec: &WorkloadSpec,
    l1: L1Config,
    system: SystemKind,
    cond: &Condition,
    trace_events: usize,
) -> Result<RunMetrics, SimError> {
    try_run_prepared(spec, l1, system, cond, trace_events, ReplayKernel::Block)
}

/// Which replay loop executes the warmup/measure phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplayKernel {
    /// The block-replay kernel ([`crate::block`]) — the production path.
    Block,
    /// The original per-access loop over [`sipt_cpu::Inst`] values —
    /// kept as the independent reference the differential tests compare
    /// the block kernel against.
    PerAccess,
}

/// [`try_run_spec`] forced onto the per-access reference loop. Same
/// inputs, same validation, bit-identical outputs — exists so tests can
/// diff the block kernel against an implementation that shares none of
/// its batching, coalescing, or monomorphization machinery.
///
/// # Errors
///
/// As [`try_run_spec`], plus [`SimError::Trace`] when the workload's
/// stream references unmapped memory.
pub fn run_spec_per_access(
    spec: &WorkloadSpec,
    l1: L1Config,
    system: SystemKind,
    cond: &Condition,
) -> Result<RunMetrics, SimError> {
    l1.try_validate().map_err(SimError::config)?;
    cond.validate()?;
    try_run_prepared(spec, l1, system, cond, trace_capacity(), ReplayKernel::PerAccess)
}

fn try_run_prepared(
    spec: &WorkloadSpec,
    l1: L1Config,
    system: SystemKind,
    cond: &Condition,
    trace_events: usize,
    kernel: ReplayKernel,
) -> Result<RunMetrics, SimError> {
    let t0 = Instant::now();
    let (prepared, mut machine) = {
        let _phase = Span::enter(format!("allocate {}", spec.name), "run.phase");
        let prepared = crate::prep_cache::get_or_prepare(spec, cond)?;
        let mut machine = Machine::new_shared(Arc::clone(&prepared.asp), l1, system);
        machine
            .l1_mut()
            .attach_telemetry_sampled(trace_events, crate::observability::flight_sample_every());
        (prepared, machine)
    };
    let allocated = Instant::now();

    // One replay phase: `limit` instructions through the selected kernel.
    // The per-access loop keeps the timing model alive across an unmapped
    // VA (the machine latches the fault), so it is checked after the run;
    // the block kernel surfaces the fault directly.
    let run_phase = |machine: &mut Machine,
                     cursor: &mut sipt_workloads::TraceCursor<'_>,
                     limit: usize|
     -> Result<sipt_cpu::CoreResult, SimError> {
        match kernel {
            ReplayKernel::Block => crate::block::replay(system, machine, cursor, limit, spec.name),
            ReplayKernel::PerAccess => {
                let core = run_core(system, (&mut *cursor).take(limit), machine);
                match machine.take_fault() {
                    None => Ok(core),
                    Some(fault) => Err(SimError::trace(spec.name, fault.to_string())),
                }
            }
        }
    };

    let mut cursor = prepared.trace.cursor();
    {
        let _phase = Span::enter(format!("warmup {}", spec.name), "run.phase");
        run_phase(&mut machine, &mut cursor, cond.warmup as usize)?;
        machine.reset_stats();
    }
    let warmed = Instant::now();
    let core = {
        let _phase = Span::enter(format!("measure {}", spec.name), "run.phase");
        run_phase(&mut machine, &mut cursor, usize::MAX)?
    };
    let measured = Instant::now();

    let measure_secs = measured.duration_since(warmed).as_secs_f64();
    crate::metrics::record_simulation(core.instructions, measure_secs);
    let phases = PhaseProfile {
        allocate_ms: allocated.duration_since(t0).as_secs_f64() * 1e3,
        warmup_ms: warmed.duration_since(allocated).as_secs_f64() * 1e3,
        measure_ms: measure_secs * 1e3,
        simulated_mips: if measure_secs > 0.0 {
            core.instructions as f64 / (measure_secs * 1e6)
        } else {
            0.0
        },
        worker: 0,
    };
    if crate::audit::enabled() {
        crate::audit::check_l1(machine.l1())?;
    }
    let mut metrics = collect(spec.name, core, &machine);
    metrics.phases = phases;
    Ok(metrics)
}

/// Execute a trace on the system's core model.
pub(crate) fn run_core<I>(system: SystemKind, trace: I, machine: &mut Machine) -> CoreResult
where
    I: IntoIterator<Item = sipt_cpu::Inst>,
{
    match system {
        SystemKind::OooThreeLevel => simulate_ooo(OooConfig::default(), trace, machine),
        SystemKind::InOrderTwoLevel => simulate_inorder(InOrderConfig::default(), trace, machine),
    }
}

/// Assemble metrics from a finished machine. The wall-clock `phases`
/// profile is left default; `run_spec` fills it in (multicore runs keep
/// the default).
pub(crate) fn collect(name: &str, core: CoreResult, machine: &Machine) -> RunMetrics {
    let energy = sipt_energy::account(&machine.energy_params(), &machine.activity(core.cycles));
    if crate::observability::flight_armed() {
        if let Some(t) = machine.l1().telemetry() {
            crate::observability::record_flight(name, t.flight_json());
        }
    }
    RunMetrics {
        name: name.to_owned(),
        core,
        sipt: machine.l1().stats(),
        way_pred: machine.l1().way_pred_stats(),
        tlb: machine.tlb().stats(),
        l2: machine.lower().l2_stats(),
        llc: machine.lower().llc_stats(),
        dram: machine.lower().backend().stats(),
        energy,
        huge_fraction: machine.address_space().huge_page_fraction(),
        phases: PhaseProfile::default(),
        l1_metrics: machine.l1().telemetry().map(|t| t.metrics().snapshot()),
    }
}

/// Translation-level speculation profile of a workload — the data behind
/// Fig 5, computed without any cache model: for each memory access, do the
/// `n` index bits above the page offset survive translation, and is the
/// access backed by a huge page (which guarantees 9 bits)?
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpeculationProfile {
    /// Fraction of accesses whose low `i+1` index bits are unchanged
    /// (indices 0..3 → 1..=3 bits, the paper's "1-bit/2-bit/3-bit" bars).
    pub unchanged: [f64; 3],
    /// Fraction of accesses to huge-page-backed memory (the paper's
    /// "Hugepage (9-bit)" component — 21 offset bits are guaranteed).
    pub hugepage: f64,
    /// Memory accesses profiled.
    pub accesses: u64,
}

/// Profile a benchmark's index-bit stability under the given condition.
///
/// Uses the same preparation as [`run_spec`] — identical allocator state,
/// fragmentation RNG, and trace length — *via the same prep cache*, so
/// when fig05 profiles a benchmark the timed runs already prepared (or
/// vice versa), the workload is prepared exactly once. Profiles only the
/// *measured* window (the trace after `cond.warmup` instructions), so
/// Fig 5 explains exactly the accesses the timed runs measure rather
/// than a shorter, warmup-shifted window. Translations go through a
/// [`TranslationCache`], not a per-access page-table hash probe.
pub fn speculation_profile(name: &str, cond: &Condition) -> SpeculationProfile {
    let spec = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let prepared = crate::prep_cache::get_or_prepare(&spec, cond).unwrap_or_else(|e| panic!("{e}"));
    let page_table = prepared.asp.page_table();
    let mut xlat = TranslationCache::new();
    let mut counts = [0u64; 3];
    let mut huge = 0u64;
    let mut total = 0u64;
    for inst in prepared.trace.cursor().skip(cond.warmup as usize) {
        let Some(mem) = inst.mem else { continue };
        let t = xlat.translate(page_table, mem.va).expect("mapped");
        total += 1;
        for (i, c) in counts.iter_mut().enumerate() {
            if t.index_bits_unchanged(mem.va, i as u32 + 1) {
                *c += 1;
            }
        }
        if t.page_size == sipt_mem::PageSize::Huge2M {
            huge += 1;
        }
    }
    let frac = |c: u64| if total == 0 { 0.0 } else { c as f64 / total as f64 };
    SpeculationProfile {
        unchanged: [frac(counts[0]), frac(counts[1]), frac(counts[2])],
        hugepage: frac(huge),
        accesses: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w, L1Policy};

    #[test]
    fn baseline_run_produces_sane_metrics() {
        let m = run_benchmark(
            "sjeng",
            baseline_32k_8w_vipt(),
            SystemKind::OooThreeLevel,
            &Condition::quick(),
        );
        assert_eq!(m.core.instructions, 30_000);
        assert!(m.ipc() > 0.2 && m.ipc() < 6.0, "ipc = {}", m.ipc());
        assert!(m.sipt.hit_rate() > 0.5, "L1 hit rate = {}", m.sipt.hit_rate());
        assert!(m.energy.total() > 0.0);
        assert!(m.tlb.total() > 0);
    }

    #[test]
    fn sipt_beats_baseline_on_friendly_workload() {
        let cond = Condition::quick();
        let base = run_benchmark("hmmer", baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
        let sipt = run_benchmark("hmmer", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        assert!(
            sipt.ipc_vs(&base) > 1.0,
            "2-cycle SIPT should beat 4-cycle baseline: {}",
            sipt.ipc_vs(&base)
        );
        assert!(sipt.energy_vs(&base) < 1.0, "energy = {}", sipt.energy_vs(&base));
        assert!(sipt.sipt.fast_fraction() > 0.9, "fast = {}", sipt.sipt.fast_fraction());
    }

    #[test]
    fn naive_sipt_struggles_on_hostile_workload() {
        let cond = Condition::quick();
        let naive = run_benchmark(
            "calculix",
            sipt_32k_2w().with_policy(L1Policy::SiptNaive),
            SystemKind::OooThreeLevel,
            &cond,
        );
        let combined = run_benchmark("calculix", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        assert!(
            naive.sipt.fast_fraction() < 0.6,
            "calculix must defeat naive speculation: {}",
            naive.sipt.fast_fraction()
        );
        assert!(
            combined.sipt.fast_fraction() > naive.sipt.fast_fraction() + 0.2,
            "IDB must rescue calculix: naive {} vs combined {}",
            naive.sipt.fast_fraction(),
            combined.sipt.fast_fraction()
        );
    }

    #[test]
    fn speculation_profile_matches_fig5_shape() {
        let cond = Condition::quick();
        // Streaming burst allocator → huge pages → all bits unchanged.
        let lib = speculation_profile("libquantum", &cond);
        assert!(lib.hugepage > 0.95, "libquantum hugepage = {}", lib.hugepage);
        assert!(lib.unchanged[2] > 0.95);
        // Fine-grained allocator → majority of accesses change bits.
        let cal = speculation_profile("calculix", &cond);
        assert!(cal.unchanged[0] < 0.6, "calculix 1-bit unchanged = {}", cal.unchanged[0]);
        // Monotonic: more bits can only be harder.
        for p in [lib, cal] {
            assert!(p.unchanged[0] >= p.unchanged[1]);
            assert!(p.unchanged[1] >= p.unchanged[2]);
            assert!(p.accesses > 1000);
        }
    }

    #[test]
    fn fragmentation_degrades_speculation() {
        let normal = Condition::quick();
        let fragged = Condition { fragmented: true, memory_bytes: 2 << 30, ..normal };
        let a = speculation_profile("bwaves", &normal);
        let b = speculation_profile("bwaves", &fragged);
        assert!(b.hugepage < 0.05, "no huge pages under Fu(9)>0.95 fragmentation: {}", b.hugepage);
        assert!(b.unchanged[1] < a.unchanged[1]);
    }

    #[test]
    fn in_order_system_runs() {
        let m = run_benchmark(
            "hmmer",
            sipt_core::sipt_64k_4w(),
            SystemKind::InOrderTwoLevel,
            &Condition::quick(),
        );
        assert!(m.l2.is_none());
        assert!(m.ipc() > 0.1 && m.ipc() <= 2.0);
    }

    #[test]
    fn sensitivity_sweep_has_four_conditions() {
        let sweep = Condition::sensitivity_sweep();
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep[0].0, "Normal");
        assert!(sweep[1].1.fragmented);
        assert_eq!(sweep[2].1.placement, PlacementPolicy::ThpOff);
        assert_eq!(sweep[3].1.placement, PlacementPolicy::Scattered);
    }
}
