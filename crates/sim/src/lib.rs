#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-sim — system assembly and experiment drivers
//!
//! Puts the SIPT reproduction together: a [`Machine`] (OS memory model +
//! TLB + SIPT L1 + L2/LLC + DRAM) that plugs under the `sipt-cpu` timing
//! models, single-core and quad-core [`runner`]s, and one driver per paper
//! figure in [`experiments`].
//!
//! ```no_run
//! use sipt_sim::{run_benchmark, Condition, SystemKind};
//! use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};
//!
//! let cond = Condition::quick();
//! let base = run_benchmark("mcf", baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
//! let sipt = run_benchmark("mcf", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
//! println!("mcf speedup: {:.3}", sipt.ipc_vs(&base));
//! ```

pub mod audit;
pub mod block;
pub mod checkpoint;
pub mod env;
pub mod error;
pub mod experiments;
pub mod machine;
pub mod metrics;
pub mod multicore;
pub mod observability;
pub mod prep_cache;
pub mod resilience;
pub mod runner;
pub mod supervisor;
pub mod sweep;
pub mod wire;

pub use block::{
    predictor_stage_enabled, replay_batch, replay_trace, set_predictor_stage, set_replay_batch,
    set_tlb_batch, tlb_batch_enabled, DEFAULT_REPLAY_BATCH,
};
pub use error::SimError;
pub use machine::{Machine, SystemKind};
pub use metrics::{
    arithmetic_mean, harmonic_mean, record_simulation, simulation_totals, try_harmonic_mean,
    NonPositiveValue, PhaseProfile, RunMetrics,
};
pub use multicore::{run_mix, MixMetrics};
pub use prep_cache::{PrepCacheStats, PreparedMix, PreparedMixCore, PreparedWorkload};
pub use resilience::{TaskFailure, WatchdogFlag};
pub use runner::{
    run_benchmark, run_spec, run_spec_per_access, speculation_profile, try_run_benchmark,
    Condition, SpeculationProfile,
};
pub use supervisor::{install_drain_handlers, set_isolation, supervisor_json, Isolation};
pub use sweep::{
    effective_jobs, run_parallel, run_parallel_default, run_parallel_isolated, set_jobs,
    ParallelismProfile, PoolTask, RunRequest, Sweep, SweepResult,
};
