//! Sweep checkpoint/resume: bit-exact persistence of completed run
//! metrics.
//!
//! Long figure sweeps are the unit of work that must survive
//! interruption (ROADMAP: "serve millions of runs"). As each pool task
//! finishes, its [`RunMetrics`] are appended — under a file lock, one
//! JSONL line per task — to `results/<name>.checkpoint.json`. A restart
//! with `--resume` loads that file and [`crate::sweep::Sweep`] skips
//! every request whose *fingerprint* (an FNV-1a hash of the full request
//! Debug form) has a stored result, restoring the metrics **bit-exactly**:
//! every `f64` is persisted as its IEEE-754 bit pattern, so a resumed
//! report's scientific payload is byte-identical to an uninterrupted
//! run's.
//!
//! Matching is content-addressed (by fingerprint, not by position):
//! each run is a pure function of its request, so any stored result for
//! an identical request is valid regardless of sweep ordering. Entries
//! whose fingerprint no longer matches (changed config, different scale)
//! are simply ignored. A truncated final line — the typical artifact of
//! killing a process mid-write — is skipped with a warning, never an
//! abort.
//!
//! The codec is a versioned, length-prefixed little-endian byte stream,
//! hex-encoded into the JSON line. It is deliberately hand-rolled: the
//! repo's JSON layer keeps numbers as `f64`, which cannot round-trip
//! 64-bit counters or NaN-free bit patterns exactly.

use crate::error::SimError;
use crate::metrics::{PhaseProfile, RunMetrics};
use sipt_cache::{LevelStats, WayPredStats};
use sipt_core::SiptStats;
use sipt_cpu::CoreResult;
use sipt_dram::DramStats;
use sipt_energy::EnergyBreakdown;
use sipt_telemetry::hist::{Log2Histogram, BUCKETS};
use sipt_telemetry::MetricsSnapshot;
use sipt_tlb::TlbStats;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Codec version byte. Bump on any layout change; entries with another
/// version are ignored (treated as cache misses), never misparsed.
const CODEC_VERSION: u8 = 1;

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash — the checkpoint's content fingerprint. Stable
/// across runs and platforms (no randomized state, unlike
/// `DefaultHasher`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Human-readable checkpoint key for sweep `seq`, task `index`. Purely
/// diagnostic — restore matches on fingerprints, so resumed processes
/// that execute sweeps in a different order still hit.
pub fn task_key(sweep_seq: usize, index: usize) -> String {
    format!("s{sweep_seq}.t{index}")
}

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Self { buf: Vec::with_capacity(512) }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Some(out)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Option<String> {
        let len = self.u64()?;
        // Plausibility bound: no string in a metrics record approaches
        // a megabyte; a corrupt length must not trigger a huge take.
        if len > 1 << 20 {
            return None;
        }
        String::from_utf8(self.take(len as usize)?.to_vec()).ok()
    }
    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn enc_opt<T>(e: &mut Enc, v: &Option<T>, f: impl FnOnce(&mut Enc, &T)) {
    match v {
        None => e.u8(0),
        Some(v) => {
            e.u8(1);
            f(e, v);
        }
    }
}

fn dec_opt<T>(d: &mut Dec<'_>, f: impl FnOnce(&mut Dec<'_>) -> Option<T>) -> Option<Option<T>> {
    match d.u8()? {
        0 => Some(None),
        1 => Some(Some(f(d)?)),
        _ => None,
    }
}

fn enc_hist(e: &mut Enc, h: &Log2Histogram) {
    let (buckets, count, sum, min, max) = h.raw_parts();
    for &b in buckets.iter() {
        e.u64(b);
    }
    e.u64(count);
    e.u128(sum);
    e.u64(min);
    e.u64(max);
}

fn dec_hist(d: &mut Dec<'_>) -> Option<Log2Histogram> {
    let mut buckets = [0u64; BUCKETS];
    for b in buckets.iter_mut() {
        *b = d.u64()?;
    }
    let count = d.u64()?;
    let sum = d.u128()?;
    let min = d.u64()?;
    let max = d.u64()?;
    Some(Log2Histogram::from_raw_parts(buckets, count, sum, min, max))
}

fn enc_snapshot(e: &mut Enc, s: &MetricsSnapshot) {
    e.u64(s.counters.len() as u64);
    for (k, &v) in &s.counters {
        e.str(k);
        e.u64(v);
    }
    e.u64(s.gauges.len() as u64);
    for (k, &v) in &s.gauges {
        e.str(k);
        e.f64(v);
    }
    e.u64(s.histograms.len() as u64);
    for (k, h) in &s.histograms {
        e.str(k);
        enc_hist(e, h);
    }
}

fn dec_snapshot(d: &mut Dec<'_>) -> Option<MetricsSnapshot> {
    let mut s = MetricsSnapshot::default();
    for _ in 0..d.u64()?.min(1 << 20) {
        let k = d.str()?;
        s.counters.insert(k, d.u64()?);
    }
    for _ in 0..d.u64()?.min(1 << 20) {
        let k = d.str()?;
        s.gauges.insert(k, d.f64()?);
    }
    for _ in 0..d.u64()?.min(1 << 20) {
        let k = d.str()?;
        s.histograms.insert(k, dec_hist(d)?);
    }
    Some(s)
}

fn enc_level(e: &mut Enc, s: &LevelStats) {
    for v in [s.accesses, s.hits, s.misses, s.fills, s.writebacks] {
        e.u64(v);
    }
}

fn dec_level(d: &mut Dec<'_>) -> Option<LevelStats> {
    Some(LevelStats {
        accesses: d.u64()?,
        hits: d.u64()?,
        misses: d.u64()?,
        fills: d.u64()?,
        writebacks: d.u64()?,
    })
}

/// Encode a [`RunMetrics`] into the checkpoint byte stream.
pub fn encode_metrics(m: &RunMetrics) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(CODEC_VERSION);
    e.str(&m.name);
    for v in [m.core.instructions, m.core.cycles, m.core.mem_ops] {
        e.u64(v);
    }
    for v in [
        m.sipt.accesses,
        m.sipt.hits,
        m.sipt.misses,
        m.sipt.array_reads,
        m.sipt.extra_accesses,
        m.sipt.fast_accesses,
        m.sipt.correct_speculation,
        m.sipt.correct_bypass,
        m.sipt.opportunity_loss,
        m.sipt.idb_hits,
        m.sipt.writebacks,
    ] {
        e.u64(v);
    }
    enc_opt(&mut e, &m.way_pred, |e, w| {
        for v in [w.correct, w.wrong, w.misses] {
            e.u64(v);
        }
    });
    for v in [m.tlb.l1_hits, m.tlb.l2_hits, m.tlb.walks, m.tlb.faults] {
        e.u64(v);
    }
    enc_opt(&mut e, &m.l2, enc_level);
    enc_level(&mut e, &m.llc);
    for v in [
        m.dram.reads,
        m.dram.writes,
        m.dram.row_hits,
        m.dram.row_closed,
        m.dram.row_conflicts,
        m.dram.queue_cycles,
    ] {
        e.u64(v);
    }
    for v in [
        m.energy.l1_dynamic,
        m.energy.l1_static,
        m.energy.l2_dynamic,
        m.energy.l2_static,
        m.energy.llc_dynamic,
        m.energy.llc_static,
        m.energy.predictor,
    ] {
        e.f64(v);
    }
    e.f64(m.huge_fraction);
    for v in
        [m.phases.allocate_ms, m.phases.warmup_ms, m.phases.measure_ms, m.phases.simulated_mips]
    {
        e.f64(v);
    }
    e.u64(m.phases.worker as u64);
    enc_opt(&mut e, &m.l1_metrics, enc_snapshot);
    e.buf
}

/// Decode a checkpoint byte stream back into a [`RunMetrics`]. `None`
/// on any truncation, version mismatch, or trailing garbage — the entry
/// is then treated as absent.
pub fn decode_metrics(bytes: &[u8]) -> Option<RunMetrics> {
    let mut d = Dec::new(bytes);
    if d.u8()? != CODEC_VERSION {
        return None;
    }
    let name = d.str()?;
    let core = CoreResult { instructions: d.u64()?, cycles: d.u64()?, mem_ops: d.u64()? };
    let sipt = SiptStats {
        accesses: d.u64()?,
        hits: d.u64()?,
        misses: d.u64()?,
        array_reads: d.u64()?,
        extra_accesses: d.u64()?,
        fast_accesses: d.u64()?,
        correct_speculation: d.u64()?,
        correct_bypass: d.u64()?,
        opportunity_loss: d.u64()?,
        idb_hits: d.u64()?,
        writebacks: d.u64()?,
    };
    let way_pred = dec_opt(&mut d, |d| {
        Some(WayPredStats { correct: d.u64()?, wrong: d.u64()?, misses: d.u64()? })
    })?;
    let tlb = TlbStats { l1_hits: d.u64()?, l2_hits: d.u64()?, walks: d.u64()?, faults: d.u64()? };
    let l2 = dec_opt(&mut d, dec_level)?;
    let llc = dec_level(&mut d)?;
    let dram = DramStats {
        reads: d.u64()?,
        writes: d.u64()?,
        row_hits: d.u64()?,
        row_closed: d.u64()?,
        row_conflicts: d.u64()?,
        queue_cycles: d.u64()?,
    };
    let energy = EnergyBreakdown {
        l1_dynamic: d.f64()?,
        l1_static: d.f64()?,
        l2_dynamic: d.f64()?,
        l2_static: d.f64()?,
        llc_dynamic: d.f64()?,
        llc_static: d.f64()?,
        predictor: d.f64()?,
    };
    let huge_fraction = d.f64()?;
    let phases = PhaseProfile {
        allocate_ms: d.f64()?,
        warmup_ms: d.f64()?,
        measure_ms: d.f64()?,
        simulated_mips: d.f64()?,
        worker: d.u64()? as usize,
    };
    let l1_metrics = dec_opt(&mut d, dec_snapshot)?;
    if !d.done() {
        return None; // trailing garbage: corrupt entry
    }
    Some(RunMetrics {
        name,
        core,
        sipt,
        way_pred,
        tlb,
        l2,
        llc,
        dram,
        energy,
        huge_fraction,
        phases,
        l1_metrics,
    })
}

pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

pub(crate) fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            _ => None,
        }
    };
    let b = s.as_bytes();
    (0..s.len() / 2).map(|i| Some(nibble(b[2 * i])? << 4 | nibble(b[2 * i + 1])?)).collect()
}

// ---------------------------------------------------------------------------
// The checkpoint file
// ---------------------------------------------------------------------------

struct Inner {
    path: PathBuf,
    /// Results loaded from a previous (interrupted) run, keyed by request
    /// fingerprint. Last write wins on duplicates.
    restored: HashMap<u64, RunMetrics>,
    /// Append handle; every completed task writes one line under this
    /// lock and flushes, so a kill between tasks loses at most the line
    /// being written (which the loader skips).
    file: Mutex<File>,
}

/// A handle to the active checkpoint file, shared by every sweep worker.
#[derive(Clone)]
pub struct CheckpointHandle {
    inner: Arc<Inner>,
}

impl CheckpointHandle {
    /// Path of the underlying checkpoint file.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Number of entries restored from disk at configure time.
    pub fn restored_len(&self) -> usize {
        self.inner.restored.len()
    }

    /// The stored metrics for a request with this fingerprint, if the
    /// previous run completed it. `key` is diagnostic only.
    pub fn restore(&self, _key: &str, fingerprint: u64) -> Option<RunMetrics> {
        self.inner.restored.get(&fingerprint).cloned()
    }

    /// Persist one completed task. Failures to write are reported on
    /// stderr but never abort the sweep — a checkpoint is an optimization,
    /// not a correctness requirement.
    pub fn append(&self, key: &str, fingerprint: u64, metrics: &RunMetrics) {
        let _span = sipt_telemetry::Span::enter(format!("ckpt append {key}"), "checkpoint");
        let line = format!(
            "{{\"key\":\"{key}\",\"fp\":\"{fingerprint:016x}\",\"m\":\"{}\"}}\n",
            hex_encode(&encode_metrics(metrics))
        );
        let mut file = self.inner.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Err(e) = file.write_all(line.as_bytes()).and_then(|()| file.flush()) {
            eprintln!("warning: checkpoint append to {} failed: {e}", self.inner.path.display());
        }
    }
}

/// Parse one checkpoint JSONL line into `(fingerprint, metrics)`.
/// `None` for malformed/truncated/incompatible lines.
fn parse_line(line: &str) -> Option<(u64, RunMetrics)> {
    // The writer emits exactly one shape; a tolerant field scan is enough
    // (and survives reordering).
    let field = |name: &str| -> Option<&str> {
        let tag = format!("\"{name}\":\"");
        let start = line.find(&tag)? + tag.len();
        let end = line[start..].find('"')? + start;
        Some(&line[start..end])
    };
    let fp = u64::from_str_radix(field("fp")?, 16).ok()?;
    let metrics = decode_metrics(&hex_decode(field("m")?)?)?;
    Some((fp, metrics))
}

static ACTIVE: Mutex<Option<CheckpointHandle>> = Mutex::new(None);

/// The process-wide active checkpoint, when one was configured. Sweeps
/// call this at the start of every execution.
pub fn active() -> Option<CheckpointHandle> {
    ACTIVE.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

/// Disable checkpointing (used by tests between scenarios).
pub fn clear() {
    *ACTIVE.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// Configure the process-wide checkpoint file.
///
/// With `resume = true`, any existing entries are loaded (malformed lines
/// — e.g. the torn final line of a killed process — are skipped with a
/// warning) and subsequent writes append. With `resume = false` the file
/// is truncated and a fresh checkpoint starts.
///
/// # Errors
///
/// [`SimError::Checkpoint`] when the file (or its parent directory)
/// cannot be created or read.
pub fn configure(path: &Path, resume: bool) -> Result<CheckpointHandle, SimError> {
    let _span = sipt_telemetry::Span::enter(format!("ckpt load {}", path.display()), "checkpoint");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| SimError::checkpoint(path.display().to_string(), e.to_string()))?;
        }
    }
    let mut restored = HashMap::new();
    if resume {
        match std::fs::read_to_string(path) {
            Ok(contents) => {
                let mut corrupt = 0u64;
                for (lineno, line) in contents.lines().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_line(line) {
                        Some((fp, metrics)) => {
                            restored.insert(fp, metrics);
                        }
                        None => {
                            corrupt += 1;
                            eprintln!(
                                "warning: skipping malformed checkpoint line {} in {}",
                                lineno + 1,
                                path.display()
                            );
                        }
                    }
                }
                // Corruption is tolerated (the affected tasks simply
                // re-run) but never silent: the count lands in the
                // resilience report block alongside the per-line warnings.
                if corrupt > 0 {
                    crate::resilience::record_corrupt_checkpoint_lines(corrupt);
                    eprintln!(
                        "warning: {} corrupt checkpoint line(s) in {} were skipped; \
                         the affected task(s) will re-run",
                        corrupt,
                        path.display()
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(SimError::checkpoint(path.display().to_string(), e.to_string()));
            }
        }
    }
    let file = OpenOptions::new()
        .create(true)
        .append(resume)
        .truncate(!resume)
        .write(true)
        .open(path)
        .map_err(|e| SimError::checkpoint(path.display().to_string(), e.to_string()))?;
    let handle = CheckpointHandle {
        inner: Arc::new(Inner { path: path.to_owned(), restored, file: Mutex::new(file) }),
    };
    *ACTIVE.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(handle.clone());
    Ok(handle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> RunMetrics {
        let mut m = RunMetrics {
            name: "unit".to_owned(),
            core: CoreResult { instructions: 123, cycles: 456, mem_ops: 78 },
            sipt: SiptStats { accesses: 9, hits: 5, misses: 4, ..Default::default() },
            way_pred: Some(WayPredStats { correct: 3, wrong: 1, misses: 2 }),
            tlb: TlbStats { l1_hits: 7, l2_hits: 2, walks: 1, faults: 0 },
            l2: None,
            llc: LevelStats { accesses: 11, hits: 6, misses: 5, fills: 5, writebacks: 2 },
            dram: DramStats { reads: 4, writes: 1, ..Default::default() },
            energy: EnergyBreakdown {
                l1_dynamic: 0.1 + 0.2, // deliberately non-representable exactly
                l1_static: 1e-300,
                ..Default::default()
            },
            huge_fraction: 1.0 / 3.0,
            phases: PhaseProfile {
                allocate_ms: 0.25,
                warmup_ms: f64::MIN_POSITIVE,
                measure_ms: 7.125,
                simulated_mips: 1234.5,
                worker: 3,
            },
            l1_metrics: None,
        };
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("l1.hits".into(), 42);
        snap.gauges.insert("frag".into(), 0.375);
        let mut h = Log2Histogram::new();
        h.record(3);
        h.record(900);
        snap.histograms.insert("lat".into(), h);
        m.l1_metrics = Some(snap);
        m
    }

    #[test]
    fn codec_roundtrips_bit_exactly() {
        let m = sample_metrics();
        let bytes = encode_metrics(&m);
        let back = decode_metrics(&bytes).expect("decodes");
        // Bit-exactness: the re-encoded stream is identical.
        assert_eq!(encode_metrics(&back), bytes);
        assert_eq!(back.name, m.name);
        assert_eq!(back.core, m.core);
        assert_eq!(back.sipt, m.sipt);
        assert_eq!(back.l1_metrics, m.l1_metrics);
        assert_eq!(back.energy.l1_dynamic.to_bits(), m.energy.l1_dynamic.to_bits());
        assert_eq!(back.phases.warmup_ms.to_bits(), m.phases.warmup_ms.to_bits());
    }

    #[test]
    fn codec_rejects_truncation_and_version_skew() {
        let bytes = encode_metrics(&sample_metrics());
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_metrics(&bytes[..cut]).is_none(), "cut at {cut} must fail");
        }
        let mut skew = bytes.clone();
        skew[0] = CODEC_VERSION + 1;
        assert!(decode_metrics(&skew).is_none(), "future version must be ignored");
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_metrics(&trailing).is_none(), "trailing garbage must be rejected");
    }

    #[test]
    fn hex_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("abc").is_none(), "odd length");
        assert!(hex_decode("zz").is_none(), "non-hex digit");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn file_roundtrip_with_torn_final_line() {
        let dir = std::env::temp_dir().join(format!("sipt-ckpt-test-{}", std::process::id()));
        let path = dir.join("unit.checkpoint.json");
        let m = sample_metrics();
        {
            let handle = configure(&path, false).expect("fresh checkpoint");
            handle.append(&task_key(0, 0), 0xdead_beef, &m);
            clear();
        }
        // Simulate a kill mid-write: a torn, incomplete second line.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":\"s0.t1\",\"fp\":\"0000000000000001\",\"m\":\"01ab").unwrap();
        }
        let corrupt_before = crate::resilience::corrupt_checkpoint_lines();
        let handle = configure(&path, true).expect("resume");
        assert_eq!(handle.restored_len(), 1, "torn line skipped, good line kept");
        assert!(
            crate::resilience::corrupt_checkpoint_lines() > corrupt_before,
            "the torn line must be counted, not just warned about"
        );
        let back = handle.restore("s9.t9", 0xdead_beef).expect("fingerprint hit");
        assert_eq!(encode_metrics(&back), encode_metrics(&m), "bit-exact restore");
        assert!(handle.restore("s0.t0", 0x1234).is_none(), "unknown fingerprint misses");
        clear();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn task_keys_are_stable() {
        assert_eq!(task_key(3, 17), "s3.t17");
    }
}
