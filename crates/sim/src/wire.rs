//! The worker wire protocol: sentinel-prefixed, line-oriented messages a
//! `--worker-shard` process streams to its supervisor over stdout.
//!
//! Workers are re-executions of the *current binary* (so they rebuild the
//! same [`crate::RunRequest`]s deterministically instead of serializing
//! them), which means their stdout also carries whatever the figure
//! binary normally prints — headers, tables, progress. The protocol
//! therefore claims a sentinel prefix ([`SENTINEL`]) and the supervisor
//! treats every non-sentinel line as tolerated noise. Malformed *sentinel*
//! lines, by contrast, are protocol corruption and quarantine the worker.
//!
//! Message grammar (one line each, space-separated fields):
//!
//! ```text
//! @sipt1 hello <sweep_seq> <task_count>
//! @sipt1 start <slot>
//! @sipt1 done <slot> <fingerprint:016x> <metrics-hex>
//! @sipt1 fail <slot> <attempts> <elapsed_ms-bits:016x> <message-hex>
//! @sipt1 hb
//! @sipt1 drained <completed>
//! ```
//!
//! `done` carries the full [`crate::metrics::RunMetrics`] in the
//! checkpoint byte codec ([`crate::checkpoint::encode_metrics`]), hex
//! encoded — the same bit-exact representation `--resume` relies on, so
//! merged sharded results are byte-identical to in-process execution by
//! construction. Free-text fields (panic messages) are hex encoded too:
//! the line framing never depends on their content.
//!
//! The supervisor's only downstream channel is the worker's stdin, with a
//! single command: [`DRAIN_COMMAND`] (one line) asks the worker to finish
//! its in-flight task, report [`WorkerMsg::Drained`], and exit cleanly.

use crate::checkpoint::{hex_decode, hex_encode};

/// Prefix claiming a stdout line for the supervisor protocol. Versioned:
/// a future incompatible protocol bumps the digit and old supervisors
/// treat the new lines as noise instead of misparsing them.
pub const SENTINEL: &str = "@sipt1";

/// The one stdin command a supervisor sends a worker: drain and exit.
pub const DRAIN_COMMAND: &str = "drain";

/// One worker-to-supervisor message.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMsg {
    /// Worker came up, reached its target sweep, and is about to execute.
    Hello {
        /// Sweep sequence number the worker locked onto.
        sweep_seq: usize,
        /// Number of slots assigned to this worker's shard.
        tasks: usize,
    },
    /// A slot's execution began (the supervisor starts its watchdog clock).
    Start {
        /// Sweep-local slot index.
        slot: usize,
    },
    /// A slot completed; carries the bit-exact metrics payload.
    Done {
        /// Sweep-local slot index.
        slot: usize,
        /// [`crate::RunRequest::fingerprint`] recomputed by the worker —
        /// the supervisor cross-checks it against its own request.
        fingerprint: u64,
        /// [`crate::checkpoint::encode_metrics`] bytes.
        metrics: Vec<u8>,
    },
    /// A slot failed permanently inside the worker (typed error or a
    /// panic that exhausted the in-worker retry budget).
    Fail {
        /// Sweep-local slot index.
        slot: usize,
        /// Attempts spent.
        attempts: u32,
        /// Wall-clock milliseconds of the final attempt (IEEE-754 bits,
        /// so the supervisor's failure record is bit-exact).
        elapsed_ms: f64,
        /// Panic / error message.
        message: String,
    },
    /// Liveness beacon (emitted periodically from a side thread).
    Heartbeat,
    /// Graceful drain acknowledged: the worker flushed `completed` slots
    /// and is exiting cleanly.
    Drained {
        /// Slots fully executed before the drain.
        completed: usize,
    },
}

/// Result of classifying one stdout line.
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// Not a protocol line — ordinary binary output, ignored.
    Noise,
    /// A well-formed protocol message.
    Msg(WorkerMsg),
    /// A sentinel line that does not decode: protocol corruption.
    Malformed(String),
}

impl WorkerMsg {
    /// Encode as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            WorkerMsg::Hello { sweep_seq, tasks } => {
                format!("{SENTINEL} hello {sweep_seq} {tasks}")
            }
            WorkerMsg::Start { slot } => format!("{SENTINEL} start {slot}"),
            WorkerMsg::Done { slot, fingerprint, metrics } => {
                format!("{SENTINEL} done {slot} {fingerprint:016x} {}", hex_encode(metrics))
            }
            WorkerMsg::Fail { slot, attempts, elapsed_ms, message } => format!(
                "{SENTINEL} fail {slot} {attempts} {:016x} {}",
                elapsed_ms.to_bits(),
                hex_encode(message.as_bytes())
            ),
            WorkerMsg::Heartbeat => format!("{SENTINEL} hb"),
            WorkerMsg::Drained { completed } => format!("{SENTINEL} drained {completed}"),
        }
    }

    fn decode_fields(fields: &[&str]) -> Option<WorkerMsg> {
        match *fields {
            ["hello", seq, tasks] => {
                Some(WorkerMsg::Hello { sweep_seq: seq.parse().ok()?, tasks: tasks.parse().ok()? })
            }
            ["start", slot] => Some(WorkerMsg::Start { slot: slot.parse().ok()? }),
            ["done", slot, fp, hex] => Some(WorkerMsg::Done {
                slot: slot.parse().ok()?,
                fingerprint: u64::from_str_radix(fp, 16).ok()?,
                metrics: hex_decode(hex)?,
            }),
            ["fail", slot, attempts, elapsed, hex] => Some(WorkerMsg::Fail {
                slot: slot.parse().ok()?,
                attempts: attempts.parse().ok()?,
                elapsed_ms: f64::from_bits(u64::from_str_radix(elapsed, 16).ok()?),
                message: String::from_utf8(hex_decode(hex)?).ok()?,
            }),
            // An empty message hex-encodes to nothing, so its field is
            // absent after whitespace splitting.
            ["fail", slot, attempts, elapsed] => Some(WorkerMsg::Fail {
                slot: slot.parse().ok()?,
                attempts: attempts.parse().ok()?,
                elapsed_ms: f64::from_bits(u64::from_str_radix(elapsed, 16).ok()?),
                message: String::new(),
            }),
            ["hb"] => Some(WorkerMsg::Heartbeat),
            ["drained", completed] => {
                Some(WorkerMsg::Drained { completed: completed.parse().ok()? })
            }
            _ => None,
        }
    }
}

/// Classify one line of worker stdout.
pub fn parse_line(line: &str) -> Parsed {
    let line = line.trim_end();
    let Some(rest) = line.strip_prefix(SENTINEL) else {
        return Parsed::Noise;
    };
    // The sentinel must be a whole token: "@sipt1x ..." is ordinary
    // output, not a corrupt message.
    if !rest.is_empty() && !rest.starts_with(' ') {
        return Parsed::Noise;
    }
    let fields: Vec<&str> = rest.split_ascii_whitespace().collect();
    match WorkerMsg::decode_fields(&fields) {
        Some(msg) => Parsed::Msg(msg),
        None => Parsed::Malformed(line.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: WorkerMsg) {
        let line = msg.encode();
        assert_eq!(parse_line(&line), Parsed::Msg(msg), "line was {line:?}");
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(WorkerMsg::Hello { sweep_seq: 3, tasks: 7 });
        roundtrip(WorkerMsg::Start { slot: 11 });
        roundtrip(WorkerMsg::Done {
            slot: 2,
            fingerprint: 0xdead_beef_0123_4567,
            metrics: vec![0, 1, 2, 0xff, 0x80],
        });
        roundtrip(WorkerMsg::Fail {
            slot: 5,
            attempts: 2,
            elapsed_ms: 12.625,
            message: "injected fault: panic at task 9 (attempt 1)\nwith newline".into(),
        });
        roundtrip(WorkerMsg::Heartbeat);
        roundtrip(WorkerMsg::Drained { completed: 4 });
    }

    #[test]
    fn ordinary_output_is_noise() {
        for line in [
            "== fig02 ==",
            "bench      base_ipc   sipt_ipc",
            "",
            "   ",
            "@sipt1x not actually the sentinel token",
            "warning: resume: sweep 0 restored 2/12 task(s)",
        ] {
            assert_eq!(parse_line(line), Parsed::Noise, "line was {line:?}");
        }
    }

    #[test]
    fn corrupt_sentinel_lines_are_malformed_not_noise() {
        for line in [
            "@sipt1",
            "@sipt1 done notanumber ffff 00",
            "@sipt1 done 1 xyz 00",
            "@sipt1 done 1 ffff zz",
            "@sipt1 explode 3",
            "@sipt1 fail 1 2 0 oddhex1",
        ] {
            assert!(
                matches!(parse_line(line), Parsed::Malformed(_)),
                "line {line:?} must be malformed"
            );
        }
    }

    #[test]
    fn fail_elapsed_is_bit_exact() {
        let msg = WorkerMsg::Fail {
            slot: 0,
            attempts: 1,
            elapsed_ms: f64::MIN_POSITIVE,
            message: String::new(),
        };
        let Parsed::Msg(WorkerMsg::Fail { elapsed_ms, .. }) = parse_line(&msg.encode()) else {
            panic!("fail line must decode");
        };
        assert_eq!(elapsed_ms.to_bits(), f64::MIN_POSITIVE.to_bits());
    }

    #[test]
    fn done_carries_checkpoint_codec_payload() {
        // A realistic payload: the checkpoint codec's own unit sample.
        let metrics =
            crate::checkpoint::encode_metrics(&crate::RunMetrics::failed_placeholder("wire-unit"));
        let msg = WorkerMsg::Done { slot: 1, fingerprint: 42, metrics: metrics.clone() };
        let Parsed::Msg(WorkerMsg::Done { metrics: back, .. }) = parse_line(&msg.encode()) else {
            panic!("done line must decode");
        };
        let decoded = crate::checkpoint::decode_metrics(&back).expect("codec payload survives");
        assert_eq!(decoded.name, "wire-unit");
    }
}
