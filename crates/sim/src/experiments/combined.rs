//! Figs 12–14: the combined speculation-bypass + IDB predictor.
//!
//! - Fig 12: prediction effectiveness per benchmark for 1/2/3 speculative
//!   bits — fraction of fast accesses split into perceptron-approved
//!   correct speculations and IDB hits (bypass-predicted accesses whose
//!   delta the IDB corrected).
//! - Fig 13: IPC and additional L1 accesses of the 32 KiB/2-way/2-cycle
//!   SIPT+IDB cache, vs baseline and ideal (OOO core).
//! - Fig 14: cache-hierarchy energy of the same configuration.

use crate::experiments::bypass::config_for_bits;
use crate::machine::SystemKind;
use crate::metrics::{arithmetic_mean, harmonic_mean};
use crate::runner::Condition;
use crate::sweep::Sweep;
use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w, L1Policy};

/// Fig 12 effectiveness split for one benchmark and bit count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombinedBreakdown {
    /// Fast accesses approved directly by the perceptron.
    pub correct_speculation: f64,
    /// Fast accesses rescued by the IDB (or 1-bit inverted prediction).
    pub idb_hit: f64,
    /// Remaining slow accesses (each also costs an extra L1 access).
    pub slow: f64,
}

impl CombinedBreakdown {
    /// Total fast fraction — the paper's prediction-accuracy headline.
    pub fn fast(&self) -> f64 {
        self.correct_speculation + self.idb_hit
    }
}

/// One benchmark's Fig 12 group.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Breakdown per speculated-bit count (index 0 → 1 bit).
    pub by_bits: [CombinedBreakdown; 3],
}

/// Run Fig 12.
pub fn fig12(benchmarks: &[&str], cond: &Condition) -> Vec<Fig12Row> {
    let mut sweep = Sweep::new();
    for &bench in benchmarks {
        for bits in [1u32, 2, 3] {
            // default policy: SiptCombined
            sweep.bench(bench, config_for_bits(bits), SystemKind::OooThreeLevel, cond);
        }
    }
    let mut runs = sweep.run().into_iter();
    benchmarks
        .iter()
        .map(|&bench| {
            let by_bits = [1u32, 2, 3].map(|_| {
                let m = runs.next().expect("combined run");
                let total = m.sipt.accesses.max(1) as f64;
                CombinedBreakdown {
                    correct_speculation: m.sipt.correct_speculation as f64 / total,
                    idb_hit: m.sipt.idb_hits as f64 / total,
                    slow: m.sipt.extra_accesses as f64 / total,
                }
            });
            Fig12Row { benchmark: bench.to_owned(), by_bits }
        })
        .collect()
}

/// One benchmark's Fig 13 + Fig 14 data.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedRow {
    /// Benchmark name.
    pub benchmark: String,
    /// SIPT+IDB IPC normalized to baseline.
    pub normalized_ipc: f64,
    /// Ideal-cache IPC normalized to baseline.
    pub ideal_ipc: f64,
    /// Additional L1 accesses vs baseline.
    pub extra_accesses: f64,
    /// SIPT+IDB hierarchy energy normalized to baseline.
    pub normalized_energy: f64,
    /// Ideal energy normalized to baseline.
    pub ideal_energy: f64,
    /// Fast-access fraction.
    pub fast_fraction: f64,
}

/// Summary means for Figs 13–14.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombinedSummary {
    /// Harmonic-mean normalized IPC (paper: 1.059 single-core).
    pub mean_ipc: f64,
    /// Harmonic-mean ideal IPC (paper: ≈ 2.3% above SIPT+IDB).
    pub mean_ideal_ipc: f64,
    /// Arithmetic-mean normalized energy (paper: ≈ 0.678).
    pub mean_energy: f64,
    /// Arithmetic-mean ideal energy.
    pub mean_ideal_energy: f64,
}

/// Run Figs 13–14 (32 KiB/2-way/2-cycle SIPT with IDB on an OOO core).
pub fn fig13_fig14(benchmarks: &[&str], cond: &Condition) -> (Vec<CombinedRow>, CombinedSummary) {
    let system = SystemKind::OooThreeLevel;
    let sipt_cfg = sipt_32k_2w(); // SiptCombined by default
    let ideal_cfg = sipt_32k_2w().with_policy(L1Policy::Ideal);
    let mut sweep = Sweep::new();
    for &bench in benchmarks {
        sweep.bench(bench, baseline_32k_8w_vipt(), system, cond);
        sweep.bench(bench, sipt_cfg.clone(), system, cond);
        sweep.bench(bench, ideal_cfg.clone(), system, cond);
    }
    let mut runs = sweep.run().into_iter();
    let mut rows = Vec::new();
    for &bench in benchmarks {
        let base = runs.next().expect("baseline run");
        let sipt = runs.next().expect("sipt run");
        let ideal = runs.next().expect("ideal run");
        rows.push(CombinedRow {
            benchmark: bench.to_owned(),
            normalized_ipc: sipt.ipc_vs(&base),
            ideal_ipc: ideal.ipc_vs(&base),
            extra_accesses: sipt.extra_accesses_vs(&base),
            normalized_energy: sipt.energy_vs(&base),
            ideal_energy: ideal.energy_vs(&base),
            fast_fraction: sipt.sipt.fast_fraction(),
        });
    }
    let summary = CombinedSummary {
        mean_ipc: harmonic_mean(&rows.iter().map(|r| r.normalized_ipc).collect::<Vec<_>>()),
        mean_ideal_ipc: harmonic_mean(&rows.iter().map(|r| r.ideal_ipc).collect::<Vec<_>>()),
        mean_energy: arithmetic_mean(&rows.iter().map(|r| r.normalized_energy).collect::<Vec<_>>()),
        mean_ideal_energy: arithmetic_mean(
            &rows.iter().map(|r| r.ideal_energy).collect::<Vec<_>>(),
        ),
    };
    (rows, summary)
}

/// Render Fig 12 as a table.
pub fn render_fig12(rows: &[Fig12Row]) -> String {
    let mut table_rows = Vec::new();
    for r in rows {
        for (i, b) in r.by_bits.iter().enumerate() {
            table_rows.push(vec![
                r.benchmark.clone(),
                format!("{}", i + 1),
                super::report::pct(b.correct_speculation),
                super::report::pct(b.idb_hit),
                super::report::pct(b.slow),
                super::report::pct(b.fast()),
            ]);
        }
    }
    super::report::table(
        &["benchmark", "bits", "correct spec", "IDB hit", "slow", "fast total"],
        &table_rows,
    )
}

/// Render Figs 13–14 as a table.
pub fn render_fig13_fig14(rows: &[CombinedRow], summary: &CombinedSummary) -> String {
    let mut table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                super::report::r3(r.normalized_ipc),
                super::report::r3(r.ideal_ipc),
                super::report::pct(r.extra_accesses),
                super::report::r3(r.normalized_energy),
                super::report::r3(r.ideal_energy),
                super::report::pct(r.fast_fraction),
            ]
        })
        .collect();
    table_rows.push(vec![
        "Average".into(),
        super::report::r3(summary.mean_ipc),
        super::report::r3(summary.mean_ideal_ipc),
        String::new(),
        super::report::r3(summary.mean_energy),
        super::report::r3(summary.mean_ideal_energy),
        String::new(),
    ]);
    super::report::table(
        &["benchmark", "IPC", "ideal IPC", "extra acc", "energy", "ideal energy", "fast"],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idb_rescues_low_speculation_apps() {
        let cond = Condition::quick();
        let rows = fig12(&["calculix", "gromacs"], &cond);
        for r in &rows {
            let one_bit = &r.by_bits[0];
            // Paper: with 1 bit, all seven low-speculation apps go from
            // <20% to >90% fast (we require a clear majority).
            assert!(
                one_bit.fast() > 0.8,
                "{} 1-bit fast = {} ({:?})",
                r.benchmark,
                one_bit.fast(),
                one_bit
            );
            assert!(one_bit.idb_hit > 0.3, "{}: rescue must come from the IDB", r.benchmark);
            // 2–3 bits: still a majority fast (paper: >70%).
            assert!(r.by_bits[1].fast() > 0.6, "{} 2-bit {:?}", r.benchmark, r.by_bits[1]);
            assert!(r.by_bits[2].fast() > 0.6, "{} 3-bit {:?}", r.benchmark, r.by_bits[2]);
        }
        assert!(!render_fig12(&rows).is_empty());
    }

    #[test]
    fn sipt_idb_approaches_ideal() {
        let cond = Condition::quick();
        let (rows, summary) = fig13_fig14(&["hmmer", "calculix", "mcf"], &cond);
        assert_eq!(rows.len(), 3);
        // Paper: SIPT+IDB never underperforms baseline and lands close to
        // ideal.
        for r in &rows {
            assert!(r.normalized_ipc > 0.97, "{}: IPC = {}", r.benchmark, r.normalized_ipc);
            assert!(
                r.ideal_ipc + 1e-9 >= r.normalized_ipc * 0.98,
                "{}: ideal {} vs sipt {}",
                r.benchmark,
                r.ideal_ipc,
                r.normalized_ipc
            );
        }
        assert!(summary.mean_ipc > 1.0, "mean IPC = {}", summary.mean_ipc);
        assert!(summary.mean_energy < 0.9, "mean energy = {}", summary.mean_energy);
        assert!(summary.mean_ideal_ipc >= summary.mean_ipc - 0.01);
        assert!(!render_fig13_fig14(&rows, &summary).is_empty());
    }
}
