//! Fig 5: fraction of memory accesses whose speculative index bits are
//! unchanged by translation, per benchmark, for 1/2/3 speculated bits and
//! the huge-page component (9 guaranteed bits).

use crate::runner::{speculation_profile, Condition, SpeculationProfile};
use crate::sweep::run_parallel_default;

/// One benchmark's Fig 5 bar.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Profile (unchanged fractions + hugepage fraction).
    pub profile: SpeculationProfile,
}

/// Compute Fig 5 for the given benchmarks.
pub fn fig5(benchmarks: &[&str], cond: &Condition) -> Vec<Fig5Row> {
    let cond = *cond;
    let tasks: Vec<_> = benchmarks
        .iter()
        .map(|&b| {
            move || Fig5Row { benchmark: b.to_owned(), profile: speculation_profile(b, &cond) }
        })
        .collect();
    run_parallel_default(tasks).0
}

/// Render the figure as a table.
pub fn render(rows: &[Fig5Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                super::report::pct(r.profile.unchanged[0]),
                super::report::pct(r.profile.unchanged[1]),
                super::report::pct(r.profile.unchanged[2]),
                super::report::pct(r.profile.hugepage),
            ]
        })
        .collect();
    super::report::table(&["benchmark", "1-bit", "2-bit", "3-bit", "hugepage(9-bit)"], &table_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipt_workloads::LOW_SPECULATION_APPS;

    #[test]
    fn fig5_separates_good_and_bad_apps() {
        let cond = Condition::quick();
        let names = ["libquantum", "GemsFDTD", "calculix", "gromacs", "cactusADM"];
        let rows = fig5(&names, &cond);
        // Huge-page apps: everything unchanged.
        for r in &rows[..2] {
            assert!(
                r.profile.unchanged[0] > 0.9,
                "{}: 1-bit = {}",
                r.benchmark,
                r.profile.unchanged[0]
            );
        }
        // The paper's low-speculation apps have minority fast accesses at
        // one bit.
        for r in &rows[2..] {
            assert!(
                LOW_SPECULATION_APPS.contains(&r.benchmark.as_str()),
                "test roster out of sync"
            );
            // Randomly placed single-page chunks match each index bit with
            // probability ~1/2, so "minority fast" lands near 50% (vs the
            // ~100% of contiguity-friendly apps); allow sampling noise.
            assert!(
                r.profile.unchanged[0] < 0.55,
                "{}: 1-bit = {} should be minority",
                r.benchmark,
                r.profile.unchanged[0]
            );
        }
        let text = render(&rows);
        assert!(text.contains("hugepage"));
        assert!(text.contains("libquantum"));
    }
}
