//! Figs 6–7: naive SIPT (32 KiB/2-way/2-cycle, always speculate) on an OOO
//! core — IPC and additional L1 accesses (Fig 6) and cache-hierarchy
//! energy (Fig 7), all normalized to the 32 KiB 8-way baseline, with the
//! ideal cache as the bound.

use crate::machine::SystemKind;
use crate::metrics::{arithmetic_mean, harmonic_mean};
use crate::runner::Condition;
use crate::sweep::Sweep;
use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w, L1Policy};

/// One benchmark's Fig 6 + Fig 7 data.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Naive-SIPT IPC normalized to baseline (Fig 6 bars).
    pub normalized_ipc: f64,
    /// Ideal-cache IPC normalized to baseline (Fig 6 dashes).
    pub ideal_ipc: f64,
    /// Additional L1 accesses: `accesses_SIPT/accesses_baseline − 1`.
    pub extra_accesses: f64,
    /// Naive-SIPT total hierarchy energy normalized to baseline (Fig 7).
    pub normalized_energy: f64,
    /// Ideal-cache energy normalized to baseline.
    pub ideal_energy: f64,
    /// SIPT dynamic energy normalized to baseline total energy.
    pub dynamic_energy: f64,
    /// Baseline dynamic energy normalized to baseline total energy.
    pub baseline_dynamic_energy: f64,
    /// Fraction of fast accesses under naive SIPT.
    pub fast_fraction: f64,
}

/// Summary (the paper's "Average" bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveSummary {
    /// Harmonic-mean normalized IPC.
    pub mean_ipc: f64,
    /// Harmonic-mean ideal IPC.
    pub mean_ideal_ipc: f64,
    /// Arithmetic-mean normalized energy (paper: naive ≈ 74.4%).
    pub mean_energy: f64,
    /// Arithmetic-mean ideal energy (paper: ≈ 8.5% better than naive).
    pub mean_ideal_energy: f64,
}

/// Run Figs 6–7.
pub fn fig6_fig7(benchmarks: &[&str], cond: &Condition) -> (Vec<NaiveRow>, NaiveSummary) {
    let system = SystemKind::OooThreeLevel;
    let naive_cfg = sipt_32k_2w().with_policy(L1Policy::SiptNaive);
    let ideal_cfg = sipt_32k_2w().with_policy(L1Policy::Ideal);
    let mut sweep = Sweep::new();
    for &bench in benchmarks {
        sweep.bench(bench, baseline_32k_8w_vipt(), system, cond);
        sweep.bench(bench, naive_cfg.clone(), system, cond);
        sweep.bench(bench, ideal_cfg.clone(), system, cond);
    }
    let mut runs = sweep.run().into_iter();
    let mut rows = Vec::new();
    for &bench in benchmarks {
        let base = runs.next().expect("baseline run");
        let naive = runs.next().expect("naive run");
        let ideal = runs.next().expect("ideal run");
        rows.push(NaiveRow {
            benchmark: bench.to_owned(),
            normalized_ipc: naive.ipc_vs(&base),
            ideal_ipc: ideal.ipc_vs(&base),
            extra_accesses: naive.extra_accesses_vs(&base),
            normalized_energy: naive.energy_vs(&base),
            ideal_energy: ideal.energy_vs(&base),
            dynamic_energy: naive.dynamic_energy_vs(&base),
            baseline_dynamic_energy: base.dynamic_energy_vs(&base),
            fast_fraction: naive.sipt.fast_fraction(),
        });
    }
    let summary = NaiveSummary {
        mean_ipc: harmonic_mean(&rows.iter().map(|r| r.normalized_ipc).collect::<Vec<_>>()),
        mean_ideal_ipc: harmonic_mean(&rows.iter().map(|r| r.ideal_ipc).collect::<Vec<_>>()),
        mean_energy: arithmetic_mean(&rows.iter().map(|r| r.normalized_energy).collect::<Vec<_>>()),
        mean_ideal_energy: arithmetic_mean(
            &rows.iter().map(|r| r.ideal_energy).collect::<Vec<_>>(),
        ),
    };
    (rows, summary)
}

/// Render both figures as one table.
pub fn render(rows: &[NaiveRow], summary: &NaiveSummary) -> String {
    let mut table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                super::report::r3(r.normalized_ipc),
                super::report::r3(r.ideal_ipc),
                super::report::pct(r.extra_accesses),
                super::report::r3(r.normalized_energy),
                super::report::r3(r.ideal_energy),
                super::report::pct(r.fast_fraction),
            ]
        })
        .collect();
    table_rows.push(vec![
        "Average".into(),
        super::report::r3(summary.mean_ipc),
        super::report::r3(summary.mean_ideal_ipc),
        String::new(),
        super::report::r3(summary.mean_energy),
        super::report::r3(summary.mean_ideal_energy),
        String::new(),
    ]);
    super::report::table(
        &["benchmark", "IPC", "ideal IPC", "extra acc", "energy", "ideal energy", "fast"],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_sipt_is_between_nothing_and_ideal() {
        let cond = Condition::quick();
        let (rows, summary) = fig6_fig7(&["hmmer", "calculix"], &cond);
        assert_eq!(rows.len(), 2);
        // hmmer (burst alloc, huge pages): naive ≈ ideal.
        let hmmer = &rows[0];
        assert!(hmmer.fast_fraction > 0.9);
        assert!((hmmer.normalized_ipc - hmmer.ideal_ipc).abs() < 0.1);
        // calculix (fine-grained alloc): naive suffers many extra accesses
        // and a clear gap to ideal.
        let calculix = &rows[1];
        assert!(calculix.extra_accesses > 0.2, "extra = {}", calculix.extra_accesses);
        assert!(calculix.ideal_ipc > calculix.normalized_ipc);
        // Energy: naive lies between baseline (1.0) and worse-than-ideal.
        assert!(summary.mean_energy < 1.0);
        assert!(summary.mean_ideal_energy <= summary.mean_energy);
        let text = render(&rows, &summary);
        assert!(text.contains("Average"));
    }
}
