//! One driver per paper figure/table. Every driver returns typed rows so
//! benches, examples and tests consume the same data the printed tables
//! show. See DESIGN.md §4 for the experiment index.
//!
//! | paper artifact | module | entry point |
//! |---|---|---|
//! | Fig 1 (latency sweep) | [`fig01`] | [`fig01::run`] |
//! | Figs 2–3 (ideal-config IPC) | [`ideal`] | [`ideal::fig2`], [`ideal::fig3`] |
//! | Fig 5 (speculation accuracy) | [`speculation`] | [`speculation::fig5`] |
//! | Figs 6–7 (naive SIPT) | [`naive`] | [`naive::fig6_fig7`] |
//! | Fig 9 (bypass outcomes) | [`bypass`] | [`bypass::fig9`] |
//! | Fig 12 (combined accuracy) | [`combined`] | [`combined::fig12`] |
//! | Figs 13–14 (SIPT+IDB) | [`combined`] | [`combined::fig13_fig14`] |
//! | Fig 15 (quad-core mixes) | [`quadcore`] | [`quadcore::fig15`] |
//! | Figs 16–17 (way prediction) | [`waypred`] | [`waypred::fig16_fig17`] |
//! | Fig 18 (sensitivity) | [`sensitivity`] | [`sensitivity::fig18`] |
//! | future work: I-cache SIPT | [`icache`] | [`icache::future_icache`] |

pub mod bypass;
pub mod combined;
pub mod fig01;
pub mod icache;
pub mod ideal;
pub mod naive;
pub mod quadcore;
pub mod report;
pub mod sensitivity;
pub mod speculation;
pub mod waypred;

use sipt_workloads::BENCHMARKS;

/// The benchmark names on the x-axis of the paper's per-application
/// figures, in figure order.
pub fn benchmark_names() -> Vec<&'static str> {
    BENCHMARKS.iter().map(|s| s.name).collect()
}

/// A short subset used by smoke tests and quick benches: one
/// representative per behaviour class (streaming/huge-page, pointer-chase,
/// fine-grained allocator, hot-set).
pub fn smoke_benchmarks() -> Vec<&'static str> {
    vec!["libquantum", "mcf", "calculix", "sjeng"]
}
