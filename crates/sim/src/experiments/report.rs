//! Plain-text table rendering shared by the figure binaries, plus the
//! machine-readable (JSON) forms of every figure's data — the payloads
//! behind the binaries' `--json` switch
//! ([`sipt_telemetry::report::json_requested`]).

use crate::experiments::{
    bypass, combined, icache, ideal, naive, quadcore, sensitivity, speculation, waypred,
};
use crate::metrics::RunMetrics;
use sipt_telemetry::json::Json;

/// Render an aligned text table. `headers` labels the columns; each row
/// must have the same arity.
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_owned()
    };
    out.push_str(&render_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format a ratio with three decimals.
pub fn r3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

// ---------------------------------------------------------------------------
// JSON payloads
// ---------------------------------------------------------------------------

/// A JSON array of numbers.
fn nums(vs: &[f64]) -> Json {
    Json::arr(vs.iter().map(|&v| Json::num(v)))
}

/// The full machine-readable summary of one run: IPC, speculation
/// outcomes (including the replay rate), hierarchy behaviour, energy,
/// wall-clock phase profile, and — when L1 telemetry was attached — the
/// latency/margin/delta histograms.
pub fn run_summary_json(m: &RunMetrics) -> Json {
    let accesses = m.sipt.accesses.max(1) as f64;
    let mut obj = Json::obj([
        ("name", Json::str(&m.name)),
        ("instructions", Json::u64(m.core.instructions)),
        ("cycles", Json::u64(m.core.cycles)),
        ("ipc", Json::num(m.ipc())),
        (
            "sipt",
            Json::obj([
                ("accesses", Json::u64(m.sipt.accesses)),
                ("hit_rate", Json::num(m.sipt.hit_rate())),
                ("fast_fraction", Json::num(m.sipt.fast_fraction())),
                ("replay_rate", Json::num(m.sipt.extra_accesses as f64 / accesses)),
                ("correct_speculation", Json::u64(m.sipt.correct_speculation)),
                ("correct_bypass", Json::u64(m.sipt.correct_bypass)),
                ("opportunity_loss", Json::u64(m.sipt.opportunity_loss)),
                ("idb_hits", Json::u64(m.sipt.idb_hits)),
                ("extra_accesses", Json::u64(m.sipt.extra_accesses)),
                ("array_reads", Json::u64(m.sipt.array_reads)),
            ]),
        ),
        ("dram_row_hit_rate", Json::num(m.dram.row_hit_rate())),
        (
            "energy",
            Json::obj([
                ("total", Json::num(m.energy.total())),
                ("dynamic", Json::num(m.energy.dynamic())),
            ]),
        ),
        ("huge_fraction", Json::num(m.huge_fraction)),
        (
            "phases",
            Json::obj([
                ("allocate_ms", Json::num(m.phases.allocate_ms)),
                ("warmup_ms", Json::num(m.phases.warmup_ms)),
                ("measure_ms", Json::num(m.phases.measure_ms)),
                ("simulated_mips", Json::num(m.phases.simulated_mips)),
                ("worker", Json::u64(m.phases.worker as u64)),
            ]),
        ),
    ]);
    if let Some(snapshot) = &m.l1_metrics {
        obj.insert("l1", snapshot.to_json());
    }
    obj
}

/// Fig 1 payload: the latency design-space sweep.
pub fn fig1_json(rows: &[sipt_energy::Fig1Row]) -> Json {
    Json::obj([(
        "rows",
        Json::arr(rows.iter().map(|r| {
            Json::obj([
                ("kib", Json::u64(r.kib)),
                ("ways", Json::u64(u64::from(r.ways))),
                ("min", Json::num(r.min)),
                ("mean", Json::num(r.mean)),
                ("max", Json::num(r.max)),
                ("vipt_feasible", Json::Bool(r.vipt_feasible)),
            ])
        })),
    )])
}

/// Figs 2–3 payload: normalized IPC of the ideal configurations.
pub fn ideal_json(fig: &ideal::IdealFigure) -> Json {
    Json::obj([
        ("configs", Json::arr(ideal::CONFIG_LABELS.iter().map(|&l| Json::str(l)))),
        (
            "rows",
            Json::arr(fig.rows.iter().map(|r| {
                Json::obj([
                    ("benchmark", Json::str(&r.benchmark)),
                    ("normalized_ipc", nums(&r.normalized_ipc)),
                ])
            })),
        ),
        ("average", nums(&fig.average)),
    ])
}

/// Fig 5 payload: index-bit survival profiles.
pub fn fig5_json(rows: &[speculation::Fig5Row]) -> Json {
    Json::obj([(
        "rows",
        Json::arr(rows.iter().map(|r| {
            Json::obj([
                ("benchmark", Json::str(&r.benchmark)),
                ("unchanged", nums(&r.profile.unchanged)),
                ("hugepage", Json::num(r.profile.hugepage)),
                ("accesses", Json::u64(r.profile.accesses)),
            ])
        })),
    )])
}

/// Figs 6–7 payload: naive SIPT vs baseline and ideal.
pub fn naive_json(rows: &[naive::NaiveRow], summary: &naive::NaiveSummary) -> Json {
    Json::obj([
        (
            "rows",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("benchmark", Json::str(&r.benchmark)),
                    ("normalized_ipc", Json::num(r.normalized_ipc)),
                    ("ideal_ipc", Json::num(r.ideal_ipc)),
                    ("extra_accesses", Json::num(r.extra_accesses)),
                    ("normalized_energy", Json::num(r.normalized_energy)),
                    ("ideal_energy", Json::num(r.ideal_energy)),
                    ("dynamic_energy", Json::num(r.dynamic_energy)),
                    ("fast_fraction", Json::num(r.fast_fraction)),
                ])
            })),
        ),
        (
            "summary",
            Json::obj([
                ("mean_ipc", Json::num(summary.mean_ipc)),
                ("mean_ideal_ipc", Json::num(summary.mean_ideal_ipc)),
                ("mean_energy", Json::num(summary.mean_energy)),
                ("mean_ideal_energy", Json::num(summary.mean_ideal_energy)),
            ]),
        ),
    ])
}

/// Fig 9 payload: bypass-predictor outcome fractions.
pub fn fig9_json(rows: &[bypass::Fig9Row]) -> Json {
    Json::obj([(
        "rows",
        Json::arr(rows.iter().map(|r| {
            Json::obj([
                ("benchmark", Json::str(&r.benchmark)),
                (
                    "by_bits",
                    Json::arr(r.by_bits.iter().enumerate().map(|(i, b)| {
                        Json::obj([
                            ("bits", Json::u64(i as u64 + 1)),
                            ("correct_speculation", Json::num(b.correct_speculation)),
                            ("correct_bypass", Json::num(b.correct_bypass)),
                            ("opportunity_loss", Json::num(b.opportunity_loss)),
                            ("extra_access", Json::num(b.extra_access)),
                            ("accuracy", Json::num(b.accuracy())),
                        ])
                    })),
                ),
            ])
        })),
    )])
}

/// Fig 12 payload: combined predictor effectiveness split.
pub fn fig12_json(rows: &[combined::Fig12Row]) -> Json {
    Json::obj([(
        "rows",
        Json::arr(rows.iter().map(|r| {
            Json::obj([
                ("benchmark", Json::str(&r.benchmark)),
                (
                    "by_bits",
                    Json::arr(r.by_bits.iter().enumerate().map(|(i, b)| {
                        Json::obj([
                            ("bits", Json::u64(i as u64 + 1)),
                            ("correct_speculation", Json::num(b.correct_speculation)),
                            ("idb_hit", Json::num(b.idb_hit)),
                            ("slow", Json::num(b.slow)),
                            ("fast", Json::num(b.fast())),
                        ])
                    })),
                ),
            ])
        })),
    )])
}

/// Figs 13–14 payload: SIPT+IDB headline results.
pub fn fig13_json(rows: &[combined::CombinedRow], summary: &combined::CombinedSummary) -> Json {
    Json::obj([
        (
            "rows",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("benchmark", Json::str(&r.benchmark)),
                    ("normalized_ipc", Json::num(r.normalized_ipc)),
                    ("ideal_ipc", Json::num(r.ideal_ipc)),
                    ("extra_accesses", Json::num(r.extra_accesses)),
                    ("normalized_energy", Json::num(r.normalized_energy)),
                    ("ideal_energy", Json::num(r.ideal_energy)),
                    ("fast_fraction", Json::num(r.fast_fraction)),
                ])
            })),
        ),
        (
            "summary",
            Json::obj([
                ("mean_ipc", Json::num(summary.mean_ipc)),
                ("mean_ideal_ipc", Json::num(summary.mean_ideal_ipc)),
                ("mean_energy", Json::num(summary.mean_energy)),
                ("mean_ideal_energy", Json::num(summary.mean_ideal_energy)),
            ]),
        ),
    ])
}

/// Fig 15 payload: quad-core mixes.
pub fn fig15_json(rows: &[quadcore::Fig15Row], summary: &quadcore::Fig15Summary) -> Json {
    Json::obj([
        ("configs", Json::arr(quadcore::CONFIG_LABELS.iter().map(|&l| Json::str(l)))),
        (
            "rows",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("mix", Json::str(&r.mix)),
                    ("speedup", nums(&r.speedup)),
                    ("extra_accesses", Json::num(r.extra_accesses)),
                    ("normalized_energy", Json::num(r.normalized_energy)),
                ])
            })),
        ),
        (
            "summary",
            Json::obj([
                ("mean_speedup", nums(&summary.mean_speedup)),
                ("mean_energy", Json::num(summary.mean_energy)),
            ]),
        ),
    ])
}

/// Figs 16–17 payload: way-prediction interaction.
pub fn waypred_json(rows: &[waypred::WaypredRow], summary: &waypred::WaypredSummary) -> Json {
    Json::obj([
        (
            "rows",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("benchmark", Json::str(&r.benchmark)),
                    ("base_wp_ipc", Json::num(r.base_wp_ipc)),
                    ("base_wp_accuracy", Json::num(r.base_wp_accuracy)),
                    ("sipt_ipc", Json::num(r.sipt_ipc)),
                    ("sipt_wp_ipc", Json::num(r.sipt_wp_ipc)),
                    ("sipt_wp_accuracy", Json::num(r.sipt_wp_accuracy)),
                    ("base_wp_energy", Json::num(r.base_wp_energy)),
                    ("sipt_energy", Json::num(r.sipt_energy)),
                    ("sipt_wp_energy", Json::num(r.sipt_wp_energy)),
                ])
            })),
        ),
        (
            "summary",
            Json::obj([
                ("base_accuracy", Json::num(summary.base_accuracy)),
                ("sipt_accuracy", Json::num(summary.sipt_accuracy)),
                ("base_wp_ipc", Json::num(summary.base_wp_ipc)),
                ("sipt_ipc", Json::num(summary.sipt_ipc)),
                ("sipt_wp_ipc", Json::num(summary.sipt_wp_ipc)),
                ("base_wp_energy", Json::num(summary.base_wp_energy)),
                ("sipt_energy", Json::num(summary.sipt_energy)),
                ("sipt_wp_energy", Json::num(summary.sipt_wp_energy)),
            ]),
        ),
    ])
}

/// Fig 18 payload: sensitivity groups.
pub fn fig18_json(groups: &[sensitivity::Fig18Group]) -> Json {
    Json::obj([
        ("configs", Json::arr(sensitivity::CONFIG_LABELS.iter().map(|&l| Json::str(l)))),
        (
            "groups",
            Json::arr(groups.iter().map(|g| {
                Json::obj([
                    ("label", Json::str(&g.label)),
                    ("mean_ipc", nums(&g.mean_ipc)),
                    ("mean_energy", nums(&g.mean_energy)),
                    ("accuracy", nums(&g.accuracy)),
                ])
            })),
        ),
    ])
}

/// Future-work I-cache payload.
pub fn icache_json(rows: &[icache::ICacheRow]) -> Json {
    Json::obj([(
        "rows",
        Json::arr(rows.iter().map(|r| {
            Json::obj([
                ("benchmark", Json::str(&r.benchmark)),
                ("code_pages", Json::u64(r.code_pages)),
                ("hit_rate", Json::num(r.hit_rate)),
                ("fast_fraction", Json::num(r.fast_fraction)),
                ("itlb_hit_rate", Json::num(r.itlb_hit_rate)),
            ])
        })),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = table(
            &["bench", "ipc"],
            &[vec!["mcf".into(), "0.912".into()], vec!["libquantum".into(), "1.204".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("bench"));
        assert!(lines[2].starts_with("mcf"));
        // Columns aligned: "ipc" header starts at the same offset in all rows.
        let col = lines[0].find("ipc").unwrap();
        assert_eq!(&lines[3][col..col + 5], "1.204");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(r3(1.23456), "1.235");
        assert_eq!(pct(0.081), "8.1%");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let _ = table(&["a", "b"], &[vec!["x".into()]]);
    }
}
