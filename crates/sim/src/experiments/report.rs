//! Plain-text table rendering shared by the figure binaries.

/// Render an aligned text table. `headers` labels the columns; each row
/// must have the same arity.
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_owned()
    };
    out.push_str(&render_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format a ratio with three decimals.
pub fn r3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = table(
            &["bench", "ipc"],
            &[
                vec!["mcf".into(), "0.912".into()],
                vec!["libquantum".into(), "1.204".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("bench"));
        assert!(lines[2].starts_with("mcf"));
        // Columns aligned: "ipc" header starts at the same offset in all rows.
        let col = lines[0].find("ipc").unwrap();
        assert_eq!(&lines[3][col..col + 5], "1.204");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(r3(1.23456), "1.235");
        assert_eq!(pct(0.081), "8.1%");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let _ = table(&["a", "b"], &[vec!["x".into()]]);
    }
}
