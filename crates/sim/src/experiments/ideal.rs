//! Figs 2–3: application performance across L1 configurations, modelled as
//! *ideal* caches (index bits always correct), normalized to the 32 KiB
//! 8-way 4-cycle VIPT baseline. These are the motivation experiments: they
//! show which infeasible-under-VIPT configurations would be worth having.

use crate::machine::SystemKind;
use crate::metrics::harmonic_mean;
use crate::runner::Condition;
use crate::sweep::Sweep;
use sipt_core::{
    baseline_32k_8w_vipt, sipt_128k_4w, sipt_32k_2w, sipt_32k_4w, sipt_64k_4w, small_16k_4w_vipt,
    L1Config, L1Policy,
};

/// The five alternative configurations of Figs 2–3, in legend order.
pub fn ideal_configs() -> Vec<L1Config> {
    vec![
        small_16k_4w_vipt(), // feasible, trades capacity for latency
        sipt_32k_2w().with_policy(L1Policy::Ideal),
        sipt_32k_4w().with_policy(L1Policy::Ideal),
        sipt_64k_4w().with_policy(L1Policy::Ideal),
        sipt_128k_4w().with_policy(L1Policy::Ideal),
    ]
}

/// Legend labels matching [`ideal_configs`].
pub const CONFIG_LABELS: [&str; 5] =
    ["16KiB 4-way", "32KiB 2-way", "32KiB 4-way", "64KiB 4-way", "128KiB 4-way"];

/// One benchmark's normalized IPC across the five configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct IdealRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Normalized IPC per configuration (same order as
    /// [`ideal_configs`]).
    pub normalized_ipc: Vec<f64>,
}

/// The full figure: per-benchmark rows plus the harmonic-mean summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct IdealFigure {
    /// Per-benchmark rows.
    pub rows: Vec<IdealRow>,
    /// Harmonic mean of normalized IPC per configuration.
    pub average: Vec<f64>,
}

fn run_system(system: SystemKind, benchmarks: &[&str], cond: &Condition) -> IdealFigure {
    let configs = ideal_configs();
    // One sweep over all (benchmark × config) runs, baseline first per
    // bench; results come back in submission order, so the figure is
    // bit-identical to the old serial loop.
    let mut sweep = Sweep::new();
    for &bench in benchmarks {
        sweep.bench(bench, baseline_32k_8w_vipt(), system, cond);
        for cfg in &configs {
            sweep.bench(bench, cfg.clone(), system, cond);
        }
    }
    let mut runs = sweep.run().into_iter();
    let mut rows = Vec::new();
    for &bench in benchmarks {
        let baseline = runs.next().expect("baseline run");
        let normalized_ipc = (0..configs.len())
            .map(|_| runs.next().expect("config run").ipc_vs(&baseline))
            .collect();
        rows.push(IdealRow { benchmark: bench.to_owned(), normalized_ipc });
    }
    let average = (0..configs.len())
        .map(|i| harmonic_mean(&rows.iter().map(|r| r.normalized_ipc[i]).collect::<Vec<_>>()))
        .collect();
    IdealFigure { rows, average }
}

/// Fig 2: OOO core, three-level hierarchy.
pub fn fig2(benchmarks: &[&str], cond: &Condition) -> IdealFigure {
    run_system(SystemKind::OooThreeLevel, benchmarks, cond)
}

/// Fig 3: in-order core, two-level hierarchy.
pub fn fig3(benchmarks: &[&str], cond: &Condition) -> IdealFigure {
    run_system(SystemKind::InOrderTwoLevel, benchmarks, cond)
}

/// Render either figure as a table.
pub fn render(fig: &IdealFigure) -> String {
    let mut rows: Vec<Vec<String>> = fig
        .rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.benchmark.clone()];
            cells.extend(r.normalized_ipc.iter().map(|v| super::report::r3(*v)));
            cells
        })
        .collect();
    let mut avg = vec!["Average".to_owned()];
    avg.extend(fig.average.iter().map(|v| super::report::r3(*v)));
    rows.push(avg);
    let mut headers = vec!["benchmark"];
    headers.extend(CONFIG_LABELS);
    super::report::table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_benchmarks;

    #[test]
    fn fig2_shape_low_latency_config_wins_on_ooo() {
        let cond = Condition::quick();
        let fig = fig2(&smoke_benchmarks(), &cond);
        assert_eq!(fig.rows.len(), 4);
        assert_eq!(fig.average.len(), 5);
        // The 32 KiB 2-way 2-cycle config (index 1) beats the baseline on
        // average for an OOO core (paper: +8.2%).
        assert!(fig.average[1] > 1.0, "32K2w avg = {}", fig.average[1]);
        // And beats the 16 KiB capacity-sacrifice config (paper: 16 KiB is
        // 1.5% *slower* than baseline on average).
        assert!(fig.average[1] > fig.average[0]);
        let text = render(&fig);
        assert!(text.contains("Average"));
    }

    #[test]
    fn fig3_shape_capacity_matters_in_order() {
        let cond = Condition::quick();
        let fig = fig3(&smoke_benchmarks(), &cond);
        // In-order: 64 KiB 4-way (index 3) must improve on baseline
        // (paper: +13%) and the tiny 16 KiB config must lag it clearly.
        assert!(fig.average[3] > 1.0, "64K4w avg = {}", fig.average[3]);
        assert!(
            fig.average[3] > fig.average[0],
            "64K4w {} must beat 16K4w {}",
            fig.average[3],
            fig.average[0]
        );
    }
}
