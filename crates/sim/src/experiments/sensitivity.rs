//! Fig 18: sensitivity of SIPT+IDB to operating conditions — normal,
//! artificially fragmented physical memory (`Fu(9) > 0.95`), transparent
//! huge pages disabled, and zero >4 KiB contiguity — on both the OOO and
//! in-order systems, for all four SIPT configurations.

use crate::machine::SystemKind;
use crate::metrics::{arithmetic_mean, harmonic_mean};
use crate::runner::Condition;
use crate::sweep::Sweep;
use sipt_core::{baseline_32k_8w_vipt, table2_sipt_configs};

/// Legend labels for the four SIPT configurations, Fig 18 order.
pub const CONFIG_LABELS: [&str; 4] = ["32KiB 2-way", "32KiB 4-way", "64KiB 4-way", "128KiB 4-way"];

/// One condition-group of Fig 18 (e.g. "OOO Fragmented").
#[derive(Debug, Clone, PartialEq)]
pub struct Fig18Group {
    /// Group label ("OOO Normal", "In-order THP-off", …).
    pub label: String,
    /// Harmonic-mean normalized IPC per SIPT configuration.
    pub mean_ipc: Vec<f64>,
    /// Arithmetic-mean normalized energy per SIPT configuration.
    pub mean_energy: Vec<f64>,
    /// Mean prediction accuracy (fast-access fraction) per configuration.
    pub accuracy: Vec<f64>,
}

/// Run Fig 18 over the given benchmarks. Produces eight groups: the four
/// §VII.B conditions on each of the two systems.
pub fn fig18(benchmarks: &[&str], base_cond: &Condition) -> Vec<Fig18Group> {
    let configs = table2_sipt_configs();
    // Enumerate every (system, condition) group first, then submit the
    // whole cross product as one sweep so all host cores stay busy even
    // with few benchmarks per group.
    let mut group_labels = Vec::new();
    let mut sweep = Sweep::new();
    for (system, sys_label) in
        [(SystemKind::OooThreeLevel, "OOO"), (SystemKind::InOrderTwoLevel, "In-order")]
    {
        for (cond_label, cond) in Condition::sensitivity_sweep() {
            let cond = Condition {
                instructions: base_cond.instructions,
                warmup: base_cond.warmup,
                seed: base_cond.seed,
                memory_bytes: cond.memory_bytes.max(base_cond.memory_bytes),
                ..cond
            };
            group_labels.push(format!("{sys_label} {cond_label}"));
            for &bench in benchmarks {
                sweep.bench(bench, baseline_32k_8w_vipt(), system, &cond);
                for cfg in &configs {
                    sweep.bench(bench, cfg.clone(), system, &cond);
                }
            }
        }
    }
    let mut runs = sweep.run().into_iter();
    let mut groups = Vec::new();
    for label in group_labels {
        let mut per_config_ipc = vec![Vec::new(); configs.len()];
        let mut per_config_energy = vec![Vec::new(); configs.len()];
        let mut per_config_acc = vec![Vec::new(); configs.len()];
        for _ in benchmarks {
            let base = runs.next().expect("baseline run");
            for i in 0..configs.len() {
                let m = runs.next().expect("config run");
                per_config_ipc[i].push(m.ipc_vs(&base));
                per_config_energy[i].push(m.energy_vs(&base));
                per_config_acc[i].push(m.sipt.fast_fraction());
            }
        }
        groups.push(Fig18Group {
            label,
            mean_ipc: per_config_ipc.iter().map(|v| harmonic_mean(v)).collect(),
            mean_energy: per_config_energy.iter().map(|v| arithmetic_mean(v)).collect(),
            accuracy: per_config_acc.iter().map(|v| arithmetic_mean(v)).collect(),
        });
    }
    groups
}

/// Render the figure as a table (one row per group × configuration).
pub fn render(groups: &[Fig18Group]) -> String {
    let mut rows = Vec::new();
    for g in groups {
        for (i, label) in CONFIG_LABELS.iter().enumerate() {
            rows.push(vec![
                g.label.clone(),
                (*label).to_owned(),
                super::report::r3(g.mean_ipc[i]),
                super::report::r3(g.mean_energy[i]),
                super::report::pct(g.accuracy[i]),
            ]);
        }
    }
    super::report::table(&["condition", "config", "IPC", "energy", "accuracy"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_is_graceful() {
        let cond = Condition::quick();
        // Two benchmarks spanning the behaviour range keep the test fast.
        let groups = fig18(&["hmmer", "calculix"], &cond);
        assert_eq!(groups.len(), 8);
        let find = |label: &str| groups.iter().find(|g| g.label == label).unwrap();
        let normal = find("OOO Normal");
        let fragged = find("OOO Fragmented");
        let scattered = find("OOO Par-bound");
        // Paper: fragmentation and THP-off degrade accuracy only mildly;
        // zero-contiguity degrades most but SIPT keeps working.
        for i in 0..4 {
            assert!(normal.accuracy[i] > 0.75, "normal acc = {:?}", normal.accuracy);
            assert!(
                fragged.accuracy[i] <= normal.accuracy[i] + 0.05,
                "fragmentation should not improve accuracy"
            );
            assert!(
                scattered.accuracy[i] <= fragged.accuracy[i] + 0.05,
                "scattered should be the worst condition"
            );
            assert!(
                scattered.accuracy[i] > 0.3,
                "SIPT must keep working: {:?}",
                scattered.accuracy
            );
        }
        // IPC stays at-or-above baseline under normal conditions.
        assert!(normal.mean_ipc[0] > 1.0, "normal IPC = {:?}", normal.mean_ipc);
        // In-order groups exist too.
        assert!(groups.iter().any(|g| g.label.starts_with("In-order")));
        assert!(!render(&groups).is_empty());
    }
}
