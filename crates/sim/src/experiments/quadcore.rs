//! Fig 15: quad-core multiprogrammed evaluation over the Table III mixes —
//! sum-of-IPC speedup, extra L1 accesses, and cache-hierarchy energy for
//! all four SIPT configurations, normalized to the quad-core baseline.

use crate::metrics::{arithmetic_mean, harmonic_mean};
use crate::multicore::run_mix;
use crate::runner::Condition;
use crate::sweep::run_parallel_default;
use sipt_core::{baseline_32k_8w_vipt, table2_sipt_configs};
use sipt_workloads::MIXES;

/// Legend labels for the four SIPT configurations, Fig 15 order.
pub const CONFIG_LABELS: [&str; 4] = ["32KiB 2-way", "32KiB 4-way", "64KiB 4-way", "128KiB 4-way"];

/// One mix's Fig 15 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Mix name (Table III).
    pub mix: String,
    /// Sum-of-IPC speedup per SIPT configuration.
    pub speedup: Vec<f64>,
    /// Extra L1 accesses (32 KiB 2-way configuration).
    pub extra_accesses: f64,
    /// Normalized energy (32 KiB 2-way configuration).
    pub normalized_energy: f64,
}

/// Fig 15 summary averages.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Summary {
    /// Harmonic-mean speedup per configuration (paper: 8.1% for 32K 2-way).
    pub mean_speedup: Vec<f64>,
    /// Mean normalized energy for the 32 KiB 2-way configuration.
    pub mean_energy: f64,
}

/// Run Fig 15 over the given mixes (pass `all_mixes()` for the paper's
/// full set).
pub fn fig15(mixes: &[&str], cond: &Condition) -> (Vec<Fig15Row>, Fig15Summary) {
    let configs = table2_sipt_configs();
    // Each quad-core mix run is internally serial (the four cores share a
    // buddy allocator); parallelism comes from fanning out the mix ×
    // config cross product, baseline included, as one flat task list.
    let mut tasks = Vec::new();
    for &mix in mixes {
        let mut cfgs = vec![baseline_32k_8w_vipt()];
        cfgs.extend(configs.iter().cloned());
        for cfg in cfgs {
            let cond = *cond;
            tasks.push(move || run_mix(mix, cfg, &cond));
        }
    }
    let (results, _) = run_parallel_default(tasks);
    let mut runs = results.into_iter();
    let mut rows = Vec::new();
    for &mix in mixes {
        let base = runs.next().expect("baseline mix run");
        let mut speedup = Vec::new();
        let mut extra = 0.0;
        let mut energy = 1.0;
        for i in 0..configs.len() {
            let m = runs.next().expect("config mix run");
            speedup.push(m.speedup_vs(&base));
            if i == 0 {
                extra = m.extra_accesses_vs(&base);
                energy = m.energy_vs(&base);
            }
        }
        rows.push(Fig15Row {
            mix: mix.to_owned(),
            speedup,
            extra_accesses: extra,
            normalized_energy: energy,
        });
    }
    let mean_speedup = (0..configs.len())
        .map(|i| harmonic_mean(&rows.iter().map(|r| r.speedup[i]).collect::<Vec<_>>()))
        .collect();
    let mean_energy =
        arithmetic_mean(&rows.iter().map(|r| r.normalized_energy).collect::<Vec<_>>());
    (rows, Fig15Summary { mean_speedup, mean_energy })
}

/// All Table III mix names.
pub fn all_mixes() -> Vec<&'static str> {
    MIXES.iter().map(|(name, _)| *name).collect()
}

/// Render the figure as a table.
pub fn render(rows: &[Fig15Row], summary: &Fig15Summary) -> String {
    let mut table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.mix.clone()];
            cells.extend(r.speedup.iter().map(|v| super::report::r3(*v)));
            cells.push(super::report::pct(r.extra_accesses));
            cells.push(super::report::r3(r.normalized_energy));
            cells
        })
        .collect();
    let mut avg = vec!["Average".to_owned()];
    avg.extend(summary.mean_speedup.iter().map(|v| super::report::r3(*v)));
    avg.push(String::new());
    avg.push(super::report::r3(summary.mean_energy));
    table_rows.push(avg);
    let mut headers = vec!["mix"];
    headers.extend(CONFIG_LABELS);
    headers.push("extra acc (32K2w)");
    headers.push("energy (32K2w)");
    super::report::table(&headers, &table_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadcore_mixes_show_throughput_gain() {
        let cond = Condition {
            memory_bytes: 4 << 30,
            instructions: 12_000,
            warmup: 4_000,
            ..Condition::default()
        };
        let (rows, summary) = fig15(&["mix0", "mix3"], &cond);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].speedup.len(), 4);
        // The 32 KiB 2-way configuration performs best of all four on
        // average (the paper's conclusion for OOO).
        let best = summary.mean_speedup.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (summary.mean_speedup[0] - best).abs() < 0.05,
            "32K2w should be at/near the top: {:?}",
            summary.mean_speedup
        );
        assert!(summary.mean_speedup[0] > 1.0);
        assert!(summary.mean_energy < 1.0);
        assert!(!render(&rows, &summary).is_empty());
    }

    #[test]
    fn all_mixes_listed() {
        assert_eq!(all_mixes().len(), 11);
    }
}
