//! Figs 16–17: way prediction interaction (§VII.A) — IPC, way-prediction
//! accuracy, and energy for three designs: the 8-way VIPT baseline with
//! way prediction, 32 KiB/2-way/2-cycle SIPT+IDB, and SIPT+IDB with way
//! prediction on top. All normalized to the plain baseline.

use crate::machine::SystemKind;
use crate::metrics::{arithmetic_mean, harmonic_mean};
use crate::runner::Condition;
use crate::sweep::Sweep;
use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};

/// One benchmark's Figs 16–17 data.
#[derive(Debug, Clone, PartialEq)]
pub struct WaypredRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline + way prediction: normalized IPC.
    pub base_wp_ipc: f64,
    /// Baseline + way prediction: prediction accuracy.
    pub base_wp_accuracy: f64,
    /// SIPT+IDB (no way prediction): normalized IPC.
    pub sipt_ipc: f64,
    /// SIPT+IDB + way prediction: normalized IPC.
    pub sipt_wp_ipc: f64,
    /// SIPT+IDB + way prediction: prediction accuracy.
    pub sipt_wp_accuracy: f64,
    /// Baseline+WP energy, normalized.
    pub base_wp_energy: f64,
    /// SIPT+IDB energy, normalized.
    pub sipt_energy: f64,
    /// SIPT+IDB+WP energy, normalized.
    pub sipt_wp_energy: f64,
}

/// Averages across benchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaypredSummary {
    /// Mean accuracy of way prediction on the 8-way baseline (paper: 89%).
    pub base_accuracy: f64,
    /// Mean accuracy on 2-way SIPT (paper: 97.3%).
    pub sipt_accuracy: f64,
    /// Harmonic-mean IPC of baseline+WP (paper: ~0.98 — a 2% loss).
    pub base_wp_ipc: f64,
    /// Harmonic-mean IPC of SIPT+IDB.
    pub sipt_ipc: f64,
    /// Harmonic-mean IPC of SIPT+IDB+WP (paper: ~0.3% below SIPT alone).
    pub sipt_wp_ipc: f64,
    /// Mean normalized energy of baseline+WP (paper: −24%).
    pub base_wp_energy: f64,
    /// Mean normalized energy of SIPT+IDB.
    pub sipt_energy: f64,
    /// Mean normalized energy of SIPT+IDB+WP (paper: 2.2% below SIPT).
    pub sipt_wp_energy: f64,
}

/// Run Figs 16–17.
pub fn fig16_fig17(benchmarks: &[&str], cond: &Condition) -> (Vec<WaypredRow>, WaypredSummary) {
    let system = SystemKind::OooThreeLevel;
    let mut sweep = Sweep::new();
    for &bench in benchmarks {
        sweep.bench(bench, baseline_32k_8w_vipt(), system, cond);
        sweep.bench(bench, baseline_32k_8w_vipt().with_way_prediction(true), system, cond);
        sweep.bench(bench, sipt_32k_2w(), system, cond);
        sweep.bench(bench, sipt_32k_2w().with_way_prediction(true), system, cond);
    }
    let mut runs = sweep.run().into_iter();
    let mut rows = Vec::new();
    for &bench in benchmarks {
        let base = runs.next().expect("baseline run");
        let base_wp = runs.next().expect("baseline+WP run");
        let sipt = runs.next().expect("sipt run");
        let sipt_wp = runs.next().expect("sipt+WP run");
        rows.push(WaypredRow {
            benchmark: bench.to_owned(),
            base_wp_ipc: base_wp.ipc_vs(&base),
            base_wp_accuracy: base_wp.way_pred.map_or(0.0, |w| w.accuracy()),
            sipt_ipc: sipt.ipc_vs(&base),
            sipt_wp_ipc: sipt_wp.ipc_vs(&base),
            sipt_wp_accuracy: sipt_wp.way_pred.map_or(0.0, |w| w.accuracy()),
            base_wp_energy: base_wp.energy_vs(&base),
            sipt_energy: sipt.energy_vs(&base),
            sipt_wp_energy: sipt_wp.energy_vs(&base),
        });
    }
    let summary = WaypredSummary {
        base_accuracy: arithmetic_mean(
            &rows.iter().map(|r| r.base_wp_accuracy).collect::<Vec<_>>(),
        ),
        sipt_accuracy: arithmetic_mean(
            &rows.iter().map(|r| r.sipt_wp_accuracy).collect::<Vec<_>>(),
        ),
        base_wp_ipc: harmonic_mean(&rows.iter().map(|r| r.base_wp_ipc).collect::<Vec<_>>()),
        sipt_ipc: harmonic_mean(&rows.iter().map(|r| r.sipt_ipc).collect::<Vec<_>>()),
        sipt_wp_ipc: harmonic_mean(&rows.iter().map(|r| r.sipt_wp_ipc).collect::<Vec<_>>()),
        base_wp_energy: arithmetic_mean(&rows.iter().map(|r| r.base_wp_energy).collect::<Vec<_>>()),
        sipt_energy: arithmetic_mean(&rows.iter().map(|r| r.sipt_energy).collect::<Vec<_>>()),
        sipt_wp_energy: arithmetic_mean(&rows.iter().map(|r| r.sipt_wp_energy).collect::<Vec<_>>()),
    };
    (rows, summary)
}

/// Render both figures as a table.
pub fn render(rows: &[WaypredRow], summary: &WaypredSummary) -> String {
    let mut table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                super::report::r3(r.base_wp_ipc),
                super::report::pct(r.base_wp_accuracy),
                super::report::r3(r.sipt_ipc),
                super::report::r3(r.sipt_wp_ipc),
                super::report::pct(r.sipt_wp_accuracy),
                super::report::r3(r.base_wp_energy),
                super::report::r3(r.sipt_energy),
                super::report::r3(r.sipt_wp_energy),
            ]
        })
        .collect();
    table_rows.push(vec![
        "Average".into(),
        super::report::r3(summary.base_wp_ipc),
        super::report::pct(summary.base_accuracy),
        super::report::r3(summary.sipt_ipc),
        super::report::r3(summary.sipt_wp_ipc),
        super::report::pct(summary.sipt_accuracy),
        super::report::r3(summary.base_wp_energy),
        super::report::r3(summary.sipt_energy),
        super::report::r3(summary.sipt_wp_energy),
    ]);
    super::report::table(
        &[
            "benchmark",
            "base+WP IPC",
            "base WP acc",
            "SIPT IPC",
            "SIPT+WP IPC",
            "SIPT WP acc",
            "base+WP E",
            "SIPT E",
            "SIPT+WP E",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn way_prediction_interacts_as_in_the_paper() {
        let cond = Condition::quick();
        let (rows, summary) = fig16_fig17(&["sjeng", "hmmer", "mcf"], &cond);
        assert_eq!(rows.len(), 3);
        // Lower associativity raises MRU accuracy.
        assert!(
            summary.sipt_accuracy > summary.base_accuracy,
            "2-way acc {} must beat 8-way acc {}",
            summary.sipt_accuracy,
            summary.base_accuracy
        );
        // Way prediction costs a little performance on the baseline.
        assert!(summary.base_wp_ipc <= 1.0 + 1e-9);
        // On top of SIPT it costs almost nothing.
        assert!(
            summary.sipt_ipc - summary.sipt_wp_ipc < 0.05,
            "SIPT {} vs SIPT+WP {}",
            summary.sipt_ipc,
            summary.sipt_wp_ipc
        );
        // And saves additional energy over SIPT alone.
        assert!(
            summary.sipt_wp_energy < summary.sipt_energy,
            "WP energy {} vs SIPT energy {}",
            summary.sipt_wp_energy,
            summary.sipt_energy
        );
        // Baseline + WP saves energy vs plain baseline.
        assert!(summary.base_wp_energy < 1.0);
        assert!(!render(&rows, &summary).is_empty());
    }
}
