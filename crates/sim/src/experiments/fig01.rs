//! Fig 1: L1 latency (range and mean) across the Table I design space,
//! normalized to the 32 KiB 8-way baseline. A thin wrapper over the
//! CACTI-like model in `sipt-energy`; included here so every figure has a
//! driver in one place.

pub use sipt_energy::Fig1Row;

use crate::sweep::run_parallel_default;

/// Compute the Fig 1 sweep rows. Each grid point is evaluated as an
/// independent task (the model is pure), in figure order.
pub fn run() -> Vec<Fig1Row> {
    let tasks: Vec<_> = sipt_energy::fig1_grid()
        .into_iter()
        .map(|(kib, ways)| move || sipt_energy::fig1_point(kib, ways))
        .collect();
    run_parallel_default(tasks).0
}

/// Render the sweep as the figure's underlying table.
pub fn render(rows: &[Fig1Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}KiB", r.kib),
                format!("{}-way", r.ways),
                super::report::r3(r.min),
                super::report::r3(r.mean),
                super::report::r3(r.max),
                if r.vipt_feasible { "VIPT-ok" } else { "needs SIPT" }.to_owned(),
            ]
        })
        .collect();
    super::report::table(&["capacity", "assoc", "min", "mean", "max", "feasibility"], &table_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_key_rows() {
        let rows = run();
        let text = render(&rows);
        assert!(text.contains("32KiB"));
        assert!(text.contains("needs SIPT"));
        assert!(text.contains("VIPT-ok"));
        assert!(text.lines().count() >= rows.len() + 2);
    }
}
