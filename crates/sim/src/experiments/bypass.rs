//! Fig 9: the four possible outcomes of the perceptron bypass predictor
//! (correct speculation / correct bypass / opportunity loss / extra
//! access), per benchmark, when 1, 2 and 3 index bits are speculated.

use crate::machine::SystemKind;
use crate::runner::Condition;
use crate::sweep::Sweep;
use sipt_core::{sipt_128k_4w, sipt_32k_2w, sipt_32k_4w, L1Config, L1Policy};

/// The geometry used to speculate `bits` index bits (Table II's points).
pub fn config_for_bits(bits: u32) -> L1Config {
    match bits {
        1 => sipt_32k_4w(),
        2 => sipt_32k_2w(),
        3 => sipt_128k_4w(),
        _ => panic!("the paper speculates 1–3 bits, got {bits}"),
    }
}

/// Outcome fractions for one benchmark at one bit count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeBreakdown {
    /// Speculated and bits unchanged (fast).
    pub correct_speculation: f64,
    /// Bypassed and bits changed (necessary wait).
    pub correct_bypass: f64,
    /// Bypassed although bits were unchanged (lost fast access).
    pub opportunity_loss: f64,
    /// Speculated although bits changed (wasted L1 access).
    pub extra_access: f64,
}

impl OutcomeBreakdown {
    /// Predictor accuracy: both kinds of correct decisions.
    pub fn accuracy(&self) -> f64 {
        self.correct_speculation + self.correct_bypass
    }
}

/// One benchmark's group of three bars (1, 2, 3 bits).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Breakdown per speculated-bit count (index 0 → 1 bit).
    pub by_bits: [OutcomeBreakdown; 3],
}

/// Run Fig 9.
pub fn fig9(benchmarks: &[&str], cond: &Condition) -> Vec<Fig9Row> {
    let mut sweep = Sweep::new();
    for &bench in benchmarks {
        for bits in [1u32, 2, 3] {
            let cfg = config_for_bits(bits).with_policy(L1Policy::SiptBypass);
            sweep.bench(bench, cfg, SystemKind::OooThreeLevel, cond);
        }
    }
    let mut runs = sweep.run().into_iter();
    benchmarks
        .iter()
        .map(|&bench| {
            let by_bits = [1u32, 2, 3].map(|_| {
                let m = runs.next().expect("bypass run");
                let total = m.sipt.accesses.max(1) as f64;
                OutcomeBreakdown {
                    correct_speculation: m.sipt.correct_speculation as f64 / total,
                    correct_bypass: m.sipt.correct_bypass as f64 / total,
                    opportunity_loss: m.sipt.opportunity_loss as f64 / total,
                    extra_access: m.sipt.extra_accesses as f64 / total,
                }
            });
            Fig9Row { benchmark: bench.to_owned(), by_bits }
        })
        .collect()
}

/// Render the figure as a table (one line per benchmark × bit count).
pub fn render(rows: &[Fig9Row]) -> String {
    let mut table_rows = Vec::new();
    for r in rows {
        for (i, b) in r.by_bits.iter().enumerate() {
            table_rows.push(vec![
                r.benchmark.clone(),
                format!("{}", i + 1),
                super::report::pct(b.correct_speculation),
                super::report::pct(b.correct_bypass),
                super::report::pct(b.opportunity_loss),
                super::report::pct(b.extra_access),
                super::report::pct(b.accuracy()),
            ]);
        }
    }
    super::report::table(
        &[
            "benchmark",
            "bits",
            "correct spec",
            "correct bypass",
            "opp loss",
            "extra acc",
            "accuracy",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perceptron_is_accurate_across_benchmarks() {
        let cond = Condition::quick();
        let rows = fig9(&["libquantum", "calculix", "mcf"], &cond);
        for r in &rows {
            for (bits, b) in r.by_bits.iter().enumerate() {
                let sum =
                    b.correct_speculation + b.correct_bypass + b.opportunity_loss + b.extra_access;
                assert!((sum - 1.0).abs() < 1e-9, "{}: fractions sum to {sum}", r.benchmark);
                // Paper: >90% accuracy in all applications; allow margin
                // for our short runs.
                assert!(
                    b.accuracy() > 0.85,
                    "{} @{}bits accuracy = {}",
                    r.benchmark,
                    bits + 1,
                    b.accuracy()
                );
                assert!(
                    b.extra_access < 0.10,
                    "{} @{}bits extra = {}",
                    r.benchmark,
                    bits + 1,
                    b.extra_access
                );
            }
        }
        // calculix bypasses most accesses (correct bypass dominates);
        // libquantum speculates almost everything.
        let lib = &rows[0].by_bits[1];
        let cal = &rows[1].by_bits[1];
        assert!(lib.correct_speculation > 0.85, "libquantum = {lib:?}");
        assert!(cal.correct_bypass > 0.4, "calculix = {cal:?}");
        assert!(!render(&rows).is_empty());
    }

    #[test]
    #[should_panic(expected = "1–3 bits")]
    fn invalid_bits_rejected() {
        let _ = config_for_bits(4);
    }
}
