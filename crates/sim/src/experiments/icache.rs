//! Future-work exploration: SIPT for instruction caches.
//!
//! The paper defers I-caches, arguing they should work "at least as well"
//! because instruction working sets are small and I-TLB hit rates high
//! (§III, citing Bhattacharjee & Martonosi). This driver checks that
//! argument inside our framework: it maps each workload's *code* (the
//! distinct pages its instruction PCs occupy) through the same OS model
//! used for data, then replays the dynamic PC stream through a SIPT-
//! configured L1 used as an I-cache, reporting speculation accuracy and
//! hit rates.
//!
//! No timing integration is attempted — fetch latency interacts with the
//! branch front-end, which this reproduction does not model — so the
//! result is a feasibility profile, exactly the form of evidence the
//! paper's future-work remark rests on.

use crate::runner::Condition;
use crate::sweep::run_parallel_default;
use sipt_core::{L1Config, SiptL1};
use sipt_mem::{fragment_memory, AddressSpace, BuddyAllocator, VirtAddr, VirtPageNum, PAGE_SIZE};
use sipt_rng::{SeedableRng, StdRng};
use sipt_tlb::{DataTlb, TlbConfig};
use sipt_workloads::{benchmark, TraceGen};

/// Result of replaying a workload's PC stream through an I-side SIPT L1.
#[derive(Debug, Clone, PartialEq)]
pub struct ICacheRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Distinct 4 KiB code pages the PC stream touched.
    pub code_pages: u64,
    /// I-L1 hit rate.
    pub hit_rate: f64,
    /// Fast-access fraction (speculation or IDB correct).
    pub fast_fraction: f64,
    /// I-TLB L1 hit rate.
    pub itlb_hit_rate: f64,
}

/// Replay each benchmark's instruction PCs through an I-SIPT cache.
pub fn future_icache(benchmarks: &[&str], cond: &Condition, l1: L1Config) -> Vec<ICacheRow> {
    let tasks: Vec<_> = benchmarks
        .iter()
        .map(|&name| {
            let cond = *cond;
            let l1 = l1.clone();
            move || replay_one(name, &cond, l1)
        })
        .collect();
    run_parallel_default(tasks).0
}

/// Replay one benchmark's instruction PCs through an I-side SIPT L1.
fn replay_one(name: &str, cond: &Condition, l1: L1Config) -> ICacheRow {
    let spec = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut phys = BuddyAllocator::with_bytes(cond.memory_bytes);
    let mut rng = StdRng::seed_from_u64(cond.seed ^ 0x1CAC);
    let _hold =
        cond.fragmented.then(|| fragment_memory(&mut phys, 0.5, &mut rng).expect("fragment"));
    let mut asp = AddressSpace::new(0, cond.placement);
    // Build the data side only to obtain the dynamic PC stream.
    let trace =
        TraceGen::build(&spec, &mut asp, &mut phys, cond.instructions, cond.seed).expect("fit");
    let pcs: Vec<u64> = trace.map(|inst| inst.pc).collect();

    // Map the code: one linear code region sized by the distinct
    // PC pages, allocated through the same OS model (code segments
    // are mapped in one burst at exec time).
    let mut code_pages: Vec<u64> = pcs.iter().map(|pc| pc / PAGE_SIZE).collect();
    code_pages.sort_unstable();
    code_pages.dedup();
    let code_base = *code_pages.first().expect("nonempty trace");
    let span_pages = code_pages.last().unwrap() - code_base + 1;
    let code_region = asp.mmap(span_pages * PAGE_SIZE, &mut phys).expect("code fits");

    // Replay fetches.
    let mut il1 = SiptL1::new(l1);
    let mut itlb = DataTlb::new(TlbConfig::default());
    for pc in &pcs {
        let va = VirtAddr::new(code_region.start.raw() + (pc - code_base * PAGE_SIZE));
        let outcome = itlb.translate(va, asp.page_table()).expect("code mapped");
        let access = il1.access(*pc, va, outcome.translation, outcome.cycles, false);
        if !access.hit {
            il1.fill(sipt_cache::LineAddr::of_phys(outcome.translation.pa), false);
        }
    }
    let _ = VirtPageNum::new(0);
    let stats = il1.stats();
    ICacheRow {
        benchmark: name.to_owned(),
        code_pages: code_pages.len() as u64,
        hit_rate: stats.hit_rate(),
        fast_fraction: stats.fast_fraction(),
        itlb_hit_rate: itlb.stats().l1_hit_rate(),
    }
}

/// Render the exploration as a table.
pub fn render(rows: &[ICacheRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.code_pages.to_string(),
                super::report::pct(r.hit_rate),
                super::report::pct(r.fast_fraction),
                super::report::pct(r.itlb_hit_rate),
            ]
        })
        .collect();
    super::report::table(&["benchmark", "code pages", "I-L1 hit", "fast", "I-TLB hit"], &table_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipt_core::sipt_32k_2w;

    #[test]
    fn instruction_side_is_sipt_friendly() {
        let cond = Condition { instructions: 20_000, warmup: 0, ..Condition::default() };
        let rows = future_icache(&["sjeng", "gcc"], &cond, sipt_32k_2w());
        for r in &rows {
            // Small code footprints, high hit rates, near-perfect
            // speculation — the paper's future-work premise.
            assert!(r.code_pages < 512, "{}: {} pages", r.benchmark, r.code_pages);
            assert!(r.hit_rate > 0.9, "{}: I-L1 hit {}", r.benchmark, r.hit_rate);
            assert!(r.fast_fraction > 0.9, "{}: fast {}", r.benchmark, r.fast_fraction);
            assert!(r.itlb_hit_rate > 0.95, "{}: I-TLB {}", r.benchmark, r.itlb_hit_rate);
        }
        assert!(!render(&rows).is_empty());
    }
}
