//! Workload specifications: parameterized synthetic stand-ins for the
//! paper's benchmark suite.
//!
//! We do not have SPEC CPU 2006/2017, graph500 or DBx1000 traces; instead
//! each benchmark is characterized by the handful of parameters that
//! actually determine SIPT behaviour — footprint, access-pattern mix,
//! memory-op density, and, crucially, *allocation granularity*: programs
//! that acquire memory in large bursts get huge pages and large constant
//! VA→PA deltas from the buddy allocator, while programs that allocate in
//! small increments scatter their deltas (the paper's seven
//! low-speculation applications). Presets below encode the qualitative
//! behaviour reported in Figs 5, 9 and 12.

/// Mix of address-generation behaviours, as fractions summing to ≤ 1 (the
/// remainder is hot-set reuse).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMix {
    /// Sequential streaming (unit-line stride).
    pub stream: f64,
    /// Uniform random over the whole footprint.
    pub random: f64,
    /// Dependent pointer chasing (address depends on the previous load).
    pub chase: f64,
}

impl PatternMix {
    /// Fraction of accesses to the small hot set (the remainder).
    pub fn hot(&self) -> f64 {
        (1.0 - self.stream - self.random - self.chase).max(0.0)
    }

    /// Validate that fractions are sane.
    pub fn validate(&self) {
        for (name, v) in [("stream", self.stream), ("random", self.random), ("chase", self.chase)] {
            assert!((0.0..=1.0).contains(&v), "{name} fraction {v} out of range");
        }
        assert!(self.stream + self.random + self.chase <= 1.0 + 1e-9, "pattern fractions exceed 1");
    }
}

/// How the synthetic program acquires its memory. This is the decisive
/// SIPT parameter: it controls huge-page coverage and VA→PA delta
/// stability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPattern {
    /// One large up-front mmap (multi-MiB array/arena setup): the buddy
    /// allocator serves it from maximal blocks → transparent huge pages,
    /// all speculative bits translation-invariant.
    Burst,
    /// Medium mmaps of `chunk_pages` pages each (glibc-style heap growth)
    /// against *intact* free lists: chunks land physically consecutive, so
    /// deltas stay constant across long runs even though no page is huge —
    /// the common case the paper's Fig 10 describes.
    Chunked {
        /// Pages per allocation (tens to hundreds).
        chunk_pages: u64,
    },
    /// Small mmaps of `chunk_pages` pages each against *churned* free
    /// lists (a long-running system's allocator state): each chunk lands
    /// at a random position, so index bits beyond
    /// `log2(chunk_pages) + 12` change unpredictably — the paper's
    /// low-speculation applications.
    Incremental {
        /// Pages per allocation (1–8 in the presets).
        chunk_pages: u64,
    },
}

/// A complete synthetic-benchmark specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name, matching the paper's figure labels.
    pub name: &'static str,
    /// Resident data footprint in bytes.
    pub footprint: u64,
    /// Fraction of instructions that are loads/stores.
    pub mem_ratio: f64,
    /// Fraction of memory ops that are stores.
    pub store_ratio: f64,
    /// Address-pattern mix.
    pub mix: PatternMix,
    /// Allocation behaviour.
    pub alloc: AllocPattern,
    /// Number of distinct static memory PCs (predictor pressure).
    pub mem_pcs: usize,
}

impl WorkloadSpec {
    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fractions or a zero footprint.
    pub fn validate(&self) {
        assert!(self.footprint >= 1 << 16, "footprint too small: {}", self.footprint);
        assert!((0.0..=1.0).contains(&self.mem_ratio), "mem_ratio out of range");
        assert!((0.0..=1.0).contains(&self.store_ratio), "store_ratio out of range");
        assert!(self.mem_pcs > 0, "need at least one memory PC");
        self.mix.validate();
    }
}

const MIB: u64 = 1 << 20;

/// Helper: build a spec row.
#[allow(clippy::too_many_arguments)] // table-row constructor, literal rows below
const fn w(
    name: &'static str,
    footprint_mib: u64,
    mem_ratio: f64,
    store_ratio: f64,
    stream: f64,
    random: f64,
    chase: f64,
    alloc: AllocPattern,
    mem_pcs: usize,
) -> WorkloadSpec {
    WorkloadSpec {
        name,
        footprint: footprint_mib * MIB,
        mem_ratio,
        store_ratio,
        mix: PatternMix { stream, random, chase },
        alloc,
        mem_pcs,
    }
}

use AllocPattern::{Burst, Chunked, Incremental};

/// The 26 benchmarks that appear on the x-axis of Figs 2/3/5/6/7/9/12/13/
/// 14/16/17, with qualitative parameters chosen to reproduce each one's
/// reported SIPT behaviour. Footprints are scaled to simulator scale
/// (documented in DESIGN.md). Allocation patterns follow the paper's
/// findings: multi-MiB array codes get THP-covered bursts; most integer
/// codes grow their heaps in medium consecutive chunks (high delta
/// stability without huge pages); the seven low-speculation applications
/// plus gcc/xz allocate finely against churned free lists.
pub const BENCHMARKS: &[WorkloadSpec] = &[
    // Games / integer codes: small-to-medium footprints, heavy reuse.
    w("sjeng", 32, 0.33, 0.25, 0.05, 0.10, 0.05, Chunked { chunk_pages: 128 }, 48),
    w("deepsjeng_17", 48, 0.34, 0.25, 0.05, 0.15, 0.05, Incremental { chunk_pages: 1 }, 48),
    w("mcf", 96, 0.40, 0.20, 0.02, 0.30, 0.45, Burst, 32),
    w("mcf_17", 192, 0.40, 0.20, 0.02, 0.30, 0.45, Burst, 32),
    w("h264ref", 24, 0.42, 0.30, 0.45, 0.05, 0.00, Chunked { chunk_pages: 128 }, 64),
    w("x264_17", 32, 0.42, 0.30, 0.45, 0.05, 0.00, Chunked { chunk_pages: 128 }, 64),
    w("gcc", 48, 0.36, 0.30, 0.10, 0.20, 0.10, Incremental { chunk_pages: 2 }, 96),
    w("gobmk", 28, 0.32, 0.28, 0.08, 0.15, 0.05, Chunked { chunk_pages: 64 }, 64),
    w("omnetpp", 64, 0.38, 0.30, 0.03, 0.25, 0.30, Chunked { chunk_pages: 16 }, 64),
    w("hmmer", 16, 0.45, 0.30, 0.55, 0.02, 0.00, Chunked { chunk_pages: 256 }, 32),
    w("perlbench", 40, 0.40, 0.32, 0.10, 0.15, 0.10, Chunked { chunk_pages: 32 }, 96),
    w("bzip2", 32, 0.36, 0.28, 0.35, 0.15, 0.00, Chunked { chunk_pages: 256 }, 48),
    w("libquantum", 128, 0.30, 0.20, 0.90, 0.00, 0.00, Burst, 16),
    w("bwaves", 192, 0.44, 0.25, 0.80, 0.03, 0.00, Burst, 24),
    w("cactusADM", 96, 0.42, 0.30, 0.30, 0.10, 0.00, Incremental { chunk_pages: 1 }, 48),
    w("calculix", 64, 0.40, 0.28, 0.25, 0.10, 0.00, Incremental { chunk_pages: 1 }, 48),
    w("gamess", 24, 0.38, 0.28, 0.30, 0.05, 0.00, Chunked { chunk_pages: 64 }, 48),
    w("GemsFDTD", 192, 0.42, 0.28, 0.85, 0.02, 0.00, Burst, 24),
    w("povray", 16, 0.36, 0.28, 0.10, 0.10, 0.05, Chunked { chunk_pages: 32 }, 64),
    w("gromacs", 48, 0.40, 0.28, 0.25, 0.10, 0.00, Incremental { chunk_pages: 1 }, 48),
    w("graph500", 256, 0.38, 0.15, 0.02, 0.55, 0.25, Incremental { chunk_pages: 1 }, 32),
    w("ycsb", 256, 0.36, 0.30, 0.02, 0.50, 0.15, Incremental { chunk_pages: 1 }, 48),
    w("xalancbmk_17", 64, 0.38, 0.30, 0.05, 0.25, 0.15, Incremental { chunk_pages: 1 }, 96),
    w("leela_17", 32, 0.33, 0.26, 0.08, 0.12, 0.08, Chunked { chunk_pages: 64 }, 64),
    w("exchange2_17", 16, 0.30, 0.24, 0.15, 0.05, 0.00, Chunked { chunk_pages: 128 }, 48),
    w("xz_17", 96, 0.37, 0.30, 0.30, 0.20, 0.00, Incremental { chunk_pages: 2 }, 48),
];

/// Extra benchmarks that appear only inside the Table III mixes.
pub const MIX_ONLY_BENCHMARKS: &[WorkloadSpec] = &[
    w("astar", 48, 0.38, 0.25, 0.05, 0.25, 0.30, Chunked { chunk_pages: 32 }, 48),
    w("lbm", 192, 0.45, 0.35, 0.85, 0.02, 0.00, Burst, 16),
    w("zeusmp", 128, 0.42, 0.30, 0.75, 0.05, 0.00, Burst, 24),
    w("leslie3d", 96, 0.43, 0.28, 0.80, 0.03, 0.00, Burst, 24),
    w("milc", 128, 0.42, 0.28, 0.70, 0.08, 0.00, Burst, 32),
    w("tonto", 32, 0.38, 0.28, 0.30, 0.08, 0.00, Chunked { chunk_pages: 64 }, 48),
    w("soplex", 64, 0.39, 0.25, 0.20, 0.20, 0.10, Incremental { chunk_pages: 8 }, 64),
];

/// Look up a benchmark by name across both tables.
pub fn benchmark(name: &str) -> Option<WorkloadSpec> {
    BENCHMARKS.iter().chain(MIX_ONLY_BENCHMARKS).find(|spec| spec.name == name).copied()
}

/// The paper's seven applications with minority fast accesses at one
/// speculative bit (§IV.A): used by tests and the experiment drivers to
/// check the reproduction preserves the split.
pub const LOW_SPECULATION_APPS: &[&str] =
    &["deepsjeng_17", "cactusADM", "calculix", "graph500", "ycsb", "xalancbmk_17", "gromacs"];

/// Table III: the 11 multiprogrammed quad-core workloads.
pub const MIXES: &[(&str, [&str; 4])] = &[
    ("mix0", ["h264ref", "hmmer", "perlbench", "povray"]),
    ("mix1", ["mcf", "gcc", "bwaves", "cactusADM"]),
    ("mix2", ["gobmk", "calculix", "GemsFDTD", "gromacs"]),
    ("mix3", ["astar", "libquantum", "lbm", "zeusmp"]),
    ("mix4", ["mcf", "perlbench", "leslie3d", "milc"]),
    ("mix5", ["h264ref", "cactusADM", "calculix", "tonto"]),
    ("mix6", ["gcc", "libquantum", "gamess", "povray"]),
    ("mix7", ["sjeng", "omnetpp", "bzip2", "soplex"]),
    ("mix8", ["graph500", "ycsb", "mcf", "povray"]),
    ("mix9", ["mcf_17", "xalancbmk_17", "x264_17", "deepsjeng_17"]),
    ("mix10", ["leela_17", "exchange2_17", "xz_17", "xalancbmk_17"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for spec in BENCHMARKS.iter().chain(MIX_ONLY_BENCHMARKS) {
            spec.validate();
        }
    }

    #[test]
    fn benchmark_roster_matches_figures() {
        assert_eq!(BENCHMARKS.len(), 26, "figures list 26 benchmarks");
        assert!(benchmark("libquantum").is_some());
        assert!(benchmark("soplex").is_some(), "mix-only apps resolvable");
        assert!(benchmark("nonexistent").is_none());
    }

    #[test]
    fn low_speculation_apps_use_fine_grained_allocation() {
        for name in LOW_SPECULATION_APPS {
            let spec = benchmark(name).unwrap();
            match spec.alloc {
                Incremental { chunk_pages } => {
                    assert!(chunk_pages <= 2, "{name}: chunk {chunk_pages} too coarse")
                }
                Burst | Chunked { .. } => {
                    panic!("{name} must allocate incrementally to defeat speculation")
                }
            }
        }
    }

    #[test]
    fn streaming_apps_use_burst_allocation() {
        for name in ["libquantum", "GemsFDTD", "bwaves"] {
            let spec = benchmark(name).unwrap();
            assert_eq!(spec.alloc, Burst, "{name}");
            assert!(spec.mix.stream >= 0.8, "{name} must be streaming");
            // Footprint ≥ 2 MiB so THP can kick in.
            assert!(spec.footprint >= 2 * MIB);
        }
    }

    #[test]
    fn mixes_match_table3() {
        assert_eq!(MIXES.len(), 11);
        for (name, apps) in MIXES {
            assert!(name.starts_with("mix"));
            for app in apps {
                assert!(benchmark(app).is_some(), "{name}: unknown app {app}");
            }
        }
        // Every single-core benchmark except a few appears at least once
        // ("every application is used at least once" refers to the mix
        // candidates; spot-check some).
        let all: Vec<&str> = MIXES.iter().flat_map(|(_, a)| a.iter().copied()).collect();
        for app in ["graph500", "ycsb", "libquantum", "xalancbmk_17"] {
            assert!(all.contains(&app), "{app} missing from mixes");
        }
    }

    #[test]
    fn pattern_mix_hot_remainder() {
        let m = PatternMix { stream: 0.3, random: 0.2, chase: 0.1 };
        assert!((m.hot() - 0.4).abs() < 1e-12);
        m.validate();
    }

    #[test]
    #[should_panic(expected = "fractions exceed 1")]
    fn overfull_mix_panics() {
        PatternMix { stream: 0.8, random: 0.3, chase: 0.1 }.validate();
    }
}
