//! Binary trace serialization.
//!
//! Macsim-style workflows separate trace *capture* from *replay*: a trace
//! is generated once and replayed under many cache configurations. This
//! module gives the synthetic traces the same property — write any
//! `Inst` stream to a compact binary file, read it back later — so long
//! experiments don't pay generation cost per configuration and traces can
//! be shipped between machines.
//!
//! Format (`SIPTTR01`, little-endian):
//!
//! ```text
//! [8]  magic "SIPTTR01"
//! [8]  u64 instruction count
//! per instruction:
//!   [8] pc
//!   [1] flags: bit0 has_dst, bit1 has_src0, bit2 has_src1,
//!              bit3 has_mem, bit4 mem_is_store
//!   [1] dst   (when has_dst)
//!   [1] src0  (when has_src0)
//!   [1] src1  (when has_src1)
//!   [1] exec_latency (1..=255)
//!   [8] mem va (when has_mem)
//! ```

use sipt_cpu::{Inst, MemOp, MemRef};
use sipt_mem::VirtAddr;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"SIPTTR01";

/// Errors reading a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The file ended before the advertised instruction count.
    Truncated,
    /// An instruction record had an invalid encoding.
    BadRecord {
        /// Index of the offending instruction.
        index: u64,
    },
}

impl core::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceFileError::BadMagic => write!(f, "not a SIPT trace file"),
            TraceFileError::Truncated => write!(f, "trace file truncated"),
            TraceFileError::BadRecord { index } => {
                write!(f, "invalid instruction record at index {index}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Write an instruction stream to `w`. Returns the number written.
///
/// # Errors
///
/// Propagates I/O errors; panics never.
pub fn write_trace<W, I>(mut w: W, insts: I) -> Result<u64, TraceFileError>
where
    W: Write,
    I: IntoIterator<Item = Inst>,
{
    // Buffer the body so the count header can be exact for iterators of
    // unknown length.
    let mut body = Vec::new();
    let mut n = 0u64;
    for inst in insts {
        let mut flags = 0u8;
        if inst.dst.is_some() {
            flags |= 1;
        }
        if inst.srcs[0].is_some() {
            flags |= 2;
        }
        if inst.srcs[1].is_some() {
            flags |= 4;
        }
        if let Some(mem) = inst.mem {
            flags |= 8;
            if mem.op == MemOp::Store {
                flags |= 16;
            }
        }
        body.extend_from_slice(&inst.pc.to_le_bytes());
        body.push(flags);
        if let Some(d) = inst.dst {
            body.push(d);
        }
        if let Some(s) = inst.srcs[0] {
            body.push(s);
        }
        if let Some(s) = inst.srcs[1] {
            body.push(s);
        }
        body.push(u8::try_from(inst.exec_latency.clamp(1, 255)).expect("clamped"));
        if let Some(mem) = inst.mem {
            body.extend_from_slice(&mem.va.raw().to_le_bytes());
        }
        n += 1;
    }
    w.write_all(MAGIC)?;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(n)
}

/// Read a complete trace from `r`.
///
/// # Errors
///
/// [`TraceFileError`] on malformed input.
pub fn read_trace<R: Read>(mut r: R) -> Result<Vec<Inst>, TraceFileError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    if buf.len() < 16 || &buf[..8] != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let count = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let mut pos = 16usize;
    let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], TraceFileError> {
        let s = buf.get(*pos..*pos + n).ok_or(TraceFileError::Truncated)?;
        *pos += n;
        Ok(s)
    };
    for index in 0..count {
        let pc = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let flags = take(&mut pos, 1)?[0];
        if flags & !0b1_1111 != 0 {
            return Err(TraceFileError::BadRecord { index });
        }
        let dst = (flags & 1 != 0).then(|| take(&mut pos, 1).map(|b| b[0])).transpose()?;
        let src0 = (flags & 2 != 0).then(|| take(&mut pos, 1).map(|b| b[0])).transpose()?;
        let src1 = (flags & 4 != 0).then(|| take(&mut pos, 1).map(|b| b[0])).transpose()?;
        let exec_latency = take(&mut pos, 1)?[0];
        if exec_latency == 0 {
            return Err(TraceFileError::BadRecord { index });
        }
        let mem = if flags & 8 != 0 {
            let va = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
            Some(MemRef {
                op: if flags & 16 != 0 { MemOp::Store } else { MemOp::Load },
                va: VirtAddr::new(va),
            })
        } else {
            if flags & 16 != 0 {
                return Err(TraceFileError::BadRecord { index });
            }
            None
        };
        out.push(Inst { pc, dst, srcs: [src0, src1], mem, exec_latency: exec_latency as u64 });
    }
    if pos != buf.len() {
        return Err(TraceFileError::Truncated);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_inst() -> impl Strategy<Value = Inst> {
        (
            any::<u64>(),
            proptest::option::of(0u8..64),
            proptest::option::of(0u8..64),
            proptest::option::of(0u8..64),
            proptest::option::of((any::<bool>(), any::<u64>())),
            1u64..=255,
        )
            .prop_map(|(pc, dst, s0, s1, mem, lat)| Inst {
                pc,
                dst,
                srcs: [s0, s1],
                mem: mem.map(|(store, va)| MemRef {
                    op: if store { MemOp::Store } else { MemOp::Load },
                    va: VirtAddr::new(va),
                }),
                exec_latency: lat,
            })
    }

    proptest! {
        #[test]
        fn roundtrip(insts in proptest::collection::vec(arb_inst(), 0..200)) {
            let mut buf = Vec::new();
            let n = write_trace(&mut buf, insts.clone()).unwrap();
            prop_assert_eq!(n, insts.len() as u64);
            let back = read_trace(&buf[..]).unwrap();
            prop_assert_eq!(back, insts);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(read_trace(&b"NOTATRACE_______"[..]), Err(TraceFileError::BadMagic)));
        assert!(matches!(read_trace(&b"short"[..]), Err(TraceFileError::BadMagic)));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        let insts = vec![Inst::alu(1, 2, [Some(3), None]); 4];
        write_trace(&mut buf, insts).unwrap();
        for cut in [buf.len() - 1, 17, 20] {
            assert!(
                matches!(read_trace(&buf[..cut]), Err(TraceFileError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = Vec::new();
        write_trace(&mut buf, vec![Inst::alu(1, 2, [None, None])]).unwrap();
        buf.push(0xFF);
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::Truncated)));
    }

    #[test]
    fn rejects_invalid_flags_and_latency() {
        // Hand-craft a record with reserved flag bits set.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SIPTTR01");
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // pc
        buf.push(0b0010_0000); // reserved bit
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadRecord { index: 0 })));

        let mut buf = Vec::new();
        buf.extend_from_slice(b"SIPTTR01");
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.push(0); // no fields
        buf.push(0); // exec_latency 0 → invalid
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadRecord { index: 0 })));
    }

    #[test]
    fn errors_display_and_chain() {
        let e = TraceFileError::from(io::Error::other("x"));
        assert!(e.to_string().contains("i/o"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&TraceFileError::BadMagic).is_none());
        assert!(!TraceFileError::Truncated.to_string().is_empty());
        assert!(!TraceFileError::BadRecord { index: 3 }.to_string().is_empty());
    }

    #[test]
    fn generated_trace_roundtrips_through_disk_format() {
        use crate::{benchmark, TraceGen};
        use sipt_mem::{AddressSpace, BuddyAllocator, PlacementPolicy};
        let spec = benchmark("sjeng").unwrap();
        let mut phys = BuddyAllocator::with_bytes(1 << 30);
        let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
        let gen = TraceGen::build(&spec, &mut asp, &mut phys, 5_000, 9).unwrap();
        let insts: Vec<Inst> = gen.collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, insts.clone()).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), insts);
        // ~12 bytes per instruction on average: compact enough to ship.
        assert!(buf.len() < insts.len() * 24);
    }
}
