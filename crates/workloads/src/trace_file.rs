//! Binary trace serialization.
//!
//! Macsim-style workflows separate trace *capture* from *replay*: a trace
//! is generated once and replayed under many cache configurations. This
//! module gives the synthetic traces the same property — write any
//! `Inst` stream to a compact binary file, read it back later — so long
//! experiments don't pay generation cost per configuration and traces can
//! be shipped between machines.
//!
//! Format (`SIPTTR01`, little-endian):
//!
//! ```text
//! [8]  magic "SIPTTR01"
//! [8]  u64 instruction count
//! per instruction:
//!   [8] pc
//!   [1] flags: bit0 has_dst, bit1 has_src0, bit2 has_src1,
//!              bit3 has_mem, bit4 mem_is_store
//!   [1] dst   (when has_dst)
//!   [1] src0  (when has_src0)
//!   [1] src1  (when has_src1)
//!   [1] exec_latency (1..=255)
//!   [8] mem va (when has_mem)
//! ```

use sipt_cpu::{Inst, MemOp, MemRef};
use sipt_mem::VirtAddr;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"SIPTTR01";

/// Errors reading a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The file ended before the advertised instruction count.
    Truncated,
    /// The header advertises more instructions than the body could
    /// possibly hold (each record is at least 10 bytes), so the count is
    /// corrupt — rejected before any allocation or record parsing.
    OversizedCount {
        /// Advertised instruction count.
        count: u64,
        /// The most instructions the body could actually contain.
        max_possible: u64,
    },
    /// An instruction record had an invalid encoding.
    BadRecord {
        /// Index of the offending instruction.
        index: u64,
    },
}

impl core::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceFileError::BadMagic => write!(f, "not a SIPT trace file"),
            TraceFileError::Truncated => write!(f, "trace file truncated"),
            TraceFileError::OversizedCount { count, max_possible } => write!(
                f,
                "trace header advertises {count} instructions but the body can hold at most \
                 {max_possible}"
            ),
            TraceFileError::BadRecord { index } => {
                write!(f, "invalid instruction record at index {index}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Write an instruction stream to `w`. Returns the number written.
///
/// # Errors
///
/// Propagates I/O errors; panics never.
pub fn write_trace<W, I>(mut w: W, insts: I) -> Result<u64, TraceFileError>
where
    W: Write,
    I: IntoIterator<Item = Inst>,
{
    // Buffer the body so the count header can be exact for iterators of
    // unknown length.
    let mut body = Vec::new();
    let mut n = 0u64;
    for inst in insts {
        let mut flags = 0u8;
        if inst.dst.is_some() {
            flags |= 1;
        }
        if inst.srcs[0].is_some() {
            flags |= 2;
        }
        if inst.srcs[1].is_some() {
            flags |= 4;
        }
        if let Some(mem) = inst.mem {
            flags |= 8;
            if mem.op == MemOp::Store {
                flags |= 16;
            }
        }
        body.extend_from_slice(&inst.pc.to_le_bytes());
        body.push(flags);
        if let Some(d) = inst.dst {
            body.push(d);
        }
        if let Some(s) = inst.srcs[0] {
            body.push(s);
        }
        if let Some(s) = inst.srcs[1] {
            body.push(s);
        }
        body.push(u8::try_from(inst.exec_latency.clamp(1, 255)).expect("clamped"));
        if let Some(mem) = inst.mem {
            body.extend_from_slice(&mem.va.raw().to_le_bytes());
        }
        n += 1;
    }
    w.write_all(MAGIC)?;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(n)
}

/// Read a complete trace from `r`.
///
/// # Errors
///
/// [`TraceFileError`] on malformed input.
pub fn read_trace<R: Read>(mut r: R) -> Result<Vec<Inst>, TraceFileError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    if buf.len() < 16 || &buf[..8] != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let count = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    // Plausibility-check the advertised count against the body size before
    // allocating or parsing anything: the smallest record (no dst/srcs, no
    // memory reference) is pc[8] + flags[1] + exec_latency[1] = 10 bytes,
    // so a count beyond body_len/10 is corrupt by construction.
    const MIN_RECORD_BYTES: u64 = 10;
    let max_possible = (buf.len() as u64 - 16) / MIN_RECORD_BYTES;
    if count > max_possible {
        return Err(TraceFileError::OversizedCount { count, max_possible });
    }
    let mut pos = 16usize;
    let mut out = Vec::with_capacity(count as usize);
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], TraceFileError> {
        let s = buf.get(*pos..*pos + n).ok_or(TraceFileError::Truncated)?;
        *pos += n;
        Ok(s)
    };
    for index in 0..count {
        let pc = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let flags = take(&mut pos, 1)?[0];
        if flags & !0b1_1111 != 0 {
            return Err(TraceFileError::BadRecord { index });
        }
        let dst = (flags & 1 != 0).then(|| take(&mut pos, 1).map(|b| b[0])).transpose()?;
        let src0 = (flags & 2 != 0).then(|| take(&mut pos, 1).map(|b| b[0])).transpose()?;
        let src1 = (flags & 4 != 0).then(|| take(&mut pos, 1).map(|b| b[0])).transpose()?;
        let exec_latency = take(&mut pos, 1)?[0];
        if exec_latency == 0 {
            return Err(TraceFileError::BadRecord { index });
        }
        let mem = if flags & 8 != 0 {
            let va = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
            Some(MemRef {
                op: if flags & 16 != 0 { MemOp::Store } else { MemOp::Load },
                va: VirtAddr::new(va),
            })
        } else {
            if flags & 16 != 0 {
                return Err(TraceFileError::BadRecord { index });
            }
            None
        };
        out.push(Inst { pc, dst, srcs: [src0, src1], mem, exec_latency: exec_latency as u64 });
    }
    if pos != buf.len() {
        return Err(TraceFileError::Truncated);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_inst() -> impl Strategy<Value = Inst> {
        (
            any::<u64>(),
            proptest::option::of(0u8..64),
            proptest::option::of(0u8..64),
            proptest::option::of(0u8..64),
            proptest::option::of((any::<bool>(), any::<u64>())),
            1u64..=255,
        )
            .prop_map(|(pc, dst, s0, s1, mem, lat)| Inst {
                pc,
                dst,
                srcs: [s0, s1],
                mem: mem.map(|(store, va)| MemRef {
                    op: if store { MemOp::Store } else { MemOp::Load },
                    va: VirtAddr::new(va),
                }),
                exec_latency: lat,
            })
    }

    proptest! {
        #[test]
        fn roundtrip(insts in proptest::collection::vec(arb_inst(), 0..200)) {
            let mut buf = Vec::new();
            let n = write_trace(&mut buf, insts.clone()).unwrap();
            prop_assert_eq!(n, insts.len() as u64);
            let back = read_trace(&buf[..]).unwrap();
            prop_assert_eq!(back, insts);
        }

        /// Fuzz-style robustness: start from a valid trace, then flip a
        /// byte, truncate, or splice garbage. The reader must return a
        /// typed error or a (possibly different) valid trace — never
        /// panic, never mis-round-trip what it accepted.
        #[test]
        fn mutated_byte_streams_never_panic(
            insts in proptest::collection::vec(arb_inst(), 1..40),
            flip_at in any::<u64>(),
            flip_bits in 1u8..=255,
            cut in any::<u64>(),
            splice in proptest::collection::vec(any::<u8>(), 0..32),
        ) {
            let mut buf = Vec::new();
            write_trace(&mut buf, insts).unwrap();
            // Mutation 1: flip bits in one byte.
            let mut flipped = buf.clone();
            let at = (flip_at % flipped.len() as u64) as usize;
            flipped[at] ^= flip_bits;
            // Mutation 2: truncate at an arbitrary point.
            let mut cut_buf = buf.clone();
            cut_buf.truncate((cut % (buf.len() as u64 + 1)) as usize);
            // Mutation 3: append arbitrary garbage.
            let mut spliced = buf.clone();
            spliced.extend_from_slice(&splice);
            for mutant in [flipped, cut_buf, spliced] {
                // A typed verdict either way; round-trip only obligated
                // for accepted inputs.
                if let Ok(parsed) = read_trace(&mutant[..]) {
                    let mut rewritten = Vec::new();
                    write_trace(&mut rewritten, parsed.clone()).unwrap();
                    prop_assert_eq!(read_trace(&rewritten[..]).unwrap(), parsed);
                }
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(read_trace(&b"NOTATRACE_______"[..]), Err(TraceFileError::BadMagic)));
        assert!(matches!(read_trace(&b"short"[..]), Err(TraceFileError::BadMagic)));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        let insts = vec![Inst::alu(1, 2, [Some(3), None]); 4];
        write_trace(&mut buf, insts).unwrap();
        // Cutting a record mid-body is reported as truncation; cutting so
        // deep that the count itself becomes implausible is reported as an
        // oversized count — either way the reader refuses, with no panic.
        assert!(matches!(read_trace(&buf[..buf.len() - 1]), Err(TraceFileError::Truncated)));
        for cut in [17, 20] {
            assert!(
                matches!(
                    read_trace(&buf[..cut]),
                    Err(TraceFileError::Truncated | TraceFileError::OversizedCount { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rejects_oversized_count_before_allocating() {
        // A header advertising u64::MAX instructions over a 10-byte body
        // must be rejected up front (no with_capacity explosion, no parse).
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SIPTTR01");
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 10]);
        match read_trace(&buf[..]) {
            Err(TraceFileError::OversizedCount { count, max_possible }) => {
                assert_eq!(count, u64::MAX);
                assert_eq!(max_possible, 1);
            }
            other => panic!("expected OversizedCount, got {other:?}"),
        }
        // Exactly-plausible counts still parse (1 minimal record).
        let mut ok = Vec::new();
        ok.extend_from_slice(b"SIPTTR01");
        ok.extend_from_slice(&1u64.to_le_bytes());
        ok.extend_from_slice(&7u64.to_le_bytes()); // pc
        ok.push(0); // flags: no fields
        ok.push(3); // exec_latency
        assert_eq!(read_trace(&ok[..]).unwrap().len(), 1);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = Vec::new();
        write_trace(&mut buf, vec![Inst::alu(1, 2, [None, None])]).unwrap();
        buf.push(0xFF);
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::Truncated)));
    }

    #[test]
    fn rejects_invalid_flags_and_latency() {
        // Hand-craft a record with reserved flag bits set.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SIPTTR01");
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // pc
        buf.push(0b0010_0000); // reserved bit
        buf.push(1); // exec_latency (body now plausibly holds one record)
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadRecord { index: 0 })));

        let mut buf = Vec::new();
        buf.extend_from_slice(b"SIPTTR01");
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.push(0); // no fields
        buf.push(0); // exec_latency 0 → invalid
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadRecord { index: 0 })));
    }

    #[test]
    fn errors_display_and_chain() {
        let e = TraceFileError::from(io::Error::other("x"));
        assert!(e.to_string().contains("i/o"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&TraceFileError::BadMagic).is_none());
        assert!(!TraceFileError::Truncated.to_string().is_empty());
        assert!(!TraceFileError::BadRecord { index: 3 }.to_string().is_empty());
    }

    #[test]
    fn generated_trace_roundtrips_through_disk_format() {
        use crate::{benchmark, TraceGen};
        use sipt_mem::{AddressSpace, BuddyAllocator, PlacementPolicy};
        let spec = benchmark("sjeng").unwrap();
        let mut phys = BuddyAllocator::with_bytes(1 << 30);
        let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
        let gen = TraceGen::build(&spec, &mut asp, &mut phys, 5_000, 9).unwrap();
        let insts: Vec<Inst> = gen.collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, insts.clone()).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), insts);
        // ~12 bytes per instruction on average: compact enough to ship.
        assert!(buf.len() < insts.len() * 24);
    }
}
