#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-workloads — synthetic benchmarks for the SIPT reproduction
//!
//! Stand-ins for the paper's SPEC CPU 2006/2017 + graph500 + DBx1000-ycsb
//! workloads. Each benchmark is a [`WorkloadSpec`] preset whose parameters
//! (footprint, pattern mix, memory-op density, and — decisive for SIPT —
//! *allocation granularity*) were chosen to reproduce the qualitative
//! behaviour the paper reports per application; [`TraceGen`] turns a spec
//! into a deterministic instruction stream whose memory is allocated
//! through the live OS model, so VA→PA deltas come from the buddy
//! allocator, not from synthetic assumptions.
//!
//! ```
//! use sipt_workloads::{benchmark, TraceGen};
//! use sipt_mem::{AddressSpace, BuddyAllocator, PlacementPolicy};
//!
//! # fn main() -> Result<(), sipt_mem::MemError> {
//! let spec = benchmark("libquantum").expect("preset exists");
//! let mut phys = BuddyAllocator::with_bytes(2 << 30);
//! let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
//! let trace = TraceGen::build(&spec, &mut asp, &mut phys, 1_000, 42)?;
//! assert_eq!(trace.count(), 1_000);
//! # Ok(())
//! # }
//! ```

pub mod gen;
pub mod materialized;
pub mod spec;
pub mod trace_file;

pub use gen::{Layout, TraceGen};
pub use materialized::{InstBlock, MaterializedTrace, TraceCursor};
pub use spec::{
    benchmark, AllocPattern, PatternMix, WorkloadSpec, BENCHMARKS, LOW_SPECULATION_APPS, MIXES,
    MIX_ONLY_BENCHMARKS,
};
pub use trace_file::{read_trace, write_trace, TraceFileError};
