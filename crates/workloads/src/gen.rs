//! The synthetic trace generator.
//!
//! [`TraceGen::build`] allocates a workload's memory through the OS model
//! (so the page table and VA→PA deltas are *real*, produced by the buddy
//! allocator under the chosen placement policy) and then emits a
//! deterministic instruction stream in which every static memory PC has a
//! stable role — streaming a slice, probing a hash region, chasing
//! pointers, or hammering a hot set — mirroring how real load PCs behave
//! and giving the PC-indexed SIPT predictors something learnable.

use crate::spec::{AllocPattern, WorkloadSpec};
use sipt_cpu::{Inst, MemOp, MemRef};
use sipt_mem::{AddressSpace, BuddyAllocator, MemError, Region, VirtAddr, PAGE_SIZE};
use sipt_rng::{Rng, SeedableRng, StdRng};

/// The workload's view of its memory: the mmap'd regions flattened into
/// one linear space of `bytes` bytes.
#[derive(Debug, Clone)]
pub struct Layout {
    regions: Vec<Region>,
    /// Cumulative starting offset of each region in the linear space.
    cumulative: Vec<u64>,
    bytes: u64,
}

impl Layout {
    fn new(regions: Vec<Region>) -> Self {
        let mut cumulative = Vec::with_capacity(regions.len());
        let mut total = 0;
        for r in &regions {
            cumulative.push(total);
            total += r.bytes();
        }
        Self { regions, cumulative, bytes: total }
    }

    /// Total bytes mapped.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Translate a linear offset into a virtual address.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= bytes()`.
    pub fn va_of(&self, offset: u64) -> VirtAddr {
        assert!(offset < self.bytes, "offset {offset} beyond layout ({})", self.bytes);
        let idx = match self.cumulative.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        self.regions[idx].start + (offset - self.cumulative[idx])
    }
}

/// The per-static-PC address-generation role.
///
/// Real load PCs exhibit strong *page-level* temporal locality: a PC that
/// touches a page usually touches it many more times before moving on.
/// This is what makes both the bypass perceptron and the IDB effective
/// (paper §VI: "only the first access to a page will mispredict; there are
/// typically many L1 accesses per page"), so the random/chase roles work
/// in page-bursts rather than drawing a fresh page per access.
#[derive(Debug, Clone)]
enum Role {
    /// Sequential sweep of `[lo, hi)` at `stride` bytes, wrapping.
    Stream { cursor: u64, stride: u64, lo: u64, hi: u64 },
    /// Random paged bursts over `[lo, hi)`: pick a page, walk `burst_left`
    /// sequential 16-byte steps inside it, then jump to a new page.
    Burst { lo: u64, hi: u64, page: u64, step: u64, burst_left: u32 },
    /// Alternating paged bursts: one PC ping-pongs between *two* pages
    /// (e.g. `dst[i] = f(src[i])` loops). When the two pages have
    /// different VA→PA deltas, the speculation outcome alternates — the
    /// access pattern saturating counters cannot learn but a
    /// global-history perceptron can (paper §V).
    AltBurst { lo: u64, hi: u64, pages: [u64; 2], step: u64, burst_left: u32, toggle: bool },
    /// Dependent pointer chase with the same paged-burst structure: the
    /// next address needs the previous load's value (node clusters).
    Chase { lo: u64, hi: u64, page: u64, step: u64, burst_left: u32 },
    /// Hot-set reuse: mostly a tiny per-PC working set (`tiny` bytes at
    /// `slice_lo`), with a uniform tail over the PC's whole slice that
    /// gives larger caches something to catch.
    Hot { slice_lo: u64, slice_hi: u64, tiny: u64 },
}

#[derive(Debug, Clone)]
struct StaticMem {
    pc: u64,
    role: Role,
}

/// Registers: 0–15 ALU rotating pool, 16 chase register, 32–47 load
/// destinations.
const ALU_REGS: u8 = 16;
const CHASE_REG: u8 = 16;
const LOAD_REG_BASE: u8 = 32;
const LOAD_REGS: u8 = 16;

/// A deterministic synthetic instruction stream.
///
/// Produced by [`TraceGen::build`]; consumed as an `Iterator<Item = Inst>`
/// by the core timing models.
#[derive(Debug, Clone)]
pub struct TraceGen {
    statics: Vec<StaticMem>,
    layout: Layout,
    mem_ratio: f64,
    store_ratio: f64,
    rng: StdRng,
    remaining: u64,
    alu_rot: u8,
    load_rot: u8,
    last_alu_dst: u8,
    /// Temporal clustering of static memory PCs (basic-block locality):
    /// the current static and how many more memory ops stay with it.
    cur_static: usize,
    static_run_left: u32,
}

impl TraceGen {
    /// Allocate `spec`'s memory in `asp` (backed by `phys`) and construct
    /// the generator for `instructions` dynamic instructions.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] if physical memory cannot back the
    /// footprint.
    pub fn build(
        spec: &WorkloadSpec,
        asp: &mut AddressSpace,
        phys: &mut BuddyAllocator,
        instructions: u64,
        seed: u64,
    ) -> Result<Self, MemError> {
        spec.validate();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51B7_7EAC);
        let mut regions = Vec::new();
        match spec.alloc {
            AllocPattern::Burst => {
                regions.push(asp.mmap(spec.footprint, phys)?);
            }
            AllocPattern::Chunked { chunk_pages } => {
                // Heap growth in medium chunks against intact free lists:
                // consecutive chunks split consecutively out of large buddy
                // blocks, so VA→PA deltas stay constant across chunks.
                let chunk = chunk_pages * PAGE_SIZE;
                let mut mapped = 0;
                while mapped < spec.footprint {
                    regions.push(asp.mmap(chunk.min(spec.footprint - mapped), phys)?);
                    mapped += chunk;
                }
            }
            AllocPattern::Incremental { chunk_pages } => {
                // A program that grows its heap in small increments does so
                // over time, interleaved with the rest of the system's
                // allocator traffic; on a machine with any uptime the buddy
                // free lists hold scattered singles, so successive small
                // allocations do NOT receive consecutive frames. Model that
                // churn: pin a random pool, free part of it as scattered
                // holes, let the workload allocate from the holes, then
                // release the pool.
                let pages = spec.footprint.div_ceil(PAGE_SIZE);
                let order = chunk_pages.next_power_of_two().trailing_zeros();
                let hold = churn_begin(phys, pages, order, &mut rng)?;
                let chunk = chunk_pages * PAGE_SIZE;
                let mut mapped = 0;
                while mapped < spec.footprint {
                    regions.push(asp.mmap(chunk.min(spec.footprint - mapped), phys)?);
                    mapped += chunk;
                }
                for block in hold {
                    phys.free(block);
                }
            }
        }
        let layout = Layout::new(regions);

        // Partition the static PCs across roles per the pattern mix.
        let n = spec.mem_pcs;
        let n_stream = (spec.mix.stream * n as f64).round() as usize;
        let n_random = (spec.mix.random * n as f64).round() as usize;
        let n_chase = (spec.mix.chase * n as f64).round() as usize;
        let bytes = layout.bytes();
        // Each hot PC owns one page worth of structure (stack frames,
        // accumulators, index nodes); keeping it within a single page is
        // both realistic and what keeps the D-TLB hit rate high.
        let hot_slice = PAGE_SIZE.min(bytes / 2).max(64);
        let mut statics = Vec::with_capacity(n);
        for i in 0..n {
            // Spread PCs so they don't trivially collide modulo the
            // 64-entry predictor tables.
            let pc = 0x40_0000 + (i as u64) * 0x9E5;
            let role = if i < n_stream {
                // Each streamer sweeps its own slice of the footprint.
                let slice = bytes / n_stream.max(1) as u64;
                let lo = slice * i as u64;
                let hi = (lo + slice).min(bytes);
                Role::Stream { cursor: 0, stride: 8, lo, hi: hi.max(lo + 64) }
            } else if i < n_stream + n_random {
                if i % 3 == 0 {
                    Role::AltBurst {
                        lo: 0,
                        hi: bytes,
                        pages: [0, 0],
                        step: 0,
                        burst_left: 0,
                        toggle: false,
                    }
                } else {
                    Role::Burst { lo: 0, hi: bytes, page: 0, step: 0, burst_left: 0 }
                }
            } else if i < n_stream + n_random + n_chase {
                Role::Chase { lo: 0, hi: bytes, page: 0, step: 0, burst_left: 0 }
            } else {
                let k = (i - n_stream - n_random - n_chase) as u64;
                // Random page-aligned placement (structures scattered over
                // the heap); per-PC hot-set sizes vary (256 B – 2 KiB) so
                // the aggregate hot working set straddles the L1
                // capacities under study.
                let slice_lo = if bytes > 2 * hot_slice {
                    rng.gen_range(0..bytes / hot_slice - 1) * hot_slice
                } else {
                    0
                };
                Role::Hot {
                    slice_lo,
                    slice_hi: (slice_lo + hot_slice).min(bytes),
                    tiny: (256 << (k % 4)).min(hot_slice / 2),
                }
            };
            statics.push(StaticMem { pc, role });
        }
        // Ensure at least one memory PC exists.
        if statics.is_empty() {
            statics.push(StaticMem {
                pc: 0x40_0000,
                role: Role::Hot { slice_lo: 0, slice_hi: hot_slice.min(bytes), tiny: 256 },
            });
        }
        let _ = rng.next_u64(); // decouple seed streams

        Ok(Self {
            statics,
            layout,
            mem_ratio: spec.mem_ratio,
            store_ratio: spec.store_ratio,
            rng,
            remaining: instructions,
            alu_rot: 0,
            load_rot: 0,
            last_alu_dst: 0,
            cur_static: 0,
            static_run_left: 0,
        })
    }

    /// The memory layout (for experiments that post-process addresses).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Advance a paged-burst role: sequential 16-byte steps within one
    /// page, a fresh random page when the burst drains.
    fn burst_step(
        rng: &mut StdRng,
        lo: u64,
        hi: u64,
        page: &mut u64,
        step: &mut u64,
        burst_left: &mut u32,
    ) -> u64 {
        use sipt_mem::PAGE_SIZE;
        if *burst_left == 0 {
            let first_page = lo / PAGE_SIZE;
            let last_page = (hi.saturating_sub(8)) / PAGE_SIZE;
            *page = rng.gen_range(first_page..=last_page);
            *step = rng.gen_range(0..PAGE_SIZE / 8);
            *burst_left = rng.gen_range(64..=256);
        }
        *burst_left -= 1;
        let off_in_page = (*step * 8) % PAGE_SIZE;
        *step += 1;
        (*page * PAGE_SIZE + off_in_page).clamp(lo, hi - 8)
    }

    fn gen_mem(&mut self) -> Inst {
        if self.static_run_left == 0 {
            self.cur_static = self.rng.gen_range(0..self.statics.len());
            // Streaming kernels are tight inner loops sweeping long
            // extents back-to-back, so a streamer PC keeps issuing far
            // longer before the program moves on; irregular roles
            // (chases, hash probes, hot structures) have short bodies.
            // The asymmetry is what lets streams keep a DRAM row open
            // while a pointer chase keeps paying activations.
            self.static_run_left = match self.statics[self.cur_static].role {
                Role::Stream { .. } => self.rng.gen_range(32..=128),
                _ => self.rng.gen_range(4..=16),
            };
        }
        self.static_run_left -= 1;
        let idx = self.cur_static;
        let bytes = self.layout.bytes();
        let (pc, offset, is_chase) = {
            let s = &mut self.statics[idx];
            match &mut s.role {
                Role::Stream { cursor, stride, lo, hi } => {
                    let span = *hi - *lo;
                    let off = *lo + *cursor;
                    *cursor = (*cursor + *stride) % span;
                    (s.pc, off.min(bytes - 8), false)
                }
                Role::Burst { lo, hi, page, step, burst_left } => {
                    let off = Self::burst_step(&mut self.rng, *lo, *hi, page, step, burst_left);
                    (s.pc, off, false)
                }
                Role::AltBurst { lo, hi, pages, step, burst_left, toggle } => {
                    use sipt_mem::PAGE_SIZE;
                    if *burst_left == 0 {
                        let first = *lo / PAGE_SIZE;
                        let last = (hi.saturating_sub(8)) / PAGE_SIZE;
                        pages[0] = self.rng.gen_range(first..=last);
                        pages[1] = self.rng.gen_range(first..=last);
                        *step = self.rng.gen_range(0..PAGE_SIZE / 8);
                        *burst_left = self.rng.gen_range(64..=256);
                    }
                    *burst_left -= 1;
                    let page = pages[*toggle as usize];
                    *toggle = !*toggle;
                    let off_in_page = (*step * 8) % PAGE_SIZE;
                    if *toggle {
                        *step += 1; // advance once per A/B pair
                    }
                    let off = (page * PAGE_SIZE + off_in_page).clamp(*lo, *hi - 8);
                    (s.pc, off, false)
                }
                Role::Chase { lo, hi, page, step, burst_left } => {
                    let off = Self::burst_step(&mut self.rng, *lo, *hi, page, step, burst_left);
                    (s.pc, off, true)
                }
                Role::Hot { slice_lo, slice_hi, tiny } => {
                    // Most accesses hit the tiny set; the tail sweeps the
                    // whole slice (capacity-sensitive component).
                    let off = if self.rng.gen_bool(0.92) {
                        *slice_lo + (self.rng.gen_range(0..*tiny) & !7)
                    } else {
                        self.rng.gen_range(*slice_lo..*slice_hi - 8) & !7
                    };
                    (s.pc, off, false)
                }
            }
        };
        let va = self.layout.va_of(offset);
        if is_chase {
            // Serialize: the address depends on the previous chased value.
            Inst {
                pc,
                dst: Some(CHASE_REG),
                srcs: [Some(CHASE_REG), None],
                mem: Some(MemRef { op: MemOp::Load, va }),
                exec_latency: 1,
            }
        } else if self.rng.gen_bool(self.store_ratio) {
            Inst::store(pc, Some(self.last_alu_dst), None, va)
        } else {
            let dst = LOAD_REG_BASE + (self.load_rot % LOAD_REGS);
            self.load_rot = self.load_rot.wrapping_add(1);
            // Half of the loads take their address from a recent ALU
            // result, coupling them into the dependence graph.
            let addr_reg = if self.rng.gen_bool(0.5) { Some(self.last_alu_dst) } else { None };
            Inst::load(pc, dst, addr_reg, va)
        }
    }

    fn gen_alu(&mut self) -> Inst {
        let dst = self.alu_rot % ALU_REGS;
        self.alu_rot = self.alu_rot.wrapping_add(1);
        // Short dependence chains with real ILP: 40% of ALU ops extend the
        // previous chain (mean chain length ≈ 1.7), 30% consume the most
        // recent load result, the rest are independent.
        let src1 = self.rng.gen_bool(0.4).then_some(self.last_alu_dst);
        let src2 = self
            .rng
            .gen_bool(0.3)
            .then(|| LOAD_REG_BASE + self.load_rot.wrapping_sub(1) % LOAD_REGS);
        let mut inst = Inst::alu(0x10_0000 + dst as u64 * 4, dst, [src1, src2]);
        if self.rng.gen_bool(0.1) {
            inst.exec_latency = 3; // multiplies etc.
        }
        self.last_alu_dst = dst;
        inst
    }
}

/// Scramble the buddy allocator's free lists the way long-running system
/// activity does. Pins `~3×pages` frames as uniformly random blocks of
/// `2^order` frames, then frees ~40% of them in random order: because the
/// neighbours of a freed block are mostly still pinned, the freed blocks
/// stay on the order-`order` list scattered at random positions, and the
/// workload's subsequent `2^order`-page allocations pop *random* blocks
/// instead of splitting memory sequentially. The returned blocks must be
/// freed once the workload has allocated.
fn churn_begin(
    phys: &mut BuddyAllocator,
    pages: u64,
    order: u32,
    rng: &mut StdRng,
) -> Result<Vec<sipt_mem::FrameBlock>, MemError> {
    let block_pages = 1u64 << order;
    let free = phys.free_frames();
    let grab_blocks =
        (pages * 3 / block_pages).min(free.saturating_sub(pages / 8) * 3 / 4 / block_pages);
    let scatter_blocks = (pages + pages / 4).div_ceil(block_pages).min(grab_blocks * 2 / 5);
    let mut held = Vec::with_capacity(grab_blocks as usize);
    for _ in 0..grab_blocks {
        held.push(phys.alloc_random_block(order, rng)?);
    }
    for _ in 0..scatter_blocks {
        let i = rng.gen_range(0..held.len());
        phys.free(held.swap_remove(i));
    }
    Ok(held)
}

impl Iterator for TraceGen {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.rng.gen_bool(self.mem_ratio) {
            Some(self.gen_mem())
        } else {
            Some(self.gen_alu())
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceGen {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{benchmark, BENCHMARKS};
    use sipt_mem::PlacementPolicy;

    fn build_for(name: &str, instructions: u64) -> (TraceGen, AddressSpace) {
        let spec = benchmark(name).unwrap();
        let mut phys = BuddyAllocator::with_bytes(2 << 30);
        let mut asp = AddressSpace::new(1, PlacementPolicy::LinuxDefault);
        let gen = TraceGen::build(&spec, &mut asp, &mut phys, instructions, 42).unwrap();
        (gen, asp)
    }

    #[test]
    fn generates_exactly_n_instructions() {
        let (gen, _asp) = build_for("sjeng", 10_000);
        assert_eq!(gen.count(), 10_000);
    }

    #[test]
    fn deterministic_across_builds() {
        let (gen_a, _a) = build_for("mcf", 5_000);
        let (gen_b, _b) = build_for("mcf", 5_000);
        let a: Vec<Inst> = gen_a.collect();
        let b: Vec<Inst> = gen_b.collect();
        assert_eq!(a, b);
    }

    #[test]
    fn every_memory_address_is_mapped() {
        let (gen, asp) = build_for("gcc", 20_000);
        let mut mem_ops = 0;
        for inst in gen {
            if let Some(mem) = inst.mem {
                mem_ops += 1;
                assert!(asp.translate(mem.va).is_some(), "unmapped access at {}", mem.va);
            }
        }
        assert!(mem_ops > 5_000, "gcc should be ~36% memory ops, got {mem_ops}");
    }

    #[test]
    fn mem_ratio_is_respected() {
        let spec = benchmark("hmmer").unwrap(); // mem_ratio 0.45
        let (gen, _asp) = build_for("hmmer", 50_000);
        let mem_ops = gen.filter(Inst::is_mem).count();
        let ratio = mem_ops as f64 / 50_000.0;
        assert!((ratio - spec.mem_ratio).abs() < 0.02, "ratio = {ratio}");
    }

    #[test]
    fn store_ratio_roughly_respected() {
        let (gen, _asp) = build_for("bzip2", 50_000);
        let (mut loads, mut stores) = (0u64, 0u64);
        for inst in gen {
            match inst.mem.map(|m| m.op) {
                Some(MemOp::Load) => loads += 1,
                Some(MemOp::Store) => stores += 1,
                None => {}
            }
        }
        let ratio = stores as f64 / (loads + stores) as f64;
        // Chase loads never become stores, so observed ratio ≤ spec.
        assert!((0.1..0.4).contains(&ratio), "store ratio = {ratio}");
    }

    #[test]
    fn streaming_workload_has_spatial_locality() {
        let (gen, _asp) = build_for("libquantum", 40_000);
        let mut addrs: Vec<u64> = Vec::new();
        for inst in gen {
            if let Some(mem) = inst.mem {
                addrs.push(mem.va.raw());
            }
        }
        // Count accesses that touch the same 64 B line as some earlier
        // nearby access: streaming at stride 16 revisits each line 4×.
        let mut same_line = 0;
        let mut seen = std::collections::HashSet::new();
        for a in &addrs {
            if !seen.insert(a >> 6) {
                same_line += 1;
            }
        }
        let frac = same_line as f64 / addrs.len() as f64;
        assert!(frac > 0.5, "line reuse fraction = {frac}");
    }

    #[test]
    fn chase_instructions_are_self_dependent() {
        let (gen, _asp) = build_for("mcf", 50_000);
        let chases: Vec<Inst> =
            gen.filter(|i| i.mem.is_some() && i.dst == Some(CHASE_REG)).collect();
        assert!(!chases.is_empty(), "mcf must emit pointer chases");
        for c in &chases {
            assert_eq!(c.srcs[0], Some(CHASE_REG), "chase must read its own register");
        }
    }

    #[test]
    fn incremental_allocation_creates_many_regions() {
        let spec = benchmark("calculix").unwrap();
        let mut phys = BuddyAllocator::with_bytes(2 << 30);
        let mut asp = AddressSpace::new(1, PlacementPolicy::LinuxDefault);
        let _gen = TraceGen::build(&spec, &mut asp, &mut phys, 100, 1).unwrap();
        assert!(
            asp.regions().count() > 1000,
            "single-page chunks: {} regions",
            asp.regions().count()
        );
        assert_eq!(asp.huge_page_fraction(), 0.0, "tiny chunks can never be huge");
    }

    #[test]
    fn burst_allocation_is_single_region_with_huge_pages() {
        let spec = benchmark("libquantum").unwrap();
        let mut phys = BuddyAllocator::with_bytes(2 << 30);
        let mut asp = AddressSpace::new(1, PlacementPolicy::LinuxDefault);
        let _gen = TraceGen::build(&spec, &mut asp, &mut phys, 100, 1).unwrap();
        assert_eq!(asp.regions().count(), 1);
        assert!(asp.huge_page_fraction() > 0.99);
    }

    #[test]
    fn all_benchmarks_build_in_2gib() {
        for spec in BENCHMARKS {
            let mut phys = BuddyAllocator::with_bytes(2 << 30);
            let mut asp = AddressSpace::new(1, PlacementPolicy::LinuxDefault);
            let gen = TraceGen::build(spec, &mut asp, &mut phys, 10, 7)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(gen.layout().bytes(), spec.footprint.div_ceil(4096) * 4096);
        }
    }

    #[test]
    fn layout_va_of_is_monotone_within_region() {
        let (gen, _asp) = build_for("sjeng", 0);
        let l = gen.layout();
        assert_eq!(l.va_of(0).raw() + 100, l.va_of(100).raw());
    }

    #[test]
    #[should_panic(expected = "beyond layout")]
    fn layout_bounds_checked() {
        let (gen, _asp) = build_for("sjeng", 0);
        let _ = gen.layout().va_of(u64::MAX);
    }
}
