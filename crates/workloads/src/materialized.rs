//! Compact, replayable traces.
//!
//! [`TraceGen`] is a *generator*: every [`Inst`] it yields costs RNG
//! draws and role bookkeeping, and a drained generator is gone — running
//! five L1 configurations over the same benchmark meant generating the
//! same stream five times. [`MaterializedTrace`] drains a generator
//! **once** into a structure-of-arrays encoding (packed `pc`/register
//! metadata plus a side array of memory addresses — no per-`Inst`
//! `Option` padding) and replays it any number of times through
//! [`MaterializedTrace::cursor`], a zero-allocation iterator that yields
//! bit-identical `Inst`s. All randomness is spent at materialization
//! time; replay is pure array walking.
//!
//! Per instruction the encoding stores 12 bytes (8-byte PC + 4-byte
//! metadata word, layout defined in `sipt-cpu`) plus 8 bytes per memory
//! reference, versus 56 bytes for a `Vec<Inst>`.

use crate::gen::TraceGen;
use sipt_cpu::{meta_has_mem, pack_inst_meta, unpack_inst_meta, Inst};
use sipt_mem::VirtAddr;

/// A drained, immutable instruction stream in structure-of-arrays form.
///
/// Build once with [`MaterializedTrace::from_gen`]; replay freely with
/// [`MaterializedTrace::cursor`]. Two cursors over the same trace yield
/// identical streams, and the stream is bit-identical to what the
/// original generator would have produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedTrace {
    /// Program counter of each instruction.
    pcs: Vec<u64>,
    /// Packed non-address metadata (see `sipt_cpu::pack_inst_meta`).
    meta: Vec<u32>,
    /// Virtual addresses of memory references, in stream order; the
    /// cursor consumes one entry per metadata word with the mem bit set.
    mem_vas: Vec<u64>,
}

impl MaterializedTrace {
    /// Drain `gen` to completion, spending all of its RNG work now so
    /// that replay does none.
    pub fn from_gen(gen: TraceGen) -> Self {
        let (lower, upper) = gen.size_hint();
        let n = upper.unwrap_or(lower);
        let mut trace =
            Self { pcs: Vec::with_capacity(n), meta: Vec::with_capacity(n), mem_vas: Vec::new() };
        for inst in gen {
            trace.push(&inst);
        }
        trace.mem_vas.shrink_to_fit();
        trace
    }

    /// Materialize an arbitrary instruction sequence (trace files,
    /// hand-built tests).
    pub fn from_insts<I: IntoIterator<Item = Inst>>(insts: I) -> Self {
        let mut trace = Self { pcs: Vec::new(), meta: Vec::new(), mem_vas: Vec::new() };
        for inst in insts {
            trace.push(&inst);
        }
        trace
    }

    fn push(&mut self, inst: &Inst) {
        self.pcs.push(inst.pc);
        self.meta.push(pack_inst_meta(inst));
        if let Some(mem) = inst.mem {
            self.mem_vas.push(mem.va.raw());
        }
    }

    /// Number of instructions in the trace.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the trace holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Number of memory references in the trace.
    pub fn mem_refs(&self) -> usize {
        self.mem_vas.len()
    }

    /// Resident bytes of the encoding (for cache accounting).
    pub fn bytes(&self) -> usize {
        self.pcs.len() * std::mem::size_of::<u64>()
            + self.meta.len() * std::mem::size_of::<u32>()
            + self.mem_vas.len() * std::mem::size_of::<u64>()
    }

    /// A zero-allocation replay cursor starting at the first instruction.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor { trace: self, idx: 0, mem_idx: 0 }
    }
}

/// Zero-allocation replay iterator over a [`MaterializedTrace`].
///
/// Yields owned [`Inst`]s (they are `Copy`) reconstructed from the
/// packed arrays; supports partial consumption — e.g.
/// `(&mut cursor).take(warmup)` followed by draining the rest — without
/// losing its position.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a MaterializedTrace,
    idx: usize,
    mem_idx: usize,
}

/// A borrowed view of up to one batch of consecutive instructions in
/// structure-of-arrays form, yielded by [`TraceCursor::next_block`].
///
/// `pcs` and `meta` are parallel (one entry per instruction); `mem_vas`
/// holds the block's memory references in stream order, one per `meta`
/// word with the mem bit set. Block-replay kernels decode `meta` with
/// `sipt_cpu::unpack_meta_fields` and batch-translate `mem_vas` without
/// materializing `Inst` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstBlock<'a> {
    /// Program counter of each instruction in the block.
    pub pcs: &'a [u64],
    /// Packed non-address metadata, parallel to `pcs`.
    pub meta: &'a [u32],
    /// Virtual addresses of the block's memory references, in order.
    pub mem_vas: &'a [u64],
}

impl InstBlock<'_> {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }
}

impl<'a> TraceCursor<'a> {
    /// Yield the next block of at most `max` instructions as raw SoA
    /// slices, advancing the cursor past them. Returns `None` when the
    /// trace is exhausted (or `max == 0`). Interleaves freely with
    /// `Iterator::next`: both consume the same position.
    pub fn next_block(&mut self, max: usize) -> Option<InstBlock<'a>> {
        if self.idx >= self.trace.len() || max == 0 {
            return None;
        }
        let end = (self.idx + max).min(self.trace.len());
        let meta = &self.trace.meta[self.idx..end];
        let n_mem = meta.iter().filter(|&&m| meta_has_mem(m)).count();
        let block = InstBlock {
            pcs: &self.trace.pcs[self.idx..end],
            meta,
            mem_vas: &self.trace.mem_vas[self.mem_idx..self.mem_idx + n_mem],
        };
        self.idx = end;
        self.mem_idx += n_mem;
        Some(block)
    }
}

impl Iterator for TraceCursor<'_> {
    type Item = Inst;

    #[inline]
    fn next(&mut self) -> Option<Inst> {
        let meta = *self.trace.meta.get(self.idx)?;
        let pc = self.trace.pcs[self.idx];
        self.idx += 1;
        let va = meta_has_mem(meta).then(|| {
            let raw = self.trace.mem_vas[self.mem_idx];
            self.mem_idx += 1;
            VirtAddr::new(raw)
        });
        Some(unpack_inst_meta(meta, pc, va))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.trace.len() - self.idx;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceCursor<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::benchmark;
    use sipt_mem::{AddressSpace, BuddyAllocator, PlacementPolicy};

    fn gen_for(name: &str, instructions: u64) -> TraceGen {
        let spec = benchmark(name).unwrap();
        let mut phys = BuddyAllocator::with_bytes(2 << 30);
        let mut asp = AddressSpace::new(1, PlacementPolicy::LinuxDefault);
        TraceGen::build(&spec, &mut asp, &mut phys, instructions, 42).unwrap()
    }

    #[test]
    fn replay_is_bit_identical_to_the_generator() {
        let reference: Vec<Inst> = gen_for("mcf", 20_000).collect();
        let trace = MaterializedTrace::from_gen(gen_for("mcf", 20_000));
        assert_eq!(trace.len(), reference.len());
        let replayed: Vec<Inst> = trace.cursor().collect();
        assert_eq!(replayed, reference);
    }

    #[test]
    fn replay_is_repeatable() {
        let trace = MaterializedTrace::from_gen(gen_for("gcc", 10_000));
        let a: Vec<Inst> = trace.cursor().collect();
        let b: Vec<Inst> = trace.cursor().collect();
        assert_eq!(a, b);
        assert_eq!(trace.mem_refs(), a.iter().filter(|i| i.is_mem()).count());
    }

    #[test]
    fn cursor_survives_partial_consumption() {
        let trace = MaterializedTrace::from_gen(gen_for("sjeng", 5_000));
        let whole: Vec<Inst> = trace.cursor().collect();
        let mut cursor = trace.cursor();
        let head: Vec<Inst> = (&mut cursor).take(1_500).collect();
        let tail: Vec<Inst> = cursor.collect();
        assert_eq!(head.len(), 1_500);
        assert_eq!(head.as_slice(), &whole[..1_500]);
        assert_eq!(tail.as_slice(), &whole[1_500..]);
    }

    #[test]
    fn exact_size_iterator_counts_down() {
        let trace = MaterializedTrace::from_gen(gen_for("sjeng", 100));
        let mut cursor = trace.cursor();
        assert_eq!(cursor.len(), 100);
        let _ = cursor.next();
        assert_eq!(cursor.len(), 99);
    }

    #[test]
    fn blocks_cover_the_stream_exactly() {
        let trace = MaterializedTrace::from_gen(gen_for("mcf", 5_000));
        let whole: Vec<Inst> = trace.cursor().collect();
        for batch in [1usize, 7, 256, 10_000] {
            let mut cursor = trace.cursor();
            let mut rebuilt: Vec<Inst> = Vec::new();
            while let Some(block) = cursor.next_block(batch) {
                assert!(block.len() <= batch && !block.is_empty());
                let mut mem_i = 0;
                for (k, &meta) in block.meta.iter().enumerate() {
                    let va = meta_has_mem(meta).then(|| {
                        let raw = block.mem_vas[mem_i];
                        mem_i += 1;
                        VirtAddr::new(raw)
                    });
                    rebuilt.push(unpack_inst_meta(meta, block.pcs[k], va));
                }
                assert_eq!(mem_i, block.mem_vas.len());
            }
            assert_eq!(rebuilt, whole, "batch {batch}");
        }
    }

    #[test]
    fn blocks_interleave_with_scalar_iteration() {
        let trace = MaterializedTrace::from_gen(gen_for("gcc", 3_000));
        let whole: Vec<Inst> = trace.cursor().collect();
        let mut cursor = trace.cursor();
        let head: Vec<Inst> = (&mut cursor).take(1_000).collect();
        let block = cursor.next_block(500).unwrap();
        assert_eq!(head.as_slice(), &whole[..1_000]);
        assert_eq!(block.pcs.len(), 500);
        assert_eq!(block.pcs[0], whole[1_000].pc);
        let tail: Vec<Inst> = (&mut cursor).collect();
        assert_eq!(tail.as_slice(), &whole[1_500..]);
        assert_eq!(cursor.next_block(1), None, "drained cursor yields no blocks");
    }

    #[test]
    fn from_insts_roundtrips() {
        let insts: Vec<Inst> = gen_for("hmmer", 2_000).collect();
        let trace = MaterializedTrace::from_insts(insts.iter().copied());
        let back: Vec<Inst> = trace.cursor().collect();
        assert_eq!(back, insts);
    }

    #[test]
    fn encoding_is_denser_than_vec_of_inst() {
        let trace = MaterializedTrace::from_gen(gen_for("libquantum", 10_000));
        let vec_bytes = 10_000 * std::mem::size_of::<Inst>();
        assert!(
            trace.bytes() < vec_bytes / 2,
            "SoA {} bytes vs Vec<Inst> {} bytes",
            trace.bytes(),
            vec_bytes
        );
    }

    #[test]
    fn empty_trace_is_empty() {
        let trace = MaterializedTrace::from_insts(std::iter::empty());
        assert!(trace.is_empty());
        assert_eq!(trace.cursor().next(), None);
    }
}
