//! Differential pin of the structure-of-arrays [`CacheArray`] against a
//! naive reference model.
//!
//! The SoA rewrite (packed tag vector + per-set valid/dirty bitmask
//! words + monomorphized [`Replacement`]) claims *bit-identical
//! observable behaviour* to the previous `Vec<Option<Line>>`
//! representation. This test makes that claim falsifiable: a reference
//! array built exactly like the old one (per-set `Vec<Option<Line>>`
//! slots, `Box<dyn ReplacementPolicy>` via [`ReplacementKind::build_dyn`])
//! is driven through arbitrary interleavings of fill / lookup /
//! speculative wrong-set probe / set_dirty / invalidate, for all three
//! replacement kinds, and every return value and every piece of visible
//! state (hit ways, victims, evictions and their dirtiness, MRU ways,
//! per-slot residency) must match at every step.
//!
//! Random replacement makes the comparison strict: both sides draw from
//! an identical seeded RNG, so a single divergent *number or order* of
//! `victim()` calls desynchronizes the streams and fails loudly.

use proptest::prelude::*;
use sipt_cache::{
    CacheArray, CacheGeometry, Evicted, Line, LineAddr, ReplacementKind, ReplacementPolicy,
};

/// The pre-SoA representation, reproduced verbatim: one `Option<Line>`
/// slot per way, lowest-`None` fill preference, full-address tag match,
/// dynamic replacement dispatch.
struct RefArray {
    geometry: CacheGeometry,
    ways: u32,
    /// `sets × ways` slots, row-major.
    slots: Vec<Option<Line>>,
    repl: Box<dyn ReplacementPolicy + Send>,
}

impl RefArray {
    fn new(geometry: CacheGeometry, kind: ReplacementKind) -> Self {
        let sets = geometry.sets();
        let ways = geometry.ways;
        Self {
            geometry,
            ways,
            slots: vec![None; (sets * ways as u64) as usize],
            repl: kind.build_dyn(sets, ways),
        }
    }

    fn base(&self, set: u64) -> usize {
        (set * self.ways as u64) as usize
    }

    fn home_set(&self, line: LineAddr) -> u64 {
        self.geometry.set_of(line)
    }

    fn probe(&self, set: u64, line: LineAddr) -> Option<u32> {
        let base = self.base(set);
        (0..self.ways).find(|&w| matches!(self.slots[base + w as usize], Some(l) if l.line == line))
    }

    fn lookup(&mut self, set: u64, line: LineAddr) -> Option<u32> {
        let way = self.probe(set, line)?;
        self.repl.touch(set, way);
        Some(way)
    }

    fn set_dirty(&mut self, set: u64, way: u32) {
        let slot = self.base(set) + way as usize;
        self.slots[slot].as_mut().expect("set_dirty on valid way").dirty = true;
    }

    fn fill_with_way(&mut self, line: LineAddr, dirty: bool) -> (u32, Option<Evicted>) {
        let set = self.home_set(line);
        let base = self.base(set);
        // Lowest invalid way first; otherwise the policy's victim.
        let way = (0..self.ways)
            .find(|&w| self.slots[base + w as usize].is_none())
            .unwrap_or_else(|| self.repl.victim(set));
        let slot = base + way as usize;
        let evicted = self.slots[slot].map(|old| Evicted { line: old.line, dirty: old.dirty });
        self.slots[slot] = Some(Line { line, dirty });
        self.repl.touch(set, way);
        (way, evicted)
    }

    fn invalidate(&mut self, line: LineAddr) -> Option<Line> {
        let set = self.home_set(line);
        let way = self.probe(set, line)?;
        let slot = self.base(set) + way as usize;
        self.slots[slot].take()
    }

    fn mru_way(&self, set: u64) -> Option<u32> {
        self.repl.mru_way(set)
    }

    fn line_at(&self, set: u64, way: u32) -> Option<Line> {
        self.slots[self.base(set) + way as usize]
    }

    fn resident_lines(&self) -> usize {
        self.slots.iter().flatten().count()
    }
}

/// Drive both models through one op stream, comparing as we go.
///
/// Each op is `(sel, raw, flag)`:
/// - `sel % 4 == 0 | 1`: demand access of `raw` in its home set — lookup,
///   then fill on miss (clean/dirty by `flag`) or `set_dirty` on a store
///   hit (`flag`);
/// - `sel % 4 == 2`: speculative probe of a possibly-wrong set
///   (`raw`-derived), which must miss identically on both sides;
/// - `sel % 4 == 3`: invalidate `raw`.
fn run_stream(kind: ReplacementKind, geometry: CacheGeometry, ops: &[(u8, u64, bool)]) {
    let sets = geometry.sets();
    let mut soa = CacheArray::new(geometry, kind);
    let mut naive = RefArray::new(geometry, kind);
    for &(sel, raw, flag) in ops {
        let line = LineAddr(raw);
        match sel % 4 {
            0 | 1 => {
                let set = soa.home_set(line);
                assert_eq!(set, naive.home_set(line), "home_set diverged");
                let a = soa.lookup(set, line);
                let b = naive.lookup(set, line);
                assert_eq!(a, b, "lookup({set}, {raw:#x}) diverged");
                match a {
                    None => {
                        let fa = soa.fill_with_way(line, flag);
                        let fb = naive.fill_with_way(line, flag);
                        assert_eq!(fa, fb, "fill({raw:#x}, dirty={flag}) diverged");
                    }
                    Some(way) if flag => {
                        soa.set_dirty(set, way);
                        naive.set_dirty(set, way);
                    }
                    Some(_) => {}
                }
            }
            2 => {
                // Speculative wrong-set probe: SIPT's defining access
                // pattern. Must not update replacement state on a miss,
                // and must miss on both sides for non-home sets.
                let spec_set = (raw >> 1) % sets;
                let a = soa.lookup(spec_set, line);
                let b = naive.lookup(spec_set, line);
                assert_eq!(a, b, "speculative lookup({spec_set}, {raw:#x}) diverged");
                if spec_set != soa.home_set(line) {
                    assert_eq!(a, None, "wrong-set probe must miss");
                }
            }
            _ => {
                let a = soa.invalidate(line);
                let b = naive.invalidate(line);
                assert_eq!(a, b, "invalidate({raw:#x}) diverged");
            }
        }
        // Cheap invariants every step.
        assert_eq!(soa.resident_lines(), naive.resident_lines());
    }
    // Full end-state comparison: every slot, every set's MRU way.
    for set in 0..sets {
        assert_eq!(soa.mru_way(set), naive.mru_way(set), "mru_way({set}) diverged");
        for way in 0..geometry.ways {
            assert_eq!(
                soa.line_at(set, way),
                naive.line_at(set, way),
                "line_at({set}, {way}) diverged"
            );
        }
    }
}

const KINDS: [ReplacementKind; 3] =
    [ReplacementKind::Lru, ReplacementKind::TreePlru, ReplacementKind::Random];

proptest! {
    /// 4 sets × 2 ways with a 64-line address space: heavy conflict
    /// pressure, constant evictions.
    #[test]
    fn soa_matches_naive_model_small(
        ops in proptest::collection::vec((any::<u8>(), 0u64..64, any::<bool>()), 1..256)
    ) {
        for kind in KINDS {
            run_stream(kind, CacheGeometry::new(512, 2), &ops);
        }
    }

    /// 4-way geometry (the L1 point used throughout the paper sweeps),
    /// exercising the PLRU tree beyond one level.
    #[test]
    fn soa_matches_naive_model_4way(
        ops in proptest::collection::vec((any::<u8>(), 0u64..512, any::<bool>()), 1..256)
    ) {
        for kind in KINDS {
            run_stream(kind, CacheGeometry::new(4 << 10, 4), &ops);
        }
    }

    /// Degenerate direct-mapped-ish shape: 1 set when ways == capacity
    /// in lines — stresses the `ways == 64`-adjacent mask edge less but
    /// pins single-set victim behaviour for all kinds.
    #[test]
    fn soa_matches_naive_model_single_set(
        ops in proptest::collection::vec((any::<u8>(), 0u64..32, any::<bool>()), 1..128)
    ) {
        for kind in KINDS {
            run_stream(kind, CacheGeometry::new(512, 8), &ops);
        }
    }
}
