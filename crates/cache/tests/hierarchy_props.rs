//! Hierarchy-level properties: latency decomposition, writeback
//! conservation, and residency bounds for arbitrary access streams.

use proptest::prelude::*;
use sipt_cache::{
    CacheGeometry, CacheLevel, FixedLatencyBackend, LineAddr, LowerHierarchy, ReplacementKind,
    ServiceLevel,
};

fn hierarchy() -> LowerHierarchy<FixedLatencyBackend> {
    LowerHierarchy::new(
        Some(CacheLevel::new(CacheGeometry::new(8 << 10, 4), 12, ReplacementKind::Lru)),
        CacheLevel::new(CacheGeometry::new(32 << 10, 8), 25, ReplacementKind::Lru),
        FixedLatencyBackend::new(200),
    )
}

proptest! {
    /// Every access latency is exactly one of the three legal sums, and
    /// the service level reported matches it.
    #[test]
    fn latency_matches_service_level(
        lines in proptest::collection::vec((0u64..4096, any::<bool>()), 1..400)
    ) {
        let mut h = hierarchy();
        for (line, write) in lines {
            let r = h.access(LineAddr(line), write, 0);
            let expect = match r.level {
                ServiceLevel::L2 => 12,
                ServiceLevel::Llc => 37,
                ServiceLevel::Memory => 237,
            };
            prop_assert_eq!(r.latency, expect);
        }
    }

    /// Re-accessing a line immediately is always an L2 hit.
    #[test]
    fn immediate_reuse_hits_l2(line in 0u64..1u64<<30) {
        let mut h = hierarchy();
        h.access(LineAddr(line), false, 0);
        prop_assert_eq!(h.access(LineAddr(line), false, 0).level, ServiceLevel::L2);
    }

    /// Demand accounting: L2 accesses equal requests; LLC accesses equal
    /// L2 misses; backend accesses equal LLC misses (+ dirty spills).
    #[test]
    fn demand_counts_chain(
        lines in proptest::collection::vec(0u64..1u64<<14, 1..300)
    ) {
        let mut h = hierarchy();
        for &line in &lines {
            h.access(LineAddr(line), false, 0);
        }
        let l2 = h.l2_stats().unwrap();
        let llc = h.llc_stats();
        prop_assert_eq!(l2.accesses, lines.len() as u64);
        prop_assert_eq!(llc.accesses, l2.misses);
        // Clean-read streams cannot generate more backend traffic than
        // LLC misses.
        prop_assert!(h.backend().accesses <= llc.misses + llc.writebacks);
        prop_assert_eq!(h.backend().accesses, llc.misses);
    }

    /// Dirty-data conservation: after arbitrary writebacks and clean-read
    /// churn, every dirty line is either still resident dirty in L2/LLC
    /// or was written to the backend. Clean reads account for exactly the
    /// LLC misses, so `backend writes = accesses - LLC misses`.
    #[test]
    fn writebacks_are_never_lost(
        dirty_lines in proptest::collection::hash_set(0u64..1u64<<12, 1..64),
        churn in proptest::collection::vec(0u64..1u64<<12, 0..500),
    ) {
        let mut h = hierarchy();
        for &line in &dirty_lines {
            h.writeback(LineAddr(line));
        }
        for &line in &churn {
            h.access(LineAddr(line), false, 0);
        }
        let backend_reads = h.llc_stats().misses;
        let backend_writes = h.backend().accesses - backend_reads;
        let resident_dirty = h
            .l2()
            .into_iter()
            .flat_map(|l| l.array().iter())
            .chain(h.llc().array().iter())
            .filter(|line| line.dirty && dirty_lines.contains(&line.line.0))
            .map(|line| line.line.0)
            .collect::<std::collections::HashSet<_>>();
        prop_assert!(
            backend_writes as usize + resident_dirty.len() >= dirty_lines.len(),
            "dirty lines lost: {} written + {} resident < {} created",
            backend_writes,
            resident_dirty.len(),
            dirty_lines.len()
        );
    }
}

#[test]
fn dirty_data_survives_full_eviction_pressure() {
    // Deterministic version of the conservation argument: write back one
    // line, thrash both levels far beyond capacity, then confirm the
    // line's dirtiness reached the backend (it must have been written).
    let mut h = hierarchy();
    h.writeback(LineAddr(0xDEAD));
    // Thrash with clean reads over 4× the LLC capacity.
    for i in 0..4096u64 {
        h.access(LineAddr(1 << 20 | i), false, 0);
    }
    let llc = h.llc_stats();
    let reads = llc.misses; // every LLC miss became one backend read
    let writes = h.backend().accesses - reads;
    assert!(writes >= 1, "the dirty line must have been written to memory");
}
