//! The cache levels *below* L1: private L2 (OOO systems), shared LLC, and
//! a pluggable memory backend.
//!
//! The SIPT front-end (in `sipt-core`) owns the L1; when it misses, it
//! calls [`LowerHierarchy::access`] with the physical line address and gets
//! back the miss-service latency. Writebacks ripple down level by level.

use crate::geometry::LineAddr;
use crate::level::{CacheLevel, LevelStats};

/// Anything that can service requests below the last cache level (DRAM).
///
/// `sipt-dram` provides a detailed DDR3-style implementation; tests use
/// [`FixedLatencyBackend`].
pub trait MemoryBackend: core::fmt::Debug {
    /// Service a read or write of `line` issued at absolute cycle `now`;
    /// returns the service latency in cycles.
    fn access(&mut self, line: LineAddr, write: bool, now: u64) -> u64;
}

/// A constant-latency memory backend.
#[derive(Debug, Clone, Copy)]
pub struct FixedLatencyBackend {
    /// Latency returned for every access.
    pub latency: u64,
    /// Number of accesses served (for tests/energy accounting).
    pub accesses: u64,
}

impl FixedLatencyBackend {
    /// Create a backend with the given fixed latency.
    pub fn new(latency: u64) -> Self {
        Self { latency, accesses: 0 }
    }
}

impl MemoryBackend for FixedLatencyBackend {
    fn access(&mut self, _line: LineAddr, _write: bool, _now: u64) -> u64 {
        self.accesses += 1;
        self.latency
    }
}

/// Where a below-L1 request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Private L2.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory.
    Memory,
}

/// Result of a below-L1 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceResult {
    /// Cycles from request to data (excluding the L1's own latency).
    pub latency: u64,
    /// Which level supplied the data.
    pub level: ServiceLevel,
}

/// The below-L1 memory system: optional private L2, an LLC, and memory.
#[derive(Debug)]
pub struct LowerHierarchy<B> {
    l2: Option<CacheLevel>,
    llc: CacheLevel,
    backend: B,
}

impl<B: MemoryBackend> LowerHierarchy<B> {
    /// Build a hierarchy. `l2` is `None` for the paper's two-level
    /// (in-order) systems.
    pub fn new(l2: Option<CacheLevel>, llc: CacheLevel, backend: B) -> Self {
        Self { l2, llc, backend }
    }

    /// Service an L1 miss for `line` at cycle `now`. Fills every level on
    /// the way back (non-inclusive, allocate-on-miss at each level).
    pub fn access(&mut self, line: LineAddr, write: bool, now: u64) -> ServiceResult {
        let mut latency = 0;
        if let Some(l2) = &mut self.l2 {
            latency += l2.latency();
            if l2.access(line, write) {
                return ServiceResult { latency, level: ServiceLevel::L2 };
            }
        }
        latency += self.llc.latency();
        if self.llc.access(line, write) {
            self.fill_l2(line);
            return ServiceResult { latency, level: ServiceLevel::Llc };
        }
        latency += self.backend.access(line, write, now + latency);
        // Fill back up: LLC first, then L2.
        if let Some(evicted) = self.llc.fill(line, false) {
            if evicted.dirty {
                self.backend.access(evicted.line, true, now + latency);
            }
        }
        self.fill_l2(line);
        ServiceResult { latency, level: ServiceLevel::Memory }
    }

    fn fill_l2(&mut self, line: LineAddr) {
        if let Some(l2) = &mut self.l2 {
            if let Some(evicted) = l2.fill(line, false) {
                if evicted.dirty {
                    self.writeback_below_l2(evicted.line);
                }
            }
        }
    }

    /// Accept a writeback of a dirty L1 victim.
    pub fn writeback(&mut self, line: LineAddr) {
        if let Some(l2) = &mut self.l2 {
            if l2.absorb_writeback(line) {
                return;
            }
            // Not resident in L2: allocate there (write-allocate victim
            // cache behaviour keeps the model simple and bounded).
            if let Some(evicted) = l2.fill(line, true) {
                if evicted.dirty {
                    self.writeback_below_l2(evicted.line);
                }
            }
            return;
        }
        self.writeback_below_l2(line);
    }

    fn writeback_below_l2(&mut self, line: LineAddr) {
        if self.llc.absorb_writeback(line) {
            return;
        }
        if let Some(evicted) = self.llc.fill(line, true) {
            if evicted.dirty {
                self.backend.access(evicted.line, true, 0);
            }
        }
    }

    /// L2 statistics (if an L2 exists).
    pub fn l2_stats(&self) -> Option<LevelStats> {
        self.l2.as_ref().map(|l| l.stats())
    }

    /// Borrow the L2 level, if present (inspection/verification).
    pub fn l2(&self) -> Option<&CacheLevel> {
        self.l2.as_ref()
    }

    /// Borrow the LLC level (inspection/verification).
    pub fn llc(&self) -> &CacheLevel {
        &self.llc
    }

    /// LLC statistics.
    pub fn llc_stats(&self) -> LevelStats {
        self.llc.stats()
    }

    /// Borrow the backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutably borrow the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Reset all level statistics (contents kept).
    pub fn reset_stats(&mut self) {
        if let Some(l2) = &mut self.l2 {
            l2.reset_stats();
        }
        self.llc.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CacheGeometry;
    use crate::replacement::ReplacementKind;

    fn three_level() -> LowerHierarchy<FixedLatencyBackend> {
        LowerHierarchy::new(
            Some(CacheLevel::new(CacheGeometry::new(4 << 10, 4), 12, ReplacementKind::Lru)),
            CacheLevel::new(CacheGeometry::new(16 << 10, 8), 25, ReplacementKind::Lru),
            FixedLatencyBackend::new(200),
        )
    }

    #[test]
    fn latency_accumulates_down_the_hierarchy() {
        let mut h = three_level();
        let cold = h.access(LineAddr(7), false, 0);
        assert_eq!(cold.level, ServiceLevel::Memory);
        assert_eq!(cold.latency, 12 + 25 + 200);
        let l2_hit = h.access(LineAddr(7), false, 0);
        assert_eq!(l2_hit.level, ServiceLevel::L2);
        assert_eq!(l2_hit.latency, 12);
    }

    #[test]
    fn llc_hit_after_l2_eviction() {
        let mut h = three_level();
        h.access(LineAddr(1), false, 0);
        // Evict line 1 from the tiny L2 by filling its set (16 sets in L2,
        // stride 16; 4 ways + 1).
        for i in 1..=4u64 {
            h.access(LineAddr(1 + i * 16), false, 0);
        }
        let hit = h.access(LineAddr(1), false, 0);
        assert_eq!(hit.level, ServiceLevel::Llc, "line must still be in the LLC");
        assert_eq!(hit.latency, 12 + 25);
    }

    #[test]
    fn two_level_hierarchy_skips_l2() {
        let mut h = LowerHierarchy::new(
            None,
            CacheLevel::new(CacheGeometry::new(16 << 10, 8), 20, ReplacementKind::Lru),
            FixedLatencyBackend::new(100),
        );
        let cold = h.access(LineAddr(3), false, 0);
        assert_eq!(cold.latency, 120);
        assert_eq!(h.access(LineAddr(3), false, 0).latency, 20);
        assert!(h.l2_stats().is_none());
    }

    #[test]
    fn writeback_is_absorbed_where_resident() {
        let mut h = three_level();
        h.access(LineAddr(9), false, 0); // resident in L2 + LLC now
        let backend_before = h.backend().accesses;
        h.writeback(LineAddr(9));
        assert_eq!(h.backend().accesses, backend_before, "no DRAM traffic for absorbed WB");
    }

    #[test]
    fn writeback_of_nonresident_line_allocates() {
        let mut h = three_level();
        h.writeback(LineAddr(77));
        // Line must now be findable (dirty) in the L2.
        assert!(h.access(LineAddr(77), false, 0).level == ServiceLevel::L2);
    }

    #[test]
    fn stats_flow() {
        let mut h = three_level();
        h.access(LineAddr(1), false, 0);
        h.access(LineAddr(1), false, 0);
        let l2 = h.l2_stats().unwrap();
        assert_eq!(l2.accesses, 2);
        assert_eq!(l2.hits, 1);
        assert_eq!(h.llc_stats().misses, 1);
        h.reset_stats();
        assert_eq!(h.llc_stats().accesses, 0);
    }
}
