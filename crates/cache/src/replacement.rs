//! Replacement policies for set-associative arrays.
//!
//! The paper's caches use LRU; tree-PLRU and random are provided both as
//! ablation points and because tree-PLRU's MRU-tracking is what the simple
//! way predictor of §VII.A reads.
//!
//! The hot path is **monomorphized**: [`CacheArray`](crate::CacheArray)
//! holds a [`Replacement`] enum, so every `touch`/`victim` on the
//! per-access kernel is a static, inlinable match instead of a
//! `Box<dyn ReplacementPolicy>` virtual call. The [`ReplacementPolicy`]
//! trait remains for callers that want dynamic dispatch (reference models,
//! tests); the concrete policies implement both.

use sipt_rng::{Rng, SeedableRng, StdRng};

/// A replacement policy for one cache array (dynamic-dispatch facade).
///
/// Implementations are per-array objects: they are told the array shape at
/// construction and receive touch/fill/victim callbacks per set and way.
/// The simulator's own arrays use the monomorphized [`Replacement`] enum
/// instead; this trait exists for reference models and ablation harnesses
/// that want to plug in policies at runtime.
pub trait ReplacementPolicy: core::fmt::Debug {
    /// Record an access (hit or fill) to `way` of `set`.
    fn touch(&mut self, set: u64, way: u32);

    /// Choose the victim way for `set`. Called only when the set is full;
    /// every returned way must be in `0..ways`.
    fn victim(&mut self, set: u64) -> u32;

    /// The most-recently-used way of `set`, if the policy tracks it.
    /// The MRU way predictor consults this; policies that cannot answer
    /// return `None` and way prediction degrades to way 0.
    fn mru_way(&self, set: u64) -> Option<u32>;
}

/// Monomorphized replacement state: one enum, statically dispatched on the
/// per-access kernel. Constructed via [`ReplacementKind::build`].
#[derive(Debug)]
pub enum Replacement {
    /// Exact least-recently-used (timestamps).
    Lru(TrueLru),
    /// Tree pseudo-LRU (packed bit tree).
    TreePlru(TreePlru),
    /// Uniform random (deterministic seed).
    Random(RandomRepl),
}

impl Replacement {
    /// Record an access (hit or fill) to `way` of `set`.
    #[inline]
    pub fn touch(&mut self, set: u64, way: u32) {
        match self {
            Replacement::Lru(p) => p.touch(set, way),
            Replacement::TreePlru(p) => p.touch(set, way),
            Replacement::Random(p) => p.touch(set, way),
        }
    }

    /// Choose the victim way for `set` (only called on a full set).
    #[inline]
    pub fn victim(&mut self, set: u64) -> u32 {
        match self {
            Replacement::Lru(p) => p.victim(set),
            Replacement::TreePlru(p) => p.victim(set),
            Replacement::Random(p) => p.victim(set),
        }
    }

    /// The most-recently-used way of `set`, if tracked.
    #[inline]
    pub fn mru_way(&self, set: u64) -> Option<u32> {
        match self {
            Replacement::Lru(p) => p.mru_way(set),
            Replacement::TreePlru(p) => p.mru_way(set),
            Replacement::Random(p) => p.mru_way(set),
        }
    }
}

impl ReplacementPolicy for Replacement {
    fn touch(&mut self, set: u64, way: u32) {
        Replacement::touch(self, set, way);
    }

    fn victim(&mut self, set: u64) -> u32 {
        Replacement::victim(self, set)
    }

    fn mru_way(&self, set: u64) -> Option<u32> {
        Replacement::mru_way(self, set)
    }
}

/// True-LRU: exact recency order per set via timestamps.
#[derive(Debug, Clone)]
pub struct TrueLru {
    ways: u32,
    last_use: Vec<u64>,
    clock: u64,
}

impl TrueLru {
    /// Create LRU state for `sets` sets of `ways` ways.
    pub fn new(sets: u64, ways: u32) -> Self {
        Self { ways, last_use: vec![0; (sets * ways as u64) as usize], clock: 0 }
    }

    #[inline]
    fn slot(&self, set: u64, way: u32) -> usize {
        (set * self.ways as u64 + way as u64) as usize
    }

    /// Record an access to `way` of `set`.
    #[inline]
    pub fn touch(&mut self, set: u64, way: u32) {
        self.clock += 1;
        let slot = self.slot(set, way);
        self.last_use[slot] = self.clock;
    }

    /// Least-recently-used way of `set` (ties — never-touched ways — break
    /// toward the lowest way index, matching `Iterator::min_by_key`).
    #[inline]
    pub fn victim(&mut self, set: u64) -> u32 {
        let base = self.slot(set, 0);
        let stamps = &self.last_use[base..base + self.ways as usize];
        let mut best_way = 0u32;
        let mut best = stamps[0];
        for (w, &t) in stamps.iter().enumerate().skip(1) {
            // Strict `<`: the first minimum wins, as min_by_key guarantees.
            if t < best {
                best = t;
                best_way = w as u32;
            }
        }
        best_way
    }

    /// Most-recently-used way of `set`, or `None` if the set has never
    /// been touched. (Timestamps are unique after a touch, so no
    /// tie-breaking is ever needed among real accesses — but a fabricated
    /// MRU for an untouched set would make the §VII.A way predictor
    /// "predict" a way in an empty set.)
    #[inline]
    pub fn mru_way(&self, set: u64) -> Option<u32> {
        let base = self.slot(set, 0);
        let stamps = &self.last_use[base..base + self.ways as usize];
        let mut best_way = None;
        let mut best = 0u64;
        for (w, &t) in stamps.iter().enumerate() {
            // Strictly positive: timestamp 0 means "never touched".
            if t > best {
                best = t;
                best_way = Some(w as u32);
            }
        }
        best_way
    }
}

impl ReplacementPolicy for TrueLru {
    fn touch(&mut self, set: u64, way: u32) {
        TrueLru::touch(self, set, way);
    }

    fn victim(&mut self, set: u64) -> u32 {
        TrueLru::victim(self, set)
    }

    fn mru_way(&self, set: u64) -> Option<u32> {
        TrueLru::mru_way(self, set)
    }
}

/// Tree-PLRU: the classic pseudo-LRU binary tree, one bit per internal
/// node. Matches what commercial L1s actually implement.
///
/// The `ways - 1` tree bits of each set are packed into one `u64` word
/// (bit *i* = within-tree node *i*), so a touch or victim walk reads and
/// writes a single word instead of chasing a `Vec<bool>`.
#[derive(Debug, Clone)]
pub struct TreePlru {
    ways: u32,
    /// One packed tree word per set: bit `i` is within-tree node `i`.
    bits: Vec<u64>,
    /// Last touched way per set (for `mru_way`).
    mru: Vec<u32>,
}

impl TreePlru {
    /// Create tree-PLRU state for `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is a power of two no larger than 64 (so the
    /// `ways - 1` tree bits fit one word).
    pub fn new(sets: u64, ways: u32) -> Self {
        assert!(ways.is_power_of_two(), "tree-PLRU needs power-of-two ways");
        assert!(ways <= 64, "tree-PLRU packs each set's tree into one u64 word");
        Self { ways, bits: vec![0; sets as usize], mru: vec![0; sets as usize] }
    }

    /// Record an access to `way` of `set`: every node on the root-to-leaf
    /// path is pointed *away* from the touched way.
    #[inline]
    pub fn touch(&mut self, set: u64, way: u32) {
        self.mru[set as usize] = way;
        if self.ways == 1 {
            return;
        }
        let mut word = self.bits[set as usize];
        let mut node = 0u32; // within-tree index
        let mut lo = 0u32;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let goes_right = way >= mid;
            // Point the node to the other half: set the bit when the
            // touched way went left, clear it when it went right.
            if goes_right {
                word &= !(1u64 << node);
                node = 2 * node + 2;
                lo = mid;
            } else {
                word |= 1u64 << node;
                node = 2 * node + 1;
                hi = mid;
            }
        }
        self.bits[set as usize] = word;
    }

    /// Follow the tree bits from the root to the pseudo-LRU leaf.
    #[inline]
    pub fn victim(&mut self, set: u64) -> u32 {
        if self.ways == 1 {
            return 0;
        }
        let word = self.bits[set as usize];
        let mut node = 0u32;
        let mut lo = 0u32;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = (word >> node) & 1 == 1;
            if go_right {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }

    /// The last touched way of `set`.
    #[inline]
    pub fn mru_way(&self, set: u64) -> Option<u32> {
        Some(self.mru[set as usize])
    }
}

impl ReplacementPolicy for TreePlru {
    fn touch(&mut self, set: u64, way: u32) {
        TreePlru::touch(self, set, way);
    }

    fn victim(&mut self, set: u64) -> u32 {
        TreePlru::victim(self, set)
    }

    fn mru_way(&self, set: u64) -> Option<u32> {
        TreePlru::mru_way(self, set)
    }
}

/// Uniform-random replacement (deterministic seed), the usual lower bound
/// in ablations.
#[derive(Debug)]
pub struct RandomRepl {
    ways: u32,
    mru: Vec<u32>,
    rng: StdRng,
}

impl RandomRepl {
    /// Create random-replacement state for `sets` sets of `ways` ways.
    pub fn new(sets: u64, ways: u32) -> Self {
        Self { ways, mru: vec![0; sets as usize], rng: StdRng::seed_from_u64(0xCAC4E) }
    }

    /// Record an access to `way` of `set` (tracks MRU only).
    #[inline]
    pub fn touch(&mut self, set: u64, way: u32) {
        self.mru[set as usize] = way;
    }

    /// Draw a uniform victim way (one RNG draw per call; the sequence is
    /// part of the simulated behaviour and must not be reordered).
    #[inline]
    pub fn victim(&mut self, set: u64) -> u32 {
        let _ = set;
        self.rng.gen_range(0..self.ways)
    }

    /// The last touched way of `set`.
    #[inline]
    pub fn mru_way(&self, set: u64) -> Option<u32> {
        Some(self.mru[set as usize])
    }
}

impl ReplacementPolicy for RandomRepl {
    fn touch(&mut self, set: u64, way: u32) {
        RandomRepl::touch(self, set, way);
    }

    fn victim(&mut self, set: u64) -> u32 {
        RandomRepl::victim(self, set)
    }

    fn mru_way(&self, set: u64) -> Option<u32> {
        RandomRepl::mru_way(self, set)
    }
}

/// Which replacement policy a cache level should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementKind {
    /// Exact least-recently-used.
    #[default]
    Lru,
    /// Tree pseudo-LRU.
    TreePlru,
    /// Uniform random.
    Random,
}

impl ReplacementKind {
    /// Instantiate monomorphized policy state for an array of
    /// `sets` × `ways` — this is what [`crate::CacheArray`] embeds.
    pub fn build(self, sets: u64, ways: u32) -> Replacement {
        match self {
            ReplacementKind::Lru => Replacement::Lru(TrueLru::new(sets, ways)),
            ReplacementKind::TreePlru => Replacement::TreePlru(TreePlru::new(sets, ways)),
            ReplacementKind::Random => Replacement::Random(RandomRepl::new(sets, ways)),
        }
    }

    /// Instantiate boxed, dynamically-dispatched policy state (reference
    /// models and harnesses that need runtime plugging).
    pub fn build_dyn(self, sets: u64, ways: u32) -> Box<dyn ReplacementPolicy + Send> {
        match self {
            ReplacementKind::Lru => Box::new(TrueLru::new(sets, ways)),
            ReplacementKind::TreePlru => Box::new(TreePlru::new(sets, ways)),
            ReplacementKind::Random => Box::new(RandomRepl::new(sets, ways)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_lru_evicts_least_recent() {
        let mut lru = TrueLru::new(2, 4);
        for w in 0..4 {
            lru.touch(0, w);
        }
        lru.touch(0, 0); // 1 is now LRU
        assert_eq!(lru.victim(0), 1);
        assert_eq!(lru.mru_way(0), Some(0));
        // Other set untouched: victim is way 0 (all timestamps zero).
        assert_eq!(lru.victim(1), 0);
    }

    #[test]
    fn true_lru_mru_way_is_none_until_first_touch() {
        // Regression: a never-touched set must not fabricate an MRU way
        // (the way predictor would otherwise "predict" into an empty set).
        let lru = TrueLru::new(4, 8);
        for set in 0..4 {
            assert_eq!(lru.mru_way(set), None, "untouched set {set} has no MRU way");
        }
        let mut lru = TrueLru::new(4, 8);
        lru.touch(2, 5);
        assert_eq!(lru.mru_way(2), Some(5));
        assert_eq!(lru.mru_way(0), None, "other sets remain untouched");
        // The monomorphized enum and the dyn facade agree.
        let mut e = ReplacementKind::Lru.build(2, 4);
        assert_eq!(e.mru_way(0), None);
        e.touch(0, 3);
        assert_eq!(e.mru_way(0), Some(3));
        let d = ReplacementKind::Lru.build_dyn(2, 4);
        assert_eq!(d.mru_way(1), None);
    }

    #[test]
    fn tree_plru_never_victimizes_mru() {
        let mut plru = TreePlru::new(1, 8);
        for round in 0..64u32 {
            let way = round % 8;
            plru.touch(0, way);
            assert_ne!(plru.victim(0), way, "PLRU must not evict the just-touched way");
            assert_eq!(plru.mru_way(0), Some(way));
        }
    }

    #[test]
    fn tree_plru_cycles_through_all_ways() {
        // Repeatedly evict-and-touch; every way must eventually be chosen.
        let mut plru = TreePlru::new(1, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            let v = plru.victim(0);
            seen.insert(v);
            plru.touch(0, v);
        }
        assert_eq!(seen.len(), 4, "victims seen: {seen:?}");
    }

    #[test]
    fn tree_plru_packed_bits_match_boolean_reference() {
        // The packed u64 tree must walk exactly like the old Vec<bool>
        // tree. Reference: same touch algorithm over explicit booleans.
        #[derive(Debug)]
        struct BoolTree {
            ways: u32,
            bits: Vec<bool>,
        }
        impl BoolTree {
            fn touch(&mut self, way: u32) {
                let (mut node, mut lo, mut hi) = (0usize, 0u32, self.ways);
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let goes_right = way >= mid;
                    self.bits[node] = !goes_right;
                    node = 2 * node + if goes_right { 2 } else { 1 };
                    if goes_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
            }
            fn victim(&self) -> u32 {
                let (mut node, mut lo, mut hi) = (0usize, 0u32, self.ways);
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = self.bits[node];
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
        }
        for ways in [2u32, 4, 8, 16, 64] {
            let mut packed = TreePlru::new(1, ways);
            let mut reference = BoolTree { ways, bits: vec![false; ways as usize - 1] };
            let mut x = 0x9E37u64;
            for _ in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let way = (x >> 33) as u32 % ways;
                packed.touch(0, way);
                reference.touch(way);
                assert_eq!(packed.victim(0), reference.victim(), "ways={ways} way={way}");
            }
        }
    }

    #[test]
    fn random_replacement_stays_in_range() {
        let mut r = RandomRepl::new(4, 8);
        for set in 0..4 {
            for _ in 0..100 {
                assert!(r.victim(set) < 8);
            }
        }
        r.touch(2, 5);
        assert_eq!(r.mru_way(2), Some(5));
    }

    #[test]
    fn kind_builds_working_policies() {
        for kind in [ReplacementKind::Lru, ReplacementKind::TreePlru, ReplacementKind::Random] {
            let mut p = kind.build(4, 4);
            p.touch(0, 2);
            assert!(p.victim(0) < 4);
            assert!(!format!("{p:?}").is_empty());
            let mut d = kind.build_dyn(4, 4);
            d.touch(0, 2);
            assert!(d.victim(0) < 4);
        }
        assert_eq!(ReplacementKind::default(), ReplacementKind::Lru);
    }

    #[test]
    fn single_way_degenerate_case() {
        let mut p = TreePlru::new(2, 1);
        p.touch(1, 0);
        assert_eq!(p.victim(1), 0);
        let mut l = TrueLru::new(2, 1);
        l.touch(0, 0);
        assert_eq!(l.victim(0), 0);
    }
}
