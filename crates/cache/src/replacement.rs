//! Replacement policies for set-associative arrays.
//!
//! The paper's caches use LRU; tree-PLRU and random are provided both as
//! ablation points and because tree-PLRU's MRU-tracking is what the simple
//! way predictor of §VII.A reads.

use sipt_rng::{Rng, SeedableRng, StdRng};

/// A replacement policy for one cache array.
///
/// Implementations are per-array objects: they are told the array shape at
/// construction and receive touch/fill/victim callbacks per set and way.
pub trait ReplacementPolicy: core::fmt::Debug {
    /// Record an access (hit or fill) to `way` of `set`.
    fn touch(&mut self, set: u64, way: u32);

    /// Choose the victim way for `set`. Called only when the set is full;
    /// every returned way must be in `0..ways`.
    fn victim(&mut self, set: u64) -> u32;

    /// The most-recently-used way of `set`, if the policy tracks it.
    /// The MRU way predictor consults this; policies that cannot answer
    /// return `None` and way prediction degrades to way 0.
    fn mru_way(&self, set: u64) -> Option<u32>;
}

/// True-LRU: exact recency order per set via timestamps.
#[derive(Debug, Clone)]
pub struct TrueLru {
    ways: u32,
    last_use: Vec<u64>,
    clock: u64,
}

impl TrueLru {
    /// Create LRU state for `sets` sets of `ways` ways.
    pub fn new(sets: u64, ways: u32) -> Self {
        Self { ways, last_use: vec![0; (sets * ways as u64) as usize], clock: 0 }
    }

    #[inline]
    fn slot(&self, set: u64, way: u32) -> usize {
        (set * self.ways as u64 + way as u64) as usize
    }
}

impl ReplacementPolicy for TrueLru {
    fn touch(&mut self, set: u64, way: u32) {
        self.clock += 1;
        let slot = self.slot(set, way);
        self.last_use[slot] = self.clock;
    }

    fn victim(&mut self, set: u64) -> u32 {
        (0..self.ways).min_by_key(|&w| self.last_use[self.slot(set, w)]).expect("at least one way")
    }

    fn mru_way(&self, set: u64) -> Option<u32> {
        (0..self.ways).max_by_key(|&w| self.last_use[self.slot(set, w)])
    }
}

/// Tree-PLRU: the classic pseudo-LRU binary tree, one bit per internal
/// node. Matches what commercial L1s actually implement.
#[derive(Debug, Clone)]
pub struct TreePlru {
    ways: u32,
    /// One tree of `ways - 1` bits per set, flattened.
    bits: Vec<bool>,
    /// Last touched way per set (for `mru_way`).
    mru: Vec<u32>,
}

impl TreePlru {
    /// Create tree-PLRU state for `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is a power of two.
    pub fn new(sets: u64, ways: u32) -> Self {
        assert!(ways.is_power_of_two(), "tree-PLRU needs power-of-two ways");
        Self {
            ways,
            bits: vec![false; (sets * (ways as u64 - 1).max(1)) as usize],
            mru: vec![0; sets as usize],
        }
    }

    #[inline]
    fn tree_base(&self, set: u64) -> usize {
        (set * (self.ways as u64 - 1).max(1)) as usize
    }
}

impl ReplacementPolicy for TreePlru {
    fn touch(&mut self, set: u64, way: u32) {
        self.mru[set as usize] = way;
        if self.ways == 1 {
            return;
        }
        // Walk from root to the leaf `way`, pointing each node AWAY from it.
        let base = self.tree_base(set);
        let mut node = 0usize; // within-tree index
        let mut lo = 0u32;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let goes_right = way >= mid;
            self.bits[base + node] = !goes_right; // point to the other half
            node = 2 * node + if goes_right { 2 } else { 1 };
            if goes_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    fn victim(&mut self, set: u64) -> u32 {
        if self.ways == 1 {
            return 0;
        }
        let base = self.tree_base(set);
        let mut node = 0usize;
        let mut lo = 0u32;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = self.bits[base + node];
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn mru_way(&self, set: u64) -> Option<u32> {
        Some(self.mru[set as usize])
    }
}

/// Uniform-random replacement (deterministic seed), the usual lower bound
/// in ablations.
#[derive(Debug)]
pub struct RandomRepl {
    ways: u32,
    mru: Vec<u32>,
    rng: StdRng,
}

impl RandomRepl {
    /// Create random-replacement state for `sets` sets of `ways` ways.
    pub fn new(sets: u64, ways: u32) -> Self {
        Self { ways, mru: vec![0; sets as usize], rng: StdRng::seed_from_u64(0xCAC4E) }
    }
}

impl ReplacementPolicy for RandomRepl {
    fn touch(&mut self, set: u64, way: u32) {
        self.mru[set as usize] = way;
    }

    fn victim(&mut self, set: u64) -> u32 {
        let _ = set;
        self.rng.gen_range(0..self.ways)
    }

    fn mru_way(&self, set: u64) -> Option<u32> {
        Some(self.mru[set as usize])
    }
}

/// Which replacement policy a cache level should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementKind {
    /// Exact least-recently-used.
    #[default]
    Lru,
    /// Tree pseudo-LRU.
    TreePlru,
    /// Uniform random.
    Random,
}

impl ReplacementKind {
    /// Instantiate policy state for an array of `sets` × `ways`.
    pub fn build(self, sets: u64, ways: u32) -> Box<dyn ReplacementPolicy + Send> {
        match self {
            ReplacementKind::Lru => Box::new(TrueLru::new(sets, ways)),
            ReplacementKind::TreePlru => Box::new(TreePlru::new(sets, ways)),
            ReplacementKind::Random => Box::new(RandomRepl::new(sets, ways)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_lru_evicts_least_recent() {
        let mut lru = TrueLru::new(2, 4);
        for w in 0..4 {
            lru.touch(0, w);
        }
        lru.touch(0, 0); // 1 is now LRU
        assert_eq!(lru.victim(0), 1);
        assert_eq!(lru.mru_way(0), Some(0));
        // Other set untouched: victim is way 0 (all timestamps zero).
        assert_eq!(lru.victim(1), 0);
    }

    #[test]
    fn tree_plru_never_victimizes_mru() {
        let mut plru = TreePlru::new(1, 8);
        for round in 0..64u32 {
            let way = round % 8;
            plru.touch(0, way);
            assert_ne!(plru.victim(0), way, "PLRU must not evict the just-touched way");
            assert_eq!(plru.mru_way(0), Some(way));
        }
    }

    #[test]
    fn tree_plru_cycles_through_all_ways() {
        // Repeatedly evict-and-touch; every way must eventually be chosen.
        let mut plru = TreePlru::new(1, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            let v = plru.victim(0);
            seen.insert(v);
            plru.touch(0, v);
        }
        assert_eq!(seen.len(), 4, "victims seen: {seen:?}");
    }

    #[test]
    fn random_replacement_stays_in_range() {
        let mut r = RandomRepl::new(4, 8);
        for set in 0..4 {
            for _ in 0..100 {
                assert!(r.victim(set) < 8);
            }
        }
        r.touch(2, 5);
        assert_eq!(r.mru_way(2), Some(5));
    }

    #[test]
    fn kind_builds_working_policies() {
        for kind in [ReplacementKind::Lru, ReplacementKind::TreePlru, ReplacementKind::Random] {
            let mut p = kind.build(4, 4);
            p.touch(0, 2);
            assert!(p.victim(0) < 4);
            assert!(!format!("{p:?}").is_empty());
        }
        assert_eq!(ReplacementKind::default(), ReplacementKind::Lru);
    }

    #[test]
    fn single_way_degenerate_case() {
        let mut p = TreePlru::new(2, 1);
        p.touch(1, 0);
        assert_eq!(p.victim(1), 0);
        let mut l = TrueLru::new(2, 1);
        l.touch(0, 0);
        assert_eq!(l.victim(0), 0);
    }
}
