// `deny` rather than `forbid`: the wide-probe SIMD path in `array::simd`
// carries a single scoped `#![allow(unsafe_code)]` for the AVX2 intrinsics
// behind runtime feature detection. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-cache — set-associative cache substrate for the SIPT reproduction
//!
//! Generic building blocks used both by the SIPT L1 front-end (`sipt-core`)
//! and by the lower levels of the hierarchy:
//!
//! - [`CacheGeometry`]: capacity/associativity math, including
//!   [`CacheGeometry::speculative_bits`] — the number of index bits beyond
//!   the 4 KiB page offset, which is the quantity the whole paper is about,
//! - [`CacheArray`]: tag/data array storing *full* line addresses so a
//!   speculative probe of a wrong set can never falsely hit,
//! - replacement policies ([`ReplacementKind`]: true LRU, tree-PLRU,
//!   random),
//! - [`CacheLevel`] and [`LowerHierarchy`]: L2/LLC with latency and
//!   writeback plumbing over a pluggable [`MemoryBackend`],
//! - [`WayPredictor`]: the MRU way predictor of §VII.A.
//!
//! ```
//! use sipt_cache::{CacheGeometry, CacheLevel, LineAddr, ReplacementKind};
//!
//! let mut llc = CacheLevel::new(CacheGeometry::new(1 << 20, 16), 20, ReplacementKind::Lru);
//! assert!(!llc.access(LineAddr(0x1234), false));
//! llc.fill(LineAddr(0x1234), false);
//! assert!(llc.access(LineAddr(0x1234), false));
//! ```

pub mod array;
pub mod geometry;
pub mod hierarchy;
pub mod level;
pub mod replacement;
pub mod waypred;

pub use array::{CacheArray, Evicted, Line};
pub use geometry::{CacheGeometry, LineAddr, LINE_SHIFT, LINE_SIZE};
pub use hierarchy::{
    FixedLatencyBackend, LowerHierarchy, MemoryBackend, ServiceLevel, ServiceResult,
};
pub use level::{CacheLevel, LevelStats};
pub use replacement::{
    RandomRepl, Replacement, ReplacementKind, ReplacementPolicy, TreePlru, TrueLru,
};
pub use waypred::{WayPredStats, WayPredictor};
