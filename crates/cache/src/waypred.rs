//! MRU way prediction (paper §VII.A).
//!
//! Instead of reading all ways of a set in parallel, the predictor reads
//! only the set's most-recently-used way (3 bits of metadata per set for an
//! 8-way cache). A correct prediction spends `1/ways` of the data-array
//! read energy; an incorrect one requires a second access of the remaining
//! ways. The paper applies this both to the 8-way VIPT baseline (89%
//! accuracy) and on top of 2-way SIPT (97.3%), where lower associativity
//! makes MRU much more often correct.

/// Outcome counters for the way predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WayPredStats {
    /// Predictions that selected the correct way.
    pub correct: u64,
    /// Predictions that selected a wrong way (second access required).
    pub wrong: u64,
    /// Lookups that missed the cache entirely (prediction moot; counted
    /// separately because they trigger a full-set read anyway).
    pub misses: u64,
}

impl WayPredStats {
    /// Prediction accuracy over cache hits.
    pub fn accuracy(&self) -> f64 {
        let total = self.correct + self.wrong;
        if total == 0 {
            return 0.0;
        }
        self.correct as f64 / total as f64
    }
}

/// The MRU way predictor: one `ways`-range entry per set.
///
/// ```
/// use sipt_cache::WayPredictor;
/// let mut wp = WayPredictor::new(64, 8);
/// assert_eq!(wp.predict(3), 0);      // cold: way 0
/// wp.record_hit(3, 5);               // actual way was 5 → mispredict
/// assert_eq!(wp.predict(3), 5);      // MRU learned
/// wp.record_hit(3, 5);
/// assert_eq!(wp.stats().correct, 1);
/// assert_eq!(wp.stats().wrong, 1);
/// ```
#[derive(Debug, Clone)]
pub struct WayPredictor {
    mru: Vec<u32>,
    ways: u32,
    stats: WayPredStats,
}

impl WayPredictor {
    /// Create a predictor for `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: u64, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "predictor needs a non-empty cache");
        Self { mru: vec![0; sets as usize], ways, stats: WayPredStats::default() }
    }

    /// Metadata size in bits (`sets × ceil(log2 ways)`), e.g. 3 bits per
    /// set for an 8-way cache as in the paper.
    pub fn metadata_bits(&self) -> u64 {
        let bits_per_set = 32 - (self.ways - 1).leading_zeros().min(31);
        self.mru.len() as u64 * bits_per_set.max(1) as u64
    }

    /// Predicted way for `set`.
    pub fn predict(&self, set: u64) -> u32 {
        self.mru[set as usize]
    }

    /// Record the true way of a cache *hit* in `set`; classifies the
    /// earlier prediction and trains the table.
    pub fn record_hit(&mut self, set: u64, actual_way: u32) {
        debug_assert!(actual_way < self.ways);
        if self.mru[set as usize] == actual_way {
            self.stats.correct += 1;
        } else {
            self.stats.wrong += 1;
        }
        self.mru[set as usize] = actual_way;
    }

    /// Record a cache miss in `set` (and train toward the fill way).
    pub fn record_miss(&mut self, set: u64, fill_way: u32) {
        self.stats.misses += 1;
        self.mru[set as usize] = fill_way.min(self.ways - 1);
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> WayPredStats {
        self.stats
    }

    /// Reset statistics (table contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = WayPredStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_associativity_raises_mru_accuracy() {
        // Synthetic access pattern: round-robin over N distinct lines that
        // all land in one set. With 8 ways the MRU way is almost never the
        // next one accessed; with 2 ways and 2 lines it always is after
        // warmup... exercised here structurally.
        let mut wp8 = WayPredictor::new(1, 8);
        for i in 0..80u32 {
            wp8.record_hit(0, i % 8);
        }
        let mut wp2 = WayPredictor::new(1, 2);
        for _ in 0..40 {
            wp2.record_hit(0, 0);
            wp2.record_hit(0, 0);
        }
        assert!(wp2.stats().accuracy() > wp8.stats().accuracy());
    }

    #[test]
    fn metadata_matches_paper_figure() {
        // 64 sets × 8 ways → 3 bits per set → 192 bits.
        assert_eq!(WayPredictor::new(64, 8).metadata_bits(), 192);
        // 2-way: 1 bit per set.
        assert_eq!(WayPredictor::new(128, 2).metadata_bits(), 128);
        // 1-way degenerates to 1 bit per set (never mispredicts anyway).
        assert_eq!(WayPredictor::new(4, 1).metadata_bits(), 4);
    }

    #[test]
    fn miss_trains_toward_fill_way() {
        let mut wp = WayPredictor::new(4, 4);
        wp.record_miss(2, 3);
        assert_eq!(wp.predict(2), 3);
        assert_eq!(wp.stats().misses, 1);
        assert_eq!(wp.stats().accuracy(), 0.0);
    }

    #[test]
    fn accuracy_counts_only_hits() {
        let mut wp = WayPredictor::new(1, 2);
        wp.record_hit(0, 0); // correct (cold table predicts 0)
        wp.record_miss(0, 1);
        wp.record_hit(0, 1); // correct
        wp.record_hit(0, 0); // wrong
        let s = wp.stats();
        assert_eq!((s.correct, s.wrong, s.misses), (2, 1, 1));
        assert!((s.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        wp.reset_stats();
        assert_eq!(wp.stats(), WayPredStats::default());
    }
}
