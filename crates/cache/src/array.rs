//! The tag/data array of one set-associative cache.
//!
//! Ways store the *full* line address rather than a truncated tag. This
//! models the paper's correctness rule — "SIPT … ensures correctness by
//! always checking the full tag on a lookup" — and makes a speculative
//! probe of the wrong set miss naturally instead of falsely hitting on a
//! truncated tag match.
//!
//! # Data-oriented layout
//!
//! The array is a structure-of-arrays: one packed `Vec<u64>` of full line
//! addresses (`sets × ways`, row-major, so one set's tags are a contiguous
//! slice), plus one `u64` *valid* bitmask word and one *dirty* bitmask
//! word per set (bit `w` = way `w`). A probe loads the set's valid word
//! once and walks its set bits over the contiguous tag slice —
//! branch-light, no `Option` discriminants, no per-way 16-byte tagged
//! slots. Replacement state is the monomorphized
//! [`Replacement`](crate::replacement::Replacement) enum, so the
//! touch/victim on every access is a static call. The observable
//! behaviour (hits, victims, evictions, dirty bits, MRU) is bit-identical
//! to the previous `Vec<Option<Line>>` representation — pinned by the
//! differential property test in `tests/soa_differential.rs`.

use crate::geometry::{CacheGeometry, LineAddr};
use crate::replacement::{Replacement, ReplacementKind};

/// Wide (multi-way) tag comparison: the branchless heart of
/// [`CacheArray::probe`].
///
/// [`eq_mask`](simd::eq_mask) compares every tag slot of one set against a
/// needle in chunks of four `u64` lanes and reduces the result to a bitmask
/// (bit `w` set ⇔ `tags[w] == needle`). The mask is then ANDed with the
/// set's valid word, so stale tag values in invalid slots can never match.
/// On x86-64 an AVX2 path (`_mm256_cmpeq_epi64` + `movemask`) is selected
/// by cached runtime feature detection — or statically when compiled with
/// `-Ctarget-feature=+avx2` — with the portable chunked path as the
/// always-correct fallback. Both paths are pinned bit-identical to each
/// other and to the scalar bit-walk ([`CacheArray::probe_scalar`]) by
/// differential property tests.
pub mod simd {
    /// Portable chunked lane compare: four branchless `u64` compares per
    /// chunk, ORed into the hit mask, with a scalar tail for `ways % 4`.
    #[inline(always)]
    pub fn eq_mask_portable(tags: &[u64], needle: u64) -> u64 {
        debug_assert!(tags.len() <= 64);
        let mut mask = 0u64;
        let mut lane = 0u32;
        let mut chunks = tags.chunks_exact(4);
        for c in &mut chunks {
            let m = (c[0] == needle) as u64
                | (((c[1] == needle) as u64) << 1)
                | (((c[2] == needle) as u64) << 2)
                | (((c[3] == needle) as u64) << 3);
            mask |= m << lane;
            lane += 4;
        }
        for &t in chunks.remainder() {
            mask |= ((t == needle) as u64) << lane;
            lane += 1;
        }
        mask
    }

    #[cfg(target_arch = "x86_64")]
    mod avx2 {
        #![allow(unsafe_code)]
        use core::arch::x86_64::{
            __m256i, _mm256_castsi256_pd, _mm256_cmpeq_epi64, _mm256_loadu_si256,
            _mm256_movemask_pd, _mm256_set1_epi64x,
        };

        /// AVX2 lane compare: one 4-lane `cmpeq` + `movemask` per chunk.
        ///
        /// # Safety
        ///
        /// The caller must have verified AVX2 support (runtime detection or
        /// a static `target_feature`) before calling.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn eq_mask(tags: &[u64], needle: u64) -> u64 {
            let splat = _mm256_set1_epi64x(needle as i64);
            let mut mask = 0u64;
            let mut lane = 0u32;
            let mut chunks = tags.chunks_exact(4);
            for c in &mut chunks {
                // SAFETY: `c` is a 4-element `u64` chunk, so reading 32
                // unaligned bytes from its base pointer stays in bounds.
                let v = unsafe { _mm256_loadu_si256(c.as_ptr() as *const __m256i) };
                let eq = _mm256_cmpeq_epi64(v, splat);
                let m = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32 as u64;
                mask |= m << lane;
                lane += 4;
            }
            for &t in chunks.remainder() {
                mask |= ((t == needle) as u64) << lane;
                lane += 1;
            }
            mask
        }
    }

    /// Whether the AVX2 path is in use (compiled in, or detected at
    /// runtime). Always `false` off x86-64.
    #[inline]
    pub fn avx2_active() -> bool {
        #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
        {
            true
        }
        #[cfg(all(target_arch = "x86_64", not(target_feature = "avx2")))]
        {
            use std::sync::atomic::{AtomicU8, Ordering};
            // 0 = unprobed, 1 = available, 2 = unavailable. Races are
            // benign: every prober stores the same answer.
            static AVX2: AtomicU8 = AtomicU8::new(0);
            match AVX2.load(Ordering::Relaxed) {
                1 => true,
                2 => false,
                _ => {
                    let has = std::arch::is_x86_feature_detected!("avx2");
                    AVX2.store(if has { 1 } else { 2 }, Ordering::Relaxed);
                    has
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Minimum slot count for the *runtime-dispatched* AVX2 path. A
    /// `#[target_feature]` function cannot inline into a caller compiled
    /// without the feature, so the dynamic path costs a real call plus
    /// the cached-detection load; the inlined portable compare wins below
    /// ~16 lanes (L1 arrays are 2–8-way — only the 16-way LLC clears the
    /// bar). Irrelevant when AVX2 is compiled in (`-C
    /// target-feature=+avx2`): then the intrinsics inline statically and
    /// every width takes the vector path.
    pub const DYNAMIC_SIMD_MIN_LANES: usize = 16;

    /// Compare every slot of `tags` against `needle`, returning the lane
    /// bitmask (bit `w` set ⇔ `tags[w] == needle`). Uses AVX2 statically
    /// when compiled in, by runtime detection for wide arrays
    /// ([`DYNAMIC_SIMD_MIN_LANES`]), and the portable chunked compare
    /// otherwise.
    #[inline]
    pub fn eq_mask(tags: &[u64], needle: u64) -> u64 {
        #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
        {
            #![allow(unsafe_code)]
            // SAFETY: AVX2 is a compile-time target feature of this
            // build, so the whole binary requires it.
            return unsafe { avx2::eq_mask(tags, needle) };
        }
        #[cfg(all(target_arch = "x86_64", not(target_feature = "avx2")))]
        {
            #![allow(unsafe_code)]
            if tags.len() >= DYNAMIC_SIMD_MIN_LANES && avx2_active() {
                // SAFETY: AVX2 presence established by `avx2_active`.
                return unsafe { avx2::eq_mask(tags, needle) };
            }
        }
        #[allow(unreachable_code)]
        eq_mask_portable(tags, needle)
    }
}

/// Widest associativity [`CacheArray::probe`] resolves with the plain
/// scalar bit-walk. L1s are 2–8-way, where the wide compare's slice setup
/// outweighs a few predicted compares; wider arrays (the 16-way LLC) take
/// the MRU-hint scalar compare backed by [`simd::eq_mask`].
const SCALAR_PROBE_MAX_WAYS: u32 = 8;

/// One resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Full (physical) line address.
    pub line: LineAddr,
    /// Whether the line has been written since the fill.
    pub dirty: bool,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether it must be written back.
    pub dirty: bool,
}

/// A set-associative array of cache lines with a pluggable replacement
/// policy, stored structure-of-arrays.
#[derive(Debug)]
pub struct CacheArray {
    geometry: CacheGeometry,
    ways: u32,
    /// Full-mask of the low `ways` bits (`ways` ≤ 64).
    way_mask: u64,
    /// Packed full line addresses, sets × ways row-major. A slot's value
    /// is meaningful only when its valid bit is set.
    tags: Vec<u64>,
    /// One valid bitmask word per set (bit `w` = way `w`).
    valid: Vec<u64>,
    /// One dirty bitmask word per set.
    dirty: Vec<u64>,
    /// Most-recently-touched way per set — the replacement policies' MRU
    /// way, cached O(1) where `TrueLru::mru_way` would rescan timestamps.
    /// Feeds the hybrid probe's single scalar compare before the wide
    /// mask on arrays above [`SCALAR_PROBE_MAX_WAYS`]; `u8::MAX` (or a
    /// stale way with its valid bit since cleared, or a refilled way with
    /// another tag) simply falls through to the wide compare, so the hint
    /// can never change a result. Empty for narrow arrays: their scalar
    /// walk is already ≤ 8 predicted compares, and measuring showed even
    /// the unconditional hint *store* in `lookup` costs more than the walk
    /// (it forces per-iteration reloads of the array fields).
    mru_hint: Vec<u8>,
    repl: Replacement,
}

impl CacheArray {
    /// Create an empty array.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than 64 ways (valid/dirty state is
    /// one bitmask word per set).
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        let sets = geometry.sets();
        let ways = geometry.ways;
        assert!(ways <= 64, "CacheArray packs per-set valid/dirty state into u64 words");
        let way_mask = if ways == 64 { u64::MAX } else { (1u64 << ways) - 1 };
        Self {
            geometry,
            ways,
            way_mask,
            tags: vec![0; (sets * ways as u64) as usize],
            valid: vec![0; sets as usize],
            dirty: vec![0; sets as usize],
            mru_hint: if ways > SCALAR_PROBE_MAX_WAYS {
                vec![u8::MAX; sets as usize]
            } else {
                Vec::new()
            },
            repl: replacement.build(sets, ways),
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    #[inline]
    fn base(&self, set: u64) -> usize {
        (set * self.ways as u64) as usize
    }

    /// The set a (physical) line address maps to.
    #[inline]
    pub fn home_set(&self, line: LineAddr) -> u64 {
        self.geometry.set_of(line)
    }

    /// Probe `set` for `line` without updating replacement state.
    ///
    /// Hybrid probe, split by associativity:
    ///
    /// - **Narrow** (≤ [`SCALAR_PROBE_MAX_WAYS`], every L1 shape): walk
    ///   the set bits of the valid word over the contiguous tag slice —
    ///   at most 8 predicted compares, cheaper than the wide compare's
    ///   slice setup.
    /// - **Wide** (the 16-way LLC): the set's cached MRU way gets one
    ///   scalar compare first — hit-heavy streams re-touch the same line,
    ///   so most probes resolve without forming the wide mask. On an MRU
    ///   miss (or a cold/stale hint) all ways are compared at once via
    ///   [`simd::eq_mask`], reduced to a hit mask, and ANDed with the
    ///   set's valid word (invalid slots hold stale tag values and must
    ///   never match).
    ///
    /// Lines are unique per set, so at most one valid way can match and
    /// every path returns the same answer — all three (walk, MRU
    /// short-circuit, wide mask) are pinned to
    /// [`CacheArray::probe_scalar`] by the differential property test.
    #[inline]
    pub fn probe(&self, set: u64, line: LineAddr) -> Option<u32> {
        let base = self.base(set);
        let tags = &self.tags[base..base + self.ways as usize];
        let valid = self.valid[set as usize];
        if self.ways <= SCALAR_PROBE_MAX_WAYS {
            let mut live = valid;
            while live != 0 {
                let w = live.trailing_zeros();
                if tags[w as usize] == line.0 {
                    return Some(w);
                }
                live &= live - 1;
            }
            return None;
        }
        let mru = u32::from(self.mru_hint[set as usize]);
        if mru < self.ways && (valid >> mru) & 1 != 0 && tags[mru as usize] == line.0 {
            return Some(mru);
        }
        Self::probe_wide(tags, valid, line)
    }

    /// The wide-compare arm of [`CacheArray::probe`], out of line so the
    /// hot narrow-set body stays small enough to inline into callers.
    #[inline(never)]
    fn probe_wide(tags: &[u64], valid: u64, line: LineAddr) -> Option<u32> {
        let hits = simd::eq_mask(tags, line.0) & valid;
        if hits != 0 {
            Some(hits.trailing_zeros())
        } else {
            None
        }
    }

    /// Record `way` as `set`'s most-recently-touched way (wide arrays
    /// only — narrow arrays keep no hint; see [`CacheArray::probe`]).
    #[inline]
    fn note_mru(&mut self, set: u64, way: u32) {
        if self.ways > SCALAR_PROBE_MAX_WAYS {
            self.mru_hint[set as usize] = way as u8;
        }
    }

    /// Scalar bit-walk probe — the pre-wide-probe implementation, retained
    /// as the reference oracle for the differential tests pinning
    /// [`CacheArray::probe`].
    #[inline]
    pub fn probe_scalar(&self, set: u64, line: LineAddr) -> Option<u32> {
        let base = self.base(set);
        let tags = &self.tags[base..base + self.ways as usize];
        let mut live = self.valid[set as usize];
        // Walk the set bits of the valid word in ascending way order over
        // the contiguous tag slice. At most one way can match (lines are
        // unique per set), so the walk order does not affect the result.
        while live != 0 {
            let w = live.trailing_zeros();
            if tags[w as usize] == line.0 {
                return Some(w);
            }
            live &= live - 1;
        }
        None
    }

    /// Look up `line` in `set`, updating replacement state on a hit.
    /// The caller chooses the set — for SIPT this may be a *speculative*
    /// set that differs from [`CacheArray::home_set`]; such probes miss.
    #[inline]
    pub fn lookup(&mut self, set: u64, line: LineAddr) -> Option<u32> {
        let way = self.probe(set, line)?;
        self.repl.touch(set, way);
        self.note_mru(set, way);
        Some(way)
    }

    /// Mark `way` of `set` dirty (store hit).
    ///
    /// # Panics
    ///
    /// Panics if the way is invalid.
    #[inline]
    pub fn set_dirty(&mut self, set: u64, way: u32) {
        assert!(
            (self.valid[set as usize] >> way) & 1 == 1,
            "set_dirty on invalid way: set {set} way {way}"
        );
        self.dirty[set as usize] |= 1u64 << way;
    }

    /// Fill `line` into its home set, evicting if necessary. Returns the
    /// evicted line, if one had to make room. See
    /// [`CacheArray::fill_with_way`] for the variant that also reports the
    /// chosen way.
    #[inline]
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        self.fill_with_way(line, dirty).1
    }

    /// [`CacheArray::fill`], additionally returning the way the line was
    /// placed in — callers training a way predictor need it and would
    /// otherwise re-probe the set.
    #[inline]
    pub fn fill_with_way(&mut self, line: LineAddr, dirty: bool) -> (u32, Option<Evicted>) {
        let set = self.home_set(line);
        debug_assert!(self.probe(set, line).is_none(), "double fill of {line}");
        let valid = self.valid[set as usize];
        // Prefer the lowest invalid way; otherwise ask the policy.
        let free = !valid & self.way_mask;
        let way = if free != 0 { free.trailing_zeros() } else { self.repl.victim(set) };
        let slot = self.base(set) + way as usize;
        let way_bit = 1u64 << way;
        let evicted = if valid & way_bit != 0 {
            Some(Evicted {
                line: LineAddr(self.tags[slot]),
                dirty: self.dirty[set as usize] & way_bit != 0,
            })
        } else {
            None
        };
        self.tags[slot] = line.0;
        self.valid[set as usize] |= way_bit;
        if dirty {
            self.dirty[set as usize] |= way_bit;
        } else {
            self.dirty[set as usize] &= !way_bit;
        }
        self.repl.touch(set, way);
        self.note_mru(set, way);
        (way, evicted)
    }

    /// Invalidate `line` wherever it resides (its home set), returning it.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Line> {
        let set = self.home_set(line);
        let way = self.probe(set, line)?;
        let way_bit = 1u64 << way;
        let was_dirty = self.dirty[set as usize] & way_bit != 0;
        self.valid[set as usize] &= !way_bit;
        self.dirty[set as usize] &= !way_bit;
        Some(Line { line, dirty: was_dirty })
    }

    /// The most-recently-used way of `set` according to the replacement
    /// policy (the input of the MRU way predictor).
    pub fn mru_way(&self, set: u64) -> Option<u32> {
        self.repl.mru_way(set)
    }

    /// The line resident in `way` of `set`, if valid.
    pub fn line_at(&self, set: u64, way: u32) -> Option<Line> {
        let way_bit = 1u64 << way;
        if self.valid[set as usize] & way_bit == 0 {
            return None;
        }
        Some(Line {
            line: LineAddr(self.tags[self.base(set) + way as usize]),
            dirty: self.dirty[set as usize] & way_bit != 0,
        })
    }

    /// Number of valid lines in the whole array.
    pub fn resident_lines(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }

    /// Iterate over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = Line> + '_ {
        (0..self.geometry.sets())
            .flat_map(move |set| (0..self.ways).filter_map(move |w| self.line_at(set, w)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> CacheArray {
        // 4 sets × 2 ways of 64 B lines = 512 B.
        CacheArray::new(CacheGeometry::new(512, 2), ReplacementKind::Lru)
    }

    #[test]
    fn fill_then_hit_in_home_set() {
        let mut a = tiny();
        let line = LineAddr(0x123);
        assert!(a.fill(line, false).is_none());
        let set = a.home_set(line);
        assert!(a.lookup(set, line).is_some());
        assert_eq!(a.resident_lines(), 1);
    }

    #[test]
    fn speculative_probe_of_wrong_set_misses() {
        let mut a = tiny();
        let line = LineAddr(0x123);
        a.fill(line, false);
        let wrong_set = (a.home_set(line) + 1) % a.geometry().sets();
        assert_eq!(a.lookup(wrong_set, line), None, "wrong-set probe must miss");
    }

    #[test]
    fn full_address_tags_prevent_aliased_hits() {
        let mut a = tiny();
        // Two lines with identical truncated tags but different sets:
        // line = (tag << 2) | set with 4 sets.
        let line_a = LineAddr(7 << 2);
        let line_b = LineAddr((7 << 2) | 1);
        a.fill(line_a, false);
        // Probing set 0 for line_b must miss even though a truncated-tag
        // design would alias.
        assert_eq!(a.lookup(0, line_b), None);
    }

    #[test]
    fn eviction_reports_dirtiness() {
        let mut a = tiny();
        // Fill both ways of set 0 (4 sets: lines 0 and 4 map to set 0).
        a.fill(LineAddr(0), false);
        a.fill(LineAddr(4), false);
        let set = a.home_set(LineAddr(0));
        let way = a.lookup(set, LineAddr(0)).unwrap();
        a.set_dirty(set, way);
        // Touch line 4 so line 0 is LRU... then re-touch 0 to make 4 LRU.
        a.lookup(set, LineAddr(4));
        a.lookup(set, LineAddr(0));
        let evicted = a.fill(LineAddr(8), false).expect("set full");
        assert_eq!(evicted.line, LineAddr(4));
        assert!(!evicted.dirty);
        // Now evict line 0, which is dirty.
        a.lookup(set, LineAddr(8));
        let evicted = a.fill(LineAddr(12), false).expect("set full");
        assert_eq!(evicted.line, LineAddr(0));
        assert!(evicted.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut a = tiny();
        a.fill(LineAddr(5), true);
        let line = a.invalidate(LineAddr(5)).unwrap();
        assert!(line.dirty);
        assert_eq!(a.invalidate(LineAddr(5)), None);
        assert_eq!(a.resident_lines(), 0);
    }

    #[test]
    fn refill_after_dirty_invalidate_starts_clean() {
        // The dirty bitmask must be scrubbed on invalidate and on clean
        // refill — a stale bit would fabricate writebacks.
        let mut a = tiny();
        a.fill(LineAddr(5), true);
        a.invalidate(LineAddr(5)).unwrap();
        a.fill(LineAddr(5), false);
        let set = a.home_set(LineAddr(5));
        let way = a.probe(set, LineAddr(5)).unwrap();
        assert!(!a.line_at(set, way).unwrap().dirty, "refilled line must be clean");
    }

    #[test]
    fn mru_way_tracks_touches() {
        let mut a = tiny();
        a.fill(LineAddr(0), false);
        a.fill(LineAddr(4), false);
        let set = a.home_set(LineAddr(0));
        a.lookup(set, LineAddr(0));
        let mru = a.mru_way(set).unwrap();
        assert_eq!(a.line_at(set, mru).unwrap().line, LineAddr(0));
    }

    #[test]
    fn mru_way_is_none_for_untouched_lru_set() {
        let a = tiny();
        for set in 0..a.geometry().sets() {
            assert_eq!(a.mru_way(set), None, "empty LRU set {set} must have no MRU way");
        }
    }

    #[test]
    fn fill_with_way_reports_placement() {
        let mut a = tiny();
        let (w0, ev0) = a.fill_with_way(LineAddr(0), false);
        assert!(ev0.is_none());
        let (w1, ev1) = a.fill_with_way(LineAddr(4), false);
        assert!(ev1.is_none());
        assert_ne!(w0, w1, "two lines in one 2-way set occupy distinct ways");
        let set = a.home_set(LineAddr(0));
        assert_eq!(a.probe(set, LineAddr(0)), Some(w0));
        assert_eq!(a.probe(set, LineAddr(4)), Some(w1));
    }

    #[test]
    #[should_panic(expected = "set_dirty on invalid way")]
    fn set_dirty_panics_on_invalid_way() {
        let mut a = tiny();
        a.set_dirty(0, 1);
    }

    #[test]
    fn stale_mru_hint_never_resurrects_an_invalidated_line() {
        // The wide-array probe's MRU hint is left stale by invalidate; the
        // valid-bit guard (and, after a refill into the same way, the tag
        // compare) must make it fall through to the wide compare. 16 ways
        // so the hint path (not the narrow scalar walk) is exercised.
        let mut a = CacheArray::new(CacheGeometry::new(16 << 10, 16), ReplacementKind::Lru);
        a.fill(LineAddr(0), false);
        a.fill(LineAddr(16), false);
        let set = a.home_set(LineAddr(0));
        let way0 = a.lookup(set, LineAddr(0)).unwrap(); // hint -> way of line 0
        a.invalidate(LineAddr(0)).unwrap();
        assert_eq!(a.probe(set, LineAddr(0)), None, "stale hint, valid bit clear");
        assert_eq!(a.probe(set, LineAddr(16)), a.probe_scalar(set, LineAddr(16)));
        // Refill a different line; the free-way preference reuses way0,
        // so the old hint's way is valid again but holds another tag.
        let (way_new, _) = a.fill_with_way(LineAddr(32), false);
        assert_eq!(way_new, way0);
        assert_eq!(a.probe(set, LineAddr(0)), None, "stale hint, tag mismatch");
        assert_eq!(a.probe(set, LineAddr(32)), Some(way_new));
        // MRU re-probe resolves through the hint short-circuit.
        assert_eq!(a.lookup(set, LineAddr(32)), Some(way_new));
        assert_eq!(a.probe(set, LineAddr(32)), a.probe_scalar(set, LineAddr(32)));
    }

    /// One step of the wide-probe differential driver.
    #[derive(Debug, Clone, Copy)]
    enum ProbeOp {
        /// Look up (and fill on miss) the line with this raw address.
        Access(u64),
        /// Invalidate the line with this raw address.
        Invalidate(u64),
    }

    fn probe_op() -> impl Strategy<Value = ProbeOp> {
        // A small address universe (~4× capacity) forces evictions;
        // 1 in 5 ops invalidates, the rest access-and-fill.
        (0u64..512 * 5).prop_map(|v| {
            if v % 5 == 4 {
                ProbeOp::Invalidate(v / 5)
            } else {
                ProbeOp::Access(v / 5)
            }
        })
    }

    proptest! {
        /// Differential: the wide probe (portable or SIMD, whichever the
        /// host dispatches to) agrees with the scalar bit-walk on every
        /// probe of every set across random fill/evict/invalidate
        /// sequences, for all three replacement kinds. Associativity spans
        /// 1–16 ways so the narrow scalar walk, the 16-way MRU-hint
        /// short-circuit, and the wide compare (4-lane chunks plus the
        /// scalar tail) are all exercised.
        #[test]
        fn wide_probe_matches_scalar_walk(
            ops in proptest::collection::vec(probe_op(), 1..200),
            kind_sel in 0u32..3,
            ways_log2 in 0u32..5,
        ) {
            let kind = match kind_sel {
                0 => ReplacementKind::Lru,
                1 => ReplacementKind::TreePlru,
                _ => ReplacementKind::Random,
            };
            let ways = 1u32 << ways_log2;
            let mut a = CacheArray::new(CacheGeometry::new(8 * u64::from(ways) * 64, ways), kind);
            for &op in &ops {
                match op {
                    ProbeOp::Access(raw) => {
                        let line = LineAddr(raw);
                        let set = a.home_set(line);
                        if a.lookup(set, line).is_none() {
                            a.fill(line, false);
                        }
                    }
                    ProbeOp::Invalidate(raw) => {
                        a.invalidate(LineAddr(raw));
                    }
                }
                // After every mutation, wide and scalar probes agree for
                // every (set, line) pair in the universe — including
                // wrong-set speculative probes, which must miss in both.
                for raw in 0..512u64 {
                    let line = LineAddr(raw);
                    for set in 0..a.geometry().sets() {
                        prop_assert_eq!(a.probe(set, line), a.probe_scalar(set, line));
                    }
                }
            }
        }

        /// The dispatched `eq_mask` (SIMD when the host has it) and the
        /// portable chunked path produce identical masks for arbitrary
        /// tag slices of every length 0..=64, including needle-absent,
        /// needle-duplicated, and all-equal slices.
        #[test]
        fn eq_mask_simd_matches_portable(
            raw_tags in proptest::collection::vec(0u64..8, 0..64),
            needle in 0u64..8,
        ) {
            let mut tags = raw_tags;
            prop_assert_eq!(
                simd::eq_mask(&tags, needle),
                simd::eq_mask_portable(&tags, needle)
            );
            // Force at least one match lane when non-empty.
            if let Some(slot) = tags.first_mut() {
                *slot = needle;
                prop_assert_eq!(
                    simd::eq_mask(&tags, needle),
                    simd::eq_mask_portable(&tags, needle)
                );
            }
        }
    }

    #[test]
    fn eq_mask_reports_every_matching_lane() {
        let tags = [7u64, 3, 7, 7, 1, 7];
        let mask = simd::eq_mask(&tags, 7);
        assert_eq!(mask, 0b101101);
        assert_eq!(simd::eq_mask_portable(&tags, 7), 0b101101);
        assert_eq!(simd::eq_mask(&tags, 9), 0);
        assert_eq!(simd::eq_mask(&[], 9), 0);
    }

    proptest! {
        /// Residency never exceeds capacity, and a filled line is always
        /// found in (and only in) its home set afterwards.
        #[test]
        fn fills_respect_geometry(lines in proptest::collection::vec(0u64..256, 1..128)) {
            let mut a = CacheArray::new(CacheGeometry::new(1 << 10, 4), ReplacementKind::TreePlru);
            for &raw in &lines {
                let line = LineAddr(raw);
                let set = a.home_set(line);
                if a.lookup(set, line).is_none() {
                    a.fill(line, false);
                }
                prop_assert!(a.resident_lines() as u64 <= a.geometry().sets() * 4);
                prop_assert!(a.probe(set, line).is_some());
            }
            // Every resident line sits in its home set.
            for l in a.iter().collect::<Vec<_>>() {
                let set = a.home_set(l.line);
                prop_assert!(a.probe(set, l.line).is_some());
            }
        }
    }
}
