//! The tag/data array of one set-associative cache.
//!
//! Ways store the *full* line address rather than a truncated tag. This
//! models the paper's correctness rule — "SIPT … ensures correctness by
//! always checking the full tag on a lookup" — and makes a speculative
//! probe of the wrong set miss naturally instead of falsely hitting on a
//! truncated tag match.

use crate::geometry::{CacheGeometry, LineAddr};
use crate::replacement::{ReplacementKind, ReplacementPolicy};

/// One resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Full (physical) line address.
    pub line: LineAddr,
    /// Whether the line has been written since the fill.
    pub dirty: bool,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether it must be written back.
    pub dirty: bool,
}

/// A set-associative array of cache lines with a pluggable replacement
/// policy.
#[derive(Debug)]
pub struct CacheArray {
    geometry: CacheGeometry,
    ways: Vec<Option<Line>>, // sets × ways, row-major
    repl: Box<dyn ReplacementPolicy + Send>,
}

impl CacheArray {
    /// Create an empty array.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        let sets = geometry.sets();
        Self {
            geometry,
            ways: vec![None; (sets * geometry.ways as u64) as usize],
            repl: replacement.build(sets, geometry.ways),
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    #[inline]
    fn slot(&self, set: u64, way: u32) -> usize {
        (set * self.geometry.ways as u64 + way as u64) as usize
    }

    /// The set a (physical) line address maps to.
    #[inline]
    pub fn home_set(&self, line: LineAddr) -> u64 {
        self.geometry.set_of(line)
    }

    /// Probe `set` for `line` without updating replacement state.
    pub fn probe(&self, set: u64, line: LineAddr) -> Option<u32> {
        (0..self.geometry.ways)
            .find(|&w| self.ways[self.slot(set, w)].map(|l| l.line) == Some(line))
    }

    /// Look up `line` in `set`, updating replacement state on a hit.
    /// The caller chooses the set — for SIPT this may be a *speculative*
    /// set that differs from [`CacheArray::home_set`]; such probes miss.
    pub fn lookup(&mut self, set: u64, line: LineAddr) -> Option<u32> {
        let way = self.probe(set, line)?;
        self.repl.touch(set, way);
        Some(way)
    }

    /// Mark `way` of `set` dirty (store hit).
    ///
    /// # Panics
    ///
    /// Panics if the way is invalid.
    pub fn set_dirty(&mut self, set: u64, way: u32) {
        let slot = self.slot(set, way);
        self.ways[slot].as_mut().expect("set_dirty on invalid way").dirty = true;
    }

    /// Fill `line` into its home set, evicting if necessary. Returns the
    /// evicted line, if one had to make room.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        let set = self.home_set(line);
        debug_assert!(self.probe(set, line).is_none(), "double fill of {line}");
        // Prefer an invalid way.
        let way = (0..self.geometry.ways)
            .find(|&w| self.ways[self.slot(set, w)].is_none())
            .unwrap_or_else(|| self.repl.victim(set));
        let slot = self.slot(set, way);
        let evicted = self.ways[slot].map(|old| Evicted { line: old.line, dirty: old.dirty });
        self.ways[slot] = Some(Line { line, dirty });
        self.repl.touch(set, way);
        evicted
    }

    /// Invalidate `line` wherever it resides (its home set), returning it.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Line> {
        let set = self.home_set(line);
        let way = self.probe(set, line)?;
        let slot = self.slot(set, way);
        self.ways[slot].take()
    }

    /// The most-recently-used way of `set` according to the replacement
    /// policy (the input of the MRU way predictor).
    pub fn mru_way(&self, set: u64) -> Option<u32> {
        self.repl.mru_way(set)
    }

    /// The line resident in `way` of `set`, if valid.
    pub fn line_at(&self, set: u64, way: u32) -> Option<Line> {
        self.ways[self.slot(set, way)]
    }

    /// Number of valid lines in the whole array.
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.is_some()).count()
    }

    /// Iterate over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = Line> + '_ {
        self.ways.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> CacheArray {
        // 4 sets × 2 ways of 64 B lines = 512 B.
        CacheArray::new(CacheGeometry::new(512, 2), ReplacementKind::Lru)
    }

    #[test]
    fn fill_then_hit_in_home_set() {
        let mut a = tiny();
        let line = LineAddr(0x123);
        assert!(a.fill(line, false).is_none());
        let set = a.home_set(line);
        assert!(a.lookup(set, line).is_some());
        assert_eq!(a.resident_lines(), 1);
    }

    #[test]
    fn speculative_probe_of_wrong_set_misses() {
        let mut a = tiny();
        let line = LineAddr(0x123);
        a.fill(line, false);
        let wrong_set = (a.home_set(line) + 1) % a.geometry().sets();
        assert_eq!(a.lookup(wrong_set, line), None, "wrong-set probe must miss");
    }

    #[test]
    fn full_address_tags_prevent_aliased_hits() {
        let mut a = tiny();
        // Two lines with identical truncated tags but different sets:
        // line = (tag << 2) | set with 4 sets.
        let line_a = LineAddr(7 << 2);
        let line_b = LineAddr((7 << 2) | 1);
        a.fill(line_a, false);
        // Probing set 0 for line_b must miss even though a truncated-tag
        // design would alias.
        assert_eq!(a.lookup(0, line_b), None);
    }

    #[test]
    fn eviction_reports_dirtiness() {
        let mut a = tiny();
        // Fill both ways of set 0 (4 sets: lines 0 and 4 map to set 0).
        a.fill(LineAddr(0), false);
        a.fill(LineAddr(4), false);
        let set = a.home_set(LineAddr(0));
        let way = a.lookup(set, LineAddr(0)).unwrap();
        a.set_dirty(set, way);
        // Touch line 4 so line 0 is LRU... then re-touch 0 to make 4 LRU.
        a.lookup(set, LineAddr(4));
        a.lookup(set, LineAddr(0));
        let evicted = a.fill(LineAddr(8), false).expect("set full");
        assert_eq!(evicted.line, LineAddr(4));
        assert!(!evicted.dirty);
        // Now evict line 0, which is dirty.
        a.lookup(set, LineAddr(8));
        let evicted = a.fill(LineAddr(12), false).expect("set full");
        assert_eq!(evicted.line, LineAddr(0));
        assert!(evicted.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut a = tiny();
        a.fill(LineAddr(5), true);
        let line = a.invalidate(LineAddr(5)).unwrap();
        assert!(line.dirty);
        assert_eq!(a.invalidate(LineAddr(5)), None);
        assert_eq!(a.resident_lines(), 0);
    }

    #[test]
    fn mru_way_tracks_touches() {
        let mut a = tiny();
        a.fill(LineAddr(0), false);
        a.fill(LineAddr(4), false);
        let set = a.home_set(LineAddr(0));
        a.lookup(set, LineAddr(0));
        let mru = a.mru_way(set).unwrap();
        assert_eq!(a.line_at(set, mru).unwrap().line, LineAddr(0));
    }

    proptest! {
        /// Residency never exceeds capacity, and a filled line is always
        /// found in (and only in) its home set afterwards.
        #[test]
        fn fills_respect_geometry(lines in proptest::collection::vec(0u64..256, 1..128)) {
            let mut a = CacheArray::new(CacheGeometry::new(1 << 10, 4), ReplacementKind::TreePlru);
            for &raw in &lines {
                let line = LineAddr(raw);
                let set = a.home_set(line);
                if a.lookup(set, line).is_none() {
                    a.fill(line, false);
                }
                prop_assert!(a.resident_lines() as u64 <= a.geometry().sets() * 4);
                prop_assert!(a.probe(set, line).is_some());
            }
            // Every resident line sits in its home set.
            for l in a.iter().collect::<Vec<_>>() {
                let set = a.home_set(l.line);
                prop_assert!(a.probe(set, l.line).is_some());
            }
        }
    }
}
