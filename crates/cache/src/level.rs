//! One level of the cache hierarchy: an array plus latency and counters.

use crate::array::{CacheArray, Evicted};
use crate::geometry::{CacheGeometry, LineAddr};
use crate::replacement::ReplacementKind;

/// Counters for one cache level. The energy model multiplies these by
/// per-access energies; the timing model uses them for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Demand lookups (reads + writes).
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines filled into this level.
    pub fills: u64,
    /// Dirty evictions written back toward memory.
    pub writebacks: u64,
}

impl LevelStats {
    /// Hit rate over demand lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses as f64
    }
}

/// A single cache level.
///
/// ```
/// use sipt_cache::{CacheGeometry, CacheLevel, LineAddr, ReplacementKind};
/// let mut l2 = CacheLevel::new(CacheGeometry::new(256 << 10, 8), 12, ReplacementKind::Lru);
/// assert!(!l2.access(LineAddr(0x40), false)); // cold miss
/// l2.fill(LineAddr(0x40), false);
/// assert!(l2.access(LineAddr(0x40), false)); // hit
/// assert_eq!(l2.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct CacheLevel {
    array: CacheArray,
    latency: u64,
    stats: LevelStats,
}

impl CacheLevel {
    /// Create an empty level with the given access latency (cycles).
    pub fn new(geometry: CacheGeometry, latency: u64, replacement: ReplacementKind) -> Self {
        Self {
            array: CacheArray::new(geometry, replacement),
            latency,
            stats: LevelStats::default(),
        }
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// The level's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        self.array.geometry()
    }

    /// Demand access: look up `line` in its home set, marking dirty on a
    /// write hit. Returns whether it hit.
    #[inline]
    pub fn access(&mut self, line: LineAddr, write: bool) -> bool {
        self.stats.accesses += 1;
        let set = self.array.home_set(line);
        match self.array.lookup(set, line) {
            Some(way) => {
                if write {
                    self.array.set_dirty(set, way);
                }
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Fill `line`; returns the eviction (if dirty, the caller forwards it
    /// down as a writeback — this level only counts it).
    #[inline]
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        self.stats.fills += 1;
        let evicted = self.array.fill(line, dirty);
        if evicted.is_some_and(|e| e.dirty) {
            self.stats.writebacks += 1;
        }
        evicted
    }

    /// Write-back absorb: mark `line` dirty if resident, else report false
    /// so the writeback continues to the next level.
    #[inline]
    pub fn absorb_writeback(&mut self, line: LineAddr) -> bool {
        let set = self.array.home_set(line);
        match self.array.lookup(set, line) {
            Some(way) => {
                self.array.set_dirty(set, way);
                true
            }
            None => false,
        }
    }

    /// Direct access to the underlying array (used by the SIPT front-end,
    /// which probes speculative sets).
    pub fn array(&self) -> &CacheArray {
        &self.array
    }

    /// Mutable access to the underlying array.
    pub fn array_mut(&mut self) -> &mut CacheArray {
        &mut self.array
    }

    /// Manually bump the access counter (used when the SIPT front-end does
    /// its own lookups through [`CacheLevel::array_mut`]).
    pub fn record_access(&mut self, hit: bool) {
        self.stats.accesses += 1;
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Reset statistics, keeping contents (post-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = LevelStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level() -> CacheLevel {
        CacheLevel::new(CacheGeometry::new(1 << 10, 2), 12, ReplacementKind::Lru)
    }

    #[test]
    fn miss_fill_hit_cycle() {
        let mut l = level();
        assert!(!l.access(LineAddr(3), false));
        l.fill(LineAddr(3), false);
        assert!(l.access(LineAddr(3), false));
        let s = l.stats();
        assert_eq!((s.accesses, s.hits, s.misses, s.fills), (2, 1, 1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn write_hit_dirties_line() {
        let mut l = level();
        l.fill(LineAddr(3), false);
        assert!(l.access(LineAddr(3), true));
        let set = l.array().home_set(LineAddr(3));
        let way = l.array().probe(set, LineAddr(3)).unwrap();
        assert!(l.array().line_at(set, way).unwrap().dirty);
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut l = level();
        // 8 sets × 2 ways; fill three lines in set 0 (stride = sets = 8).
        l.fill(LineAddr(0), true);
        l.fill(LineAddr(8), false);
        let evicted = l.fill(LineAddr(16), false).unwrap();
        assert!(evicted.dirty);
        assert_eq!(l.stats().writebacks, 1);
    }

    #[test]
    fn absorb_writeback_hits_or_propagates() {
        let mut l = level();
        l.fill(LineAddr(3), false);
        assert!(l.absorb_writeback(LineAddr(3)));
        assert!(!l.absorb_writeback(LineAddr(99)));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut l = level();
        l.fill(LineAddr(3), false);
        l.access(LineAddr(3), false);
        l.reset_stats();
        assert_eq!(l.stats().accesses, 0);
        assert!(l.access(LineAddr(3), false), "contents must survive reset");
    }
}
