//! Cache geometry math: capacity/associativity/line size → sets, index and
//! tag extraction, and the *speculative bit count* that determines whether a
//! configuration is VIPT-feasible (the central constraint of the paper).

use sipt_mem::{PhysAddr, VirtAddr, PAGE_SHIFT};

/// Cache line size used throughout the paper (Table I).
pub const LINE_SIZE: u64 = 64;
/// Log2 of the line size.
pub const LINE_SHIFT: u32 = 6;

/// The address of a 64-byte cache line (byte address >> 6). Works for both
/// address spaces; which one it came from is tracked by the caller (the tag
/// stored in the arrays is always physical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Line containing a physical byte address.
    #[inline]
    pub const fn of_phys(pa: PhysAddr) -> Self {
        Self(pa.raw() >> LINE_SHIFT)
    }

    /// Line containing a virtual byte address.
    #[inline]
    pub const fn of_virt(va: VirtAddr) -> Self {
        Self(va.raw() >> LINE_SHIFT)
    }

    /// First byte address of the line (as a raw value).
    #[inline]
    pub const fn base(self) -> u64 {
        self.0 << LINE_SHIFT
    }
}

impl core::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Number of ways.
    pub ways: u32,
    /// Line size in bytes (64 in every paper configuration).
    pub line_size: u64,
}

impl CacheGeometry {
    /// Construct a geometry, validating power-of-two shape.
    ///
    /// # Panics
    ///
    /// Panics unless capacity, ways and line size are powers of two and
    /// `capacity >= ways * line_size`.
    pub fn new(capacity: u64, ways: u32) -> Self {
        Self::try_new(capacity, ways).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Construct a geometry from untrusted input, returning a descriptive
    /// error instead of panicking on an invalid shape.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated shape rule.
    pub fn try_new(capacity: u64, ways: u32) -> Result<Self, String> {
        let g = Self { capacity, ways, line_size: LINE_SIZE };
        g.try_validate()?;
        Ok(g)
    }

    /// Validate the power-of-two shape and the `sets × ways × line ==
    /// capacity` identity, as a typed error for untrusted configuration.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated shape rule.
    pub fn try_validate(&self) -> Result<(), String> {
        if !self.capacity.is_power_of_two() {
            return Err(format!("capacity {} must be a power of two", self.capacity));
        }
        if self.ways == 0 || !self.ways.is_power_of_two() {
            return Err(format!("ways {} must be a nonzero power of two", self.ways));
        }
        if !self.line_size.is_power_of_two() {
            return Err(format!("line size {} must be a power of two", self.line_size));
        }
        if self.capacity < self.ways as u64 * self.line_size {
            return Err(format!(
                "capacity {} must fit at least one {}-byte line per way ({} ways)",
                self.capacity, self.line_size, self.ways
            ));
        }
        // With all three powers of two this is an identity, but it is the
        // invariant everything downstream indexes by — check it directly.
        if self.sets() * self.ways as u64 * self.line_size != self.capacity {
            return Err(format!(
                "sets {} × ways {} × line {} != capacity {}",
                self.sets(),
                self.ways,
                self.line_size,
                self.capacity
            ));
        }
        Ok(())
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u64 {
        self.capacity / (self.ways as u64 * self.line_size)
    }

    /// Number of index bits (log2 of set count).
    #[inline]
    pub fn index_bits(&self) -> u32 {
        self.sets().trailing_zeros()
    }

    /// Per-way capacity in bytes: the quantity the VIPT constraint compares
    /// against the page size.
    #[inline]
    pub fn way_capacity(&self) -> u64 {
        self.capacity / self.ways as u64
    }

    /// Number of index bits *beyond* the 4 KiB page offset — the bits a
    /// SIPT cache must speculate on. Zero means the configuration is
    /// VIPT-feasible.
    ///
    /// ```
    /// use sipt_cache::CacheGeometry;
    /// // 32 KiB 8-way: way capacity 4 KiB — feasible as VIPT.
    /// assert_eq!(CacheGeometry::new(32 << 10, 8).speculative_bits(), 0);
    /// // 32 KiB 2-way: way capacity 16 KiB — needs 2 speculative bits.
    /// assert_eq!(CacheGeometry::new(32 << 10, 2).speculative_bits(), 2);
    /// ```
    #[inline]
    pub fn speculative_bits(&self) -> u32 {
        let total_index_and_offset = self.index_bits() + LINE_SHIFT;
        total_index_and_offset.saturating_sub(PAGE_SHIFT)
    }

    /// Whether the configuration satisfies the VIPT constraint
    /// (`way_capacity <= 4 KiB`).
    #[inline]
    pub fn vipt_feasible(&self) -> bool {
        self.speculative_bits() == 0
    }

    /// Set index of a line address.
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> u64 {
        line.0 & (self.sets() - 1)
    }

    /// Tag of a line address (the bits above the index).
    #[inline]
    pub fn tag_of(&self, line: LineAddr) -> u64 {
        line.0 >> self.index_bits()
    }

    /// Reconstruct a line address from a (tag, set) pair.
    #[inline]
    pub fn line_of(&self, tag: u64, set: u64) -> LineAddr {
        LineAddr((tag << self.index_bits()) | set)
    }
}

impl core::fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}KiB/{}-way", self.capacity >> 10, self.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn haswell_baseline_geometry() {
        let g = CacheGeometry::new(32 << 10, 8);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.index_bits(), 6);
        assert_eq!(g.way_capacity(), 4 << 10);
        assert!(g.vipt_feasible());
        assert_eq!(format!("{g}"), "32KiB/8-way");
    }

    #[test]
    fn paper_sipt_configs_speculative_bits() {
        // The four SIPT configurations of Table II.
        assert_eq!(CacheGeometry::new(32 << 10, 2).speculative_bits(), 2);
        assert_eq!(CacheGeometry::new(32 << 10, 4).speculative_bits(), 1);
        assert_eq!(CacheGeometry::new(64 << 10, 4).speculative_bits(), 2);
        assert_eq!(CacheGeometry::new(128 << 10, 4).speculative_bits(), 3);
        // And the 16 KiB 4-way option that needs no speculation.
        assert_eq!(CacheGeometry::new(16 << 10, 4).speculative_bits(), 0);
    }

    #[test]
    fn index_tag_roundtrip() {
        let g = CacheGeometry::new(64 << 10, 4);
        let line = LineAddr(0xdead_beef);
        assert_eq!(g.line_of(g.tag_of(line), g.set_of(line)), line);
    }

    #[test]
    fn line_addr_constructors() {
        let pa = PhysAddr::new(0x1040);
        assert_eq!(LineAddr::of_phys(pa).0, 0x41);
        assert_eq!(LineAddr::of_phys(pa).base(), 0x1040);
        let va = VirtAddr::new(0x103f);
        assert_eq!(LineAddr::of_virt(va).0, 0x40);
        assert!(!format!("{}", LineAddr(3)).is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = CacheGeometry::new(48 << 10, 4);
    }

    proptest! {
        #[test]
        fn set_index_is_stable_under_tag_change(
            cap_log in 14u32..18, ways_log in 1u32..6, line in 0u64..1u64<<40
        ) {
            let g = CacheGeometry::new(1 << cap_log, 1 << ways_log);
            let la = LineAddr(line);
            let set = g.set_of(la);
            prop_assert!(set < g.sets());
            // Changing only tag bits leaves the set unchanged.
            let la2 = LineAddr(line ^ (1 << (g.index_bits() + 5)));
            prop_assert_eq!(g.set_of(la2), set);
            prop_assert_eq!(g.line_of(g.tag_of(la), set), la);
        }
    }
}
