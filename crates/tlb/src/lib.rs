#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-tlb — two-level TLB model for the SIPT reproduction
//!
//! Models the translation path of the paper's simulated systems (Table II):
//! a split L1 D-TLB (64 entries for 4 KiB pages, 32 entries for 2 MiB huge
//! pages, 2-cycle access) backed by a unified 1024-entry L2 TLB (7-cycle),
//! with a fixed-cost page-table walk on an L2 miss.
//!
//! The TLB is what SIPT races against: a VIPT or SIPT cache overlaps the L1
//! TLB lookup with its array access, while a slow (replayed) SIPT access and
//! a PIPT access must serialize behind it.
//!
//! ```
//! use sipt_tlb::{DataTlb, TlbConfig};
//! use sipt_mem::{PageTable, VirtPageNum, PhysFrameNum, PageSize, VirtAddr};
//!
//! let mut pt = PageTable::new();
//! pt.map(VirtPageNum::new(7), PhysFrameNum::new(3), PageSize::Base4K).unwrap();
//! let mut tlb = DataTlb::new(TlbConfig::default());
//! let miss = tlb.translate(VirtAddr::new(0x7abc), &pt).unwrap();
//! let hit = tlb.translate(VirtAddr::new(0x7def), &pt).unwrap();
//! assert!(hit.cycles < miss.cycles);
//! ```

pub mod lru;

use lru::LruSetAssoc;
use sipt_mem::{PageSize, PageTable, Translation, VirtAddr, VirtPageNum, PAGES_PER_HUGE_PAGE};

/// Configuration of the two-level TLB (defaults follow the paper's
/// Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// L1 D-TLB entries for 4 KiB pages.
    pub l1_base_entries: usize,
    /// L1 D-TLB entries for 2 MiB pages.
    pub l1_huge_entries: usize,
    /// Associativity of both L1 structures.
    pub l1_ways: usize,
    /// L1 access latency in cycles.
    pub l1_latency: u64,
    /// Unified L2 TLB entries.
    pub l2_entries: usize,
    /// Associativity of the L2 TLB.
    pub l2_ways: usize,
    /// L2 access latency in cycles (added to the L1 latency on an L1 miss).
    pub l2_latency: u64,
    /// Page-walk latency in cycles (added on an L2 miss).
    pub walk_latency: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self {
            l1_base_entries: 64,
            l1_huge_entries: 32,
            l1_ways: 4,
            l1_latency: 2,
            l2_entries: 1024,
            l2_ways: 8,
            l2_latency: 7,
            walk_latency: 50,
        }
    }
}

/// Which structure satisfied a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlbHitLevel {
    /// Hit in the L1 D-TLB — translation available in time for the tag
    /// check of an overlapped cache access.
    L1,
    /// Hit in the unified L2 TLB.
    L2,
    /// Missed both levels; a page-table walk supplied the translation.
    Walk,
}

/// The result of a TLB translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbOutcome {
    /// The translation itself.
    pub translation: Translation,
    /// Where the translation was found.
    pub level: TlbHitLevel,
    /// Total cycles to produce the physical address.
    pub cycles: u64,
}

/// An error translating a virtual address through the TLB: the address is
/// not mapped in the supplied page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault {
    /// The faulting virtual address.
    pub va: VirtAddr,
}

impl core::fmt::Display for PageFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "page fault at {}", self.va)
    }
}

impl std::error::Error for PageFault {}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations that hit in the L1 D-TLB.
    pub l1_hits: u64,
    /// Translations that hit in the L2 TLB.
    pub l2_hits: u64,
    /// Translations that required a page walk.
    pub walks: u64,
    /// Page faults (unmapped addresses).
    pub faults: u64,
}

impl TlbStats {
    /// Total translations attempted (excluding faults).
    pub fn total(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.walks
    }

    /// Fraction of translations satisfied by the L1 D-TLB.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.l1_hits as f64 / self.total() as f64
    }
}

/// Key for TLB entries: page number at native granularity, tagged with the
/// granularity so 4 KiB and 2 MiB entries never collide in the unified L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TlbKey {
    page: u64,
    size: PageSize,
}

// L2 probes matter for TLB-thrashing workloads (mcf/omnetpp run with L1
// TLB hit rates far below 99%), so the composite key gets the same
// inlined SipHash-1-3 shortcut as the `u64` L1 keys: the derived `Hash`
// writes the page then the discriminant, each as one 8-byte block, and
// `tlb_key_fast_hash_matches_default_hasher` pins the equivalence.
impl lru::SetIndexKey for TlbKey {
    #[inline]
    fn set_hash(&self) -> u64 {
        lru::siphash13_2xu64(self.page, self.size as u64)
    }
}

/// Cached translation payload: first PFN of the mapping.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    first_pfn: u64,
}

/// Sentinel key marking an unknown guard slot. Real page numbers cannot
/// reach it: a 4 KiB VPN is a `u64` shifted right by 12.
const GUARD_EMPTY: u64 = u64::MAX;

/// Reusable scratch for [`DataTlb::translate_batched`]: one MRU guard
/// slot per L1 set of each granularity.
///
/// A slot holding `(page, first_pfn)` asserts that `page`'s entry is the
/// most-recently-used way of that L1 set. Under that condition, repeating
/// the full [`DataTlb::translate_with`] lookup would merely refresh an
/// already-maximal timestamp — no replacement decision anywhere can
/// change (eviction compares timestamps only *within* a set, and the
/// shared clock stays strictly increasing) — so the outcome can be
/// rebuilt from the cached `first_pfn` and only the L1-hit statistic
/// needs counting. This generalizes [`DataTlb::translate_repeat`]'s
/// consecutive-run argument to *every* page whose entry is still set-MRU,
/// which is what makes per-block batching effective on interleaved
/// streams: each unique VPN is resolved through the full structures once
/// and then served from its guard until another page displaces it from
/// MRU position in the same set.
///
/// The scratch is invalidated by anything that mutates TLB contents
/// outside [`DataTlb::translate_batched`] (e.g. [`DataTlb::flush`]) —
/// create a fresh one per replay.
#[derive(Debug, Clone)]
pub struct TlbBatch {
    /// `(vpn, first_pfn)` per `l1_base` set.
    base_guard: Box<[(u64, u64)]>,
    /// `(huge_page, first_pfn)` per `l1_huge` set.
    huge_guard: Box<[(u64, u64)]>,
}

impl TlbBatch {
    /// Create guard tables sized for `tlb`'s L1 geometry, all-unknown.
    pub fn for_tlb(tlb: &DataTlb) -> Self {
        let base_sets = tlb.config.l1_base_entries / tlb.config.l1_ways;
        let huge_sets = tlb.config.l1_huge_entries / tlb.config.l1_ways;
        Self {
            base_guard: vec![(GUARD_EMPTY, 0); base_sets].into_boxed_slice(),
            huge_guard: vec![(GUARD_EMPTY, 0); huge_sets].into_boxed_slice(),
        }
    }

    /// The guard slot for a page-number key, mirroring
    /// [`lru::LruSetAssoc`]'s hash→set mapping exactly (that mapping is
    /// simulated behaviour; the guards must agree with it or they would
    /// describe the wrong set).
    #[inline]
    fn slot_of(key: u64, sets: usize) -> usize {
        let h = lru::siphash13_u64(key);
        let sets = sets as u64;
        let set = if sets.is_power_of_two() { h & (sets - 1) } else { h % sets };
        set as usize
    }
}

/// The two-level data TLB.
#[derive(Debug, Clone)]
pub struct DataTlb {
    config: TlbConfig,
    l1_base: LruSetAssoc<u64, TlbEntry>,
    l1_huge: LruSetAssoc<u64, TlbEntry>,
    l2: LruSetAssoc<TlbKey, TlbEntry>,
    stats: TlbStats,
}

impl DataTlb {
    /// Create a TLB with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if any entry count is not divisible by its way count.
    pub fn new(config: TlbConfig) -> Self {
        assert!(
            config.l1_base_entries.is_multiple_of(config.l1_ways)
                && config.l1_huge_entries.is_multiple_of(config.l1_ways)
                && config.l2_entries.is_multiple_of(config.l2_ways),
            "entry counts must be divisible by way counts"
        );
        Self {
            l1_base: LruSetAssoc::new(config.l1_base_entries / config.l1_ways, config.l1_ways),
            l1_huge: LruSetAssoc::new(config.l1_huge_entries / config.l1_ways, config.l1_ways),
            l2: LruSetAssoc::new(config.l2_entries / config.l2_ways, config.l2_ways),
            config,
            stats: TlbStats::default(),
        }
    }

    /// The configuration this TLB was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Translate `va` against `page_table`, modelling lookup latency and
    /// maintaining TLB contents.
    ///
    /// # Errors
    ///
    /// Returns [`PageFault`] when no mapping covers `va`; the fault is also
    /// counted in [`TlbStats::faults`].
    pub fn translate(
        &mut self,
        va: VirtAddr,
        page_table: &PageTable,
    ) -> Result<TlbOutcome, PageFault> {
        self.translate_with(va, |va| page_table.translate(va))
    }

    /// Like [`DataTlb::translate`], but the page-table walk is performed
    /// by `walk` — letting callers interpose a software translation cache
    /// (`sipt_mem::TranslationCache`) on the walk path without changing
    /// what the TLB models. `walk` is invoked only on an L2 miss and must
    /// behave exactly like [`PageTable::translate`].
    ///
    /// # Errors
    ///
    /// Returns [`PageFault`] when `walk` yields no translation; the fault
    /// is also counted in [`TlbStats::faults`].
    #[inline]
    pub fn translate_with(
        &mut self,
        va: VirtAddr,
        walk: impl FnOnce(VirtAddr) -> Option<Translation>,
    ) -> Result<TlbOutcome, PageFault> {
        let vpn = VirtPageNum::containing(va);
        let huge_page = vpn.raw() / PAGES_PER_HUGE_PAGE;

        // L1 probes (both granularities probed in parallel in hardware).
        // This is the hot path: for the dominant L1-TLB-hit access it does
        // one flat-slab key scan and a handful of shifts — no heap traffic.
        if let Some(entry) = self.l1_base.get(&vpn.raw()).copied() {
            let translation = Self::materialize(va, vpn, entry.first_pfn, PageSize::Base4K);
            self.stats.l1_hits += 1;
            return Ok(TlbOutcome {
                translation,
                level: TlbHitLevel::L1,
                cycles: self.config.l1_latency,
            });
        }
        if let Some(entry) = self.l1_huge.get(&huge_page).copied() {
            let translation = Self::materialize(va, vpn, entry.first_pfn, PageSize::Huge2M);
            self.stats.l1_hits += 1;
            return Ok(TlbOutcome {
                translation,
                level: TlbHitLevel::L1,
                cycles: self.config.l1_latency,
            });
        }
        self.translate_slow(va, vpn, huge_page, walk)
    }

    /// Repeat-translation fast path for VPN-run coalescing: translate
    /// `va` given that the *immediately preceding* translation through
    /// this TLB covered the same 4 KiB virtual page and produced `prev`.
    ///
    /// Bit-identical to calling [`DataTlb::translate_with`] again. The
    /// preceding translation left the page's entry as the most-recently-
    /// used way of its L1 set (a hit refreshes it, a fill inserts it), so
    /// an immediate repeat is always an L1 hit at `l1_latency` resolving
    /// to the same PFN. Skipping the probe also changes no replacement
    /// decision: the shared LRU clock stays strictly increasing and
    /// eviction compares timestamps only *within* a set, where the entry
    /// is already maximal — relative orders everywhere are untouched.
    /// Only the L1-hit statistic needs counting by hand.
    #[inline]
    pub fn translate_repeat(&mut self, prev: &TlbOutcome, va: VirtAddr) -> TlbOutcome {
        self.stats.l1_hits += 1;
        let pfn = prev.translation.pfn;
        TlbOutcome {
            translation: Translation {
                pa: sipt_mem::PhysAddr::new((pfn.raw() << sipt_mem::PAGE_SHIFT) | va.page_offset()),
                pfn,
                page_size: prev.translation.page_size,
            },
            level: TlbHitLevel::L1,
            cycles: self.config.l1_latency,
        }
    }

    /// Like [`DataTlb::translate_with`], accelerated by the per-set MRU
    /// guards in `batch`. Bit-identical to the plain path — outcomes,
    /// statistics, and every future replacement decision — see
    /// [`TlbBatch`] for the argument; `batched_translation_is_bit_identical`
    /// pins it differentially.
    ///
    /// # Errors
    ///
    /// Returns [`PageFault`] when `walk` yields no translation; the fault
    /// is also counted in [`TlbStats::faults`].
    #[inline]
    pub fn translate_batched(
        &mut self,
        batch: &mut TlbBatch,
        va: VirtAddr,
        walk: impl FnOnce(VirtAddr) -> Option<Translation>,
    ) -> Result<TlbOutcome, PageFault> {
        let vpn = VirtPageNum::containing(va);
        let vraw = vpn.raw();
        let base_slot = TlbBatch::slot_of(vraw, batch.base_guard.len());
        let (guard_vpn, guard_pfn) = batch.base_guard[base_slot];
        if guard_vpn == vraw {
            // The page's 4 KiB entry is set-MRU: the reference path would
            // hit l1_base and refresh an already-maximal timestamp.
            self.stats.l1_hits += 1;
            return Ok(TlbOutcome {
                translation: Self::materialize(va, vpn, guard_pfn, PageSize::Base4K),
                level: TlbHitLevel::L1,
                cycles: self.config.l1_latency,
            });
        }
        let huge_page = vraw / PAGES_PER_HUGE_PAGE;
        let huge_slot = TlbBatch::slot_of(huge_page, batch.huge_guard.len());
        let (guard_huge, guard_pfn) = batch.huge_guard[huge_slot];
        if guard_huge == huge_page {
            // The reference path probes l1_base *first*. A consistent page
            // table cannot map a 4 KiB page inside a huge-mapped region,
            // but replicate the probe order defensively so equivalence
            // never rests on that assumption. (A miss only advances the
            // clock, which is unobservable; see `translate_repeat`.)
            if let Some(entry) = self.l1_base.get(&vraw).copied() {
                batch.base_guard[base_slot] = (vraw, entry.first_pfn);
                self.stats.l1_hits += 1;
                return Ok(TlbOutcome {
                    translation: Self::materialize(va, vpn, entry.first_pfn, PageSize::Base4K),
                    level: TlbHitLevel::L1,
                    cycles: self.config.l1_latency,
                });
            }
            self.stats.l1_hits += 1;
            return Ok(TlbOutcome {
                translation: Self::materialize(va, vpn, guard_pfn, PageSize::Huge2M),
                level: TlbHitLevel::L1,
                cycles: self.config.l1_latency,
            });
        }
        // Guard miss: full reference lookup, then install the guard of the
        // resolved granularity — whichever path satisfied it (L1 hit, L2
        // refill, walk), the entry is now MRU of exactly one L1 set, and
        // that set's previous guard occupant (if any) was displaced from
        // MRU by the same operation. The other granularity's structures
        // saw at most probe misses, which mutate nothing.
        let out = self.translate_with(va, walk)?;
        match out.translation.page_size {
            PageSize::Base4K => {
                batch.base_guard[base_slot] = (vraw, out.translation.pfn.raw());
            }
            PageSize::Huge2M => {
                let first_pfn = out.translation.pfn.raw() - (vraw % PAGES_PER_HUGE_PAGE);
                batch.huge_guard[huge_slot] = (huge_page, first_pfn);
            }
        }
        Ok(out)
    }

    /// The L1-miss continuation of [`DataTlb::translate_with`], kept out of
    /// line so the L1-hit fast path stays small enough to inline.
    #[cold]
    fn translate_slow(
        &mut self,
        va: VirtAddr,
        vpn: VirtPageNum,
        huge_page: u64,
        walk: impl FnOnce(VirtAddr) -> Option<Translation>,
    ) -> Result<TlbOutcome, PageFault> {
        // L2 probe (either granularity).
        for key in [
            TlbKey { page: vpn.raw(), size: PageSize::Base4K },
            TlbKey { page: huge_page, size: PageSize::Huge2M },
        ] {
            if let Some(entry) = self.l2.get(&key).copied() {
                let translation = Self::materialize(va, vpn, entry.first_pfn, key.size);
                self.fill_l1(key.page, entry, key.size);
                self.stats.l2_hits += 1;
                return Ok(TlbOutcome {
                    translation,
                    level: TlbHitLevel::L2,
                    cycles: self.config.l1_latency + self.config.l2_latency,
                });
            }
        }

        // Page walk.
        let translation = match walk(va) {
            Some(t) => t,
            None => {
                self.stats.faults += 1;
                return Err(PageFault { va });
            }
        };
        let (native_page, first_pfn) = match translation.page_size {
            PageSize::Base4K => (vpn.raw(), translation.pfn.raw()),
            PageSize::Huge2M => {
                (huge_page, translation.pfn.raw() - (vpn.raw() % PAGES_PER_HUGE_PAGE))
            }
        };
        let entry = TlbEntry { first_pfn };
        self.l2.insert(TlbKey { page: native_page, size: translation.page_size }, entry);
        self.fill_l1(native_page, entry, translation.page_size);
        self.stats.walks += 1;
        Ok(TlbOutcome {
            translation,
            level: TlbHitLevel::Walk,
            cycles: self.config.l1_latency + self.config.l2_latency + self.config.walk_latency,
        })
    }

    #[inline]
    fn fill_l1(&mut self, native_page: u64, entry: TlbEntry, size: PageSize) {
        match size {
            PageSize::Base4K => {
                self.l1_base.insert(native_page, entry);
            }
            PageSize::Huge2M => {
                self.l1_huge.insert(native_page, entry);
            }
        }
    }

    #[inline]
    fn materialize(va: VirtAddr, vpn: VirtPageNum, first_pfn: u64, size: PageSize) -> Translation {
        let pfn = match size {
            PageSize::Base4K => first_pfn,
            PageSize::Huge2M => first_pfn + (vpn.raw() % PAGES_PER_HUGE_PAGE),
        };
        Translation {
            pa: sipt_mem::PhysAddr::new((pfn << sipt_mem::PAGE_SHIFT) | va.page_offset()),
            pfn: sipt_mem::PhysFrameNum::new(pfn),
            page_size: size,
        }
    }

    /// Invalidate all entries (context switch without ASIDs).
    pub fn flush(&mut self) {
        self.l1_base.clear();
        self.l1_huge.clear();
        self.l2.clear();
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Reset statistics (contents are kept — used after cache warmup).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipt_mem::{PhysFrameNum, PAGE_SHIFT};

    fn table_with_pages(n: u64) -> PageTable {
        let mut pt = PageTable::new();
        for i in 0..n {
            pt.map(VirtPageNum::new(i), PhysFrameNum::new(1000 + i), PageSize::Base4K).unwrap();
        }
        pt
    }

    /// The composite L2 key's fast `set_hash` must equal what the
    /// derived `Hash` + `DefaultHasher` (the `SetIndexKey` default
    /// method) produces — the hash picks the L2 set, so any divergence
    /// would silently change eviction patterns and break the golden
    /// fingerprints.
    #[test]
    fn tlb_key_fast_hash_matches_default_hasher() {
        use lru::SetIndexKey;
        use std::hash::{Hash, Hasher};
        let pages = (0..512u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).chain([
            0,
            1,
            u64::MAX,
            1 << 63,
        ]);
        for page in pages {
            for size in [PageSize::Base4K, PageSize::Huge2M] {
                let key = TlbKey { page, size };
                let mut reference = std::collections::hash_map::DefaultHasher::new();
                key.hash(&mut reference);
                assert_eq!(key.set_hash(), reference.finish(), "key {key:?}");
            }
        }
    }

    #[test]
    fn miss_then_hit_latencies() {
        let pt = table_with_pages(4);
        let mut tlb = DataTlb::new(TlbConfig::default());
        let cfg = *tlb.config();
        let walk = tlb.translate(VirtAddr::new(0x1100), &pt).unwrap();
        assert_eq!(walk.level, TlbHitLevel::Walk);
        assert_eq!(walk.cycles, cfg.l1_latency + cfg.l2_latency + cfg.walk_latency);
        let hit = tlb.translate(VirtAddr::new(0x1200), &pt).unwrap();
        assert_eq!(hit.level, TlbHitLevel::L1);
        assert_eq!(hit.cycles, cfg.l1_latency);
        assert_eq!(hit.translation.pfn.raw(), 1001);
        assert_eq!(hit.translation.pa.page_offset(), 0x200);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let pt = table_with_pages(200);
        let mut tlb = DataTlb::new(TlbConfig::default());
        // Touch 128 pages: far more than 64 L1 entries, fewer than 1024 L2.
        for i in 0..128u64 {
            tlb.translate(VirtAddr::new(i << PAGE_SHIFT), &pt).unwrap();
        }
        // Page 0 must have left L1 but still be in L2.
        let again = tlb.translate(VirtAddr::new(0), &pt).unwrap();
        assert_eq!(again.level, TlbHitLevel::L2);
        let stats = tlb.stats();
        assert_eq!(stats.walks, 128);
        assert_eq!(stats.l2_hits, 1);
    }

    #[test]
    fn huge_pages_use_the_huge_l1() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(512), PhysFrameNum::new(2048), PageSize::Huge2M).unwrap();
        let mut tlb = DataTlb::new(TlbConfig::default());
        let va0 = VirtAddr::new(512 << PAGE_SHIFT);
        assert_eq!(tlb.translate(va0, &pt).unwrap().level, TlbHitLevel::Walk);
        // A different 4 KiB page of the same huge page hits the huge L1.
        let va1 = VirtAddr::new((512 + 200) << PAGE_SHIFT | 0x33);
        let hit = tlb.translate(va1, &pt).unwrap();
        assert_eq!(hit.level, TlbHitLevel::L1);
        assert_eq!(hit.translation.pfn.raw(), 2048 + 200);
        assert_eq!(hit.translation.page_size, PageSize::Huge2M);
        assert_eq!(hit.translation.pa.page_offset(), 0x33);
    }

    #[test]
    fn huge_reach_exceeds_base_reach() {
        // 32 huge entries cover 64 MiB; the same accesses through 4 KiB
        // mappings would thrash the 64-entry base TLB. This is the TLB-reach
        // effect the paper leans on for its hugepage discussion.
        let mut pt = PageTable::new();
        for i in 0..16u64 {
            pt.map(
                VirtPageNum::new(i * PAGES_PER_HUGE_PAGE),
                PhysFrameNum::new(i * PAGES_PER_HUGE_PAGE),
                PageSize::Huge2M,
            )
            .unwrap();
        }
        let mut tlb = DataTlb::new(TlbConfig::default());
        // Touch one page in each of the 16 huge pages, twice.
        for round in 0..2 {
            for i in 0..16u64 {
                let va = VirtAddr::new(i * sipt_mem::HUGE_PAGE_SIZE + 0x100);
                let out = tlb.translate(va, &pt).unwrap();
                if round == 1 {
                    assert_eq!(out.level, TlbHitLevel::L1, "huge page {i} evicted too early");
                }
            }
        }
    }

    #[test]
    fn translate_with_translation_cache_is_equivalent() {
        // Interposing the software translation cache on the walk path
        // must not change outcomes, latencies, or TLB statistics.
        let pt = table_with_pages(128);
        let mut plain = DataTlb::new(TlbConfig::default());
        let mut cached = DataTlb::new(TlbConfig::default());
        let mut xlat = sipt_mem::TranslationCache::with_entries(64);
        let mut i = 7u64;
        for _ in 0..2_000 {
            i = (i.wrapping_mul(25) + 13) % 128; // deterministic scramble
            let va = VirtAddr::new((i << PAGE_SHIFT) | 0x20);
            let a = plain.translate(va, &pt).unwrap();
            let b = cached.translate_with(va, |va| xlat.translate(&pt, va)).unwrap();
            assert_eq!(a, b, "page {i}");
        }
        assert_eq!(plain.stats(), cached.stats());
    }

    #[test]
    fn repeat_fast_path_matches_full_translation() {
        // Streams with page runs (several consecutive accesses to one 4 KiB
        // page) are what the block kernel coalesces; the repeat path must
        // be indistinguishable from re-translating, both immediately and
        // in every later replacement decision.
        let mut pt = table_with_pages(256);
        // A few huge mappings beyond the 4 KiB region, so both L1
        // granularities see repeats.
        for i in 0..4u64 {
            pt.map(
                VirtPageNum::new((i + 1) * PAGES_PER_HUGE_PAGE),
                PhysFrameNum::new(4096 + i * PAGES_PER_HUGE_PAGE),
                PageSize::Huge2M,
            )
            .unwrap();
        }
        // Indexes 0..256 pick a 4 KiB page; 256..260 pick a 4 KiB page
        // inside one of the four huge mappings.
        let va_of = |page: u64, off: u64| -> VirtAddr {
            if page < 256 {
                VirtAddr::new((page << PAGE_SHIFT) | off)
            } else {
                let i = page - 256;
                let sub = (page * 37) % PAGES_PER_HUGE_PAGE;
                VirtAddr::new((i + 1) * sipt_mem::HUGE_PAGE_SIZE + (sub << PAGE_SHIFT) + off)
            }
        };
        let mut full = DataTlb::new(TlbConfig::default());
        let mut fast = DataTlb::new(TlbConfig::default());
        let mut prev: Option<(u64, TlbOutcome)> = None;
        for step in 0..6_000u64 {
            // Page runs of length 4, scrambled over 4 KiB and huge pages.
            let run = step / 4;
            let page = (run.wrapping_mul(2654435761)) % 260;
            let va = va_of(page, (step % 4) * 0x88);
            let vpn = VirtPageNum::containing(va).raw();
            let a = full.translate(va, &pt).unwrap();
            let b = match prev {
                Some((prev_vpn, ref out)) if prev_vpn == vpn => fast.translate_repeat(out, va),
                _ => fast.translate(va, &pt).unwrap(),
            };
            assert_eq!(a, b, "step {step}");
            prev = Some((vpn, b));
        }
        assert_eq!(full.stats(), fast.stats());
        // Contents must have evolved identically: sweep every page once
        // and require the same hit level from both TLBs.
        for page in 0..260u64 {
            let va = va_of(page, 0);
            let a = full.translate(va, &pt).unwrap();
            let b = fast.translate(va, &pt).unwrap();
            assert_eq!(a, b, "post-sweep page {page}");
        }
    }

    #[test]
    fn batched_translation_is_bit_identical() {
        // The per-set MRU guards must be indistinguishable from the plain
        // path: same outcomes, same statistics, same contents evolution —
        // under an access mix with page runs, interleaved revisits across
        // many sets, capacity evictions (260 pages > 64 base entries), and
        // both granularities. The batched TLB also interleaves the
        // consecutive-run `translate_repeat` shortcut exactly as the block
        // kernel does.
        let mut pt = table_with_pages(256);
        for i in 0..4u64 {
            pt.map(
                VirtPageNum::new((i + 1) * PAGES_PER_HUGE_PAGE),
                PhysFrameNum::new(4096 + i * PAGES_PER_HUGE_PAGE),
                PageSize::Huge2M,
            )
            .unwrap();
        }
        let va_of = |page: u64, off: u64| -> VirtAddr {
            if page < 256 {
                VirtAddr::new((page << PAGE_SHIFT) | off)
            } else {
                let i = page - 256;
                let sub = (page * 37) % PAGES_PER_HUGE_PAGE;
                VirtAddr::new((i + 1) * sipt_mem::HUGE_PAGE_SIZE + (sub << PAGE_SHIFT) + off)
            }
        };
        let mut plain = DataTlb::new(TlbConfig::default());
        let mut batched = DataTlb::new(TlbConfig::default());
        let mut batch = TlbBatch::for_tlb(&batched);
        let mut prev: Option<(u64, TlbOutcome)> = None;
        for step in 0..12_000u64 {
            // Page runs of length 3, with run targets scrambled so the
            // same pages recur at varying distances (guard hits, guard
            // displacements, and full-path refills all occur).
            let run = step / 3;
            let page = (run.wrapping_mul(2654435761) >> 7) % 260;
            let va = va_of(page, (step % 3) * 0xa8);
            let vpn = VirtPageNum::containing(va).raw();
            let a = plain.translate(va, &pt).unwrap();
            let b = match prev {
                Some((prev_vpn, ref out)) if prev_vpn == vpn => batched.translate_repeat(out, va),
                _ => batched.translate_batched(&mut batch, va, |va| pt.translate(va)).unwrap(),
            };
            assert_eq!(a, b, "step {step} page {page}");
            prev = Some((vpn, b));
        }
        assert_eq!(plain.stats(), batched.stats());
        // Contents must have evolved identically: sweep every page once
        // through the *plain* path on both and require identical levels.
        for page in 0..260u64 {
            let va = va_of(page, 0);
            let a = plain.translate(va, &pt).unwrap();
            let b = batched.translate(va, &pt).unwrap();
            assert_eq!(a, b, "post-sweep page {page}");
        }
        assert_eq!(plain.stats(), batched.stats());
    }

    #[test]
    fn batched_translation_surfaces_faults() {
        let pt = table_with_pages(1);
        let mut tlb = DataTlb::new(TlbConfig::default());
        let mut batch = TlbBatch::for_tlb(&tlb);
        let err = tlb
            .translate_batched(&mut batch, VirtAddr::new(0xdead_0000), |va| pt.translate(va))
            .unwrap_err();
        assert_eq!(err.va.raw(), 0xdead_0000);
        assert_eq!(tlb.stats().faults, 1);
        // A fault mutates no contents, so the guards stay valid: the
        // mapped page still translates identically afterwards.
        let ok = tlb.translate_batched(&mut batch, VirtAddr::new(0x10), |va| pt.translate(va));
        assert_eq!(ok.unwrap().level, TlbHitLevel::Walk);
    }

    #[test]
    fn fault_on_unmapped() {
        let pt = PageTable::new();
        let mut tlb = DataTlb::new(TlbConfig::default());
        let err = tlb.translate(VirtAddr::new(0xdead_0000), &pt).unwrap_err();
        assert_eq!(err.va.raw(), 0xdead_0000);
        assert_eq!(tlb.stats().faults, 1);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn flush_forces_walks() {
        let pt = table_with_pages(2);
        let mut tlb = DataTlb::new(TlbConfig::default());
        tlb.translate(VirtAddr::new(0), &pt).unwrap();
        tlb.flush();
        let after = tlb.translate(VirtAddr::new(0), &pt).unwrap();
        assert_eq!(after.level, TlbHitLevel::Walk);
    }

    #[test]
    fn hit_rate_math() {
        let pt = table_with_pages(1);
        let mut tlb = DataTlb::new(TlbConfig::default());
        assert_eq!(tlb.stats().l1_hit_rate(), 0.0);
        for _ in 0..4 {
            tlb.translate(VirtAddr::new(0x10), &pt).unwrap();
        }
        let stats = tlb.stats();
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.l1_hit_rate(), 0.75);
        tlb.reset_stats();
        assert_eq!(tlb.stats().total(), 0);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_geometry_panics() {
        let cfg = TlbConfig { l1_base_entries: 63, ..TlbConfig::default() };
        let _ = DataTlb::new(cfg);
    }
}
