//! A small generic set-associative structure with true-LRU replacement,
//! shared by the TLB levels. (The data caches in `sipt-cache` have their
//! own richer array model with dirty bits and pluggable replacement; this
//! one is deliberately minimal.)

use std::collections::HashMap;
use std::hash::Hash;

/// One way of a set: key, value, and last-use timestamp.
#[derive(Debug, Clone)]
struct Way<K, V> {
    key: K,
    value: V,
    last_use: u64,
}

/// A set-associative, true-LRU keyed store.
///
/// Keys are mapped to sets by hashing modulo the set count, which models a
/// low-order-bit index without imposing a numeric key type.
///
/// ```
/// use sipt_tlb::lru::LruSetAssoc;
/// let mut t: LruSetAssoc<u64, &str> = LruSetAssoc::new(1, 2); // 2 entries total
/// t.insert(1, "a");
/// t.insert(2, "b");
/// t.get(&1);          // 1 is now MRU
/// t.insert(3, "c");   // evicts 2
/// assert!(t.get(&2).is_none());
/// assert_eq!(t.get(&1), Some(&"a"));
/// ```
#[derive(Debug, Clone)]
pub struct LruSetAssoc<K, V> {
    sets: Vec<Vec<Way<K, V>>>,
    ways: usize,
    clock: u64,
}

impl<K: Eq + Hash + Clone, V> LruSetAssoc<K, V> {
    /// Create a structure with `sets` sets of `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "at least one set required");
        assert!(ways > 0, "at least one way required");
        Self { sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(), ways, clock: 0 }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the structure holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn set_of(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        use std::hash::Hasher;
        key.hash(&mut hasher);
        (hasher.finish() % self.sets.len() as u64) as usize
    }

    /// Look up `key`, updating LRU state on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(key);
        self.sets[set].iter_mut().find(|w| &w.key == key).map(|w| {
            w.last_use = clock;
            &w.value
        })
    }

    /// Look up `key` without touching LRU state.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let set = self.set_of(key);
        self.sets[set].iter().find(|w| &w.key == key).map(|w| &w.value)
    }

    /// Insert or update `key`, evicting the set's LRU way if full. Returns
    /// the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(&key);
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.key == key) {
            w.value = value;
            w.last_use = clock;
            return None;
        }
        let mut evicted = None;
        if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("set is full, so non-empty");
            let w = set.swap_remove(lru);
            evicted = Some((w.key, w.value));
        }
        set.push(Way { key, value, last_use: clock });
        evicted
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let set_idx = self.set_of(key);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|w| &w.key == key)?;
        Some(set.swap_remove(pos).value)
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Snapshot all `(key, value)` pairs into a map (for assertions/tests).
    pub fn to_map(&self) -> HashMap<K, V>
    where
        V: Clone,
    {
        self.sets.iter().flatten().map(|w| (w.key.clone(), w.value.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn evicts_true_lru_within_a_set() {
        let mut t: LruSetAssoc<u64, u64> = LruSetAssoc::new(1, 3);
        t.insert(1, 10);
        t.insert(2, 20);
        t.insert(3, 30);
        t.get(&1);
        t.get(&2);
        // 3 is LRU now.
        let evicted = t.insert(4, 40);
        assert_eq!(evicted, Some((3, 30)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn update_in_place_does_not_evict() {
        let mut t: LruSetAssoc<u64, u64> = LruSetAssoc::new(1, 2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.insert(1, 11), None);
        assert_eq!(t.get(&1), Some(&11));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn peek_does_not_promote() {
        let mut t: LruSetAssoc<u64, u64> = LruSetAssoc::new(1, 2);
        t.insert(1, 10);
        t.insert(2, 20);
        t.peek(&1); // must NOT make 1 MRU
        let evicted = t.insert(3, 30);
        assert_eq!(evicted, Some((1, 10)));
    }

    #[test]
    fn remove_and_clear() {
        let mut t: LruSetAssoc<u64, u64> = LruSetAssoc::new(4, 2);
        for i in 0..8 {
            t.insert(i, i);
        }
        assert_eq!(t.remove(&3), Some(3));
        assert_eq!(t.remove(&3), None);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), 8);
    }

    proptest! {
        /// Never exceeds capacity; most-recently-inserted key is always
        /// resident.
        #[test]
        fn capacity_and_mru_residency(keys in proptest::collection::vec(0u64..512, 1..256)) {
            let mut t: LruSetAssoc<u64, u64> = LruSetAssoc::new(8, 4);
            for &k in &keys {
                t.insert(k, k * 2);
                prop_assert!(t.len() <= t.capacity());
                prop_assert_eq!(t.peek(&k), Some(&(k * 2)));
            }
        }
    }
}
