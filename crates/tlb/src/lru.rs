//! A small generic set-associative structure with true-LRU replacement,
//! shared by the TLB levels. (The data caches in `sipt-cache` have their
//! own richer array model with dirty bits and pluggable replacement; this
//! one is deliberately minimal.)
//!
//! ## Data-oriented layout
//!
//! Storage is a single flat slab of `sets × ways` slots with a per-set
//! occupancy count, instead of a `Vec<Vec<Way>>` of per-set heap vectors.
//! Each set's ways live in one contiguous, compact run (`0..len`), so a
//! probe is a short linear key scan over adjacent memory with no second
//! pointer dereference. The behavioural contract is unchanged and
//! bit-compatible with the nested layout:
//!
//! - keys map to sets by `DefaultHasher(key) % sets` (the eviction and
//!   conflict patterns depend on this, so it is part of simulated
//!   behaviour and must not change),
//! - the logical clock increments on every [`LruSetAssoc::get`] (hit *or*
//!   miss) and every [`LruSetAssoc::insert`], giving each touch a unique
//!   timestamp,
//! - eviction picks the minimum `last_use` in the full set — unique
//!   timestamps make the choice independent of way order, which is the
//!   only thing the flat layout permutes.

use std::collections::HashMap;
use std::hash::Hash;

/// A key usable in [`LruSetAssoc`]: hashable, with a `set_hash` that is
/// **defined** as `DefaultHasher(key)` — the default method computes
/// exactly that. Keys on the replay hot path (the TLB L1 probes' `u64`
/// page numbers) override it with [`siphash13_u64`], an inlined
/// single-block SipHash-1-3 that produces the identical value without the
/// `Hasher` buffering machinery; `fast_u64_hash_matches_default_hasher`
/// pins the equivalence.
pub trait SetIndexKey: Eq + Hash + Clone {
    /// The set-index hash of this key. Must equal what
    /// `DefaultHasher::new()` + `self.hash()` + `finish()` produces.
    #[inline]
    fn set_hash(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        use std::hash::Hasher;
        self.hash(&mut hasher);
        hasher.finish()
    }
}

impl SetIndexKey for u64 {
    #[inline]
    fn set_hash(&self) -> u64 {
        siphash13_u64(*self)
    }
}

// One SipRound — shared by the one- and two-block fast hashes below.
#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-1-3 with zero keys over a single little-endian `u64` block —
/// the exact computation `DefaultHasher` performs for one `write_u64`,
/// with the rounds laid out inline so the whole hash constant-folds into
/// ~20 ALU ops instead of a buffered `Hasher` round trip.
#[inline]
pub fn siphash13_u64(m: u64) -> u64 {
    // Initial state for k0 = k1 = 0 (DefaultHasher's keys).
    let mut v = [
        0x736f_6d65_7073_6575u64,
        0x646f_7261_6e64_6f6du64,
        0x6c79_6765_6e65_7261u64,
        0x7465_6462_7974_6573u64,
    ];
    // One full 8-byte block: c = 1 compression round.
    v[3] ^= m;
    sipround(&mut v);
    v[0] ^= m;
    // Final block: empty tail, total length 8 in the top byte.
    let b = 8u64 << 56;
    v[3] ^= b;
    sipround(&mut v);
    v[0] ^= b;
    // Finalization: d = 3 rounds.
    v[2] ^= 0xff;
    sipround(&mut v);
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// SipHash-1-3 with zero keys over two little-endian `u64` blocks — the
/// exact computation `DefaultHasher` performs for two consecutive
/// `write_u64`s (16 buffered bytes, no tail). The unified-L2 TLB key is
/// `(page, granularity-discriminant)`, whose derived `Hash` emits exactly
/// that write sequence; `fast_2xu64_hash_matches_default_hasher` pins the
/// equivalence so the set index (and therefore every eviction decision)
/// is bit-identical to the buffered path.
#[inline]
pub fn siphash13_2xu64(m0: u64, m1: u64) -> u64 {
    // Initial state for k0 = k1 = 0 (DefaultHasher's keys).
    let mut v = [
        0x736f_6d65_7073_6575u64,
        0x646f_7261_6e64_6f6du64,
        0x6c79_6765_6e65_7261u64,
        0x7465_6462_7974_6573u64,
    ];
    // Two full 8-byte blocks: c = 1 compression round each.
    v[3] ^= m0;
    sipround(&mut v);
    v[0] ^= m0;
    v[3] ^= m1;
    sipround(&mut v);
    v[0] ^= m1;
    // Final block: empty tail, total length 16 in the top byte.
    let b = 16u64 << 56;
    v[3] ^= b;
    sipround(&mut v);
    v[0] ^= b;
    // Finalization: d = 3 rounds.
    v[2] ^= 0xff;
    sipround(&mut v);
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// One way of a set: key, value, and last-use timestamp.
#[derive(Debug, Clone)]
struct Way<K, V> {
    key: K,
    value: V,
    last_use: u64,
}

/// A set-associative, true-LRU keyed store.
///
/// Keys are mapped to sets by hashing modulo the set count, which models a
/// low-order-bit index without imposing a numeric key type.
///
/// ```
/// use sipt_tlb::lru::LruSetAssoc;
/// let mut t: LruSetAssoc<u64, &str> = LruSetAssoc::new(1, 2); // 2 entries total
/// t.insert(1, "a");
/// t.insert(2, "b");
/// t.get(&1);          // 1 is now MRU
/// t.insert(3, "c");   // evicts 2
/// assert!(t.get(&2).is_none());
/// assert_eq!(t.get(&1), Some(&"a"));
/// ```
#[derive(Debug, Clone)]
pub struct LruSetAssoc<K, V> {
    /// Flat `sets × ways` slab; set `s` owns `slots[s*ways .. (s+1)*ways]`,
    /// compact: occupied slots are exactly `0..lens[s]` of that run.
    slots: Vec<Option<Way<K, V>>>,
    lens: Vec<u32>,
    ways: usize,
    clock: u64,
}

impl<K: SetIndexKey, V> LruSetAssoc<K, V> {
    /// Create a structure with `sets` sets of `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "at least one set required");
        assert!(ways > 0, "at least one way required");
        Self {
            slots: (0..sets * ways).map(|_| None).collect(),
            lens: vec![0; sets],
            ways,
            clock: 0,
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Whether the structure holds no entries.
    pub fn is_empty(&self) -> bool {
        self.lens.iter().all(|&l| l == 0)
    }

    /// The set a key indexes. `DefaultHasher(key) % sets` is part of the
    /// simulated behaviour (it decides conflicts and evictions) and must
    /// stay bit-for-bit stable across layout changes — [`SetIndexKey`]
    /// implementations are contractually equal to it. Every TLB geometry
    /// has a power-of-two set count, where the modulo reduces to a mask
    /// (same value, no hardware divide on the probe path).
    #[inline]
    fn set_of(&self, key: &K) -> usize {
        let h = key.set_hash();
        let sets = self.lens.len() as u64;
        let set = if sets.is_power_of_two() { h & (sets - 1) } else { h % sets };
        set as usize
    }

    /// Look up `key`, updating LRU state on a hit.
    #[inline]
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(key);
        let base = set * self.ways;
        let live = &mut self.slots[base..base + self.lens[set] as usize];
        live.iter_mut().flatten().find(|w| &w.key == key).map(|w| {
            w.last_use = clock;
            &w.value
        })
    }

    /// Look up `key` without touching LRU state.
    #[inline]
    pub fn peek(&self, key: &K) -> Option<&V> {
        let set = self.set_of(key);
        let base = set * self.ways;
        let live = &self.slots[base..base + self.lens[set] as usize];
        live.iter().flatten().find(|w| &w.key == key).map(|w| &w.value)
    }

    /// Insert or update `key`, evicting the set's LRU way if full. Returns
    /// the evicted `(key, value)` pair, if any.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(&key);
        let base = set * self.ways;
        let len = self.lens[set] as usize;
        let live = &mut self.slots[base..base + len];
        if let Some(w) = live.iter_mut().flatten().find(|w| w.key == key) {
            w.value = value;
            w.last_use = clock;
            return None;
        }
        if len == self.ways {
            // Full set: victimize the unique minimum-timestamp way.
            let lru = live
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.as_ref().expect("compact occupancy").last_use)
                .map(|(i, _)| i)
                .expect("set is full, so non-empty");
            let old = self.slots[base + lru]
                .replace(Way { key, value, last_use: clock })
                .expect("victim slot was occupied");
            return Some((old.key, old.value));
        }
        self.slots[base + len] = Some(Way { key, value, last_use: clock });
        self.lens[set] = (len + 1) as u32;
        None
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let set = self.set_of(key);
        let base = set * self.ways;
        let len = self.lens[set] as usize;
        let pos = self.slots[base..base + len]
            .iter()
            .position(|w| w.as_ref().is_some_and(|w| &w.key == key))?;
        // Keep the run compact: move the last occupied slot into the gap.
        self.slots.swap(base + pos, base + len - 1);
        let removed = self.slots[base + len - 1].take().expect("occupied by swap");
        self.lens[set] = (len - 1) as u32;
        Some(removed.value)
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.lens.fill(0);
    }

    /// Snapshot all `(key, value)` pairs into a map (for assertions/tests).
    pub fn to_map(&self) -> HashMap<K, V>
    where
        V: Clone,
    {
        self.slots.iter().flatten().map(|w| (w.key.clone(), w.value.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn evicts_true_lru_within_a_set() {
        let mut t: LruSetAssoc<u64, u64> = LruSetAssoc::new(1, 3);
        t.insert(1, 10);
        t.insert(2, 20);
        t.insert(3, 30);
        t.get(&1);
        t.get(&2);
        // 3 is LRU now.
        let evicted = t.insert(4, 40);
        assert_eq!(evicted, Some((3, 30)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn update_in_place_does_not_evict() {
        let mut t: LruSetAssoc<u64, u64> = LruSetAssoc::new(1, 2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.insert(1, 11), None);
        assert_eq!(t.get(&1), Some(&11));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn peek_does_not_promote() {
        let mut t: LruSetAssoc<u64, u64> = LruSetAssoc::new(1, 2);
        t.insert(1, 10);
        t.insert(2, 20);
        t.peek(&1); // must NOT make 1 MRU
        let evicted = t.insert(3, 30);
        assert_eq!(evicted, Some((1, 10)));
    }

    #[test]
    fn remove_and_clear() {
        let mut t: LruSetAssoc<u64, u64> = LruSetAssoc::new(4, 2);
        for i in 0..8 {
            t.insert(i, i);
        }
        assert_eq!(t.remove(&3), Some(3));
        assert_eq!(t.remove(&3), None);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), 8);
    }

    #[test]
    fn remove_keeps_set_compact_and_probeable() {
        // Three keys in one set; removing the middle one must keep the
        // others reachable and allow a fresh insert without eviction.
        let mut t: LruSetAssoc<u64, u64> = LruSetAssoc::new(1, 3);
        t.insert(1, 10);
        t.insert(2, 20);
        t.insert(3, 30);
        assert_eq!(t.remove(&2), Some(20));
        assert_eq!(t.len(), 2);
        assert_eq!(t.peek(&1), Some(&10));
        assert_eq!(t.peek(&3), Some(&30));
        assert_eq!(t.insert(4, 40), None, "freed way must absorb the insert");
        assert_eq!(t.len(), 3);
    }

    /// The load-bearing equivalence: the inlined SipHash-1-3 must produce
    /// exactly `DefaultHasher`'s value for every `u64`, because the
    /// hash→set mapping decides TLB conflicts and is pinned by the golden
    /// fingerprints.
    #[test]
    fn fast_u64_hash_matches_default_hasher() {
        use std::hash::Hasher;
        let samples = (0..4096u64)
            .chain((0..64u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .chain([u64::MAX, u64::MAX - 1, 1 << 63, 0xdead_beef_cafe_f00d]);
        for k in samples {
            let mut reference = std::collections::hash_map::DefaultHasher::new();
            k.hash(&mut reference);
            assert_eq!(siphash13_u64(k), reference.finish(), "key {k:#x}");
        }
    }

    /// Same equivalence for the two-block variant: it must match
    /// `DefaultHasher` fed two `u64` writes, because the unified-L2 TLB
    /// key hashes exactly that way.
    #[test]
    fn fast_2xu64_hash_matches_default_hasher() {
        use std::hash::Hasher;
        let samples = (0..256u64).map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i & 1)).chain([
            (u64::MAX, 0),
            (u64::MAX, 1),
            (0, u64::MAX),
            (1 << 63, 7),
        ]);
        for (m0, m1) in samples {
            let mut reference = std::collections::hash_map::DefaultHasher::new();
            m0.hash(&mut reference);
            m1.hash(&mut reference);
            assert_eq!(siphash13_2xu64(m0, m1), reference.finish(), "key ({m0:#x}, {m1:#x})");
        }
    }

    proptest! {
        /// `siphash13_u64` == `DefaultHasher` on arbitrary keys.
        #[test]
        fn fast_u64_hash_matches_default_hasher_prop(k in any::<u64>()) {
            use std::hash::Hasher;
            let mut reference = std::collections::hash_map::DefaultHasher::new();
            k.hash(&mut reference);
            prop_assert_eq!(siphash13_u64(k), reference.finish());
        }

        /// Never exceeds capacity; most-recently-inserted key is always
        /// resident.
        #[test]
        fn capacity_and_mru_residency(keys in proptest::collection::vec(0u64..512, 1..256)) {
            let mut t: LruSetAssoc<u64, u64> = LruSetAssoc::new(8, 4);
            for &k in &keys {
                t.insert(k, k * 2);
                prop_assert!(t.len() <= t.capacity());
                prop_assert_eq!(t.peek(&k), Some(&(k * 2)));
            }
        }

        /// Differential check against the reference nested-vec model: the
        /// flat slab must report identical get results, eviction victims,
        /// and final contents for any interleaving of inserts/gets/removes.
        #[test]
        fn flat_slab_matches_nested_reference(
            ops in proptest::collection::vec((0u8..3, 0u64..64), 1..300)
        ) {
            let mut flat: LruSetAssoc<u64, u64> = LruSetAssoc::new(4, 2);
            let mut reference = NestedRef::new(4, 2);
            for &(op, k) in &ops {
                match op {
                    0 => prop_assert_eq!(flat.insert(k, k + 100), reference.insert(k, k + 100)),
                    1 => prop_assert_eq!(flat.get(&k).copied(), reference.get(&k)),
                    _ => prop_assert_eq!(flat.remove(&k), reference.remove(&k)),
                }
            }
            prop_assert_eq!(flat.to_map(), reference.to_map());
        }
    }

    /// The pre-rewrite `Vec<Vec<Way>>` model, kept as a test oracle.
    struct NestedRef {
        sets: Vec<Vec<(u64, u64, u64)>>, // (key, value, last_use)
        ways: usize,
        clock: u64,
    }

    impl NestedRef {
        fn new(sets: usize, ways: usize) -> Self {
            Self { sets: vec![Vec::new(); sets], ways, clock: 0 }
        }
        fn set_of(&self, key: &u64) -> usize {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            use std::hash::Hasher;
            key.hash(&mut hasher);
            (hasher.finish() % self.sets.len() as u64) as usize
        }
        fn get(&mut self, key: &u64) -> Option<u64> {
            self.clock += 1;
            let clock = self.clock;
            let set = self.set_of(key);
            self.sets[set].iter_mut().find(|w| &w.0 == key).map(|w| {
                w.2 = clock;
                w.1
            })
        }
        fn insert(&mut self, key: u64, value: u64) -> Option<(u64, u64)> {
            self.clock += 1;
            let clock = self.clock;
            let set_idx = self.set_of(&key);
            let set = &mut self.sets[set_idx];
            if let Some(w) = set.iter_mut().find(|w| w.0 == key) {
                w.1 = value;
                w.2 = clock;
                return None;
            }
            let mut evicted = None;
            if set.len() == self.ways {
                let lru = set.iter().enumerate().min_by_key(|(_, w)| w.2).map(|(i, _)| i).unwrap();
                let w = set.swap_remove(lru);
                evicted = Some((w.0, w.1));
            }
            set.push((key, value, clock));
            evicted
        }
        fn remove(&mut self, key: &u64) -> Option<u64> {
            let set_idx = self.set_of(key);
            let set = &mut self.sets[set_idx];
            let pos = set.iter().position(|w| &w.0 == key)?;
            Some(set.swap_remove(pos).1)
        }
        fn to_map(&self) -> HashMap<u64, u64> {
            self.sets.iter().flatten().map(|w| (w.0, w.1)).collect()
        }
    }
}
