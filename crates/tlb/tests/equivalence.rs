//! Property: the TLB is a pure cache — translating any access stream
//! through the TLB must yield exactly the same translations as consulting
//! the page table directly, for any mix of 4 KiB and 2 MiB mappings.

use proptest::prelude::*;
use sipt_mem::{PageSize, PageTable, PhysFrameNum, VirtAddr, VirtPageNum, PAGES_PER_HUGE_PAGE};
use sipt_tlb::{DataTlb, TlbConfig};

/// Build a page table with `base_pages` 4 KiB mappings and `huge_pages`
/// 2 MiB mappings at disjoint ranges.
fn build_table(base_pages: u64, huge_pages: u64) -> PageTable {
    let mut pt = PageTable::new();
    for i in 0..base_pages {
        pt.map(VirtPageNum::new(i), PhysFrameNum::new(10_000 + i * 7), PageSize::Base4K).unwrap();
    }
    for i in 0..huge_pages {
        let vpn = (1 << 20) + i * PAGES_PER_HUGE_PAGE;
        let pfn = (1 << 21) + i * PAGES_PER_HUGE_PAGE;
        pt.map(VirtPageNum::new(vpn), PhysFrameNum::new(pfn), PageSize::Huge2M).unwrap();
    }
    pt
}

proptest! {
    #[test]
    fn tlb_translations_match_page_table(
        accesses in proptest::collection::vec((0u64..2, 0u64..64, 0u64..4096), 1..300)
    ) {
        let pt = build_table(64, 8);
        let mut tlb = DataTlb::new(TlbConfig::default());
        for (kind, page, offset) in accesses {
            let va = if kind == 0 {
                VirtAddr::new((page % 64) * 4096 + offset)
            } else {
                VirtAddr::new(((1u64 << 20) + (page % 8) * PAGES_PER_HUGE_PAGE) * 4096 + offset)
            };
            let via_tlb = tlb.translate(va, &pt).expect("mapped").translation;
            let direct = pt.translate(va).expect("mapped");
            prop_assert_eq!(via_tlb, direct, "divergence at {}", va);
        }
    }

    #[test]
    fn latency_is_monotone_in_hit_level(page in 0u64..64) {
        let pt = build_table(64, 0);
        let mut tlb = DataTlb::new(TlbConfig::default());
        let va = VirtAddr::new(page * 4096);
        let walk = tlb.translate(va, &pt).unwrap();
        let hit = tlb.translate(va, &pt).unwrap();
        prop_assert!(hit.cycles < walk.cycles);
    }
}

#[test]
fn tlb_capacity_never_exceeded_under_thrash() {
    // Touch far more pages than the whole TLB holds; every translation
    // must still be correct (no stale entries served for evicted pages).
    let mut pt = PageTable::new();
    for i in 0..4096u64 {
        pt.map(VirtPageNum::new(i), PhysFrameNum::new(8192 + i), PageSize::Base4K).unwrap();
    }
    let mut tlb = DataTlb::new(TlbConfig::default());
    for round in 0..3 {
        for i in 0..4096u64 {
            let va = VirtAddr::new(i * 4096 + round);
            let t = tlb.translate(va, &pt).unwrap();
            assert_eq!(t.translation.pfn.raw(), 8192 + i);
        }
    }
    let stats = tlb.stats();
    assert_eq!(stats.total(), 3 * 4096);
    // 4096 pages >> 1024-entry L2: most accesses walk.
    assert!(stats.walks > 4096);
}

#[test]
fn remap_visible_after_flush() {
    // The TLB caches aggressively; after the OS changes a mapping the
    // (simulated) shootdown is a flush, and the new frame must be seen.
    let mut pt = PageTable::new();
    pt.map(VirtPageNum::new(1), PhysFrameNum::new(100), PageSize::Base4K).unwrap();
    let mut tlb = DataTlb::new(TlbConfig::default());
    let va = VirtAddr::new(0x1000);
    assert_eq!(tlb.translate(va, &pt).unwrap().translation.pfn.raw(), 100);
    pt.unmap(VirtPageNum::new(1)).unwrap();
    pt.map(VirtPageNum::new(1), PhysFrameNum::new(200), PageSize::Base4K).unwrap();
    // Stale entry still served (models real TLB incoherence)...
    assert_eq!(tlb.translate(va, &pt).unwrap().translation.pfn.raw(), 100);
    // ...until the shootdown.
    tlb.flush();
    assert_eq!(tlb.translate(va, &pt).unwrap().translation.pfn.raw(), 200);
}
