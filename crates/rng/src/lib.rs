#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-rng — in-tree, dependency-free deterministic PRNGs
//!
//! The simulator's randomness (workload generation, fragmentation,
//! scattered page placement, random replacement) previously came from the
//! external `rand` crate, which made the tier-1 build depend on a crates.io
//! registry fetch. This crate replaces that surface with two tiny,
//! well-known generators so `cargo build`/`cargo test` are fully offline:
//!
//! - [`SplitMix64`] — Steele/Lea/Vigna's 64-bit mixer; one u64 of state,
//!   used for seeding and cheap streams;
//! - [`Xoshiro256PlusPlus`] — Blackman/Vigna's xoshiro256++ 1.0, the
//!   general-purpose generator (256-bit state, excellent statistical
//!   quality for simulation purposes).
//!
//! The API mirrors the subset of `rand` the repo used: a [`Rng`] trait
//! with `gen_range`/`gen_bool`, a [`SeedableRng`] trait with
//! `seed_from_u64`, and a [`StdRng`] alias (xoshiro256++). Streams are
//! deterministic functions of the seed and stable across platforms; they
//! are **not** reproductions of `rand`'s ChaCha streams, so statistical
//! results shift slightly relative to pre-hermetic builds of this repo
//! (the calibration tests were re-validated against the new streams).

use std::ops::{Range, RangeInclusive};

/// Seed-construction: every generator here can be built from one `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-number interface used across the workspace.
///
/// Only `next_u64` is required; everything else derives from it.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// A uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds_inclusive();
        T::sample_inclusive(self.next_u64(), lo, hi)
    }
}

/// Integer types that can be sampled uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Map 64 uniform bits onto `[lo, hi]` (inclusive). Uses the widening
    /// multiply trick, whose bias is ≤ 2⁻⁶⁴·span — immaterial for
    /// simulation workloads.
    fn sample_inclusive(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive(bits: u64, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let idx = ((bits as u128 * span) >> 64) as i128;
                (lo as i128 + idx) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    /// Continuous uniform on `[lo, hi]`: 53 bits of `bits` become a
    /// fraction in `[0, 1)` scaled onto the span. (The upper endpoint is
    /// reachable only through rounding, mirroring `rand`'s behaviour for
    /// float ranges closely enough for simulation parameters.)
    #[inline]
    fn sample_inclusive(bits: u64, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi);
        let f = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + f * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// The inclusive `(lo, hi)` bounds of the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn bounds_inclusive(self) -> (T, T);
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn bounds_inclusive(self) -> (T, T) {
        assert!(self.start < self.end, "gen_range called with an empty range");
        (self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds_inclusive(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with an empty range");
        (lo, hi)
    }
}

/// Decrement helper so half-open ranges convert to inclusive bounds.
pub trait One {
    /// `self - 1`.
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),* $(,)?) => {$(
        impl One for $t {
            #[inline]
            fn minus_one(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl One for f64 {
    /// Identity: a half-open float range samples the same continuum as
    /// the closed one (the endpoint has measure zero).
    #[inline]
    fn minus_one(self) -> Self {
        self
    }
}

/// SplitMix64 (public-domain reference implementation): one u64 of state,
/// period 2⁶⁴. Passes BigCrush when used as a 64-bit generator; here it
/// seeds xoshiro and serves tiny throwaway streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Construct from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, public domain): 256-bit state,
/// period 2²⁵⁶ − 1, the workspace's general-purpose generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256PlusPlus {
    /// Seed the four state words from SplitMix64, per the xoshiro
    /// authors' recommendation (never yields the all-zero state).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The workspace's default generator (xoshiro256++), named `StdRng` so
/// call sites read like the `rand` idiom they replaced.
pub type StdRng = Xoshiro256PlusPlus;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0 (from the reference implementation).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut c = Xoshiro256PlusPlus::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds_half_open_and_inclusive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u32 = rng.gen_range(64..=256);
            assert!((64..=256).contains(&y));
            let z: usize = rng.gen_range(0..1);
            assert_eq!(z, 0);
            let s: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_every_value_of_a_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u64 = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((0.29..0.31).contains(&p), "p = {p}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_samples_floats_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..=6.0);
            assert!((-2.0..=6.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((1.8..2.2).contains(&mean), "mean = {mean}");
        let y: f64 = rng.gen_range(3.0..4.0);
        assert!((3.0..4.0).contains(&y));
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
