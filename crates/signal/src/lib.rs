#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

//! # sipt-signal — the drain flag
//!
//! The one thing the sweep engine needs from the operating system that
//! safe Rust cannot provide: *notice* a `SIGTERM`/`SIGINT` without dying,
//! so a long sweep can flush its checkpoint, merge partial results, print
//! resume instructions, and exit deliberately (exit code
//! [`EXIT_DRAINED`]) instead of vanishing mid-write.
//!
//! The workspace is hermetic (no registry dependencies, every other crate
//! is `#![forbid(unsafe_code)]`), so this crate holds the **only**
//! `unsafe` in the tree: an `extern "C"` binding to the C library's
//! `signal(2)`, which is already linked into every Rust binary on Unix —
//! no new dependency, no new linkage. The handler does the minimum that
//! is async-signal-safe: it stores into process-global atomics. Everyone
//! else polls [`drain_requested`] at task boundaries.
//!
//! On non-Unix targets the handler install is a no-op and the flag can
//! still be raised programmatically via [`request_drain`] (the worker
//! wire protocol's `drain` command uses that path on every platform).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Exit code of a run that shut down gracefully after SIGTERM/SIGINT —
/// the conventional `128 + SIGINT` so wrappers treat it as interrupted.
pub const EXIT_DRAINED: i32 = 130;

static DRAIN: AtomicBool = AtomicBool::new(false);
static SIGNALS_SEEN: AtomicU64 = AtomicU64::new(0);

#[cfg(unix)]
mod imp {
    use super::{Ordering, DRAIN, SIGNALS_SEEN};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        /// `signal(2)` from the platform C library, which every Rust
        /// binary already links. Binding the symbol directly keeps the
        /// workspace free of external crates.
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    /// The handler: async-signal-safe by construction (two lock-free
    /// atomic stores, nothing else).
    extern "C" fn on_signal(_signum: i32) {
        DRAIN.store(true, Ordering::SeqCst);
        SIGNALS_SEEN.fetch_add(1, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is the C library's own entry point with the
        // documented `(int, void (*)(int))` ABI, and `on_signal` is a
        // matching `extern "C"` function that only touches lock-free
        // atomics (async-signal-safe). Replacing the disposition of
        // SIGINT/SIGTERM cannot invalidate any Rust invariant.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-Unix fallback: signals cannot be hooked without a platform
    /// crate, but the programmatic drain path still works.
    pub fn install() {}
}

/// Install the SIGTERM/SIGINT handlers (idempotent; no-op off Unix).
/// Call early in `main`, before the first sweep.
pub fn install_drain_handlers() {
    imp::install();
}

/// Whether a drain was requested (by signal or [`request_drain`]). The
/// sweep engine polls this at task boundaries: once set, no new task
/// starts, in-flight work finishes, checkpoints flush, and the process
/// exits [`EXIT_DRAINED`].
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Raise the drain flag programmatically — the supervisor's `drain`
/// stdin command uses this inside workers, and tests use it to exercise
/// drain paths without process-level signals.
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Number of drain signals observed so far (0 when the flag was raised
/// only programmatically).
pub fn signals_seen() -> u64 {
    SIGNALS_SEEN.load(Ordering::SeqCst)
}

/// Clear the drain flag. Test-only escape hatch: production code treats
/// the flag as latching.
pub fn reset_for_tests() {
    DRAIN.store(false, Ordering::SeqCst);
    SIGNALS_SEEN.store(0, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_drain_latches() {
        reset_for_tests();
        assert!(!drain_requested());
        request_drain();
        assert!(drain_requested());
        assert_eq!(signals_seen(), 0, "no OS signal was involved");
        reset_for_tests();
        assert!(!drain_requested());
    }

    #[test]
    fn install_is_idempotent() {
        install_drain_handlers();
        install_drain_handlers();
    }
}
