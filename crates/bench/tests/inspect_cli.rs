//! Subprocess tests for the `sipt-inspect` CLI: the regress exit-code
//! contract CI relies on, graceful reads of every schema era, and the
//! malformed-env-var warning path shared by all `SIPT_*` integer knobs.

use sipt_telemetry::json::{self, Json};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn baseline(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}

fn inspect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sipt-inspect"))
        .args(args)
        .output()
        .expect("sipt-inspect spawns")
}

fn temp_file(tag: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("sipt-inspect-{tag}-{}.json", std::process::id()));
    std::fs::write(&path, contents).expect("write temp artifact");
    path
}

#[test]
fn regress_passes_against_committed_baselines() {
    for name in ["BENCH_sweeps.json", "BENCH_hotpath.json"] {
        let b = baseline(name);
        let b = b.to_str().expect("utf-8 path");
        let out = inspect(&["regress", "--baseline", b, "--current", b]);
        assert!(out.status.success(), "{name} self-compare must pass: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("regress: OK"), "{stdout}");
    }
}

/// The CI gate contract: an injected regression (instruction-count drift
/// plus a silently dropped benchmark) must exit 1 and name both causes.
#[test]
fn injected_regression_exits_one_and_names_the_cause() {
    let text = std::fs::read_to_string(baseline("BENCH_hotpath.json")).expect("baseline");
    let mut doc = json::parse(&text).expect("baseline parses");

    let mut payload = doc.get("payload").cloned().expect("payload");
    let mut fig02 = payload.get("fig02").cloned().expect("fig02");
    fig02.insert("simulated_instructions", Json::u64(719_999));
    payload.insert("fig02", fig02);
    let benchmarks: Vec<Json> = payload
        .get("benchmarks")
        .and_then(Json::as_arr)
        .expect("benchmarks")
        .iter()
        .filter(|b| b.get("name").and_then(Json::as_str) != Some("trace_cursor_next"))
        .cloned()
        .collect();
    payload.insert("benchmarks", Json::arr(benchmarks));
    doc.insert("payload", payload);

    let tampered = temp_file("tampered", &doc.render_pretty());
    let out = inspect(&[
        "regress",
        "--baseline",
        baseline("BENCH_hotpath.json").to_str().expect("utf-8"),
        "--current",
        tampered.to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("regress: FAIL"), "{stdout}");
    assert!(stdout.contains("fig02.simulated_instructions"), "{stdout}");
    assert!(stdout.contains("benchmarks[trace_cursor_next] missing"), "{stdout}");
    let _ = std::fs::remove_file(&tampered);
}

/// Per-benchmark `--max-ratio NAME=X` overrides: a named bound tighter
/// than the generous global default trips on that entry alone, and named
/// throughput fields (`block_replay_mips`) gate downward.
#[test]
fn regress_per_benchmark_max_ratio_overrides() {
    let text = std::fs::read_to_string(baseline("BENCH_hotpath.json")).expect("baseline");
    let mut doc = json::parse(&text).expect("baseline parses");

    let mut payload = doc.get("payload").cloned().expect("payload");
    // An 8x MIPS collapse and a 10x ns_per_iter inflation on one kernel —
    // both inside the global 32x band.
    let mips = payload.get("block_replay_mips").and_then(Json::as_f64).expect("mips");
    payload.insert("block_replay_mips", Json::num(mips / 8.0));
    let benchmarks: Vec<Json> = payload
        .get("benchmarks")
        .and_then(Json::as_arr)
        .expect("benchmarks")
        .iter()
        .map(|b| {
            let mut b = b.clone();
            if b.get("name").and_then(Json::as_str) == Some("trace_cursor_next") {
                let ns = b.get("ns_per_iter").and_then(Json::as_f64).expect("ns");
                b.insert("ns_per_iter", Json::num(ns * 10.0));
            }
            b
        })
        .collect();
    payload.insert("benchmarks", Json::arr(benchmarks));
    doc.insert("payload", payload);

    let tampered = temp_file("overrides", &doc.render_pretty());
    let base = baseline("BENCH_hotpath.json");
    let (base, cur) = (base.to_str().expect("utf-8"), tampered.to_str().expect("utf-8"));

    // Default bands: passes (throughput never gated, 10x < 32x).
    let out = inspect(&["regress", "--baseline", base, "--current", cur]);
    assert!(out.status.success(), "default bands must absorb both: {out:?}");

    // Named bounds: each override trips on exactly its own entry.
    let out = inspect(&[
        "regress",
        "--baseline",
        base,
        "--current",
        cur,
        "--max-ratio",
        "block_replay_mips=4",
        "--max-ratio",
        "trace_cursor_next=4",
    ]);
    assert_eq!(out.status.code(), Some(1), "named bounds must trip: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("block_replay_mips"), "{stdout}");
    assert!(stdout.contains("trace_cursor_next"), "{stdout}");

    // Generous named bounds absorb the same deltas.
    let out = inspect(&[
        "regress",
        "--baseline",
        base,
        "--current",
        cur,
        "--max-ratio",
        "block_replay_mips=16",
        "--max-ratio",
        "trace_cursor_next=16",
    ]);
    assert!(out.status.success(), "16x named bounds must pass: {out:?}");

    // Malformed override values exit 2 (usage error).
    let out =
        inspect(&["regress", "--baseline", base, "--current", cur, "--max-ratio", "probe=-1"]);
    assert_eq!(out.status.code(), Some(2), "negative bound is a usage error: {out:?}");
    let _ = std::fs::remove_file(&tampered);
}

#[test]
fn summary_diff_and_timeline_smoke() {
    let sweeps = baseline("BENCH_sweeps.json");
    let hotpath = baseline("BENCH_hotpath.json");
    let (sweeps, hotpath) = (sweeps.to_str().expect("utf-8"), hotpath.to_str().expect("utf-8"));

    let out = inspect(&["summary", sweeps, hotpath]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("artifact        BENCH_sweeps"), "{stdout}");
    assert!(stdout.contains("artifact        BENCH_hotpath"), "{stdout}");

    let out = inspect(&["diff", sweeps, sweeps]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("identical"));

    let out = inspect(&["timeline", sweeps]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("worker 0"), "{stdout}");
}

/// Artifacts from before the envelope grew version/parallelism blocks
/// must load without errors, and checks their baseline lacks are skipped.
#[test]
fn reads_pre_versioned_schema_artifacts_gracefully() {
    let old = temp_file("v1", r#"{"artifact": "BENCH_hotpath", "payload": {"rows": []}}"#);
    let old_path = old.to_str().expect("utf-8");

    let out = inspect(&["summary", old_path]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("schema_version  1"));

    let out = inspect(&["timeline", old_path]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("no parallelism block"));

    // An old baseline gates almost nothing — but doesn't false-positive.
    let out = inspect(&[
        "regress",
        "--baseline",
        old_path,
        "--current",
        baseline("BENCH_hotpath.json").to_str().expect("utf-8"),
    ]);
    assert!(out.status.success(), "old baseline must not fail a modern artifact: {out:?}");
    let _ = std::fs::remove_file(&old);
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["regress", "--baseline", "only-one-side.json"][..],
        &["diff", "just-one.json"][..],
        &["summary", "/nonexistent/sipt-artifact.json"][..],
    ] {
        let out = inspect(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2: {out:?}");
    }
}

/// Malformed `SIPT_*` integer knobs warn on stderr and fall back to the
/// default instead of aborting or being silently ignored — exercised
/// through a real figure binary, which parses them via the shared
/// `sipt_sim::env` helper.
#[test]
fn malformed_env_knobs_warn_on_stderr_but_run_completes() {
    let dir = std::env::temp_dir().join(format!("sipt-envwarn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("results dir");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig02"));
    cmd.arg("quick").arg("--json").arg("--jobs").arg("2");
    cmd.env("SIPT_RESULTS_DIR", &dir);
    for var in ["SIPT_FAULT_INJECT", "SIPT_AUDIT", "SIPT_TASK_TIMEOUT_MS", "SIPT_JOBS"] {
        cmd.env_remove(var);
    }
    cmd.env("SIPT_TRACE_EVENTS", "banana");
    cmd.env("SIPT_PREP_CACHE_CAP", "-3");
    let out = cmd.output().expect("fig02 spawns");
    assert!(out.status.success(), "malformed knobs must not abort the run: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning: malformed SIPT_TRACE_EVENTS"),
        "trace-events warning missing: {stderr}"
    );
    assert!(
        stderr.contains("warning: malformed SIPT_PREP_CACHE_CAP"),
        "prep-cache warning missing: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
