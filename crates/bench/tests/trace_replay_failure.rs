//! End-to-end contract test for `trace_tool replay` on a bad trace: an
//! unmapped virtual address must surface as a *structured, non-retried*
//! task failure (registry entry + failure table + exit 1), never as a raw
//! panic — and a retry budget must not re-execute the deterministic
//! failure (`retries_spent` stays 0, observable as the absence of any
//! "retrying" attempt on stderr).

use sipt_cpu::Inst;
use sipt_mem::VirtAddr;
use sipt_workloads::write_trace;
use std::path::PathBuf;
use std::process::{Command, Output};

fn temp_trace(tag: &str, insts: Vec<Inst>) -> PathBuf {
    let path = std::env::temp_dir().join(format!("sipt-trace-{tag}-{}.bin", std::process::id()));
    let file = std::fs::File::create(&path).expect("create trace file");
    write_trace(file, insts).expect("write trace");
    path
}

fn run_trace_tool(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_trace_tool"));
    cmd.args(args);
    for var in ["SIPT_TASK_RETRIES", "SIPT_REPLAY_BATCH", "SIPT_JOBS"] {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("trace_tool spawns")
}

/// The satellite's acceptance: a trace referencing unmapped memory, run
/// with a generous retry budget, produces the structured failure table and
/// exit code 1 with zero retries and no panic output.
#[test]
fn unmapped_va_is_a_structured_nonretried_failure() {
    // One load far outside any workload mapping: deterministic page fault.
    let path = temp_trace(
        "unmapped",
        vec![
            Inst::alu(0x10, 1, [None, None]),
            Inst::load(0x40, 2, None, VirtAddr::new(0xdead_0000_0000)),
        ],
    );
    let out = run_trace_tool(
        &["replay", "mcf", path.to_str().unwrap()],
        // A deterministic input error must not consume this budget.
        &[("SIPT_TASK_RETRIES", "8")],
    );
    let _ = std::fs::remove_file(&path);

    assert!(!out.status.success(), "bad trace must fail: {out:?}");
    assert_eq!(out.status.code(), Some(1), "failure exit code is 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("task failures"), "failure table on stderr: {stderr}");
    assert!(stderr.contains("bad trace"), "typed SimError::Trace text: {stderr}");
    assert!(stderr.contains("page fault"), "diagnostic names the fault: {stderr}");
    assert!(stderr.contains("1 attempt"), "exactly one attempt: {stderr}");
    assert!(!stderr.contains("retrying"), "no retry of a deterministic error: {stderr}");
    assert!(!stderr.contains("panicked"), "no raw panic text: {stderr}");
    assert!(!stderr.contains("RUST_BACKTRACE"), "no panic backtrace hint: {stderr}");
}

/// Control: the record → replay round trip against the matching benchmark
/// still succeeds and prints the summary line.
#[test]
fn recorded_trace_replays_cleanly() {
    let path = std::env::temp_dir().join(format!("sipt-trace-ok-{}.bin", std::process::id()));
    let rec = run_trace_tool(&["record", "mcf", path.to_str().unwrap(), "20000"], &[]);
    assert!(rec.status.success(), "record must pass: {rec:?}");
    let out = run_trace_tool(&["replay", "mcf", path.to_str().unwrap()], &[]);
    let _ = std::fs::remove_file(&path);
    assert!(out.status.success(), "matching replay must pass: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("replayed 20000 instructions"), "summary line: {stdout}");
    assert!(stdout.contains("IPC"), "IPC reported: {stdout}");
}
