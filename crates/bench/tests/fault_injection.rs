//! End-to-end resilience tests against the real `fig02` binary: fault
//! injection, panic isolation, the schema-v3 `resilience` block, exit
//! codes, checkpoint/resume byte-identity, the watchdog, and the
//! `SIPT_AUDIT=1` invariant auditor.
//!
//! Each test runs the binary in a subprocess with its own
//! `SIPT_RESULTS_DIR`, so the env-var knobs (parsed once per process)
//! never leak between tests.

use sipt_telemetry::json::{self, Json};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_results_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sipt-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Run `fig02 quick --json --jobs 2 [extra args]` with extra env vars and
/// a dedicated results dir; return the process output.
fn run_fig02(dir: &Path, envs: &[(&str, &str)], extra_args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig02"));
    cmd.arg("quick").arg("--json").arg("--jobs").arg("2").args(extra_args);
    cmd.env("SIPT_RESULTS_DIR", dir);
    // Make sure ambient knobs from the outer test environment don't leak in.
    for var in ["SIPT_FAULT_INJECT", "SIPT_AUDIT", "SIPT_TASK_TIMEOUT_MS", "SIPT_JOBS"] {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("fig02 spawns")
}

fn read_report(dir: &Path) -> Json {
    let text = std::fs::read_to_string(dir.join("fig02.json")).expect("fig02.json written");
    json::parse(&text).expect("valid JSON")
}

/// The headline acceptance test: a sweep with one injected panicking task
/// completes, writes a report whose v3 `resilience.failures` names the
/// task, exits non-zero — and every *surviving* benchmark row is
/// byte-identical to the fault-free run.
#[test]
fn injected_panic_is_isolated_reported_and_survivors_match() {
    let clean_dir = temp_results_dir("clean");
    let clean = run_fig02(&clean_dir, &[], &[]);
    assert!(clean.status.success(), "clean run must pass: {clean:?}");
    let clean_report = read_report(&clean_dir);
    assert!(clean_report.path("resilience").is_none(), "clean run carries no resilience block");

    // Task 1 is the first benchmark's first non-baseline configuration
    // (submission order: per benchmark, baseline then the five configs),
    // so exactly one row is poisoned and every other row must survive.
    let fault_dir = temp_results_dir("panic");
    let fault = run_fig02(&fault_dir, &[("SIPT_FAULT_INJECT", "panic:1")], &[]);
    assert!(!fault.status.success(), "injected panic must exit non-zero");
    assert_eq!(fault.status.code(), Some(1), "failure exit code is 1");
    let stderr = String::from_utf8_lossy(&fault.stderr);
    assert!(stderr.contains("task failures"), "failure table on stderr: {stderr}");

    let report = read_report(&fault_dir);
    assert_eq!(report.path("schema_version").and_then(Json::as_f64), Some(6.0));
    let failures = report.path("resilience.failures").and_then(Json::as_arr).expect("failures[]");
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].get("task").and_then(Json::as_f64), Some(1.0));
    assert!(failures[0]
        .get("panic_msg")
        .and_then(Json::as_str)
        .is_some_and(|m| m.contains("injected fault")));

    // Surviving rows are byte-identical: only row 0 (the poisoned
    // benchmark) may differ between the two reports.
    let clean_rows = clean_report.path("payload.rows").and_then(Json::as_arr).expect("rows");
    let fault_rows = report.path("payload.rows").and_then(Json::as_arr).expect("rows");
    assert_eq!(clean_rows.len(), fault_rows.len());
    assert!(clean_rows.len() >= 2, "need survivors to compare");
    for (i, (c, f)) in clean_rows.iter().zip(fault_rows).enumerate().skip(1) {
        assert_eq!(c.render(), f.render(), "surviving row {i} must be byte-identical");
    }

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&fault_dir);
}

/// `--resume` acceptance: an interrupted run (one injected failure) plus
/// a resumed run reproduce the uninterrupted report's payload
/// byte-for-byte, restoring completed tasks from the checkpoint.
#[test]
fn resume_reproduces_uninterrupted_payload_byte_for_byte() {
    let clean_dir = temp_results_dir("resume-clean");
    let clean = run_fig02(&clean_dir, &[], &[]);
    assert!(clean.status.success());
    let clean_payload = read_report(&clean_dir).path("payload").expect("payload").render();

    // "Interrupted" run: task 5 fails on every attempt, so its slot is
    // missing from the checkpoint while every other task is persisted.
    let dir = temp_results_dir("resume");
    let broken = run_fig02(&dir, &[("SIPT_FAULT_INJECT", "panic:5")], &["--resume"]);
    assert!(!broken.status.success(), "faulted run exits non-zero");
    assert!(dir.join("fig02.checkpoint.json").exists(), "checkpoint written");

    // Resumed run: restores the survivors, re-simulates only the missing
    // task, and must reproduce the uninterrupted payload exactly.
    let resumed = run_fig02(&dir, &[], &["--resume"]);
    assert!(resumed.status.success(), "resumed run passes: {resumed:?}");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(stderr.contains("restored"), "resume must restore from checkpoint: {stderr}");
    let report = read_report(&dir);
    assert_eq!(
        report.path("payload").expect("payload").render(),
        clean_payload,
        "resumed payload must be byte-identical to the uninterrupted run"
    );
    // The resilience block records the checkpoint hits (outside payload).
    let hits = report.path("resilience.checkpoint_hits").and_then(Json::as_f64).unwrap_or(0.0);
    assert!(hits > 0.0, "resume must report checkpoint hits");

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--task-timeout` arms the watchdog: an injected slow task is flagged
/// in the report but (without `SIPT_WATCHDOG_KILL`) not killed.
#[test]
fn watchdog_flags_slow_tasks_in_the_report() {
    let dir = temp_results_dir("watchdog");
    let out = run_fig02(&dir, &[("SIPT_FAULT_INJECT", "slow:0:400")], &["--task-timeout", "100"]);
    assert!(out.status.success(), "a slow task is flagged, not failed: {out:?}");
    let report = read_report(&dir);
    let flags =
        report.path("resilience.watchdog_flags").and_then(Json::as_arr).expect("watchdog_flags[]");
    assert!(!flags.is_empty(), "the 400 ms task must trip the 100 ms watchdog");
    assert_eq!(flags[0].get("task").and_then(Json::as_f64), Some(0.0));
    assert_eq!(flags[0].get("timeout_ms").and_then(Json::as_f64), Some(100.0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `SIPT_AUDIT=1` catches an injected metrics bit-flip: the
/// metrics-conservation audit panics inside the isolation boundary, so
/// the corrupted run is reported as a failure and the binary exits
/// non-zero while the rest of the sweep survives.
#[test]
fn audit_catches_injected_bit_flip() {
    let dir = temp_results_dir("audit");
    let out = run_fig02(&dir, &[("SIPT_AUDIT", "1"), ("SIPT_FAULT_INJECT", "flip:2")], &[]);
    assert!(!out.status.success(), "audited corruption must exit non-zero");
    let report = read_report(&dir);
    let failures = report.path("resilience.failures").and_then(Json::as_arr).expect("failures[]");
    assert_eq!(failures.len(), 1);
    assert!(
        failures[0]
            .get("panic_msg")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("metrics-conservation")),
        "audit diagnostic must name the invariant: {failures:?}"
    );
    assert!(
        report.path("resilience.fault_injections").and_then(Json::as_f64).unwrap_or(0.0) > 0.0,
        "injection accounting must show up"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
