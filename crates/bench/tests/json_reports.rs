//! Integration test for the `--json` machine-readable report switch:
//! runs the `fig01` binary end-to-end and validates the written report.

use sipt_telemetry::json::{self, Json};
use std::path::PathBuf;
use std::process::Command;

fn temp_results_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sipt-json-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

#[test]
fn fig01_json_flag_writes_valid_enveloped_report() {
    let dir = temp_results_dir("fig01");
    let out = Command::new(env!("CARGO_BIN_EXE_fig01"))
        .arg("quick")
        .arg("--json")
        .env("SIPT_RESULTS_DIR", &dir)
        .output()
        .expect("fig01 runs");
    assert!(out.status.success(), "fig01 --json failed: {:?}", out);

    // The human-readable table still goes to stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fig 1"), "text output kept: {stdout}");

    let path = dir.join("fig01.json");
    let text = std::fs::read_to_string(&path).expect("fig01.json written");
    std::fs::remove_dir_all(&dir).ok();

    let parsed = json::parse(&text).expect("valid JSON");
    assert_eq!(parsed.path("schema_version").and_then(Json::as_f64), Some(1.0));
    assert_eq!(parsed.path("artifact").and_then(Json::as_str), Some("fig01"));
    let rows = parsed.path("payload.rows").and_then(Json::as_arr).expect("rows array");
    assert!(!rows.is_empty(), "payload.rows must not be empty");
    for row in rows {
        for key in ["kib", "ways", "min", "mean", "max"] {
            assert!(
                row.get(key).and_then(Json::as_f64).is_some(),
                "row missing numeric {key}: {row:?}"
            );
        }
    }
}

#[test]
fn sipt_json_env_variable_also_enables_reports() {
    let dir = temp_results_dir("fig01-env");
    let out = Command::new(env!("CARGO_BIN_EXE_fig01"))
        .arg("quick")
        .env("SIPT_JSON", "1")
        .env("SIPT_RESULTS_DIR", &dir)
        .output()
        .expect("fig01 runs");
    assert!(out.status.success());
    let written = dir.join("fig01.json").exists();
    std::fs::remove_dir_all(&dir).ok();
    assert!(written, "SIPT_JSON=1 must write results/fig01.json");
}

#[test]
fn no_json_switch_means_no_report() {
    let dir = temp_results_dir("fig01-off");
    let out = Command::new(env!("CARGO_BIN_EXE_fig01"))
        .arg("quick")
        .env("SIPT_JSON", "0")
        .env("SIPT_RESULTS_DIR", &dir)
        .output()
        .expect("fig01 runs");
    assert!(out.status.success());
    let written = dir.join("fig01.json").exists();
    std::fs::remove_dir_all(&dir).ok();
    assert!(!written, "without --json or SIPT_JSON, no report should be written");
}
