//! Integration test for the `--json` machine-readable report switch:
//! runs the `fig01` binary end-to-end and validates the written report.

use sipt_telemetry::json::{self, Json};
use std::path::PathBuf;
use std::process::Command;

fn temp_results_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sipt-json-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

#[test]
fn fig01_json_flag_writes_valid_enveloped_report() {
    let dir = temp_results_dir("fig01");
    let out = Command::new(env!("CARGO_BIN_EXE_fig01"))
        .arg("quick")
        .arg("--json")
        .env("SIPT_RESULTS_DIR", &dir)
        .output()
        .expect("fig01 runs");
    assert!(out.status.success(), "fig01 --json failed: {:?}", out);

    // The human-readable table still goes to stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fig 1"), "text output kept: {stdout}");

    let path = dir.join("fig01.json");
    let text = std::fs::read_to_string(&path).expect("fig01.json written");
    std::fs::remove_dir_all(&dir).ok();

    let parsed = json::parse(&text).expect("valid JSON");
    assert_eq!(parsed.path("schema_version").and_then(Json::as_f64), Some(6.0));
    assert_eq!(parsed.path("artifact").and_then(Json::as_str), Some("fig01"));
    assert!(parsed.path("resilience").is_none(), "clean run must omit the resilience block");
    let rows = parsed.path("payload.rows").and_then(Json::as_arr).expect("rows array");
    assert!(!rows.is_empty(), "payload.rows must not be empty");
    for row in rows {
        for key in ["kib", "ways", "min", "mean", "max"] {
            assert!(
                row.get(key).and_then(Json::as_f64).is_some(),
                "row missing numeric {key}: {row:?}"
            );
        }
    }
}

#[test]
fn sipt_json_env_variable_also_enables_reports() {
    let dir = temp_results_dir("fig01-env");
    let out = Command::new(env!("CARGO_BIN_EXE_fig01"))
        .arg("quick")
        .env("SIPT_JSON", "1")
        .env("SIPT_RESULTS_DIR", &dir)
        .output()
        .expect("fig01 runs");
    assert!(out.status.success());
    let written = dir.join("fig01.json").exists();
    std::fs::remove_dir_all(&dir).ok();
    assert!(written, "SIPT_JSON=1 must write results/fig01.json");
}

/// Run `fig05 quick --json` under a given `SIPT_JOBS` and return the
/// parsed report.
fn fig05_report(tag: &str, jobs: &str) -> Json {
    let dir = temp_results_dir(tag);
    let out = Command::new(env!("CARGO_BIN_EXE_fig05"))
        .arg("quick")
        .arg("--json")
        .env("SIPT_JOBS", jobs)
        .env("SIPT_RESULTS_DIR", &dir)
        .output()
        .expect("fig05 runs");
    assert!(out.status.success(), "fig05 SIPT_JOBS={jobs} failed: {out:?}");
    let text = std::fs::read_to_string(dir.join("fig05.json")).expect("fig05.json written");
    std::fs::remove_dir_all(&dir).ok();
    json::parse(&text).expect("valid JSON")
}

#[test]
fn serial_and_parallel_binaries_write_identical_payloads() {
    let serial = fig05_report("fig05-serial", "1");
    let parallel = fig05_report("fig05-parallel", "2");
    // The scientific content must be byte-identical; only the
    // wall-clock `parallelism` block may differ.
    assert_eq!(
        serial.path("payload").map(Json::render),
        parallel.path("payload").map(Json::render),
        "payload must not depend on SIPT_JOBS"
    );
    assert_eq!(serial.path("schema_version").and_then(Json::as_f64), Some(6.0));
    assert_eq!(serial.path("parallelism.jobs").and_then(Json::as_f64), Some(1.0));
    assert_eq!(parallel.path("parallelism.jobs").and_then(Json::as_f64), Some(2.0));
    for key in ["tasks", "wall_ms", "total_busy_ms", "speedup"] {
        assert!(
            parallel.path(&format!("parallelism.{key}")).is_some(),
            "parallelism block missing {key}"
        );
    }
}

#[test]
fn jobs_flag_overrides_environment() {
    let dir = temp_results_dir("fig05-flag");
    let out = Command::new(env!("CARGO_BIN_EXE_fig05"))
        .arg("quick")
        .arg("--json")
        .arg("--jobs")
        .arg("3")
        .env("SIPT_JOBS", "1")
        .env("SIPT_RESULTS_DIR", &dir)
        .output()
        .expect("fig05 runs");
    assert!(out.status.success(), "--jobs run failed: {out:?}");
    let text = std::fs::read_to_string(dir.join("fig05.json")).expect("fig05.json written");
    std::fs::remove_dir_all(&dir).ok();
    let parsed = json::parse(&text).expect("valid JSON");
    assert_eq!(
        parsed.path("parallelism.jobs").and_then(Json::as_f64),
        Some(3.0),
        "--jobs must beat SIPT_JOBS"
    );
}

#[test]
fn malformed_jobs_flag_aborts_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig05"))
        .arg("quick")
        .arg("--jobs=banana")
        .output()
        .expect("fig05 spawns");
    assert!(!out.status.success(), "malformed --jobs must not run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--jobs"), "usage message expected, got: {stderr}");
}

#[test]
fn no_json_switch_means_no_report() {
    let dir = temp_results_dir("fig01-off");
    let out = Command::new(env!("CARGO_BIN_EXE_fig01"))
        .arg("quick")
        .env("SIPT_JSON", "0")
        .env("SIPT_RESULTS_DIR", &dir)
        .output()
        .expect("fig01 runs");
    assert!(out.status.success());
    let written = dir.join("fig01.json").exists();
    std::fs::remove_dir_all(&dir).ok();
    assert!(!written, "without --json or SIPT_JSON, no report should be written");
}
