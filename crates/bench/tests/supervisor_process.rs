//! End-to-end tests of the process-isolation sweep supervisor against
//! the real `fig02` binary: payload byte-identity across isolation modes
//! and job counts, abort containment with backoff respawn, respawn-budget
//! exhaustion and shard quarantine, graceful SIGTERM drain with
//! checkpoint flush and `--resume` round-trip, and the scoped watchdog
//! kill (process mode kills only the offending worker; thread mode keeps
//! the documented exit-124 fallback).
//!
//! Each test runs the binary in a subprocess with its own
//! `SIPT_RESULTS_DIR` so env-var knobs (parsed once per process) never
//! leak between tests.

use sipt_telemetry::json::{self, Json};
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn temp_results_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sipt-supervisor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Build a `fig02 quick --json [extra args]` command with a dedicated
/// results dir and a scrubbed environment.
fn fig02_cmd(dir: &Path, envs: &[(&str, &str)], extra_args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig02"));
    cmd.arg("quick").arg("--json").args(extra_args);
    cmd.env("SIPT_RESULTS_DIR", dir);
    // Ambient knobs from the outer environment must not leak in; the
    // worker-assignment vars especially would turn the run into a shard.
    for var in [
        "SIPT_FAULT_INJECT",
        "SIPT_AUDIT",
        "SIPT_TASK_TIMEOUT_MS",
        "SIPT_TASK_RETRIES",
        "SIPT_JOBS",
        "SIPT_ISOLATION",
        "SIPT_WATCHDOG_KILL",
        "SIPT_SHARD_SIZE",
        "SIPT_RESPAWN_BUDGET",
        "SIPT_RESPAWN_BACKOFF_MS",
        "SIPT_WORKER_SLOTS",
        "SIPT_WORKER_SWEEP",
        "SIPT_TRACE_SPANS",
    ] {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd
}

fn run_fig02(dir: &Path, envs: &[(&str, &str)], extra_args: &[&str]) -> Output {
    fig02_cmd(dir, envs, extra_args).output().expect("fig02 spawns")
}

fn read_report(dir: &Path) -> Json {
    let text = std::fs::read_to_string(dir.join("fig02.json")).expect("fig02.json written");
    json::parse(&text).expect("valid JSON")
}

fn payload_bytes(report: &Json) -> String {
    report.path("payload").expect("payload present").render()
}

/// FNV-1a 64-bit — the same fingerprint function and golden constant as
/// `tests/kernel_bit_identity.rs`, so the supervisor is pinned to the
/// exact payload bytes the in-process kernel produces.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FIG02_GOLDEN_FNV1A: u64 = 0xF633_03AE_7922_41E7;

fn supervisor_field(report: &Json, field: &str) -> f64 {
    report
        .path(&format!("resilience.supervisor.{field}"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("resilience.supervisor.{field} present"))
}

/// The headline byte-identity contract: `--isolation process` merges
/// sharded worker results into a payload byte-identical to the default
/// thread-isolation run, at one worker and at eight.
#[test]
fn process_isolation_payload_is_byte_identical_to_thread() {
    let thread_dir = temp_results_dir("thread");
    let thread = run_fig02(&thread_dir, &[], &["--jobs", "2", "--isolation", "thread"]);
    assert!(thread.status.success(), "thread run passes: {thread:?}");
    let thread_report = read_report(&thread_dir);
    assert!(
        thread_report.path("resilience").is_none(),
        "a clean thread run carries no resilience block (byte-compat with v5)"
    );
    let reference = payload_bytes(&thread_report);
    assert_eq!(
        fnv1a(reference.as_bytes()),
        FIG02_GOLDEN_FNV1A,
        "thread-mode payload must match the kernel_bit_identity golden"
    );

    for jobs in ["1", "8"] {
        let dir = temp_results_dir(&format!("process-j{jobs}"));
        let out = run_fig02(&dir, &[], &["--jobs", jobs, "--isolation", "process"]);
        assert!(out.status.success(), "process run (jobs {jobs}) passes: {out:?}");
        let report = read_report(&dir);
        assert_eq!(
            payload_bytes(&report),
            reference,
            "process-isolation payload (jobs {jobs}) must be byte-identical"
        );
        assert_eq!(
            fnv1a(payload_bytes(&report).as_bytes()),
            FIG02_GOLDEN_FNV1A,
            "process-isolation payload (jobs {jobs}) must match the golden fingerprint"
        );
        // The supervisor accounting rides in the v6 resilience block.
        assert_eq!(
            report.path("resilience.supervisor.isolation").and_then(Json::as_str),
            Some("process")
        );
        assert_eq!(supervisor_field(&report, "results_merged"), 24.0);
        assert_eq!(supervisor_field(&report, "worker_deaths"), 0.0);
        assert_eq!(supervisor_field(&report, "quarantined_tasks"), 0.0);
        assert!(supervisor_field(&report, "workers_spawned") >= 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&thread_dir);
}

/// Abort containment: `SIPT_FAULT_INJECT=abort:2:once` kills a worker
/// process outright (`catch_unwind` can't see it). The supervisor
/// respawns the shard with an attempt offset so the `:once` fault does
/// not re-fire, and the completed run is byte-identical to a fault-free
/// one — the paper-facing payload never shows the crash.
#[test]
fn aborted_worker_is_respawned_and_payload_survives_byte_identical() {
    let clean_dir = temp_results_dir("abort-clean");
    let clean = run_fig02(&clean_dir, &[], &["--jobs", "2"]);
    assert!(clean.status.success());
    let reference = payload_bytes(&read_report(&clean_dir));

    let dir = temp_results_dir("abort-once");
    let out = run_fig02(
        &dir,
        &[("SIPT_FAULT_INJECT", "abort:2:once")],
        &["--jobs", "2", "--isolation", "process"],
    );
    assert!(out.status.success(), "an aborted worker must not fail the run: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("SIGABRT"), "death diagnosis names the signal: {stderr}");
    assert!(stderr.contains("respawn"), "respawn announced on stderr: {stderr}");

    let report = read_report(&dir);
    assert_eq!(payload_bytes(&report), reference, "payload survives the abort byte-identically");
    assert!(supervisor_field(&report, "worker_deaths") >= 1.0);
    assert!(supervisor_field(&report, "respawns") >= 1.0);
    assert_eq!(supervisor_field(&report, "results_merged"), 24.0);
    assert_eq!(supervisor_field(&report, "quarantined_tasks"), 0.0);

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A persistent abort (fires on every attempt) exhausts the respawn
/// budget: the shard is quarantined, its unfinished tasks become
/// permanent failures in the report's failure table, the other shard's
/// results survive, and the binary exits 1.
#[test]
fn respawn_budget_exhaustion_quarantines_the_poison_shard() {
    let dir = temp_results_dir("quarantine");
    let out = run_fig02(
        &dir,
        &[("SIPT_FAULT_INJECT", "abort:2")],
        &["--jobs", "2", "--isolation", "process"],
    );
    assert_eq!(out.status.code(), Some(1), "quarantined tasks exit 1: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("quarantining shard"), "quarantine announced: {stderr}");
    assert!(stderr.contains("task failures"), "failure table printed: {stderr}");

    let report = read_report(&dir);
    assert_eq!(supervisor_field(&report, "quarantined_shards"), 1.0);
    assert!(supervisor_field(&report, "quarantined_tasks") >= 1.0);
    // Budget of 2 respawns => 3 deaths of the poison shard, then quarantine.
    assert_eq!(supervisor_field(&report, "worker_deaths"), 3.0);
    assert_eq!(supervisor_field(&report, "respawns"), 2.0);
    // The sibling shard's results all merged.
    assert!(supervisor_field(&report, "results_merged") >= 12.0);
    let failures = report.path("resilience.failures").and_then(Json::as_arr).expect("failures[]");
    assert!(!failures.is_empty());
    assert!(failures[0]
        .get("panic_msg")
        .and_then(Json::as_str)
        .is_some_and(|m| m.contains("quarantined shard")));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful drain: SIGTERM mid-sweep asks workers to finish in-flight
/// tasks, flushes completed results to the checkpoint, prints resume
/// instructions, and exits 130. A `--resume` re-run restores the drained
/// progress and reproduces the uninterrupted payload byte-for-byte.
#[test]
fn sigterm_drains_flushes_checkpoint_and_resume_roundtrips() {
    let clean_dir = temp_results_dir("drain-clean");
    let clean = run_fig02(&clean_dir, &[], &["--jobs", "2"]);
    assert!(clean.status.success());
    let reference = payload_bytes(&read_report(&clean_dir));

    // Slow down task 0 so the run is reliably still going when the
    // signal lands; the slowdown never changes payload bytes.
    let dir = temp_results_dir("drain");
    let child = fig02_cmd(
        &dir,
        &[("SIPT_FAULT_INJECT", "slow:0:2500")],
        &["--jobs", "2", "--isolation", "process", "--resume"],
    )
    .stdout(Stdio::null())
    .stderr(Stdio::piped())
    .spawn()
    .expect("fig02 spawns");
    std::thread::sleep(Duration::from_millis(600));
    let term =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill runs");
    assert!(term.success(), "SIGTERM delivered");
    let out = child.wait_with_output().expect("fig02 exits");
    assert_eq!(out.status.code(), Some(130), "a drained run exits 130: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("drain: signal received"), "drain announced: {stderr}");
    assert!(stderr.contains("--resume to continue"), "resume instructions printed: {stderr}");
    assert!(dir.join("fig02.checkpoint.json").exists(), "checkpoint flushed");
    assert!(!dir.join("fig02.json").exists(), "a drained run publishes no report");

    // Resume (fault-free this time): restores the drained tasks,
    // simulates only the remainder, reproduces the payload exactly.
    let resumed = run_fig02(&dir, &[], &["--jobs", "2", "--isolation", "process", "--resume"]);
    assert!(resumed.status.success(), "resumed run passes: {resumed:?}");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(stderr.contains("restored"), "resume restores from the checkpoint: {stderr}");
    assert_eq!(
        payload_bytes(&read_report(&dir)),
        reference,
        "drain + resume must reproduce the uninterrupted payload byte-for-byte"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The scoped watchdog kill: under process isolation,
/// `SIPT_WATCHDOG_KILL=1` kills only the worker holding the stuck task.
/// The victim slot is recorded as a failure, the shard's other tasks are
/// respawned and complete, and the run exits 1 (failure table) — never
/// the thread-mode 124. The generous timeout leaves room for each fresh
/// worker process's cold workload-preparation on its first task.
#[test]
fn watchdog_kill_is_scoped_to_the_offending_worker_in_process_mode() {
    let dir = temp_results_dir("watchdog-scoped");
    let out = run_fig02(
        &dir,
        &[("SIPT_FAULT_INJECT", "slow:0:10000"), ("SIPT_WATCHDOG_KILL", "1")],
        &["--jobs", "2", "--isolation", "process", "--task-timeout", "1500"],
    );
    assert_eq!(out.status.code(), Some(1), "scoped kill exits 1, not 124: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("the sweep continues"),
        "kill is announced as scoped to one worker: {stderr}"
    );

    let report = read_report(&dir);
    assert!(supervisor_field(&report, "watchdog_kills") >= 1.0);
    let failures = report.path("resilience.failures").and_then(Json::as_arr).expect("failures[]");
    assert!(
        failures.iter().any(|f| f.get("task").and_then(Json::as_f64) == Some(0.0)),
        "the stuck task is the recorded victim: {failures:?}"
    );
    // The rest of the sweep survived the kill.
    assert!(supervisor_field(&report, "results_merged") >= 12.0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Thread mode keeps the documented fallback: without process isolation
/// a watchdog kill can only take down the whole process (exit 124), and
/// the diagnostic points at `--isolation process`.
#[test]
fn watchdog_kill_in_thread_mode_keeps_the_exit_124_fallback() {
    let dir = temp_results_dir("watchdog-124");
    let out = run_fig02(
        &dir,
        &[("SIPT_FAULT_INJECT", "slow:0:10000"), ("SIPT_WATCHDOG_KILL", "1")],
        &["--jobs", "2", "--task-timeout", "300"],
    );
    assert_eq!(out.status.code(), Some(124), "thread-mode kill exits 124: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--isolation process"),
        "the diagnostic advertises the scoped alternative: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
