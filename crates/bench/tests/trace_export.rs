//! End-to-end acceptance for `--trace-spans` against the real `fig02`
//! binary: the run writes a Perfetto-loadable Chrome trace with one
//! track per pool worker, the report grows the v5 `observability`
//! block — and the scientific payload stays byte-identical to a run
//! with tracing disabled.

use sipt_telemetry::json::{self, Json};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_results_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sipt-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

fn run_fig02(dir: &Path, extra_args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig02"));
    cmd.arg("quick").arg("--json").arg("--jobs").arg("8").args(extra_args);
    cmd.env("SIPT_RESULTS_DIR", dir);
    for var in
        ["SIPT_FAULT_INJECT", "SIPT_AUDIT", "SIPT_TASK_TIMEOUT_MS", "SIPT_JOBS", "SIPT_TRACE_SPANS"]
    {
        cmd.env_remove(var);
    }
    cmd.output().expect("fig02 spawns")
}

fn read_json(path: &Path) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    json::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

#[test]
fn trace_spans_writes_perfetto_trace_with_identical_payload() {
    let plain_dir = temp_results_dir("plain");
    let plain = run_fig02(&plain_dir, &[]);
    assert!(plain.status.success(), "plain run passes: {plain:?}");
    let plain_report = read_json(&plain_dir.join("fig02.json"));
    assert!(!plain_dir.join("fig02.trace.json").exists(), "no trace file without --trace-spans");
    assert!(plain_report.get("observability").is_none(), "plain runs carry no observability block");

    let traced_dir = temp_results_dir("traced");
    let traced = run_fig02(&traced_dir, &["--trace-spans"]);
    assert!(traced.status.success(), "traced run passes: {traced:?}");
    let traced_report = read_json(&traced_dir.join("fig02.json"));

    // 1. Bit-identical science: observability must live outside payload.
    assert_eq!(
        traced_report.path("payload").expect("payload").render(),
        plain_report.path("payload").expect("payload").render(),
        "--trace-spans must not change the payload"
    );

    // 2. The v5 observability block accounts for the recorded spans.
    assert_eq!(traced_report.path("schema_version").and_then(Json::as_f64), Some(6.0));
    let spans = traced_report.path("observability.spans").expect("spans accounting");
    assert_eq!(spans.path("enabled").and_then(Json::as_f64), Some(1.0));
    assert!(spans.path("events").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
    assert_eq!(spans.path("dropped").and_then(Json::as_f64), Some(0.0));

    // 3. The trace file is valid Chrome trace-event JSON with worker
    //    tracks and balanced begin/end nesting per track.
    let trace = read_json(&traced_dir.join("fig02.trace.json"));
    let events = trace.path("traceEvents").and_then(Json::as_arr).expect("traceEvents[]");
    assert_eq!(trace.path("spanDropped").and_then(Json::as_f64), Some(0.0));
    let mut worker_tracks = std::collections::BTreeSet::new();
    let mut depth: std::collections::BTreeMap<u64, i64> = Default::default();
    for e in events {
        let ph = e.path("ph").and_then(Json::as_str).expect("ph");
        let tid = e.path("tid").and_then(Json::as_f64).expect("tid") as u64;
        assert_eq!(e.path("pid").and_then(Json::as_f64), Some(1.0));
        match ph {
            "B" => *depth.entry(tid).or_default() += 1,
            "E" => {
                let d = depth.entry(tid).or_default();
                *d -= 1;
                assert!(*d >= 0, "E without matching B on tid {tid}");
            }
            "M" if e.path("name").and_then(Json::as_str) == Some("thread_name") && tid > 0 => {
                let label = e.path("args.name").and_then(Json::as_str).expect("thread label");
                assert!(label.starts_with("worker "), "worker track label: {label}");
                worker_tracks.insert(tid);
            }
            _ => {}
        }
    }
    assert!(depth.values().all(|&d| d == 0), "unbalanced spans: {depth:?}");
    assert!(
        !worker_tracks.is_empty(),
        "a --jobs 8 sweep must emit at least one labeled worker track"
    );

    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&traced_dir);
}
