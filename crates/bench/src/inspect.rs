//! Library logic behind the `sipt-inspect` binary: offline analysis of
//! the JSON report envelopes the figure binaries write to `results/`.
//!
//! Four operations, all pure functions over parsed [`Json`] documents so
//! they are unit-testable without touching the filesystem:
//!
//! - [`summary`] — one-screen orientation for a single artifact: schema
//!   version, which optional envelope blocks are present, payload shape.
//! - [`diff`] — recursive field-by-field comparison of two artifacts,
//!   matching array elements by their `"name"` key where present.
//! - [`regress`] — the CI perf gate. Compares a fresh artifact against a
//!   committed baseline using only *non-flaky* invariants (name sets,
//!   exact simulated-instruction counts, positivity of timing fields) so
//!   the gate never trips on machine noise; an optional ratio bound adds
//!   a tolerance band for wall-clock metrics when the caller wants one.
//! - [`timeline`] — textual per-worker utilization bars rendered from
//!   the v2 `parallelism` block.
//!
//! All four read any schema version the repo has ever produced (v1–v5):
//! optional blocks are simply reported absent, and checks tied to a
//! field are skipped when the *baseline* lacks that field.

use sipt_telemetry::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Read and parse a report artifact. Errors carry the path for context.
pub fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// The envelope's schema version, defaulting to 1 for pre-versioned
/// artifacts that carried no `schema_version` key.
pub fn schema_version(doc: &Json) -> u64 {
    doc.get("schema_version").and_then(Json::as_f64).map_or(1, |v| v as u64)
}

fn artifact_name(doc: &Json) -> &str {
    doc.get("artifact").and_then(Json::as_str).unwrap_or("<unnamed>")
}

/// Index an array of objects by their `"name"` field. Elements without
/// one are skipped (the caller falls back to positional comparison).
fn by_name(items: &[Json]) -> BTreeMap<&str, &Json> {
    items
        .iter()
        .filter_map(|item| item.get("name").and_then(Json::as_str).map(|n| (n, item)))
        .collect()
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// One-screen orientation for a single artifact.
pub fn summary(doc: &Json) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "artifact        {}", artifact_name(doc));
    let _ = writeln!(out, "schema_version  {}", schema_version(doc));
    for block in ["parallelism", "resilience", "observability"] {
        let state = if doc.get(block).is_some() { "present" } else { "absent" };
        let _ = writeln!(out, "{block:<15} {state}");
    }
    if let Some(p) = doc.get("parallelism") {
        if let (Some(jobs), Some(wall)) =
            (p.get("jobs").and_then(Json::as_f64), p.get("wall_ms").and_then(Json::as_f64))
        {
            let _ = writeln!(out, "  jobs {} wall {:.1} ms", jobs as u64, wall);
        }
    }
    if let Some(o) = doc.get("observability") {
        if let Some(fr) = o.path("flight_recorder.runs").and_then(Json::as_arr) {
            let _ = writeln!(out, "  flight recorder runs: {}", fr.len());
        }
    }
    let Some(payload) = doc.get("payload").and_then(Json::as_obj) else {
        let _ = writeln!(out, "payload         absent");
        return out;
    };
    let _ =
        writeln!(out, "payload keys    {}", payload.keys().cloned().collect::<Vec<_>>().join(", "));
    for arr_key in ["samples", "benchmarks"] {
        if let Some(items) = payload.get(arr_key).and_then(Json::as_arr) {
            let _ = writeln!(out, "{arr_key} ({}):", items.len());
            for item in items {
                let name = item.get("name").and_then(Json::as_str).unwrap_or("<unnamed>");
                let detail = item
                    .get("ns_per_iter")
                    .and_then(Json::as_f64)
                    .map(|ns| format!("{ns:.1} ns/iter"))
                    .or_else(|| {
                        item.get("wall_ms").and_then(Json::as_f64).map(|ms| format!("{ms:.1} ms"))
                    })
                    .unwrap_or_default();
                let _ = writeln!(out, "  {name:<28} {detail}");
            }
        }
    }
    for (label, path) in [
        ("accesses/sec", "accesses_per_sec"),
        ("total instructions", "totals.simulated_instructions"),
        ("fig02 instructions", "fig02.simulated_instructions"),
    ] {
        if let Some(v) = doc.path(&format!("payload.{path}")).and_then(Json::as_f64) {
            let _ = writeln!(out, "{label:<19} {}", fmt_num(v));
        }
    }
    out
}

fn diff_value(path: &str, a: Option<&Json>, b: Option<&Json>, out: &mut Vec<String>) {
    match (a, b) {
        (None, None) => {}
        (Some(_), None) => out.push(format!("- {path}")),
        (None, Some(_)) => out.push(format!("+ {path}")),
        (Some(a), Some(b)) => {
            if let (Some(ao), Some(bo)) = (a.as_obj(), b.as_obj()) {
                let keys: std::collections::BTreeSet<&String> =
                    ao.keys().chain(bo.keys()).collect();
                for key in keys {
                    diff_value(&format!("{path}.{key}"), ao.get(key), bo.get(key), out);
                }
            } else if let (Some(aa), Some(ba)) = (a.as_arr(), b.as_arr()) {
                let (an, bn) = (by_name(aa), by_name(ba));
                if !an.is_empty() || !bn.is_empty() {
                    let keys: std::collections::BTreeSet<&&str> =
                        an.keys().chain(bn.keys()).collect();
                    for key in keys {
                        diff_value(
                            &format!("{path}[{key}]"),
                            an.get(*key).copied(),
                            bn.get(*key).copied(),
                            out,
                        );
                    }
                } else {
                    if aa.len() != ba.len() {
                        out.push(format!("~ {path}: length {} -> {}", aa.len(), ba.len()));
                    }
                    for (i, (av, bv)) in aa.iter().zip(ba.iter()).enumerate() {
                        diff_value(&format!("{path}[{i}]"), Some(av), Some(bv), out);
                    }
                }
            } else if let (Some(av), Some(bv)) = (a.as_f64(), b.as_f64()) {
                if av != bv {
                    let delta = if av != 0.0 {
                        format!(" ({:+.2}%)", (bv - av) / av * 100.0)
                    } else {
                        String::new()
                    };
                    out.push(format!("~ {path}: {} -> {}{delta}", fmt_num(av), fmt_num(bv)));
                }
            } else if a.render() != b.render() {
                out.push(format!("~ {path}: {} -> {}", a.render(), b.render()));
            }
        }
    }
}

/// Recursive diff of two artifacts. Lines are prefixed `-` (only in A),
/// `+` (only in B), `~` (changed); numeric changes carry a percentage.
/// Returns the empty string when the documents are identical.
pub fn diff(a: &Json, b: &Json) -> String {
    let mut lines = Vec::new();
    diff_value("", Some(a), Some(b), &mut lines);
    let mut out = String::new();
    for line in lines {
        // Strip the leading "." the root recursion leaves on every path.
        let _ = writeln!(out, "{}", line.replacen(" .", " ", 1));
    }
    out
}

/// Outcome of a [`regress`] gate: how many invariants were checked and
/// which (if any) failed. `failures.is_empty()` means the gate passes.
pub struct RegressOutcome {
    /// Total invariants evaluated (pass or fail).
    pub checks: usize,
    /// One line per failed invariant; empty means the gate passes.
    pub failures: Vec<String>,
}

impl RegressOutcome {
    /// Whether the gate passes (no failed invariants).
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable gate report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.ok() {
            let _ = writeln!(out, "regress: OK ({} checks)", self.checks);
        } else {
            let _ =
                writeln!(out, "regress: FAIL ({} of {} checks)", self.failures.len(), self.checks);
            for f in &self.failures {
                let _ = writeln!(out, "  FAIL {f}");
            }
        }
        out
    }
}

/// Wall-clock ratio limits for [`regress`]: one optional global bound
/// plus named per-entry overrides (`--max-ratio block_replay_mips=4`).
///
/// Named overrides also unlock the *throughput* gates: scalar payload
/// fields measured in work-per-time (`block_replay_mips`,
/// `accesses_per_sec`, `fig02.simulated_mips` under the name
/// `fig02_smoke_end_to_end`) are bounded below by `baseline / ratio` —
/// but only when named explicitly, so the generous catch-all default
/// never starts gating fields that historic invocations left unchecked.
#[derive(Debug, Default, Clone)]
pub struct RatioLimits {
    /// Bound applied to every time-like entry without a named override;
    /// `None` disables the band.
    pub default: Option<f64>,
    /// Named `(entry, bound)` overrides, later entries winning; a `None`
    /// bound disables the band for that entry (`name=0` on the CLI).
    pub per_name: Vec<(String, Option<f64>)>,
}

impl RatioLimits {
    /// Limits with only the global bound set (the pre-override behaviour).
    pub fn uniform(default: Option<f64>) -> Self {
        Self { default, per_name: Vec::new() }
    }

    /// The bound for `name`: the last matching override, else the global
    /// default.
    pub fn for_name(&self, name: &str) -> Option<f64> {
        self.per_name.iter().rev().find(|(n, _)| n == name).map_or(self.default, |(_, r)| *r)
    }

    /// The bound for `name` only if an override names it explicitly.
    pub fn named_only(&self, name: &str) -> Option<f64> {
        self.per_name.iter().rev().find(|(n, _)| n == name).and_then(|(_, r)| *r)
    }
}

/// Compare `current` against a committed `baseline`, checking only
/// invariants that cannot flake on machine speed:
///
/// - the artifact names match;
/// - every named entry in `payload.samples` / `payload.benchmarks`
///   exists in both (name-set equality — a renamed or dropped benchmark
///   must come with a baseline update);
/// - `simulated_instructions` counts are *exactly* equal per sample and
///   for `payload.totals` / `payload.fig02` (deterministic workloads);
/// - timing fields in `current` are positive (`wall_ms`, `ns_per_iter`,
///   `iters`, `accesses_per_sec`) — zeros mean a benchmark silently
///   stopped doing work.
///
/// `limits` additionally bounds per-entry wall-clock growth:
/// current/baseline for `ns_per_iter` and sample `wall_ms` must not
/// exceed the entry's bound ([`RatioLimits::for_name`]); explicitly
/// named throughput fields are bounded below by `baseline / bound`.
///
/// Checks are keyed off the *baseline*: a field the baseline lacks (old
/// schema version, reduced artifact) is skipped, never failed.
pub fn regress(baseline: &Json, current: &Json, limits: &RatioLimits) -> RegressOutcome {
    let mut checks = 0usize;
    let mut failures = Vec::new();
    let mut check = |failures: &mut Vec<String>, ok: bool, msg: String| {
        checks += 1;
        if !ok {
            failures.push(msg);
        }
    };

    let (ba, ca) = (artifact_name(baseline), artifact_name(current));
    check(&mut failures, ba == ca, format!("artifact mismatch: baseline {ba:?} vs current {ca:?}"));

    for arr_key in ["samples", "benchmarks"] {
        let Some(base_items) = baseline.path(&format!("payload.{arr_key}")).and_then(Json::as_arr)
        else {
            continue;
        };
        let cur_items =
            current.path(&format!("payload.{arr_key}")).and_then(Json::as_arr).unwrap_or(&[]);
        let (base_by, cur_by) = (by_name(base_items), by_name(cur_items));
        for name in base_by.keys() {
            check(
                &mut failures,
                cur_by.contains_key(*name),
                format!("{arr_key}[{name}] missing from current"),
            );
        }
        for name in cur_by.keys() {
            check(
                &mut failures,
                base_by.contains_key(*name),
                format!("{arr_key}[{name}] not in baseline (update the committed baseline)"),
            );
        }
        for (name, base_item) in &base_by {
            let Some(cur_item) = cur_by.get(name) else { continue };
            if let Some(base_instr) = base_item.get("simulated_instructions").and_then(Json::as_f64)
            {
                let cur_instr = cur_item
                    .get("simulated_instructions")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN);
                check(
                    &mut failures,
                    cur_instr == base_instr,
                    format!(
                        "{arr_key}[{name}].simulated_instructions: baseline {} vs current {}",
                        fmt_num(base_instr),
                        fmt_num(cur_instr)
                    ),
                );
            }
            for field in ["wall_ms", "ns_per_iter", "iters"] {
                if base_item.get(field).and_then(Json::as_f64).is_none() {
                    continue;
                }
                let cur_v = cur_item.get(field).and_then(Json::as_f64).unwrap_or(-1.0);
                check(
                    &mut failures,
                    cur_v > 0.0,
                    format!("{arr_key}[{name}].{field} not positive: {cur_v}"),
                );
                if let (Some(ratio), Some(base_v)) =
                    (limits.for_name(name), base_item.get(field).and_then(Json::as_f64))
                {
                    if field != "iters" && base_v > 0.0 {
                        check(
                            &mut failures,
                            cur_v <= base_v * ratio,
                            format!(
                                "{arr_key}[{name}].{field} regressed: {cur_v:.3} > {ratio} x {base_v:.3}"
                            ),
                        );
                    }
                }
            }
        }
    }

    for path in ["totals.simulated_instructions", "fig02.simulated_instructions"] {
        let Some(base_v) = baseline.path(&format!("payload.{path}")).and_then(Json::as_f64) else {
            continue;
        };
        let cur_v =
            current.path(&format!("payload.{path}")).and_then(Json::as_f64).unwrap_or(f64::NAN);
        check(
            &mut failures,
            cur_v == base_v,
            format!("payload.{path}: baseline {} vs current {}", fmt_num(base_v), fmt_num(cur_v)),
        );
    }

    if baseline.path("payload.accesses_per_sec").and_then(Json::as_f64).is_some() {
        let cur_v = current.path("payload.accesses_per_sec").and_then(Json::as_f64).unwrap_or(-1.0);
        check(
            &mut failures,
            cur_v > 0.0,
            format!("payload.accesses_per_sec not positive: {cur_v}"),
        );
    }

    // Throughput fields (work per time, higher is better) gate only on
    // explicit named bounds: current must stay above baseline / bound.
    for (name, path) in [
        ("block_replay_mips", "payload.block_replay_mips"),
        ("accesses_per_sec", "payload.accesses_per_sec"),
        ("fig02_smoke_end_to_end", "payload.fig02.simulated_mips"),
    ] {
        let Some(bound) = limits.named_only(name) else { continue };
        let Some(base_v) = baseline.path(path).and_then(Json::as_f64) else { continue };
        if base_v <= 0.0 {
            continue;
        }
        let cur_v = current.path(path).and_then(Json::as_f64).unwrap_or(0.0);
        check(
            &mut failures,
            cur_v >= base_v / bound,
            format!("{path} regressed: {cur_v:.3} < {base_v:.3} / {bound}"),
        );
    }

    RegressOutcome { checks, failures }
}

/// Render per-worker utilization bars from the v2 `parallelism` block.
/// Artifacts without one (serial runs, old schemas, analytic figures)
/// get a one-line note instead of an error.
pub fn timeline(doc: &Json) -> String {
    let mut out = String::new();
    let Some(p) = doc.get("parallelism") else {
        let _ = writeln!(
            out,
            "{}: no parallelism block (serial run or schema < 2)",
            artifact_name(doc)
        );
        return out;
    };
    let jobs = p.get("jobs").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let wall = p.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
    let tasks = p.get("tasks").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let sweeps = p.get("sweeps").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let speedup = p.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "{}: {tasks} tasks over {sweeps} sweeps, {jobs} jobs, wall {wall:.1} ms, speedup {speedup:.2}x",
        artifact_name(doc)
    );
    let Some(workers) = p.get("worker_busy_ms").and_then(Json::as_arr) else {
        let _ = writeln!(out, "  (no per-worker breakdown)");
        return out;
    };
    const WIDTH: usize = 40;
    for (i, w) in workers.iter().enumerate() {
        let busy = w.as_f64().unwrap_or(0.0);
        let frac = if wall > 0.0 { (busy / wall).clamp(0.0, 1.0) } else { 0.0 };
        let filled = (frac * WIDTH as f64).round() as usize;
        let bar: String = "#".repeat(filled) + &".".repeat(WIDTH - filled);
        let _ = writeln!(out, "  worker {i:<3} {bar} {:5.1}% {busy:9.1} ms", frac * 100.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        json::parse(text).expect("test fixture parses")
    }

    fn baseline() -> Json {
        doc(r#"{
            "artifact": "BENCH_demo",
            "schema_version": 4,
            "payload": {
                "accesses_per_sec": 1000.0,
                "benchmarks": [
                    {"name": "probe", "iters": 100, "ns_per_iter": 5.0},
                    {"name": "fill", "iters": 50, "ns_per_iter": 9.0}
                ],
                "samples": [
                    {"name": "fig02", "simulated_instructions": 96000, "wall_ms": 12.0}
                ],
                "totals": {"simulated_instructions": 96000}
            }
        }"#)
    }

    #[test]
    fn regress_passes_against_itself() {
        let base = baseline();
        let outcome = regress(&base, &base, &RatioLimits::default());
        assert!(outcome.ok(), "failures: {:?}", outcome.failures);
        assert!(outcome.checks >= 8);
    }

    #[test]
    fn regress_catches_instruction_drift_and_missing_names() {
        let base = baseline();
        let mut broken = baseline();
        // Instruction drift in a sample.
        let mut sample = broken
            .path("payload.samples")
            .and_then(Json::as_arr)
            .and_then(|s| s.first())
            .cloned()
            .expect("fixture has a sample");
        sample.insert("simulated_instructions", Json::u64(95999));
        let mut payload = broken.get("payload").cloned().expect("payload");
        payload.insert("samples", Json::arr([sample]));
        broken.insert("payload", payload);
        let outcome = regress(&base, &broken, &RatioLimits::default());
        assert!(!outcome.ok());
        assert!(outcome.failures.iter().any(|f| f.contains("simulated_instructions")));

        // A dropped benchmark also fails.
        let reduced = doc(r#"{
            "artifact": "BENCH_demo",
            "payload": {
                "accesses_per_sec": 1.0,
                "benchmarks": [{"name": "probe", "iters": 1, "ns_per_iter": 1.0}],
                "samples": [
                    {"name": "fig02", "simulated_instructions": 96000, "wall_ms": 1.0}
                ],
                "totals": {"simulated_instructions": 96000}
            }
        }"#);
        let outcome = regress(&base, &reduced, &RatioLimits::default());
        assert!(outcome.failures.iter().any(|f| f.contains("benchmarks[fill]")));
    }

    #[test]
    fn regress_skips_checks_the_baseline_lacks() {
        // A v1-style baseline without benchmarks or totals: only the
        // artifact-name check applies, so any well-formed current passes.
        let old = doc(r#"{"artifact": "BENCH_demo", "payload": {}}"#);
        let outcome = regress(&old, &baseline(), &RatioLimits::default());
        assert!(outcome.ok(), "failures: {:?}", outcome.failures);
        assert_eq!(outcome.checks, 1);
    }

    #[test]
    fn regress_ratio_band_bounds_wall_clock_growth() {
        let base = baseline();
        let mut slow = baseline();
        let mut payload = slow.get("payload").cloned().expect("payload");
        payload.insert(
            "benchmarks",
            Json::arr([
                doc(r#"{"name": "probe", "iters": 100, "ns_per_iter": 50.0}"#),
                doc(r#"{"name": "fill", "iters": 50, "ns_per_iter": 9.0}"#),
            ]),
        );
        slow.insert("payload", payload);
        // Without a band the 10x slowdown passes (non-flaky default)...
        assert!(regress(&base, &slow, &RatioLimits::default()).ok());
        // ...with a 2x band it fails.
        let outcome = regress(&base, &slow, &RatioLimits::uniform(Some(2.0)));
        assert!(outcome.failures.iter().any(|f| f.contains("probe")));
    }

    #[test]
    fn regress_per_name_override_beats_the_global_band() {
        let base = baseline();
        let mut slow = baseline();
        let mut payload = slow.get("payload").cloned().expect("payload");
        payload.insert(
            "benchmarks",
            Json::arr([
                doc(r#"{"name": "probe", "iters": 100, "ns_per_iter": 50.0}"#),
                doc(r#"{"name": "fill", "iters": 50, "ns_per_iter": 9.0}"#),
            ]),
        );
        slow.insert("payload", payload);
        // A 2x global band trips on probe's 10x, but a named 16x override
        // for probe absorbs it.
        let mut limits = RatioLimits::uniform(Some(2.0));
        limits.per_name.push(("probe".into(), Some(16.0)));
        assert!(regress(&base, &slow, &limits).ok());
        // A named override *tighter* than the global default also wins.
        let mut limits = RatioLimits::uniform(Some(32.0));
        limits.per_name.push(("probe".into(), Some(4.0)));
        let outcome = regress(&base, &slow, &limits);
        assert!(outcome.failures.iter().any(|f| f.contains("probe")));
        // `name=0` disables the band for that entry alone.
        let mut limits = RatioLimits::uniform(Some(2.0));
        limits.per_name.push(("probe".into(), None));
        assert!(regress(&base, &slow, &limits).ok());
        // Later overrides win over earlier ones.
        let mut limits = RatioLimits::uniform(Some(32.0));
        limits.per_name.push(("probe".into(), Some(4.0)));
        limits.per_name.push(("probe".into(), None));
        assert!(regress(&base, &slow, &limits).ok());
    }

    #[test]
    fn regress_named_throughput_fields_gate_downward() {
        let base = doc(r#"{"artifact": "BENCH_demo", "payload": {"block_replay_mips": 60.0,
                "fig02": {"simulated_mips": 40.0}}}"#);
        let slow = doc(r#"{"artifact": "BENCH_demo", "payload": {"block_replay_mips": 10.0,
                "fig02": {"simulated_mips": 39.0}}}"#);
        // The global default never gates throughput fields...
        assert!(regress(&base, &slow, &RatioLimits::uniform(Some(2.0))).ok());
        // ...a named bound does: 10 < 60/4 fails, 39 >= 40/4 passes.
        let mut limits = RatioLimits::default();
        limits.per_name.push(("block_replay_mips".into(), Some(4.0)));
        limits.per_name.push(("fig02_smoke_end_to_end".into(), Some(4.0)));
        let outcome = regress(&base, &slow, &limits);
        assert!(!outcome.ok());
        assert!(outcome.failures.iter().any(|f| f.contains("block_replay_mips")));
        assert!(!outcome.failures.iter().any(|f| f.contains("simulated_mips")));
    }

    #[test]
    fn diff_reports_numeric_deltas_and_membership() {
        let a = doc(r#"{"payload": {"x": 10, "samples": [{"name": "s1", "v": 1}]}}"#);
        let b = doc(r#"{"payload": {"x": 12, "samples": [{"name": "s2", "v": 1}]}}"#);
        let d = diff(&a, &b);
        assert!(d.contains("payload.x: 10 -> 12"), "{d}");
        assert!(d.contains("- payload.samples[s1]"), "{d}");
        assert!(d.contains("+ payload.samples[s2]"), "{d}");
        assert!(diff(&a, &a).is_empty());
    }

    #[test]
    fn summary_and_timeline_render_for_all_schema_eras() {
        let v1 = doc(r#"{"payload": {"x": 1}}"#);
        assert!(summary(&v1).contains("schema_version  1"));
        assert!(timeline(&v1).contains("no parallelism block"));

        let v5 = doc(r#"{
            "artifact": "fig02",
            "schema_version": 5,
            "parallelism": {
                "jobs": 2, "wall_ms": 100.0, "tasks": 8, "sweeps": 1,
                "speedup": 1.8, "worker_busy_ms": [90.0, 90.0]
            },
            "payload": {"samples": []}
        }"#);
        let s = summary(&v5);
        assert!(s.contains("parallelism     present"), "{s}");
        let t = timeline(&v5);
        assert!(t.contains("worker 0"), "{t}");
        assert!(t.contains("90.0"), "{t}");
    }
}
